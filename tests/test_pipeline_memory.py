"""Pipeline memory behaviour: loads, stores, forwarding, conflicts."""

import pytest

from repro.core.components import Component
from repro.isa import decoder as asm
from repro.pipeline.core import simulate
from repro.workloads.base import DATA_BASE, TraceBuilder


def test_store_to_load_forwarding(tiny):
    """A load from a just-stored address forwards from the store queue
    instead of paying the cache-fill latency."""
    b = TraceBuilder("fwd", seed=1)
    addr = DATA_BASE + 0x100000  # never loaded before: cold in caches
    base = b.pc
    for i in range(200):
        b.at(base)
        b.emit(asm.alu(b.pc, dst=3, srcs=(3,)))
        b.emit(asm.store(b.pc, src=3, addr=addr + (i % 4) * 64))
        b.emit(asm.load(b.pc, dst=4, addr=addr + (i % 4) * 64))
        b.emit(asm.alu(b.pc, dst=5, srcs=(4,)))
    result = simulate(b.program(), tiny)
    # Forwarded loads complete in ~1 cycle: CPI stays near serial-chain
    # speed, nowhere near the cold-miss latency (60+ cycles).
    assert result.cpi < 3.0


def test_load_waits_for_older_unexecuted_store(tiny):
    """The conflicting load cannot issue before the store executes; the
    stall appears as a structural 'Other' at the issue stage."""
    b = TraceBuilder("conflict", seed=1)
    addr = DATA_BASE
    base = b.pc
    for _ in range(300):
        b.at(base)
        # Long dependence chain delays the store's data...
        b.emit(asm.mul(b.pc, dst=2, srcs=(2,)))
        b.emit(asm.store(b.pc, src=2, addr=addr))
        # ...and the load must wait on it despite having its address.
        b.emit(asm.load(b.pc, dst=4, addr=addr))
    result = simulate(b.program(), tiny)
    issue = result.report.issue
    assert issue.get(Component.OTHER) > 0


def test_stores_do_not_stall_commit(tiny):
    """Stores retire through the store buffer without blocking."""
    b = TraceBuilder("stores", seed=1)
    base = b.pc
    for i in range(500):
        b.at(base)
        b.emit(asm.store(b.pc, src=1, addr=DATA_BASE + i * 64))
        b.emit(asm.alu(b.pc, dst=2, srcs=(2,)))
    result = simulate(b.program(), tiny)
    # Store misses are cold (streaming) but fire-and-forget: CPI stays low.
    assert result.cpi < 3.0


def test_dependent_load_chain_serializes_misses(tiny):
    """Pointer-chase-style dependent loads expose the full miss latency."""
    b = TraceBuilder("chase", seed=1)
    lines = 512
    base = b.pc
    for i in range(300):
        b.at(base)
        addr = DATA_BASE + ((i * 97) % lines) * 64
        b.emit(asm.load(b.pc, dst=2, addr=addr, addr_srcs=(2,)))
    serial = simulate(b.program(), tiny)

    b2 = TraceBuilder("parallel", seed=1)
    base = b2.pc
    for i in range(300):
        b2.at(base)
        addr = DATA_BASE + ((i * 97) % lines) * 64
        b2.emit(asm.load(b2.pc, dst=2 + i % 8, addr=addr, addr_srcs=(1,)))
    parallel = simulate(b2.program(), tiny)
    # Same addresses; the dependent chain must be much slower than the
    # MLP-friendly version.
    assert serial.cpi > 1.5 * parallel.cpi


def test_perfect_dcache_removes_dcache_component(tiny):
    from dataclasses import replace

    b = TraceBuilder("misses", seed=1)
    base = b.pc
    for i in range(400):
        b.at(base)
        b.emit(asm.load(b.pc, dst=2, addr=DATA_BASE + i * 64 * 7,
                        addr_srcs=(2,)))
    baseline = simulate(b.program(), tiny)
    ideal = simulate(b.program(), replace(tiny, perfect_dcache=True))
    assert baseline.report.commit.get(Component.DCACHE) > 0
    assert ideal.report.commit.get(Component.DCACHE) == 0
    assert ideal.cycles < baseline.cycles


def test_load_blamed_dcache_only_when_missing(tiny):
    """L1-hitting loads never produce a DCACHE component."""
    b = TraceBuilder("hits", seed=1)
    for i in range(50):
        b.emit(asm.load(b.pc, dst=2, addr=DATA_BASE + (i % 2) * 64))
    b2 = TraceBuilder("hits2", seed=1)
    base = b2.pc
    for i in range(2000):
        b2.at(base)
        b2.emit(asm.load(b2.pc, dst=2, addr=DATA_BASE + (i % 2) * 64,
                         addr_srcs=(2,)))
    result = simulate(b2.program(), tiny, warmup_instructions=100)
    commit = result.report.commit
    assert commit.get(Component.DCACHE) < 0.02 * commit.total()
