"""Pipeline branch handling: prediction, wrong path, squash, recovery."""

import pytest
from dataclasses import replace

from repro.core.components import Component
from repro.isa import decoder as asm
from repro.pipeline.core import simulate
from repro.workloads.base import TraceBuilder

from tests.conftest import branch_loop


def test_predictable_loop_has_no_bpred_component(tiny):
    result = simulate(branch_loop(500, pattern="taken"), tiny,
                      warmup_instructions=100)
    assert result.mispredict_rate < 0.05
    commit = result.report.commit
    assert commit.get(Component.BPRED) < 0.05 * commit.total()


def test_random_branches_mispredict(tiny):
    b = TraceBuilder("rand", seed=3)
    loop_pc = b.pc
    for i in range(800):
        b.at(loop_pc)
        b.emit(asm.alu(b.pc, dst=2, srcs=(2,)))
        taken = b.rng.random() < 0.5
        b.emit(asm.branch(b.pc, taken=taken, target=loop_pc, srcs=(2,)))
    result = simulate(b.program(), tiny)
    assert result.mispredict_rate > 0.25
    assert result.report.dispatch.get(Component.BPRED) > 0


def test_mispredicts_inject_wrong_path_work(tiny):
    b = TraceBuilder("rand", seed=3)
    loop_pc = b.pc
    for i in range(500):
        b.at(loop_pc)
        b.emit(asm.alu(b.pc, dst=2, srcs=(2,)))
        b.emit(asm.branch(b.pc, taken=b.rng.random() < 0.5,
                          target=loop_pc, srcs=(2,)))
    result = simulate(b.program(), tiny)
    assert result.wrong_path_uops > 0


def test_perfect_bpred_eliminates_mispredicts_and_wrong_path(tiny):
    prog = branch_loop(500, pattern="alternate")
    ideal = simulate(prog, replace(tiny, perfect_bpred=True))
    assert ideal.mispredict_rate == 0.0
    assert ideal.wrong_path_uops == 0
    assert ideal.report.dispatch.get(Component.BPRED) == 0.0


def test_perfect_bpred_is_faster_on_branchy_code(tiny):
    b = TraceBuilder("rand", seed=3)
    loop_pc = b.pc
    for i in range(800):
        b.at(loop_pc)
        b.emit(asm.alu(b.pc, dst=2, srcs=(2,)))
        b.emit(asm.branch(b.pc, taken=b.rng.random() < 0.5,
                          target=loop_pc, srcs=(2,)))
    prog = b.program()
    baseline = simulate(prog, tiny)
    ideal = simulate(prog, replace(tiny, perfect_bpred=True))
    assert ideal.cycles < baseline.cycles


def test_squash_preserves_architectural_results(tiny):
    """Committed counts are exact despite heavy squashing."""
    b = TraceBuilder("rand", seed=9)
    loop_pc = b.pc
    n = 600
    for i in range(n):
        b.at(loop_pc)
        b.emit(asm.alu(b.pc, dst=2, srcs=(2,)))
        b.emit(asm.load(b.pc, dst=3, addr=0x10000000 + (i % 8) * 64))
        b.emit(asm.branch(b.pc, taken=b.rng.random() < 0.4,
                          target=loop_pc, srcs=(3,)))
    prog = b.program()
    result = simulate(prog, tiny)
    assert result.committed_instrs == len(prog)
    assert result.committed_uops == prog.uop_count


def test_dispatch_bpred_exceeds_commit_bpred(tiny):
    """Frontend components shrink from dispatch to commit (Sec. III-A)."""
    b = TraceBuilder("rand", seed=3)
    loop_pc = b.pc
    for i in range(800):
        b.at(loop_pc)
        for j in range(3):
            b.emit(asm.alu(b.pc, dst=2 + j, srcs=(2 + j,)))
        b.emit(asm.branch(b.pc, taken=b.rng.random() < 0.5,
                          target=loop_pc, srcs=(2,)))
    result = simulate(b.program(), tiny)
    report = result.report
    # Ordering holds up to a couple of boundary cycles (squash/redirect
    # edges can attribute one cycle differently across stages).
    assert report.dispatch.get(Component.BPRED) >= report.issue.get(
        Component.BPRED) - 2.0
    assert report.issue.get(Component.BPRED) >= report.commit.get(
        Component.BPRED) - 2.0
    # And the aggregate ordering is strict: dispatch sees more, because
    # commit accounting only starts once the ROB has drained.
    assert report.dispatch.get(Component.BPRED) > 1.05 * report.commit.get(
        Component.BPRED)


def test_branch_resolution_waits_on_operands(tiny):
    """A branch fed by a long-latency chain resolves late, making each
    misprediction more expensive."""
    def build(chain_ops):
        b = TraceBuilder("resolve", seed=5)
        loop_pc = b.pc
        for i in range(300):
            b.at(loop_pc)
            for _ in range(chain_ops):
                b.emit(asm.mul(b.pc, dst=2, srcs=(2,)))
            b.emit(asm.branch(b.pc, taken=b.rng.random() < 0.5,
                              target=loop_pc, srcs=(2,)))
        return b.program()

    fast = simulate(build(1), tiny)
    slow = simulate(build(4), tiny)
    # Late resolution means more wrong-path work fetched per misprediction.
    fast_wp = fast.wrong_path_uops / max(1, fast.branch_mispredicts)
    slow_wp = slow.wrong_path_uops / max(1, slow.branch_mispredicts)
    assert slow_wp > fast_wp
