"""Shared fixtures and trace-building helpers for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.config.presets import broadwell, knights_landing, tiny_core
from repro.isa import decoder as asm
from repro.isa.instructions import Program
from repro.workloads.base import DATA_BASE, TraceBuilder


@pytest.fixture(scope="session", autouse=True)
def _isolated_disk_cache(tmp_path_factory):
    """Point the persistent result cache at a per-session temp dir.

    Tests clear and corrupt the cache freely; none of that may touch the
    developer's real ``results/.cache``.  Set via the environment so pool
    worker processes (fork and spawn alike) inherit the same location.
    """
    cache_dir = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield cache_dir
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session", autouse=True)
def _isolated_failures_dir(tmp_path_factory):
    """Point the supervisor's failure-report store at a temp dir.

    Fault-injection tests persist and clear failure records; the real
    ``results/failures`` must stay untouched.  Environment-based for the
    same pool-worker-inheritance reason as the cache fixture.
    """
    failures = tmp_path_factory.mktemp("repro-failures")
    previous = os.environ.get("REPRO_FAILURES_DIR")
    os.environ["REPRO_FAILURES_DIR"] = str(failures)
    yield failures
    if previous is None:
        os.environ.pop("REPRO_FAILURES_DIR", None)
    else:
        os.environ["REPRO_FAILURES_DIR"] = previous


@pytest.fixture(scope="session", autouse=True)
def _isolated_checkpoint_dir(tmp_path_factory):
    """Point the crash-recovery checkpoint store at a temp dir.

    Checkpoint tests kill simulations mid-flight and corrupt snapshot
    files on purpose; the real ``results/.checkpoints`` must stay
    untouched.  Environment-based so pool workers inherit the location.
    """
    checkpoints = tmp_path_factory.mktemp("repro-checkpoints")
    previous = os.environ.get("REPRO_CHECKPOINT_DIR")
    os.environ["REPRO_CHECKPOINT_DIR"] = str(checkpoints)
    yield checkpoints
    if previous is None:
        os.environ.pop("REPRO_CHECKPOINT_DIR", None)
    else:
        os.environ["REPRO_CHECKPOINT_DIR"] = previous


@pytest.fixture
def tiny():
    """A small core configuration that exposes stalls with short traces."""
    return tiny_core()


@pytest.fixture
def bdw():
    return broadwell()


@pytest.fixture
def knl():
    return knights_landing()


def straightline_alu(n: int, *, ilp: int = 8) -> Program:
    """n independent-chain ALU instructions (ilp parallel chains).

    The pc wraps inside one I-cache line so the instruction stream itself
    never misses (these helpers isolate backend behaviour).
    """
    b = TraceBuilder("straightline", seed=1)
    base = b.pc
    for i in range(n):
        reg = 2 + i % ilp
        b.at(base + (i % 8) * 4)
        b.emit(asm.alu(b.pc, dst=reg, srcs=(reg,)))
    return b.program()


def serial_chain(n: int, kind: str = "alu") -> Program:
    """n instructions forming one serial dependence chain."""
    b = TraceBuilder("chain", seed=1)
    builders = {"alu": asm.alu, "mul": asm.mul, "div": asm.div}
    build = builders[kind]
    base = b.pc
    for i in range(n):
        b.at(base + (i % 8) * 4)
        b.emit(build(b.pc, dst=2, srcs=(2,)))
    return b.program()


def load_loop(
    n: int,
    *,
    lines: int = 4,
    dependent: bool = False,
    stride_lines: int = 1,
) -> Program:
    """n loads walking ``lines`` cache lines (optionally chained)."""
    b = TraceBuilder("loads", seed=1)
    base = b.pc
    for i in range(n):
        addr = DATA_BASE + (i * stride_lines % lines) * 64
        srcs = (2,) if dependent else (1,)
        b.at(base + (i % 8) * 4)
        b.emit(asm.load(b.pc, dst=2, addr=addr, addr_srcs=srcs))
    return b.program()


def branch_loop(
    n: int,
    *,
    pattern: str = "taken",
    body: int = 3,
) -> Program:
    """n loop iterations ending in a branch with the given direction
    pattern ('taken', 'alternate', 'never')."""
    b = TraceBuilder("branches", seed=1)
    loop_pc = b.pc
    for i in range(n):
        b.at(loop_pc)
        for j in range(body):
            reg = 2 + j
            b.emit(asm.alu(b.pc, dst=reg, srcs=(reg,)))
        if pattern == "taken":
            taken = True
        elif pattern == "never":
            taken = False
        else:
            taken = i % 2 == 0
        b.emit(asm.branch(b.pc, taken=taken, target=loop_pc, srcs=(2,)))
    return b.program()
