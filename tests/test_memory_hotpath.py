"""Allocation-free memory fast path: differential proof vs the legacy walk.

The memory subsystem's common case (TLB hit + L1 hit, flat array-backed
sets) and the machine-level optimizations gated with it (stall-streak
elision, silent replay arming, the per-signature accounting delta cache)
must be *bitwise invisible*: every architectural number in a
``SimResult`` — cycles, CPI/FLOPS stacks, cache/TLB/predictor stats —
must match the legacy dict-backed reference walk
(``REPRO_LEGACY_MEMORY=1`` / ``memory_fast_path=False``) exactly.

Four layers of evidence:

1. **End-to-end matrix** — workloads × presets × wrong-path modes ×
   warmup × fast-forward/replay/fusion, fast vs legacy, bit for bit.
2. **Mid-run checkpoint/resume** — an interrupted fast-path run resumed
   from disk equals the legacy uninterrupted run; a snapshot written by
   one representation restores into the *other* (the snapshot schema is
   representation-stable).
3. **Structure-level differential** — randomized op sequences through
   the flat ``Cache``/``Tlb`` and the dict-backed ``LegacyCache``/
   ``LegacyTlb`` oracles, comparing fingerprints and stats at every step.
4. **Edge cases** for :meth:`MemoryHierarchy.next_event` and
   :meth:`MemoryHierarchy.probe_latency`, previously only exercised
   indirectly (empty outstanding maps, L3-less configs, queued-MSHR
   completion ordering).
"""

from __future__ import annotations

import dataclasses
import math
import pickle
import random

import pytest

from repro.config.cores import (
    CacheConfig,
    DramConfig,
    MemoryConfig,
    PrefetcherConfig,
    TlbConfig,
)
from repro.config.presets import broadwell, knights_landing
from repro.core.multistage import CollectorSpec
from repro.core.wrongpath import WrongPathMode
from repro.memory.cache import Cache
from repro.memory.hierarchy import (
    ENV_LEGACY_MEMORY,
    MemoryHierarchy,
    legacy_memory_default,
)
from repro.memory.legacy import LegacyCache, LegacyTlb
from repro.memory.tlb import Tlb
from repro.pipeline import checkpoint as ckpt
from repro.pipeline.core import CoreSimulator
from repro.workloads.registry import make_trace

N = 2_000

WORKLOADS = ["chase", "mcf", "bwaves", "exchange2", "spin"]


@pytest.fixture(autouse=True)
def _clean_checkpoints():
    ckpt.clear_checkpoints()
    yield
    ckpt.clear_checkpoints()


def _comparable(result) -> dict:
    """Everything that must be identical (host-side telemetry excluded).

    The skip-engine window counters legitimately differ: the fast path
    arms elision/replay where the legacy reference simulates every
    cycle.  Every architectural field must still match bit for bit.
    """
    payload = result.to_dict()
    for key in ("wall_seconds", "ff_windows", "ff_cycles_skipped",
                "replay_windows", "replay_cycles_skipped"):
        payload.pop(key)
    return payload


def _pair(workload, config_fn, *, n=N, **kwargs):
    """One fast-path run and one legacy-oracle run, same kwargs."""
    trace = make_trace(workload, n, 1)
    fast = CoreSimulator(
        trace, config_fn(), memory_fast_path=True, **kwargs
    ).run()
    legacy = CoreSimulator(
        trace, config_fn(), memory_fast_path=False, **kwargs
    ).run()
    return fast, legacy


# ---------------------------------------------------------------------------
# 1. end-to-end differential matrix
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("preset", [broadwell, knights_landing])
@pytest.mark.parametrize("mode", list(WrongPathMode))
def test_fast_path_bitwise_identical(workload, preset, mode):
    fast, legacy = _pair(workload, preset, mode=mode, fast_forward=False)
    assert _comparable(fast) == _comparable(legacy)


@pytest.mark.parametrize("workload", ["mcf", "bwaves"])
@pytest.mark.parametrize("preset", [broadwell, knights_landing])
@pytest.mark.parametrize("warmup", [100, 350])
def test_fast_path_identical_with_warmup(workload, preset, warmup):
    fast, legacy = _pair(
        workload, preset, warmup_instructions=warmup, fast_forward=False
    )
    assert _comparable(fast) == _comparable(legacy)


@pytest.mark.parametrize("workload", ["mcf", "spin", "chase"])
@pytest.mark.parametrize(
    "engines",
    [
        {"fast_forward": True, "replay": False},
        {"fast_forward": False, "replay": True},
        {"fast_forward": True, "replay": True},
    ],
    ids=["ff", "replay", "both"],
)
def test_fast_path_identical_under_skip_engines(workload, engines):
    """The fast path composes with both skip engines, and the composed
    run still equals the fully cycle-by-cycle legacy reference."""
    trace = make_trace(workload, N, 1)
    fast = CoreSimulator(
        trace, broadwell(), memory_fast_path=True, **engines
    ).run()
    reference = CoreSimulator(
        trace, broadwell(), memory_fast_path=False,
        fast_forward=False, replay=False,
    ).run()
    assert _comparable(fast) == _comparable(reference)


def test_fast_path_identical_under_fusion():
    """Every member of a fused multi-collector fast-path run equals its
    unfused legacy single-collector twin."""
    trace = make_trace("mcf", N, 1)
    specs = (
        CollectorSpec(),
        CollectorSpec(topdown=True),
        CollectorSpec(accounting_width=2),
    )
    fused = CoreSimulator(
        trace, broadwell(), memory_fast_path=True, collectors=specs
    )
    fused.run()
    single_kwargs = [
        {},
        {"topdown": True},
        {"accounting_width": 2},
    ]
    for member, kwargs in zip(fused.fused_results, single_kwargs):
        legacy = CoreSimulator(
            trace, broadwell(), memory_fast_path=False, **kwargs
        ).run()
        assert _comparable(member) == _comparable(legacy)


def test_fast_path_identical_across_seeds():
    """Wrong-path synthesis consumes the same RNG stream on both paths."""
    for seed in (1, 99, 424242):
        trace = make_trace("mcf", N, 1)
        fast = CoreSimulator(
            trace, broadwell(), memory_fast_path=True, seed=seed
        ).run()
        legacy = CoreSimulator(
            trace, broadwell(), memory_fast_path=False, seed=seed
        ).run()
        assert _comparable(fast) == _comparable(legacy)


# ---------------------------------------------------------------------------
# 2. mid-run checkpoint/resume through the representation-stable snapshot
# ---------------------------------------------------------------------------


class _Interrupted(Exception):
    pass


def _interrupted_resumed(trace, config, *, kills=2, **kwargs):
    """Run to the ``kills``-th checkpoint, die, resume the newest file."""
    sim = CoreSimulator(trace, config, **kwargs)
    seen = 0

    def hook(path, instrs):
        nonlocal seen
        seen += 1
        if seen >= kills:
            raise _Interrupted

    try:
        sim.run(
            checkpoint_interval=300,
            checkpoint_key=f"hotpath-{kwargs.get('memory_fast_path')}",
            on_checkpoint=hook,
        )
    except _Interrupted:
        pass
    files = ckpt.list_case_checkpoints(
        f"hotpath-{kwargs.get('memory_fast_path')}"
    )
    assert files, "the interrupted run never wrote a checkpoint"
    return CoreSimulator.resume(files[-1]).run()


@pytest.mark.parametrize("workload", ["mcf", "exchange2"])
def test_checkpoint_resume_fast_path_equals_legacy(workload):
    trace = make_trace(workload, N, 1)
    resumed = _interrupted_resumed(
        trace, broadwell(), memory_fast_path=True
    )
    legacy = CoreSimulator(
        trace, broadwell(), memory_fast_path=False
    ).run()
    assert _comparable(resumed) == _comparable(legacy)


def _mid_run_snapshot(trace, config, **kwargs) -> bytes:
    """Snapshot bytes captured at the first checkpoint due point."""
    sim = CoreSimulator(trace, config, **kwargs)
    captured: list[bytes] = []

    def hook(path, instrs):
        captured.append(ckpt.load_checkpoint(path)[0])
        raise _Interrupted

    try:
        sim.run(
            checkpoint_interval=300, checkpoint_key="hotpath-cross",
            on_checkpoint=hook,
        )
    except _Interrupted:
        pass
    assert captured, "no checkpoint was written"
    return captured[0]


@pytest.mark.parametrize("src_fast,dst_fast", [(True, False), (False, True)])
def test_snapshot_restores_across_representations(src_fast, dst_fast):
    """A snapshot written by one cache representation finishes the run
    under the other — the snapshot schema is representation-stable —
    and still matches the straight-through reference."""
    trace = make_trace("mcf", N, 1)
    payload = _mid_run_snapshot(
        trace, broadwell(), memory_fast_path=src_fast
    )
    data = pickle.loads(payload)
    assert data["kwargs"]["memory_fast_path"] is src_fast
    data["kwargs"]["memory_fast_path"] = dst_fast
    crossed = CoreSimulator.from_snapshot(pickle.dumps(data)).run()
    reference = CoreSimulator(
        trace, broadwell(), memory_fast_path=False
    ).run()
    assert _comparable(crossed) == _comparable(reference)


# ---------------------------------------------------------------------------
# gates
# ---------------------------------------------------------------------------


def test_env_gate_selects_legacy_representation(monkeypatch):
    monkeypatch.setenv(ENV_LEGACY_MEMORY, "1")
    assert legacy_memory_default()
    h = MemoryHierarchy(broadwell().memory)
    assert not h.fast_path
    assert type(h.l1d) is LegacyCache and type(h.dtlb) is LegacyTlb


def test_kwarg_overrides_env_gate(monkeypatch):
    monkeypatch.setenv(ENV_LEGACY_MEMORY, "1")
    h = MemoryHierarchy(broadwell().memory, fast_path=True)
    assert h.fast_path
    assert type(h.l1d) is Cache and type(h.dtlb) is Tlb
    monkeypatch.delenv(ENV_LEGACY_MEMORY)
    assert not legacy_memory_default()
    h = MemoryHierarchy(broadwell().memory)
    assert h.fast_path


# ---------------------------------------------------------------------------
# 3. structure-level differential: flat arrays vs the dict oracle
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "size,assoc",
    [(1024, 1), (2048, 2), (4096, 4), (8192, 8)],
)
def test_cache_differential_random_ops(size, assoc):
    """Randomized lookup/insert/fill/mark_dirty/invalidate sequences keep
    the flat cache and the dict oracle in lockstep: same hit/miss
    outcome, same eviction victims, same fingerprint, same stats."""
    cfg = CacheConfig(size, assoc, line_bytes=64, latency=2)
    flat, legacy = Cache(cfg, "T"), LegacyCache(cfg, "T")
    rng = random.Random(1234 + size + assoc)
    lines = range(4 * size // 64)
    for step in range(3_000):
        line = rng.choice(lines)
        op = rng.randrange(6)
        if op <= 1:
            assert flat.lookup(line) == legacy.lookup(line), step
        elif op == 2:
            dirty = rng.random() < 0.3
            ev_f = flat.insert(line, dirty=dirty)
            ev_l = legacy.insert(line, dirty=dirty)
            assert (ev_f is None) == (ev_l is None), step
            if ev_f is not None:
                assert (ev_f.line, ev_f.dirty) == (ev_l.line, ev_l.dirty)
        elif op == 3:
            assert flat.fill(line) == legacy.fill(line), step
        elif op == 4:
            flat.mark_dirty(line)
            legacy.mark_dirty(line)
        else:
            flat.invalidate(line)
            legacy.invalidate(line)
        assert flat.fingerprint() == legacy.fingerprint(), step
    assert flat.occupancy == legacy.occupancy
    assert dataclasses.asdict(flat.stats) == dataclasses.asdict(legacy.stats)


def test_cache_differential_insert_streams():
    """Deterministic conflict-heavy insert/probe stream (every set
    overflows repeatedly) — the LRU orders never diverge."""
    cfg = CacheConfig(1024, 2, line_bytes=64, latency=1)
    flat, legacy = Cache(cfg, "T"), LegacyCache(cfg, "T")
    sets = cfg.num_sets
    for i in range(600):
        line = (i * 7) % (8 * sets)
        ev_f = flat.insert(line, dirty=(i % 3 == 0))
        ev_l = legacy.insert(line, dirty=(i % 3 == 0))
        assert (ev_f is None) == (ev_l is None)
        if ev_f is not None:
            assert (ev_f.line, ev_f.dirty) == (ev_l.line, ev_l.dirty)
        assert flat.fingerprint() == legacy.fingerprint()


@pytest.mark.parametrize("entries", [16, 64])
def test_tlb_differential_random_ops(entries):
    cfg = TlbConfig(entries=entries, miss_penalty=9)
    flat, legacy = Tlb(cfg), LegacyTlb(cfg)
    rng = random.Random(entries)
    for step in range(4_000):
        addr = rng.randrange(0, 1 << 24)
        assert flat.access(addr) == legacy.access(addr), step
        if step % 97 == 0:
            assert flat.fingerprint() == legacy.fingerprint(), step
    assert flat.fingerprint() == legacy.fingerprint()
    assert flat.miss_rate == legacy.miss_rate


def test_cache_snapshot_schema_stable_across_representations():
    """Flat and legacy snapshots interchange: each restores the other."""
    cfg = CacheConfig(2048, 2, line_bytes=64, latency=2)
    flat, legacy = Cache(cfg, "T"), LegacyCache(cfg, "T")
    for i in range(200):
        flat.insert((i * 13) % 96, dirty=(i % 4 == 0))
        legacy.insert((i * 13) % 96, dirty=(i % 4 == 0))
    assert flat.fingerprint() == legacy.fingerprint()
    flat2 = Cache(cfg, "T")
    flat2.restore(legacy.snapshot())
    assert flat2.fingerprint() == flat.fingerprint()
    legacy2 = LegacyCache(cfg, "T")
    legacy2.restore(flat.snapshot())
    assert legacy2.fingerprint() == legacy.fingerprint()


def test_tlb_snapshot_schema_stable_across_representations():
    cfg = TlbConfig(entries=32, miss_penalty=7)
    flat, legacy = Tlb(cfg), LegacyTlb(cfg)
    for i in range(500):
        flat.access((i * 4099) % (1 << 20))
        legacy.access((i * 4099) % (1 << 20))
    flat2 = Tlb(cfg)
    flat2.restore(legacy.snapshot())
    assert flat2.fingerprint() == legacy.fingerprint() == flat.fingerprint()
    legacy2 = LegacyTlb(cfg)
    legacy2.restore(flat.snapshot())
    assert legacy2.fingerprint() == flat.fingerprint()


# ---------------------------------------------------------------------------
# 4. next_event / probe_latency edge cases
# ---------------------------------------------------------------------------


def small_memory(l2_mshrs=4, prefetch=False):
    return MemoryConfig(
        l1i=CacheConfig(1024, 2, latency=2, mshrs=2),
        l1d=CacheConfig(1024, 2, latency=3, mshrs=4),
        l2=CacheConfig(8 * 1024, 4, latency=10, mshrs=l2_mshrs),
        l3=None,
        dram=DramConfig(latency=100, cycles_per_line=4.0),
        prefetcher=PrefetcherConfig(enabled=prefetch, distance=8, degree=2),
        itlb=TlbConfig(entries=64, miss_penalty=0),
        dtlb=TlbConfig(entries=64, miss_penalty=0),
    )


@pytest.mark.parametrize("fast_path", [True, False])
def test_next_event_empty_hierarchy_is_inf(fast_path):
    h = MemoryHierarchy(small_memory(), fast_path=fast_path)
    assert h.next_event(0) == math.inf
    assert h.next_event(10**9) == math.inf


@pytest.mark.parametrize("fast_path", [True, False])
def test_next_event_tracks_earliest_fill_and_expires(fast_path):
    """L3-less config: a demand miss schedules fills; the earliest one
    strictly after ``cycle`` is reported, and expired times are dropped
    without disturbing the outstanding maps' lazy-deletion semantics."""
    h = MemoryHierarchy(small_memory(), fast_path=fast_path)
    result = h.dload(0x4000, 0)
    first = h.next_event(0)
    assert 0 < first <= result.complete
    # Outstanding maps keep the in-flight entry even after the event
    # heap is drained past it (lazy deletion is load-bearing).
    line = h.l1d.line_of(0x4000)
    assert h.next_event(result.complete) == math.inf
    assert line in h._dchain[0].outstanding
    assert h.next_event(result.complete) == math.inf  # idempotent


@pytest.mark.parametrize("fast_path", [True, False])
def test_next_event_queued_mshr_completions_stay_ordered(fast_path):
    """With a single L2 MSHR, misses queue behind the busy slot; each
    later miss completes no earlier, and next_event always reports the
    earliest still-pending completion."""
    h = MemoryHierarchy(small_memory(l2_mshrs=1), fast_path=fast_path)
    results = [h.dload(0x10000 + i * 4096, 0) for i in range(4)]
    completes = [r.complete for r in results]
    assert completes == sorted(completes), "queued completions reordered"
    assert len(set(completes)) == len(completes), "MSHR queue collapsed"
    seen = []
    cursor = 0.0
    while True:
        nxt = h.next_event(cursor)
        if nxt == math.inf:
            break
        seen.append(nxt)
        cursor = nxt
    assert seen == sorted(seen)
    assert set(completes) <= set(seen)


@pytest.mark.parametrize("fast_path", [True, False])
def test_probe_latency_levels(fast_path):
    """probe_latency walks the chain without mutating: L1 hit at L1
    latency, L2 hit adds L2 latency, full miss adds DRAM, and a pending
    outstanding fill short-circuits to its completion time."""
    h = MemoryHierarchy(small_memory(), fast_path=fast_path)
    mem = h.config
    fp_before = h.fingerprint(0.0)

    # Full miss: every level + DRAM.
    miss = h.probe_latency(0x9000, 50.0)
    assert miss == 50.0 + mem.l1d.latency + mem.l2.latency + mem.dram.latency
    assert h.fingerprint(0.0) == fp_before, "probe mutated state"

    # L1 hit after a demand fill.
    h.dload(0x1000, 0)
    hit = h.probe_latency(0x1000, 1000.0)
    assert hit == 1000.0 + mem.l1d.latency

    # Fills are recorded at request time, so an in-flight demand line
    # already probes as present at L1 latency.
    inflight = h.dload(0x5000, 2000)
    line = h.l1d.line_of(0x5000)
    assert h.probe_latency(0x5000, 2001.0) == 2001.0 + mem.l1d.latency

    # Evicted while the fill is still pending: the outstanding map (not
    # the tags) carries the completion, and the probe returns it.
    h.l1d.invalidate(line)
    h.l2.invalidate(line)
    pending = h.probe_latency(0x5000, 2001.0)
    assert pending == inflight.complete

    # Expired outstanding entries are ignored (lazy deletion): once the
    # fill's time passes, the line simply re-misses to DRAM.
    settled = h.probe_latency(0x5000, inflight.complete + 1)
    assert settled == (
        inflight.complete + 1
        + mem.l1d.latency + mem.l2.latency + mem.dram.latency
    )


def test_probe_latency_perfect_dcache():
    h = MemoryHierarchy(small_memory(), perfect_dcache=True)
    assert h.probe_latency(0xABC0, 7.0) == 7.0 + h.config.l1d.latency
