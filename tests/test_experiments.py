"""Tests for the experiment harness (small trace sizes to stay fast)."""

import pytest

from repro.config.idealize import PERFECT_DCACHE, SINGLE_CYCLE_ALU
from repro.core.components import Component, FlopsComponent
from repro.core.multistage import Stage
from repro.experiments.error import (
    ComponentError,
    figure2_errors,
    summarize_errors,
)
from repro.experiments.flops_study import (
    figure4_differences,
    figure5_case,
    stack_difference,
)
from repro.experiments.idealization import (
    FIG3_CASES,
    fig3_case,
    run_study,
)
from repro.experiments.overhead import measure_overhead
from repro.experiments.runner import clear_cache, get_trace, run_case

N = 3000  # small traces: these tests exercise plumbing, not shapes


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def test_run_case_caches_results():
    a = run_case("exchange2", "tiny", instructions=N)
    b = run_case("exchange2", "tiny", instructions=N)
    assert a is b
    c = run_case("exchange2", "tiny", instructions=N, use_cache=False)
    assert c is not a
    assert c.cycles == a.cycles


def test_trace_shared_between_baseline_and_idealized():
    """Baseline and idealized runs must replay the identical program."""
    t1 = get_trace("mcf", N, 1)
    t2 = get_trace("mcf", N, 1)
    assert t1 is t2


def test_run_case_applies_idealization():
    base = run_case("imagick", "tiny", instructions=N)
    ideal = run_case("imagick", "tiny", instructions=N,
                     idealization=SINGLE_CYCLE_ALU)
    assert ideal.cycles < base.cycles


def test_run_study_deltas_and_coverage():
    study = run_study("imagick", "tiny", (SINGLE_CYCLE_ALU,),
                      instructions=N)
    delta = study.delta(SINGLE_CYCLE_ALU.name)
    assert delta > 0
    covered = study.covered(SINGLE_CYCLE_ALU)
    assert Component.ALU_LAT in covered


def test_fig3_case_registry():
    assert set(FIG3_CASES) == {"fig3a", "fig3b", "fig3c", "fig3d", "fig3e"}
    with pytest.raises(KeyError):
        fig3_case("fig3z")


def test_figure2_error_points_have_consistent_fields():
    errors = figure2_errors(
        "tiny", workloads=("mcf", "imagick"), instructions=N,
        threshold=0.05,
    )
    points = [p for plist in errors.values() for p in plist]
    assert points, "the filter should keep at least one component"
    for point in points:
        for stage in Stage:
            assert point.errors[stage] == pytest.approx(
                point.predicted[stage] - point.actual_delta
            )
        low = min(point.predicted.values())
        high = max(point.predicted.values())
        if low <= point.actual_delta <= high:
            assert point.within_bounds
        else:
            assert point.multistage_error != 0.0


def test_figure2_filter_drops_insignificant_components():
    # exchange2 is compute-bound: with a high threshold nothing survives.
    errors = figure2_errors("tiny", workloads=("exchange2",),
                            instructions=N, threshold=0.5)
    assert all(not points for points in errors.values())


def test_summarize_errors():
    point = ComponentError(
        workload="w", preset="p", component=Component.DCACHE,
        actual_delta=0.5,
        predicted={s: 0.6 for s in Stage},
        errors={s: 0.1 for s in Stage},
        multistage_error=0.1,
    )
    stats = summarize_errors([point])
    assert set(stats) == {"dispatch", "issue", "commit", "multi"}
    assert stats["multi"].median == pytest.approx(0.1)
    assert summarize_errors([]) == {}


def test_stack_difference_sums_to_zero():
    result = run_case("gemm-train-1760-knl", "knl", instructions=N)
    diff = stack_difference(result)
    assert sum(diff.values()) == pytest.approx(0.0, abs=1e-9)


def test_figure4_runs_one_group():
    diffs = figure4_differences(
        presets=("knl",), groups=("sgemm-train",), instructions=N)
    assert ("sgemm-train", "knl") in diffs
    values = diffs[("sgemm-train", "knl")]
    assert sum(values.values()) == pytest.approx(0.0, abs=1e-9)
    # The paper's headline: the FLOPS base is below the CPI base on KNL.
    assert values[FlopsComponent.BASE] < 0


def test_figure5_case_shapes():
    case = figure5_case(instructions=N)
    ipc = case.ipc_stack()
    assert sum(ipc.values()) == pytest.approx(4.0)
    flops = case.flops_stack()
    peak = 2 * 2 * 16 * 2.1 * 26
    assert sum(flops.values()) == pytest.approx(peak)
    # Perfect Dcache shrinks the FLOPS mem component.
    assert case.flops_stack(idealized=True).get(
        FlopsComponent.MEM, 0.0
    ) <= case.flops_stack().get(FlopsComponent.MEM, 0.0) + 1e-9


def test_overhead_measurement():
    result = measure_overhead("exchange2", "tiny", instructions=2000,
                              repeats=1)
    assert result.seconds_with > 0
    assert result.seconds_without > 0
    assert result.cycles > 0
    # overhead_fraction is finite and plausible (pure-Python accountants
    # cost more than Sniper's C++, but not orders of magnitude).
    assert -0.5 < result.overhead_fraction < 5.0


def test_table1_rows_structure():
    from repro.experiments.idealization import table1_rows

    rows = table1_rows(instructions=3000)
    assert len(rows) == 8  # 2 machines x (baseline + 3 idealizations)
    apps = {row["app"] for row in rows}
    assert apps == {"mcf on KNL", "mcf on BDW"}
    baselines = [r for r in rows if r["diff"] is None]
    assert len(baselines) == 2
    for row in rows:
        if row["diff"] is not None:
            base = next(r for r in baselines if r["app"] == row["app"])
            assert row["diff"] == pytest.approx(base["cpi"] - row["cpi"])


def test_all_single_idealizations():
    from repro.experiments.idealization import all_single_idealizations

    ideals = all_single_idealizations()
    assert len(ideals) == 4
    names = {i.name for i in ideals}
    assert names == {"perfect-icache", "perfect-dcache", "perfect-bpred",
                     "1-cycle-alu"}
