"""Tests for the synthetic workload generators."""

import pytest

from repro.isa.uops import UopClass
from repro.workloads.base import (
    RESERVED_INT_REGS,
    WorkloadSpec,
    permutation_chain,
)
from repro.workloads.deepbench import (
    DEEPBENCH_CONFIGS,
    conv_configs,
    conv_trace,
    sgemm_configs,
    sgemm_trace,
)
from repro.workloads.registry import (
    SPEC_LIKE_NAMES,
    WORKLOADS,
    get_workload,
    make_trace,
)

import random


def test_permutation_chain_is_single_cycle():
    """Walking next[] visits every node exactly once before repeating."""
    chain = permutation_chain(random.Random(7), 256)
    seen = set()
    cur = 0
    for _ in range(256):
        assert cur not in seen
        seen.add(cur)
        cur = chain[cur]
    assert cur == 0
    assert len(seen) == 256


@pytest.mark.parametrize("name", SPEC_LIKE_NAMES)
def test_generators_are_deterministic(name):
    a = make_trace(name, 2000, seed=5)
    b = make_trace(name, 2000, seed=5)
    assert len(a) == len(b)
    assert all(
        x.pc == y.pc and x.uops == y.uops
        for x, y in zip(a.instructions, b.instructions)
    )


@pytest.mark.parametrize("name", SPEC_LIKE_NAMES)
def test_generators_respect_length(name):
    prog = make_trace(name, 3000)
    # Generators may overshoot by at most one loop iteration.
    assert 3000 <= len(prog) <= 3000 + 200


@pytest.mark.parametrize("name", SPEC_LIKE_NAMES)
def test_generators_avoid_reserved_registers(name):
    """Integer registers 24-31 belong to the wrong-path synthesizer."""
    prog = make_trace(name, 2000)
    reserved = set(RESERVED_INT_REGS)
    for instr in prog:
        for uop in instr.uops:
            assert uop.dst not in reserved
            assert not (set(uop.srcs) & reserved)


def test_seed_changes_trace():
    a = make_trace("mcf", 2000, seed=1)
    b = make_trace("mcf", 2000, seed=2)
    addrs_a = [u.addr for i in a for u in i.uops if u.addr >= 0]
    addrs_b = [u.addr for i in b for u in i.uops if u.addr >= 0]
    assert addrs_a != addrs_b


def test_mcf_has_dependent_chase_loads():
    prog = make_trace("mcf", 2000)
    loads = [u for i in prog for u in i.uops if u.uclass is UopClass.LOAD]
    assert len(loads) > 100
    # The chase load reads the pointer register.
    assert any(1 in u.srcs for u in loads)


def test_cactus_code_footprint_exceeds_l1i():
    prog = make_trace("cactus", 25_000)  # one full code sweep
    lines = {i.pc >> 6 for i in prog}
    assert len(lines) * 64 > 32 * 1024  # touches > 32 KB worth of I-lines


def test_bwaves_streams_sequentially():
    prog = make_trace("bwaves", 4000)
    addrs = [u.addr for i in prog for u in i.uops
             if u.uclass is UopClass.LOAD]
    deltas = [b - a for a, b in zip(addrs, addrs[1:])]
    # Dominantly forward-streaming.
    assert sum(1 for d in deltas if d > 0) > 0.9 * len(deltas)


def test_povray_contains_microcoded_instructions():
    prog = make_trace("povray", 3000)
    assert any(i.microcoded for i in prog)


def test_imagick_has_multicycle_chains():
    prog = make_trace("imagick", 2000)
    muls = sum(1 for i in prog for u in i.uops
               if u.uclass is UopClass.MUL)
    assert muls > 100


def test_registry_covers_spec_and_deepbench():
    assert len(SPEC_LIKE_NAMES) >= 10
    assert len(WORKLOADS) > len(SPEC_LIKE_NAMES)
    with pytest.raises(KeyError):
        get_workload("not-a-workload")


def test_registry_rejects_tiny_traces():
    with pytest.raises(ValueError):
        make_trace("mcf", 10)


def test_deepbench_config_table():
    assert len(sgemm_configs()) + len(conv_configs()) == len(
        DEEPBENCH_CONFIGS
    )
    for config in DEEPBENCH_CONFIGS:
        assert config.flops == 2 * config.m * config.n * config.k


def test_sgemm_knl_style_uses_memory_operand_fmas():
    """KNL JIT: FMAs split into load + FMA micro-op pairs."""
    config = sgemm_configs()[0]
    prog = sgemm_trace(config, "knl", 2000)
    split = sum(
        1 for i in prog
        if len(i.uops) == 2
        and i.uops[0].uclass is UopClass.LOAD
        and i.uops[1].uclass is UopClass.FMA
    )
    assert split > 100


def test_sgemm_skx_style_uses_broadcasts():
    config = sgemm_configs()[0]
    prog = sgemm_trace(config, "skx", 2000)
    broadcasts = sum(1 for i in prog for u in i.uops
                     if u.uclass is UopClass.BROADCAST)
    assert broadcasts > 10
    # Register-form FMAs read the broadcast register.
    fmas = [u for i in prog for u in i.uops if u.uclass is UopClass.FMA]
    assert all(39 in u.srcs for u in fmas)


def test_sgemm_rejects_unknown_style():
    with pytest.raises(ValueError):
        sgemm_trace(sgemm_configs()[0], "avx2")


def test_sgemm_knl_has_higher_vfp_density_than_skx():
    config = sgemm_configs()[0]
    knl = sgemm_trace(config, "knl", 3000).summary()["vfp_uop_fraction"]
    skx = sgemm_trace(config, "skx", 3000).summary()["vfp_uop_fraction"]
    assert skx < 0.55  # SKX style dilutes VFP with loads/ALU
    assert knl < 0.55  # memory-operand split halves the FMA density


def test_conv_phases_differ():
    config = conv_configs()[0]
    fwd = conv_trace(config, "fwd", 3000).summary()
    bwd_f = conv_trace(config, "bwd_f", 3000).summary()
    assert fwd["vfp_uops"] != bwd_f["vfp_uops"]
    with pytest.raises(ValueError):
        conv_trace(config, "sideways", 1000)


def test_conv_includes_sync_yields():
    config = conv_configs()[0]
    prog = conv_trace(config, "fwd", 9000)
    assert any(i.yield_cycles > 0 for i in prog)


def test_conv_masked_edges():
    config = next(c for c in conv_configs() if c.n % 16)
    prog = conv_trace(config, "fwd", 3000)
    fma_lanes = {u.lanes for i in prog for u in i.uops
                 if u.uclass is UopClass.FMA}
    assert len(fma_lanes) > 1  # full and masked vectors


def test_workload_spec_make_validates():
    spec = WorkloadSpec("x", "y", "z", lambda n, s: None)
    with pytest.raises(ValueError):
        spec.make(50)
