"""Unit tests for the Table III FLOPS accountant."""

import pytest
from hypothesis import given, strategies as st

from repro.core.components import FlopsComponent
from repro.core.flops import FlopsAccountant
from repro.core.observation import CycleObservation


class FakeProducer:
    def __init__(self, is_load):
        self.is_load = is_load


def make_acct(k=2, v=16):
    return FlopsAccountant(vector_units=k, vector_lanes=v)


def full_fma_cycle(k=2, v=16):
    """k unmasked FMAs: peak FLOPS."""
    return CycleObservation(
        flops_issued=2 * k * v, n_vfp_issued=k,
        non_fma_loss_lanes=0, masked_lanes=0,
    )


def test_peak_cycle_is_all_base():
    acct = make_acct()
    acct.observe(full_fma_cycle())
    stack = acct.finalize(1)
    assert stack.get(FlopsComponent.BASE) == pytest.approx(1.0)
    assert stack.total() == pytest.approx(1.0)


def test_non_fma_loss():
    """A vector add does 1 op/lane where an FMA would do 2 (Table III
    line 5)."""
    acct = make_acct(k=2, v=16)
    acct.observe(CycleObservation(
        flops_issued=2 * 16,           # two FP_ADDs, full width
        n_vfp_issued=2,
        non_fma_loss_lanes=2 * 16,     # (2-1) * 16 per uop
        masked_lanes=0,
    ))
    stack = acct.finalize(1)
    assert stack.get(FlopsComponent.BASE) == pytest.approx(0.5)
    assert stack.get(FlopsComponent.NON_FMA) == pytest.approx(0.5)
    assert stack.total() == pytest.approx(1.0)


def test_masking_loss():
    """Masked-out lanes lose 2 potential ops each (Table III line 7)."""
    acct = make_acct(k=2, v=16)
    acct.observe(CycleObservation(
        flops_issued=2 * (2 * 8),      # two FMAs, half masked
        n_vfp_issued=2,
        non_fma_loss_lanes=0,
        masked_lanes=2 * 8,
    ))
    stack = acct.finalize(1)
    assert stack.get(FlopsComponent.BASE) == pytest.approx(0.5)
    assert stack.get(FlopsComponent.MASK) == pytest.approx(0.5)
    assert stack.total() == pytest.approx(1.0)


def test_empty_slots_frontend_when_no_vfp_available():
    acct = make_acct()
    acct.observe(CycleObservation(n_vfp_issued=0, vfp_in_rs=False))
    stack = acct.finalize(1)
    assert stack.get(FlopsComponent.FRONTEND) == pytest.approx(1.0)


def test_empty_slots_non_vfp_when_vu_occupied():
    acct = make_acct()
    acct.observe(CycleObservation(
        n_vfp_issued=0, vfp_in_rs=True, vu_used_by_non_vfp=True))
    stack = acct.finalize(1)
    assert stack.get(FlopsComponent.NON_VFP) == pytest.approx(1.0)


def test_empty_slots_mem_when_waiting_on_load():
    acct = make_acct()
    acct.observe(CycleObservation(
        n_vfp_issued=0, vfp_in_rs=True,
        oldest_vfp_producer=FakeProducer(is_load=True)))
    stack = acct.finalize(1)
    assert stack.get(FlopsComponent.MEM) == pytest.approx(1.0)


def test_empty_slots_depend_when_waiting_on_non_load():
    acct = make_acct()
    acct.observe(CycleObservation(
        n_vfp_issued=0, vfp_in_rs=True,
        oldest_vfp_producer=FakeProducer(is_load=False)))
    stack = acct.finalize(1)
    assert stack.get(FlopsComponent.DEPEND) == pytest.approx(1.0)


def test_empty_slots_structural_is_other():
    acct = make_acct()
    acct.observe(CycleObservation(
        n_vfp_issued=0, vfp_in_rs=True, vfp_structural=True))
    stack = acct.finalize(1)
    assert stack.get(FlopsComponent.OTHER) == pytest.approx(1.0)


def test_unscheduled_cycle():
    acct = make_acct()
    acct.observe(CycleObservation(unscheduled=True))
    stack = acct.finalize(1)
    assert stack.get(FlopsComponent.UNSCHED) == pytest.approx(1.0)


def test_partial_vfp_issue_mixes_base_and_cause():
    """One FMA of two possible slots: half base, half cause."""
    acct = make_acct(k=2, v=16)
    acct.observe(CycleObservation(
        flops_issued=2 * 16, n_vfp_issued=1,
        vfp_in_rs=True, oldest_vfp_producer=FakeProducer(is_load=True)))
    stack = acct.finalize(1)
    assert stack.get(FlopsComponent.BASE) == pytest.approx(0.5)
    assert stack.get(FlopsComponent.MEM) == pytest.approx(0.5)


def test_flops_tally():
    acct = make_acct()
    acct.observe(full_fma_cycle())
    acct.observe(full_fma_cycle())
    stack = acct.finalize(2)
    assert stack.flops == pytest.approx(2 * 64)


def test_rejects_degenerate_configuration():
    with pytest.raises(ValueError):
        FlopsAccountant(vector_units=0, vector_lanes=16)


@st.composite
def flops_observations(draw, k=2, v=16):
    n_vfp = draw(st.integers(0, k))
    per_uop = []
    for _ in range(n_vfp):
        ops = draw(st.sampled_from([1, 2]))
        lanes = draw(st.integers(0, v))
        per_uop.append((ops, lanes))
    return CycleObservation(
        unscheduled=draw(st.booleans()) if n_vfp == 0 else False,
        flops_issued=sum(o * l for o, l in per_uop),
        n_vfp_issued=n_vfp,
        non_fma_loss_lanes=sum((2 - o) * l for o, l in per_uop),
        masked_lanes=sum(v - l for _, l in per_uop),
        vfp_in_rs=draw(st.booleans()),
        vu_used_by_non_vfp=draw(st.booleans()),
        oldest_vfp_producer=draw(st.sampled_from(
            [None, FakeProducer(True), FakeProducer(False)])),
        vfp_structural=draw(st.booleans()),
    )


@given(st.lists(flops_observations(), min_size=1, max_size=100))
def test_flops_stack_sums_to_cycles(obs_list):
    """Table III decomposes every cycle exactly into components."""
    acct = make_acct()
    for obs in obs_list:
        acct.observe(obs)
    stack = acct.finalize(len(obs_list))
    assert stack.total() == pytest.approx(len(obs_list))
