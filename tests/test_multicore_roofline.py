"""Tests for socket-level aggregation and the roofline helper."""

import pytest

from repro.config.presets import skylake_x, tiny_core
from repro.core.components import FlopsComponent
from repro.core.roofline import roofline_point
from repro.experiments.multicore import simulate_socket
from repro.experiments.runner import run_case


def test_socket_aggregation_shapes():
    result = simulate_socket("exchange2", tiny_core(), threads=3,
                             instructions=2000, homogeneous=True)
    assert result.threads == 3
    assert len(result.per_thread) == 3
    # Component-per-component average: totals average too.
    expected = sum(r.report.commit.total()
                   for r in result.per_thread) / 3
    assert result.commit.total() == pytest.approx(expected)


def test_socket_homogeneity_of_regular_kernel():
    """Paper premise: 'all threads show homogeneous behavior'."""
    result = simulate_socket("exchange2", tiny_core(), threads=3,
                             instructions=2000, homogeneous=True)
    assert result.homogeneity() < 0.05


def test_socket_aggregate_matches_single_thread_shape():
    single = simulate_socket("imagick", tiny_core(), threads=1,
                             instructions=2000, homogeneous=True)
    multi = simulate_socket("imagick", tiny_core(), threads=3,
                            instructions=2000, homogeneous=True)
    assert multi.cpi == pytest.approx(single.cpi, rel=0.15)


def test_socket_flops_scales_with_threads():
    config = skylake_x()
    two = simulate_socket("gemm-train-1760-skx", config, threads=2,
                          instructions=2000, homogeneous=True)
    four = simulate_socket("gemm-train-1760-skx", config, threads=4,
                           instructions=2000, homogeneous=True)
    assert four.socket_gflops() == pytest.approx(
        2 * two.socket_gflops(), rel=0.1
    )


def test_socket_requires_threads():
    with pytest.raises(ValueError):
        simulate_socket("mcf", tiny_core(), threads=0)


def test_roofline_point_compute_kernel():
    config = skylake_x()
    result = run_case("gemm-train-1760-skx", "skx", instructions=12_000,
                      warmup_fraction=0.0)
    point = roofline_point(result, config)
    # The blocked sgemm kernel reuses its L1-resident panel: high
    # intensity, compute bound.
    assert point.arithmetic_intensity > 3
    assert point.compute_bound
    assert 0 < point.achieved_gflops <= point.peak_gflops
    assert 0 < point.roof_fraction <= 1.0


def test_roofline_limiters_explain_the_gap():
    config = skylake_x()
    result = run_case("conv-vgg-2-fwd", "skx", instructions=6000,
                      warmup_fraction=0.0)
    point = roofline_point(result, config)
    limiter = point.dominant_limiter()
    assert limiter is not None and limiter is not FlopsComponent.BASE


def test_roofline_requires_flops_stack():
    from repro.pipeline.result import SimResult

    fake = SimResult(name="x", config_name="y", cycles=1,
                     committed_uops=1, committed_instrs=1, report=None)
    with pytest.raises(ValueError):
        roofline_point(fake, skylake_x())
