"""Tests for machine configurations and idealizations."""

import pytest

from repro.config.cores import CoreConfig
from repro.config.idealize import (
    IDEALIZATIONS,
    PERFECT_BPRED,
    PERFECT_DCACHE,
    PERFECT_ICACHE,
    SINGLE_CYCLE_ALU,
    idealize,
)
from repro.config.presets import PRESETS, get_preset
from repro.core.components import Component
from repro.isa.uops import UopClass


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_presets_construct(name):
    config = get_preset(name)
    assert config.memory is not None
    assert config.accounting_width == min(
        config.dispatch_width, config.issue_width, config.commit_width
    )


def test_get_preset_unknown():
    with pytest.raises(KeyError):
        get_preset("alder-lake")


def test_bdw_knl_widths_match_paper():
    """Sec. IV: BDW is 4-wide, KNL is 2-wide out-of-order."""
    assert get_preset("bdw").dispatch_width == 4
    assert get_preset("knl").dispatch_width == 2
    assert get_preset("skx").dispatch_width == 4


def test_avx512_machines_have_16_lanes():
    assert get_preset("knl").vector_lanes == 16
    assert get_preset("skx").vector_lanes == 16
    assert get_preset("bdw").vector_lanes == 8  # AVX2


def test_peak_flops_formula():
    config = get_preset("skx")
    assert config.peak_flops_per_cycle == 2 * 2 * 16  # 2*k*v
    assert config.socket_peak_gflops == pytest.approx(
        64 * config.frequency_ghz * 26
    )


def test_latency_of_single_cycle_alu_idealization():
    config = idealize(get_preset("knl"), SINGLE_CYCLE_ALU)
    for uclass in (UopClass.MUL, UopClass.DIV, UopClass.FP_MUL,
                   UopClass.FMA):
        assert config.latency_of(uclass) == 1
    # Memory and branches keep their semantics.
    assert config.latency_of(UopClass.STORE) == 1
    baseline = get_preset("knl")
    assert baseline.latency_of(UopClass.FP_MUL) > 1


def test_idealization_apply_sets_flag_and_renames():
    config = PERFECT_DCACHE.apply(get_preset("bdw"))
    assert config.perfect_dcache
    assert "perfect-dcache" in config.name
    assert not config.perfect_icache


def test_idealization_composition():
    combined = PERFECT_BPRED | PERFECT_DCACHE
    config = combined.apply(get_preset("bdw"))
    assert config.perfect_bpred and config.perfect_dcache
    assert set(combined.targets) == {Component.BPRED, Component.DCACHE}


def test_idealizations_registry_targets():
    for component, ideal in IDEALIZATIONS.items():
        assert component in ideal.targets


def test_idealize_does_not_mutate_original():
    baseline = get_preset("bdw")
    idealize(baseline, PERFECT_ICACHE)
    assert not baseline.perfect_icache


def test_core_config_validation():
    with pytest.raises(ValueError):
        CoreConfig(name="bad", dispatch_width=0)
    with pytest.raises(ValueError):
        CoreConfig(name="bad", rob_size=1, dispatch_width=4)


def test_knl_has_no_l3():
    assert get_preset("knl").memory.l3 is None
    assert get_preset("bdw").memory.l3 is not None
