"""Unit tests for width normalization (Sec. III-A carry scheme)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.width import WidthNormalizer


def test_simple_fraction():
    norm = WidthNormalizer(4)
    assert norm.fraction(2) == pytest.approx(0.5)


def test_full_width_is_one():
    norm = WidthNormalizer(4)
    assert norm.fraction(4) == 1.0
    assert norm.carry == 0.0


def test_overwide_cycle_carries_excess():
    """A wider stage processing more than W transfers the excess."""
    norm = WidthNormalizer(4)
    assert norm.fraction(6) == 1.0
    assert norm.carry == pytest.approx(0.5)
    # The carried half-cycle tops up the next, emptier cycle.
    assert norm.fraction(2) == pytest.approx(1.0)
    assert norm.carry == 0.0


def test_carry_accumulates_across_cycles():
    norm = WidthNormalizer(2)
    assert norm.fraction(4) == 1.0   # carry 1.0
    assert norm.fraction(4) == 1.0   # carry 2.0
    assert norm.fraction(0) == 1.0   # carry 1.0
    assert norm.fraction(0) == 1.0   # carry 0.0
    assert norm.fraction(0) == 0.0


def test_zero_width_rejected():
    with pytest.raises(ValueError):
        WidthNormalizer(0)


def test_negative_count_rejected():
    norm = WidthNormalizer(4)
    with pytest.raises(ValueError):
        norm.fraction(-1)


def test_reset():
    norm = WidthNormalizer(2)
    norm.fraction(6)
    norm.reset()
    assert norm.carry == 0.0


@given(st.lists(st.integers(min_value=0, max_value=8), min_size=1,
                max_size=200))
def test_total_work_is_conserved(counts):
    """Sum of emitted fractions + final carry == total n / W exactly."""
    norm = WidthNormalizer(4)
    total_f = sum(norm.fraction(n) for n in counts)
    assert total_f + norm.carry == pytest.approx(sum(counts) / 4)


@given(st.lists(st.integers(min_value=0, max_value=16), min_size=1,
                max_size=200))
def test_fraction_always_in_unit_interval(counts):
    norm = WidthNormalizer(4)
    for n in counts:
        f = norm.fraction(n)
        assert 0.0 <= f <= 1.0
