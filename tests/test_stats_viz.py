"""Tests for the stats helpers and the ASCII/CSV presentation layer."""

import pytest

from repro.core.components import Component, FlopsComponent
from repro.core.stack import CpiStack, FlopsStack
from repro.stats.descriptive import BoxStats, boxplot_stats, mean, quantile
from repro.viz.ascii import (
    render_boxplot_table,
    render_cpi_stack,
    render_flops_stack,
    render_table,
)
from repro.viz.export import rows_to_csv, write_csv


def test_boxplot_five_numbers():
    box = boxplot_stats([1.0, 2.0, 3.0, 4.0, 5.0])
    assert box.low == 1.0
    assert box.median == 3.0
    assert box.high == 5.0
    assert box.q1 == 2.0
    assert box.q3 == 4.0
    assert box.n == 5
    assert box.iqr == pytest.approx(2.0)


def test_boxplot_single_value():
    box = boxplot_stats([7.0])
    assert box.low == box.median == box.high == 7.0


def test_boxplot_rejects_empty():
    with pytest.raises(ValueError):
        boxplot_stats([])


def test_mean_and_quantile():
    assert mean([1.0, 3.0]) == 2.0
    assert quantile([0.0, 10.0], 0.5) == 5.0
    with pytest.raises(ValueError):
        quantile([1.0], 1.5)
    with pytest.raises(ValueError):
        mean([])


def test_render_table_alignment_and_none():
    text = render_table([
        {"name": "a", "value": 1.23456, "extra": None},
        {"name": "bb", "value": 2.0, "extra": "x"},
    ])
    lines = text.splitlines()
    assert len(lines) == 4  # header, divider, two rows
    assert "1.235" in text
    assert "-" in lines[2]  # None rendered as '-'


def test_render_table_empty():
    assert render_table([]) == "(no rows)"


def test_render_cpi_stack_contains_components():
    stack = CpiStack(stage="dispatch", cycles=100.0, instructions=100,
                     name="demo")
    stack.add(Component.BASE, 60.0)
    stack.add(Component.DCACHE, 40.0)
    text = render_cpi_stack(stack)
    assert "base" in text and "dcache" in text
    assert "CPI=1.000" in text


def test_render_flops_stack_reports_peak_fraction():
    stack = FlopsStack(cycles=100.0, peak_per_cycle=64.0, name="kernel")
    stack.add(FlopsComponent.BASE, 50.0)
    stack.add(FlopsComponent.MEM, 50.0)
    text = render_flops_stack(stack, frequency_ghz=1.0)
    assert "50% of peak" in text
    assert "mem" in text


def test_render_boxplot_table():
    stats = {"dispatch": BoxStats(-1.0, -0.5, 0.0, 0.5, 1.0, 10)}
    text = render_boxplot_table(stats, title="Errors")
    assert "Errors" in text
    assert "dispatch" in text


def test_csv_roundtrip(tmp_path):
    rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
    text = rows_to_csv(rows)
    assert text.splitlines()[0] == "a,b"
    path = write_csv(tmp_path / "out" / "data.csv", rows)
    assert path.read_text() == text


def test_csv_empty():
    assert rows_to_csv([]) == ""
