"""The parallel batch scheduler and the persistent result cache.

The hard guarantees pinned here:

* parallel execution is bit-identical to serial execution (every stack
  counter, cycle count and commit count — under both fork and spawn
  start methods);
* a warm disk cache serves a whole experiment with zero simulator
  invocations (asserted through the telemetry counter hook);
* corrupted or stale-schema cache entries degrade to misses, never
  crashes;
* ``clear_cache()`` also purges the on-disk store.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle

import pytest

from repro.config.idealize import PERFECT_DCACHE
from repro.experiments import runner
from repro.experiments.cache import TELEMETRY, CaseSpec, get_disk_cache
from repro.experiments.error import figure2_errors
from repro.experiments.parallel import resolve_jobs, run_cases

N = 2500


@pytest.fixture(autouse=True)
def _fresh_harness():
    runner.clear_cache()
    TELEMETRY.reset()
    yield
    runner.clear_cache()
    TELEMETRY.reset()


def _sweep_specs() -> list[CaseSpec]:
    """A small Fig. 2-shaped sweep: baselines plus an idealized rerun."""
    specs = [
        CaseSpec(workload=name, preset="tiny", instructions=N)
        for name in ("mcf", "imagick", "exchange2")
    ]
    specs.append(
        CaseSpec(
            workload="mcf", preset="tiny", instructions=N,
            idealization=PERFECT_DCACHE,
        )
    )
    return specs


def _comparable(result) -> dict:
    """Everything that must be bitwise identical (host timing excluded)."""
    payload = result.to_dict()
    payload.pop("wall_seconds")
    return payload


# ---------------------------------------------------------------------------
# jobs resolution


def test_resolve_jobs_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(3) == 3
    assert resolve_jobs(None) == (os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs(None) == 5
    assert resolve_jobs(2) == 2, "explicit argument beats the env var"
    monkeypatch.setenv("REPRO_JOBS", "zero")
    with pytest.raises(ValueError):
        resolve_jobs(None)
    with pytest.raises(ValueError):
        resolve_jobs(0)
    with pytest.raises(ValueError):
        resolve_jobs(-2)
    monkeypatch.setenv("REPRO_JOBS", "0")
    with pytest.raises(ValueError):
        resolve_jobs(None)


def test_resolve_jobs_auto(monkeypatch):
    expected = max(1, (os.cpu_count() or 1) - 1)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs("auto") == expected
    assert resolve_jobs(" AUTO ") == expected, "case/whitespace insensitive"
    monkeypatch.setenv("REPRO_JOBS", "auto")
    assert resolve_jobs(None) == expected
    assert resolve_jobs(2) == 2, "explicit argument beats env auto"
    monkeypatch.setenv("REPRO_JOBS", "Auto")
    assert resolve_jobs(None) == expected


def test_resolve_jobs_auto_floors_at_one(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    assert resolve_jobs("auto") == 1
    monkeypatch.setattr(os, "cpu_count", lambda: None)
    assert resolve_jobs("auto") == 1


def test_resolve_jobs_rejects_other_strings(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    with pytest.raises(ValueError, match="integer or 'auto'"):
        resolve_jobs("fast")
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        resolve_jobs(None)


def test_case_spec_needs_exactly_one_machine():
    with pytest.raises(ValueError):
        CaseSpec(workload="mcf")
    from repro.config.presets import tiny_core

    with pytest.raises(ValueError):
        CaseSpec(workload="mcf", preset="tiny", config=tiny_core())


def test_case_key_is_stable_and_discriminating():
    a = CaseSpec(workload="mcf", preset="tiny", instructions=N)
    b = CaseSpec(workload="mcf", preset="tiny", instructions=N)
    assert a.key() == b.key()
    assert a.key() != CaseSpec(
        workload="mcf", preset="tiny", instructions=N + 1
    ).key()
    assert a.key() != CaseSpec(
        workload="mcf", preset="tiny", instructions=N, seed=2
    ).key()
    assert a.key() != CaseSpec(
        workload="mcf", preset="tiny", instructions=N,
        idealization=PERFECT_DCACHE,
    ).key()
    # A preset name and the equivalent explicit config are the same case.
    from repro.config.presets import tiny_core

    explicit = CaseSpec(workload="mcf", config=tiny_core(), instructions=N)
    assert a.key() == explicit.key()


# ---------------------------------------------------------------------------
# batching, dedup, determinism


def test_duplicate_specs_share_one_simulation():
    spec = CaseSpec(workload="exchange2", preset="tiny", instructions=N)
    results = run_cases([spec, spec, spec], jobs=1)
    assert TELEMETRY.sim_invocations == 1
    assert results[0] is results[1] is results[2]
    from repro.experiments.parallel import LAST_BATCH as batch

    assert batch is not None
    assert batch.cases == 3
    assert batch.unique == 1
    assert batch.simulated == 1


def test_batch_matches_run_case_exactly():
    spec = CaseSpec(workload="mcf", preset="tiny", instructions=N)
    (batched,) = run_cases([spec], jobs=1)
    runner.clear_cache()
    direct = runner.run_case("mcf", "tiny", instructions=N)
    assert _comparable(batched) == _comparable(direct)


@pytest.mark.parametrize(
    "method",
    [
        pytest.param("fork"),
        pytest.param("spawn", marks=pytest.mark.slow),
    ],
)
def test_parallel_is_bitwise_identical_to_serial(method):
    if method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"start method {method!r} unavailable here")
    specs = _sweep_specs()
    serial = run_cases(specs, jobs=1)
    assert TELEMETRY.sim_invocations == len(specs)
    runner.clear_cache()
    TELEMETRY.reset()
    parallel = run_cases(specs, jobs=4, mp_start_method=method)
    assert TELEMETRY.sim_invocations == len(specs)
    for serial_result, parallel_result in zip(serial, parallel):
        assert _comparable(serial_result) == _comparable(parallel_result)


def test_second_run_served_entirely_from_disk():
    specs = _sweep_specs()
    first = run_cases(specs, jobs=1)
    # Drop the in-process memo but keep the disk store: a fresh session.
    runner.clear_cache(disk=False)
    TELEMETRY.reset()
    second = run_cases(specs, jobs=4)
    assert TELEMETRY.sim_invocations == 0, (
        "warm-cache rerun must not invoke the simulator"
    )
    assert TELEMETRY.disk_hits == len(specs)
    for a, b in zip(first, second):
        # Disk-served results are fully identical, wall clock included.
        assert a.to_dict() == b.to_dict()


def test_figure2_sweep_serial_vs_parallel_and_warm():
    """End-to-end: the real Fig. 2 experiment, serial vs jobs=4 vs warm."""
    kwargs = dict(
        workloads=("mcf", "imagick"), instructions=N, threshold=0.05
    )
    serial = figure2_errors("tiny", jobs=1, **kwargs)
    runner.clear_cache()
    parallel = figure2_errors("tiny", jobs=4, **kwargs)
    assert serial.keys() == parallel.keys()
    for component in serial:
        a_points, b_points = serial[component], parallel[component]
        assert len(a_points) == len(b_points)
        for a, b in zip(a_points, b_points):
            assert a.workload == b.workload
            assert a.actual_delta == b.actual_delta, "bitwise, not approx"
            assert a.predicted == b.predicted
            assert a.errors == b.errors
            assert a.multistage_error == b.multistage_error
    # Warm rerun: everything from disk, zero simulator invocations.
    runner.clear_cache(disk=False)
    TELEMETRY.reset()
    warm = figure2_errors("tiny", jobs=4, **kwargs)
    assert TELEMETRY.sim_invocations == 0
    for component in serial:
        for a, b in zip(serial[component], warm[component]):
            assert a.errors == b.errors


# ---------------------------------------------------------------------------
# disk cache robustness


def test_clear_cache_purges_disk_store():
    run_cases(_sweep_specs(), jobs=1)
    cache = get_disk_cache()
    assert len(cache.entries()) == len(_sweep_specs())
    removed = runner.clear_cache()
    assert removed == len(_sweep_specs())
    assert cache.entries() == []


def test_truncated_entry_is_a_miss_and_recomputed():
    spec = CaseSpec(workload="exchange2", preset="tiny", instructions=N)
    (first,) = run_cases([spec], jobs=1)
    cache = get_disk_cache()
    path = cache.path_for(spec.key())
    assert path.is_file()
    payload = path.read_bytes()
    path.write_bytes(payload[: len(payload) // 2])  # truncated pickle
    runner.clear_cache(disk=False)
    TELEMETRY.reset()
    (again,) = run_cases([spec], jobs=1)
    assert TELEMETRY.corrupt_entries == 1
    assert TELEMETRY.sim_invocations == 1, "recomputed, not crashed"
    assert _comparable(first) == _comparable(again)
    # The bad entry was replaced by a good one.
    runner.clear_cache(disk=False)
    TELEMETRY.reset()
    run_cases([spec], jobs=1)
    assert TELEMETRY.sim_invocations == 0


def test_garbage_entry_is_a_miss():
    spec = CaseSpec(workload="exchange2", preset="tiny", instructions=N)
    cache = get_disk_cache()
    path = cache.path_for(spec.key())
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"not a pickle at all")
    assert cache.get(spec.key()) is None
    assert not path.exists(), "corrupt entries are evicted"


def test_stale_schema_entry_is_a_miss():
    spec = CaseSpec(workload="exchange2", preset="tiny", instructions=N)
    (result,) = run_cases([spec], jobs=1)
    cache = get_disk_cache()
    path = cache.path_for(spec.key())
    payload = {"schema": -1, "spec": {}, "result": result.to_dict()}
    path.write_bytes(pickle.dumps(payload))
    runner.clear_cache(disk=False)
    TELEMETRY.reset()
    run_cases([spec], jobs=1)
    assert TELEMETRY.sim_invocations == 1, "stale schema must recompute"


def test_use_cache_false_bypasses_store():
    spec = CaseSpec(workload="exchange2", preset="tiny", instructions=N)
    run_cases([spec], jobs=1, use_cache=False)
    assert get_disk_cache().entries() == []
    assert TELEMETRY.sim_invocations == 1
    run_cases([spec], jobs=1, use_cache=False)
    assert TELEMETRY.sim_invocations == 2


def test_cache_stats_reports_footprint():
    run_cases(_sweep_specs(), jobs=1)
    stats = get_disk_cache().stats()
    assert stats["entries"] == len(_sweep_specs())
    assert stats["bytes"] > 0
    assert stats["sim_invocations"] == len(_sweep_specs())


def test_multicore_socket_batches_threads():
    from repro.config.presets import tiny_core
    from repro.experiments.multicore import simulate_socket

    config = tiny_core()
    serial = simulate_socket(
        "gemm-train-1760-knl", config, threads=3, instructions=N, jobs=1
    )
    runner.clear_cache()
    parallel = simulate_socket(
        "gemm-train-1760-knl", config, threads=3, instructions=N, jobs=3
    )
    assert serial.commit.counters == parallel.commit.counters
    assert serial.cpi == parallel.cpi
    assert [r.cycles for r in serial.per_thread] == [
        r.cycles for r in parallel.per_thread
    ]
