"""Crash-safe checkpoint/resume: file format, bitwise-identical restart,
and supervisor-level crash recovery.

The contract under test has three layers:

1. **File format** — checkpoints are magic + checksummed JSON header +
   one pickle payload, written atomically; any torn, bit-flipped or
   stale-schema file is detected as :class:`CheckpointError`, never
   unpickled.
2. **Bitwise-identical restart** — a simulation interrupted at a
   checkpoint and resumed from disk must finish with a ``SimResult``
   identical (everything but host wall time) to an uninterrupted run, in
   every wrong-path mode, with and without warmup, and with the
   fast-forward/replay engines on or off.  The differential matrix here
   enforces that.
3. **Supervised recovery** — a case whose worker is SIGKILLed mid-run is
   retried *from its newest checkpoint* (not from scratch), a corrupt
   checkpoint is evicted down the recovery ladder (older file, else
   fresh start — never an error, never wrong data), and a case given up
   on records how far its checkpoints provably got it.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.config.presets import broadwell, knights_landing
from repro.core.wrongpath import WrongPathMode
from repro.experiments import parallel, runner, supervisor
from repro.experiments.cache import TELEMETRY, CaseSpec
from repro.experiments.parallel import run_cases
from repro.experiments.runner import clear_cache, lookup_cached
from repro.pipeline import checkpoint as ckpt
from repro.pipeline.checkpoint import CheckpointError
from repro.pipeline.core import CoreSimulator
from repro.workloads.registry import make_trace

N = 2_000

#: Snapshot cadence used throughout: small enough that every test trace
#: crosses several due points before finishing.
INTERVAL = 300


def _start_method() -> str:
    """Pool start method for these tests (CI runs them under spawn too)."""
    return os.environ.get("REPRO_TEST_START_METHOD", "fork")


@pytest.fixture(autouse=True)
def _fresh_harness():
    clear_cache()
    TELEMETRY.reset()
    supervisor.clear_failures()
    supervisor.fault_plan = None
    ckpt.clear_checkpoints()
    yield
    supervisor.fault_plan = None
    supervisor.clear_failures()
    clear_cache()
    TELEMETRY.reset()
    ckpt.clear_checkpoints()


def _spec(seed: int = 1) -> CaseSpec:
    return CaseSpec(workload="mcf", preset="tiny", instructions=N, seed=seed)


def _comparable(result) -> dict:
    """Everything that must survive a resume bit-for-bit.

    Only host wall time is excluded — unlike the replay/fast-forward
    differential tests, the engines' skip counters are part of the
    checkpointed state and must match exactly.
    """
    payload = result.to_dict()
    payload.pop("wall_seconds")
    return payload


class _Interrupted(Exception):
    """Raised by the test hook to kill a run at a chosen checkpoint."""


def _run_interrupted_then_resumed(
    trace, config, *, key: str, kills: int = 2, interval: int = INTERVAL,
    **kwargs,
):
    """Run until the ``kills``-th checkpoint, die, resume from disk.

    Returns the resumed run's result.  If the simulation finishes before
    enough checkpoints land (a replay jump can cross several due points
    at once), the newest surviving snapshot is resumed anyway — restoring
    mid-flight state must be exact either way.
    """
    sim = CoreSimulator(trace, config, **kwargs)
    seen = 0

    def hook(path, instrs):
        nonlocal seen
        seen += 1
        if seen >= kills:
            raise _Interrupted

    try:
        sim.run(
            checkpoint_interval=interval, checkpoint_key=key,
            on_checkpoint=hook,
        )
    except _Interrupted:
        pass
    files = ckpt.list_case_checkpoints(key)
    assert files, "the interrupted run never wrote a checkpoint"
    return CoreSimulator.resume(files[-1]).run()


# ---------------------------------------------------------------------------
# file format
# ---------------------------------------------------------------------------


def test_save_load_roundtrip(tmp_path):
    path = tmp_path / "case" / "ckpt_000000000400.rck"
    meta = {"case": "mcf", "committed_instrs": 400}
    ckpt.save_checkpoint(path, b"\x00payload bytes\xff", meta)
    payload, loaded_meta = ckpt.load_checkpoint(path)
    assert payload == b"\x00payload bytes\xff"
    assert loaded_meta == meta
    assert not list(path.parent.glob("*.tmp*")), "atomic write leaves no tmp"


def test_load_rejects_missing_and_bad_magic(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read"):
        ckpt.load_checkpoint(tmp_path / "nope.rck")
    bad = tmp_path / "bad.rck"
    bad.write_bytes(b"definitely not a checkpoint file")
    with pytest.raises(CheckpointError, match="bad magic"):
        ckpt.load_checkpoint(bad)


def test_load_rejects_truncated_header(tmp_path):
    torn = tmp_path / "torn.rck"
    torn.write_bytes(ckpt.MAGIC + b'{"schema": 1')  # no closing newline
    with pytest.raises(CheckpointError, match="truncated"):
        ckpt.load_checkpoint(torn)


def test_load_rejects_wrong_schema(tmp_path):
    path = tmp_path / "old.rck"
    ckpt.save_checkpoint(path, b"data", {})
    blob = path.read_bytes()
    newline = blob.find(b"\n", len(ckpt.MAGIC))
    header = json.loads(blob[len(ckpt.MAGIC):newline])
    header["schema"] = ckpt.CHECKPOINT_SCHEMA + 999
    path.write_bytes(
        ckpt.MAGIC + json.dumps(header).encode() + b"\n" + blob[newline + 1:]
    )
    with pytest.raises(CheckpointError, match="schema"):
        ckpt.load_checkpoint(path)


def test_load_rejects_truncated_payload(tmp_path):
    path = tmp_path / "short.rck"
    ckpt.save_checkpoint(path, b"x" * 100, {})
    blob = path.read_bytes()
    path.write_bytes(blob[:-40])
    with pytest.raises(CheckpointError, match="truncated"):
        ckpt.load_checkpoint(path)


def test_load_rejects_flipped_payload_byte(tmp_path):
    path = tmp_path / "flip.rck"
    ckpt.save_checkpoint(path, b"y" * 100, {})
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises(CheckpointError, match="SHA-256"):
        ckpt.load_checkpoint(path)


def test_interval_env_parsing(monkeypatch):
    monkeypatch.delenv(ckpt.ENV_CHECKPOINT_INTERVAL, raising=False)
    assert ckpt.checkpoint_interval_default() is None
    monkeypatch.setenv(ckpt.ENV_CHECKPOINT_INTERVAL, "")
    assert ckpt.checkpoint_interval_default() is None
    monkeypatch.setenv(ckpt.ENV_CHECKPOINT_INTERVAL, "0")
    assert ckpt.checkpoint_interval_default() is None
    monkeypatch.setenv(ckpt.ENV_CHECKPOINT_INTERVAL, "-4")
    assert ckpt.checkpoint_interval_default() is None
    monkeypatch.setenv(ckpt.ENV_CHECKPOINT_INTERVAL, "2500")
    assert ckpt.checkpoint_interval_default() == 2500
    monkeypatch.setenv(ckpt.ENV_CHECKPOINT_INTERVAL, "soon")
    with pytest.raises(CheckpointError) as excinfo:
        ckpt.checkpoint_interval_default()
    assert ckpt.ENV_CHECKPOINT_INTERVAL in str(excinfo.value)
    assert "'soon'" in str(excinfo.value)


# ---------------------------------------------------------------------------
# per-case store and the recovery ladder
# ---------------------------------------------------------------------------


def test_case_store_ordering_and_progress():
    key = "storetest"
    for instrs in (900, 300, 600):
        ckpt.save_checkpoint(
            ckpt.checkpoint_path(key, instrs), b"p", {"n": instrs}
        )
    files = ckpt.list_case_checkpoints(key)
    assert [f.name for f in files] == [
        "ckpt_000000000300.rck",
        "ckpt_000000000600.rck",
        "ckpt_000000000900.rck",
    ], "oldest (least progress) first"
    assert ckpt.newest_progress(key) == 900
    assert ckpt.newest_progress("no-such-case") is None


def test_recovery_ladder_evicts_corrupt_newest():
    key = "laddertest"
    ckpt.save_checkpoint(ckpt.checkpoint_path(key, 300), b"older", {"n": 300})
    newest = ckpt.checkpoint_path(key, 600)
    ckpt.save_checkpoint(newest, b"newer", {"n": 600})
    blob = bytearray(newest.read_bytes())
    blob[-1] ^= 0xFF
    newest.write_bytes(bytes(blob))

    found = ckpt.latest_valid_checkpoint(key)
    assert found is not None
    path, payload, meta = found
    assert payload == b"older" and meta == {"n": 300}
    assert not newest.exists(), "the corrupt rung is evicted on the way down"


def test_recovery_ladder_all_corrupt_means_fresh_start():
    key = "allbadtest"
    for instrs in (300, 600):
        path = ckpt.checkpoint_path(key, instrs)
        ckpt.save_checkpoint(path, b"z" * 50, {})
        path.write_bytes(path.read_bytes()[:-10])
    assert ckpt.latest_valid_checkpoint(key) is None
    assert ckpt.list_case_checkpoints(key) == [], "every bad file evicted"


def test_clear_checkpoints_sweeps_temp_files():
    key = "cleartest"
    ckpt.save_checkpoint(ckpt.checkpoint_path(key, 300), b"p", {})
    orphan = ckpt.checkpoint_dir_for(key) / "ckpt_000000000600.rck.tmp999"
    orphan.write_bytes(b"half-written")
    assert ckpt.clear_checkpoints(key) == 1
    assert not orphan.exists()
    assert not ckpt.checkpoint_dir_for(key).exists()


# ---------------------------------------------------------------------------
# differential matrix: interrupt + resume == uninterrupted, bit for bit
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", list(WrongPathMode))
@pytest.mark.parametrize("warmup", [0, 600])
def test_resume_bitwise_identical_across_modes(mode, warmup):
    trace = make_trace("mcf", N, 1)
    config = broadwell()
    reference = CoreSimulator(
        trace, config, mode=mode, warmup_instructions=warmup
    ).run()
    resumed = _run_interrupted_then_resumed(
        trace, config, key=f"modes-{mode.value}-{warmup}",
        mode=mode, warmup_instructions=warmup,
    )
    assert _comparable(resumed) == _comparable(reference)


@pytest.mark.parametrize("fast_forward", [False, True])
@pytest.mark.parametrize("replay", [False, True])
def test_resume_bitwise_identical_with_skip_engines(fast_forward, replay):
    """The quiescent fast-forward and steady-state replay engines carry
    mid-flight state (recorded windows, skip counters) that must survive
    the snapshot — including their telemetry, which ``_comparable`` here
    deliberately does *not* exclude."""
    trace = make_trace("spin", N, 1)
    config = broadwell()
    reference = CoreSimulator(
        trace, config, fast_forward=fast_forward, replay=replay
    ).run()
    resumed = _run_interrupted_then_resumed(
        trace, config, key=f"skip-{fast_forward}-{replay}",
        fast_forward=fast_forward, replay=replay,
    )
    assert _comparable(resumed) == _comparable(reference)


@pytest.mark.parametrize("workload,preset", [
    ("exchange2", knights_landing),
    ("spin", knights_landing),
    ("bwaves", broadwell),
])
def test_resume_bitwise_identical_across_machines(workload, preset):
    trace = make_trace(workload, N, 1)
    config = preset()
    reference = CoreSimulator(
        trace, config, warmup_instructions=500
    ).run()
    resumed = _run_interrupted_then_resumed(
        trace, config, key=f"mach-{workload}-{config.name}",
        warmup_instructions=500,
    )
    assert _comparable(resumed) == _comparable(reference)


def test_resume_from_inside_warmup_region():
    """A checkpoint taken before the measured region starts must restore
    the warmup bookkeeping exactly (measure-start anchors included)."""
    trace = make_trace("mcf", N, 1)
    config = broadwell()
    reference = CoreSimulator(
        trace, config, warmup_instructions=1500
    ).run()
    resumed = _run_interrupted_then_resumed(
        trace, config, key="mid-warmup", kills=1,
        warmup_instructions=1500,
    )
    assert _comparable(resumed) == _comparable(reference)


@pytest.mark.parametrize("kwargs,key", [
    ({"topdown": True}, "variant-topdown"),
    ({"accounting": False}, "variant-noacct"),
    ({"legacy_issue_scan": True}, "variant-legacy"),
])
def test_resume_bitwise_identical_simulator_variants(kwargs, key):
    trace = make_trace("bwaves", N, 1)
    config = broadwell()
    reference = CoreSimulator(trace, config, **kwargs).run()
    resumed = _run_interrupted_then_resumed(
        trace, config, key=key, **kwargs
    )
    assert _comparable(resumed) == _comparable(reference)


def test_checkpointing_itself_does_not_perturb_the_run():
    """Snapshots are pure observers: a run that checkpoints every 300
    instructions to completion matches a run that never checkpoints."""
    trace = make_trace("mcf", N, 1)
    config = broadwell()
    plain = CoreSimulator(trace, config).run()
    observed = CoreSimulator(trace, config).run(
        checkpoint_interval=INTERVAL, checkpoint_key="observer"
    )
    assert _comparable(observed) == _comparable(plain)
    assert ckpt.list_case_checkpoints("observer"), "snapshots were written"


# ---------------------------------------------------------------------------
# runner-level resume
# ---------------------------------------------------------------------------


class _StopSeeding(Exception):
    pass


def _seed_checkpoints(spec: CaseSpec, *, count: int = 1,
                      interval: int = 400) -> list:
    """Run ``spec`` until ``count`` checkpoints land, then die — leaving
    realistic on-disk snapshots for a recovery test to find."""
    seen = 0

    def hook(path, instrs):
        nonlocal seen
        seen += 1
        if seen >= count:
            raise _StopSeeding

    with pytest.raises(_StopSeeding):
        runner.execute_spec_checkpointed(spec, interval, hook)
    files = ckpt.list_case_checkpoints(spec.key())
    assert len(files) >= count
    return files


def test_execute_spec_checkpointed_resumes_from_disk():
    spec = _spec()
    clean = runner.execute_spec(spec)
    ckpt.clear_checkpoints(spec.key())
    TELEMETRY.reset()

    _seed_checkpoints(spec, count=1)
    TELEMETRY.reset()
    result, resumed_from = runner.execute_spec_checkpointed(spec, 400)
    assert resumed_from is not None and resumed_from >= 400
    assert _comparable(result) == _comparable(clean)
    assert TELEMETRY.resume_events == 1
    assert TELEMETRY.resumed_instructions == resumed_from


def test_execute_spec_without_interval_never_touches_the_store():
    spec = _spec()
    result, resumed_from = runner.execute_spec_checkpointed(spec, None)
    assert resumed_from is None
    assert ckpt.list_case_checkpoints(spec.key()) == []
    assert TELEMETRY.resume_events == 0
    assert result is not None


# ---------------------------------------------------------------------------
# supervised crash recovery
# ---------------------------------------------------------------------------


def test_sigkill_mid_case_recovers_by_resuming_pool():
    specs = [_spec(seed) for seed in (1, 2)]
    clean = [_comparable(r) for r in run_cases(specs, jobs=1)]
    clear_cache()
    TELEMETRY.reset()
    supervisor.fault_plan = {
        specs[0].label(): {"kind": "sigkill_mid_case", "times": 1}
    }
    results = run_cases(
        specs, jobs=2, mp_start_method=_start_method(), retry_backoff=0,
        checkpoint_interval=400,
    )
    assert [_comparable(r) for r in results] == clean, (
        "a SIGKILLed-then-resumed case must produce the identical result"
    )
    stats = parallel.LAST_BATCH
    assert stats.failures == 0
    assert stats.resumes >= 1, "the retry resumed instead of restarting"
    assert stats.resumed_instructions >= 400
    assert TELEMETRY.resume_events >= 1, (
        "the parent re-records resumes its dead worker could not report"
    )
    assert "resumed" in stats.summary()
    for spec in specs:
        assert ckpt.list_case_checkpoints(spec.key()) == [], (
            "checkpoints are dead weight once the result is published"
        )
    assert not supervisor.failed_keys()


def test_sigkill_mid_case_recovers_by_resuming_serial():
    spec = _spec()
    clean, = run_cases([spec], jobs=1)
    clear_cache()
    TELEMETRY.reset()
    supervisor.fault_plan = {"*": {"kind": "sigkill_mid_case", "times": 1}}
    result, = run_cases(
        [spec], jobs=1, retry_backoff=0, checkpoint_interval=400
    )
    assert _comparable(result) == _comparable(clean)
    stats = parallel.LAST_BATCH
    assert stats.resumes == 1 and stats.failures == 0
    assert TELEMETRY.resume_events == 1
    assert ckpt.list_case_checkpoints(spec.key()) == []


def test_sigkill_env_interval_reaches_recovery(monkeypatch):
    """The cadence travels by environment (pool workers inherit it), so
    recovery must also work when nothing passes an explicit interval."""
    spec = _spec()
    clean, = run_cases([spec], jobs=1)
    clear_cache()
    TELEMETRY.reset()
    monkeypatch.setenv(ckpt.ENV_CHECKPOINT_INTERVAL, "400")
    supervisor.fault_plan = {"*": {"kind": "sigkill_mid_case", "times": 1}}
    result, = run_cases([spec], jobs=1, retry_backoff=0)
    assert _comparable(result) == _comparable(clean)
    assert parallel.LAST_BATCH.resumes == 1


def test_sigkill_without_checkpointing_restarts_fresh():
    spec = _spec()
    clean, = run_cases([spec], jobs=1)
    clear_cache()
    TELEMETRY.reset()
    supervisor.fault_plan = {"*": {"kind": "sigkill_mid_case", "times": 1}}
    result, = run_cases([spec], jobs=1, retry_backoff=0)
    assert _comparable(result) == _comparable(clean)
    stats = parallel.LAST_BATCH
    assert stats.retries >= 1 and stats.resumes == 0, (
        "no checkpoint ever landed, so the retry starts over"
    )


def test_given_up_case_records_checkpoint_progress():
    """Every SIGKILLed attempt still moves the case forward through its
    own checkpoint; the final FailureReport must record how far."""
    spec = _spec()
    supervisor.fault_plan = {
        "*": {"kind": "sigkill_mid_case", "times": 99}
    }
    results = run_cases(
        [spec], jobs=1, keep_going=True, max_attempts=3, retry_backoff=0,
        checkpoint_interval=400,
    )
    assert results == [None]
    report = parallel.LAST_BATCH.failure_reports[spec.key()]
    # Attempt 0 checkpoints at ~400; attempt 1 resumes there and reaches
    # ~800; attempt 2 reaches ~1200 before dying for good.
    assert report.resumed_from is not None
    assert 3 * 400 <= report.resumed_from < N
    record = supervisor.load_failure(spec.key())
    assert record is not None
    assert record["resumed_from"] == report.resumed_from
    assert ckpt.list_case_checkpoints(spec.key()), (
        "a failed case keeps its checkpoints as the next run's head start"
    )


def test_truncated_checkpoint_falls_back_to_older_snapshot():
    spec = _spec()
    clean, = run_cases([spec], jobs=1)
    clear_cache()
    ckpt.clear_checkpoints(spec.key())
    _seed_checkpoints(spec, count=2)
    TELEMETRY.reset()
    supervisor.fault_plan = {
        "*": {"kind": "truncate_checkpoint", "times": 1}
    }
    result, = run_cases(
        [spec], jobs=1, retry_backoff=0, checkpoint_interval=400
    )
    assert _comparable(result) == _comparable(clean), (
        "a torn newest checkpoint must never corrupt the result"
    )
    stats = parallel.LAST_BATCH
    assert stats.failures == 0
    assert stats.resumes == 1, "recovery stepped down to the older snapshot"


def test_truncated_only_checkpoint_falls_back_to_fresh_start():
    spec = _spec()
    clean, = run_cases([spec], jobs=1)
    clear_cache()
    ckpt.clear_checkpoints(spec.key())
    _seed_checkpoints(spec, count=1)
    TELEMETRY.reset()
    supervisor.fault_plan = {
        "*": {"kind": "truncate_checkpoint", "times": 1}
    }
    result, = run_cases(
        [spec], jobs=1, retry_backoff=0, checkpoint_interval=400
    )
    assert _comparable(result) == _comparable(clean)
    stats = parallel.LAST_BATCH
    assert stats.failures == 0
    assert stats.resumes == 0, (
        "the only snapshot was torn: evict it and start fresh, no error"
    )


# ---------------------------------------------------------------------------
# fault-plan validation (actionable errors)
# ---------------------------------------------------------------------------


def test_fault_plan_unknown_kind_is_actionable():
    supervisor.fault_plan = {"*": {"kind": "meteor-strike"}}
    with pytest.raises(ValueError) as excinfo:
        supervisor.get_fault_plan()
    message = str(excinfo.value)
    assert "meteor-strike" in message
    assert "sigkill_mid_case" in message, "known kinds are listed"


def test_fault_plan_non_dict_entry_is_actionable():
    supervisor.fault_plan = {"*": "crash"}
    with pytest.raises(ValueError, match="fault object"):
        supervisor.get_fault_plan()


def test_fault_plan_non_dict_top_level_is_actionable():
    supervisor.fault_plan = ["crash"]
    with pytest.raises(ValueError, match="JSON object"):
        supervisor.get_fault_plan()


def test_fault_plan_env_json_error_names_position(monkeypatch):
    broken = '{"mcf@tiny": {"kind": "crash", }}'
    monkeypatch.setenv(supervisor.ENV_FAULT_PLAN, broken)
    with pytest.raises(ValueError) as excinfo:
        supervisor.get_fault_plan()
    message = str(excinfo.value)
    assert supervisor.ENV_FAULT_PLAN in message
    assert "position" in message
    assert "crash" in message, "the offending neighbourhood is quoted"


def test_fault_plan_env_unknown_kind_names_source(monkeypatch):
    monkeypatch.setenv(
        supervisor.ENV_FAULT_PLAN, json.dumps({"*": {"kind": "sigill"}})
    )
    with pytest.raises(ValueError) as excinfo:
        supervisor.get_fault_plan()
    assert supervisor.ENV_FAULT_PLAN in str(excinfo.value)


# ---------------------------------------------------------------------------
# failure-report store: durability and retention
# ---------------------------------------------------------------------------


def _report(key: str, label: str = "mcf@tiny") -> supervisor.FailureReport:
    return supervisor.FailureReport(
        key=key, label=label, classification="crash",
        attempts=[supervisor.Attempt(
            attempt=0, classification="crash", error="boom",
            elapsed_seconds=0.1, executor="serial",
        )],
        spec={"workload": "mcf"},
    )


def test_save_failure_is_atomic_and_leaves_no_temp_files():
    report = _report("aa" * 32)
    supervisor.save_failure(report)
    root = supervisor.failures_dir()
    assert not list(root.glob("*.tmp*"))
    loaded = supervisor.load_failure(report.key)
    assert loaded is not None and loaded["resumed_from"] is None


def test_failure_store_caps_to_newest(monkeypatch):
    monkeypatch.setenv(supervisor.ENV_MAX_FAILURES, "3")
    keys = [f"{chr(ord('a') + i) * 2}" * 32 for i in range(5)]
    for i, key in enumerate(keys):
        supervisor.save_failure(_report(key))
        # Distinct mtimes (filesystem resolution can tie fast writes).
        os.utime(supervisor.failure_path(key), times=(1000 + i, 1000 + i))
    survivors = {r["key"] for r in supervisor.list_failures()}
    assert survivors == set(keys[-3:]), "only the newest cap survives"


def test_list_failures_newest_first():
    first, second = _report("bb" * 32, label="older"), \
        _report("cc" * 32, label="newer")
    supervisor.save_failure(first)
    supervisor.save_failure(second)
    os.utime(supervisor.failure_path(first.key), times=(1000.0, 1000.0))
    os.utime(supervisor.failure_path(second.key), times=(2000.0, 2000.0))
    # list_failures orders by the record's own save stamp:
    path = supervisor.failure_path(first.key)
    record = json.loads(path.read_text())
    record["saved_unix"] -= 10_000.0
    path.write_text(json.dumps(record))
    labels = [r["label"] for r in supervisor.list_failures()]
    assert labels == ["newer", "older"]


def test_max_failures_env_resolution(monkeypatch):
    monkeypatch.delenv(supervisor.ENV_MAX_FAILURES, raising=False)
    assert supervisor.max_failures() == supervisor.DEFAULT_MAX_FAILURES
    monkeypatch.setenv(supervisor.ENV_MAX_FAILURES, "7")
    assert supervisor.max_failures() == 7
    monkeypatch.setenv(supervisor.ENV_MAX_FAILURES, "0")
    assert supervisor.max_failures() == 0, "zero disables eviction"
    monkeypatch.setenv(supervisor.ENV_MAX_FAILURES, "lots")
    with pytest.raises(ValueError) as excinfo:
        supervisor.max_failures()
    assert supervisor.ENV_MAX_FAILURES in str(excinfo.value)


# ---------------------------------------------------------------------------
# cancellation: Ctrl-C with checkpointing active
# ---------------------------------------------------------------------------


def _assert_no_orphan_files():
    root = ckpt.checkpoint_root()
    if root.is_dir():
        assert not list(root.rglob("*.tmp*")), "no torn snapshot survives"


def test_keyboard_interrupt_serial_preserves_published_work():
    done, interrupted = _spec(1), _spec(2)
    supervisor.fault_plan = {
        interrupted.key()[:16]: {"kind": "interrupt", "times": 1}
    }
    with pytest.raises(KeyboardInterrupt):
        run_cases(
            [done, interrupted], jobs=1, retry_backoff=0,
            checkpoint_interval=INTERVAL,
        )
    assert lookup_cached(done.key()) is not None, (
        "work published before Ctrl-C survives it"
    )
    assert ckpt.list_case_checkpoints(done.key()) == [], (
        "the published case's checkpoints were already cleared"
    )
    _assert_no_orphan_files()
    # The harness stays usable: the finished case comes from cache.
    supervisor.fault_plan = None
    TELEMETRY.reset()
    results = run_cases([done, interrupted], jobs=1)
    assert all(r is not None for r in results)
    assert TELEMETRY.sim_invocations == 1


def test_keyboard_interrupt_pool_cancels_and_preserves_published_work():
    done, interrupted = _spec(1), _spec(2)
    supervisor.fault_plan = {
        interrupted.key()[:16]: {"kind": "interrupt", "times": 1}
    }
    with pytest.raises(KeyboardInterrupt):
        run_cases(
            [done, interrupted], jobs=2, mp_start_method=_start_method(),
            retry_backoff=0, checkpoint_interval=INTERVAL,
        )
    # Deterministic collection order: the healthy case was published
    # before the interrupted case's future re-raised Ctrl-C, and the
    # pool was shut down with its pending futures cancelled.
    assert lookup_cached(done.key()) is not None
    assert ckpt.list_case_checkpoints(done.key()) == []
    _assert_no_orphan_files()
    supervisor.fault_plan = None
    TELEMETRY.reset()
    results = run_cases([done, interrupted], jobs=1)
    assert all(r is not None for r in results)
    assert TELEMETRY.sim_invocations == 1


# ---------------------------------------------------------------------------
# spawn parity (CI also runs this module's recovery under spawn)
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_sigkill_recovery_under_spawn():
    specs = [_spec(seed) for seed in (1, 2)]
    clean = [_comparable(r) for r in run_cases(specs, jobs=1)]
    clear_cache()
    TELEMETRY.reset()
    supervisor.fault_plan = {
        specs[0].label(): {"kind": "sigkill_mid_case", "times": 1}
    }
    results = run_cases(
        specs, jobs=2, mp_start_method="spawn", retry_backoff=0,
        checkpoint_interval=400,
    )
    assert [_comparable(r) for r in results] == clean
    assert parallel.LAST_BATCH.resumes >= 1
    assert parallel.LAST_BATCH.failures == 0
