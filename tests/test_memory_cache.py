"""Unit tests for the set-associative cache."""

import pytest

from repro.config.cores import CacheConfig
from repro.memory.cache import Cache


def make_cache(size=1024, assoc=2, line=64):
    return Cache(CacheConfig(size, assoc, line_bytes=line, latency=2),
                 "test")


def test_cold_miss_then_hit():
    cache = make_cache()
    assert not cache.lookup(5)
    cache.insert(5)
    assert cache.lookup(5)
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_lru_eviction_order():
    cache = make_cache(size=256, assoc=2)  # 2 sets, 2 ways
    sets = cache.config.num_sets
    a, b, c = 0, sets, 2 * sets  # all map to set 0
    cache.insert(a)
    cache.insert(b)
    evicted = cache.insert(c)  # evicts a (oldest)
    assert evicted is not None and evicted.line == a
    assert cache.probe(b) and cache.probe(c)
    assert not cache.probe(a)


def test_hit_refreshes_lru():
    cache = make_cache(size=256, assoc=2)
    sets = cache.config.num_sets
    a, b, c = 0, sets, 2 * sets
    cache.insert(a)
    cache.insert(b)
    cache.lookup(a)          # a becomes MRU
    evicted = cache.insert(c)
    assert evicted.line == b  # b was LRU


def test_dirty_bit_tracking():
    cache = make_cache(size=256, assoc=1)
    cache.insert(0, dirty=True)
    evicted = cache.insert(cache.config.num_sets)  # same set, evicts 0
    assert evicted.dirty
    assert cache.stats.dirty_evictions == 1


def test_mark_dirty():
    cache = make_cache(size=256, assoc=1)
    cache.insert(0)
    cache.mark_dirty(0)
    evicted = cache.insert(cache.config.num_sets)
    assert evicted.dirty


def test_reinsert_preserves_dirty():
    cache = make_cache()
    cache.insert(3, dirty=True)
    cache.insert(3, dirty=False)
    cache.mark_dirty(3)  # no-op; already dirty
    # force eviction of line 3 by filling its set
    sets = cache.config.num_sets
    evicted = None
    way = 1
    while evicted is None or evicted.line != 3:
        evicted = cache.insert(3 + way * sets)
        way += 1
    assert evicted.dirty


def test_probe_does_not_disturb_state():
    cache = make_cache()
    cache.insert(7)
    hits_before = cache.stats.hits
    assert cache.probe(7)
    assert not cache.probe(8)
    assert cache.stats.hits == hits_before


def test_invalidate():
    cache = make_cache()
    cache.insert(9)
    cache.invalidate(9)
    assert not cache.probe(9)


def test_occupancy():
    cache = make_cache()
    for line in range(5):
        cache.insert(line)
    assert cache.occupancy == 5


def test_occupancy_running_count_matches_sets():
    """The incremental count stays equal to the true set contents through
    re-inserts, evictions and (double) invalidations."""
    cache = make_cache(size=512, assoc=2)  # 4 sets: evictions happen fast
    cache.insert(3)
    cache.insert(3, dirty=True)  # re-insert: no growth
    assert cache.occupancy == 1
    for line in range(20):  # far past capacity: evictions replace victims
        cache.insert(line)
    assert cache.occupancy == sum(len(s) for s in cache.fingerprint())
    assert cache.occupancy == 512 // 64
    cache.invalidate(19)
    cache.invalidate(19)  # double-invalidate must not double-count
    cache.invalidate(12345)  # never present
    assert cache.occupancy == sum(len(s) for s in cache.fingerprint())


def test_miss_rate():
    cache = make_cache()
    cache.lookup(1)   # miss
    cache.insert(1)
    cache.lookup(1)   # hit
    assert cache.stats.miss_rate == pytest.approx(0.5)


def test_capacity_never_exceeded():
    cache = make_cache(size=512, assoc=2)
    for line in range(100):
        cache.insert(line)
    assert cache.occupancy <= 512 // 64


def test_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(1000, 3, line_bytes=64)  # not a multiple
    with pytest.raises(ValueError):
        CacheConfig(64 * 3 * 2, 2, line_bytes=64)  # 3 sets: not pow2
