"""The paper's structural invariants, verified on real simulations.

These are the load-bearing properties of the reproduction:

1. every stage's stack sums exactly to the cycle count (so CPI stacks sum
   to CPI),
2. the base component is (nearly) identical across stages in exact mode
   ("the base component for all stacks is the same", Sec. III-A),
3. frontend components never grow downstream (dispatch >= issue >= commit)
   and backend components never shrink downstream,
4. the FLOPS stack also sums to the cycle count.

They are checked over every registry workload and over hypothesis-generated
random programs.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.components import (
    BACKEND_COMPONENTS,
    FRONTEND_COMPONENTS,
    Component,
)
from repro.config.presets import tiny_core
from repro.isa import decoder as asm
from repro.pipeline.core import simulate
from repro.workloads.base import DATA_BASE, TraceBuilder
from repro.workloads.registry import SPEC_LIKE_NAMES, make_trace

#: Tolerance for float accumulation over ~1e5 cycles.
EPS = 1e-6


def check_invariants(result, *, base_equal=True):
    report = result.report
    cycles = result.cycles
    stacks = (report.dispatch, report.issue, report.commit)
    for stack in stacks:
        assert stack.total() == pytest.approx(cycles, rel=1e-9, abs=1e-3), (
            stack.stage
        )
    if base_equal and cycles:
        bases = [s.get(Component.BASE) for s in stacks]
        # Equal up to residual width-carry and issue-burst wobble (the
        # wider issue stage caps f at 1, deferring base cycles it cannot
        # always recover before a stall).
        assert max(bases) - min(bases) <= 0.02 * cycles + 1.0
    for component in FRONTEND_COMPONENTS:
        i = report.issue.get(component)
        c = report.commit.get(component)
        # Issue >= commit is structural: an empty ROB implies an RS empty
        # of correct-path work with the same frontend condition.  (The
        # dispatch >= issue direction of Sec. III-A can invert when a
        # window-full stall coincides with a frontend stall: Table II has
        # dispatch blame the ROB head while the issue stage, with an empty
        # RS, blames the frontend — see DESIGN.md.)
        assert i >= c - 2.0, f"frontend ordering {component}"
    if report.flops is not None:
        assert report.flops.total() == pytest.approx(
            cycles, rel=1e-9, abs=1e-3
        )


@pytest.mark.parametrize("workload", SPEC_LIKE_NAMES)
def test_invariants_on_spec_like_workloads(workload, bdw):
    result = simulate(make_trace(workload, 4000), bdw)
    check_invariants(result)


@pytest.mark.parametrize("workload", ["mcf", "povray", "imagick", "leela"])
def test_invariants_on_knl(workload, knl):
    result = simulate(make_trace(workload, 4000), knl)
    check_invariants(result)


@pytest.mark.parametrize(
    "kernel", ["gemm-train-1760-knl", "gemm-train-1760-skx",
               "conv-vgg-2-fwd", "conv-vgg-2-bwd_f", "conv-vgg-2-bwd_d"]
)
def test_invariants_on_deepbench(kernel, knl):
    from repro.config.presets import skylake_x

    config = knl if kernel.endswith("knl") else skylake_x()
    result = simulate(make_trace(kernel, 4000), config)
    check_invariants(result)


# --- random-program fuzzing ---------------------------------------------------


@st.composite
def random_programs(draw):
    """Random but well-formed trace: mixed classes, dependences, branches,
    loads/stores over a small footprint, occasional microcode and yields."""
    rng_seed = draw(st.integers(0, 2**16))
    length = draw(st.integers(50, 400))
    b = TraceBuilder("fuzz", seed=rng_seed)
    rng = b.rng
    loop_pc = b.pc
    for i in range(length):
        kind = rng.randrange(10)
        reg = 2 + rng.randrange(8)
        src = 2 + rng.randrange(8)
        if kind < 3:
            b.emit(asm.alu(b.pc, dst=reg, srcs=(src,)))
        elif kind == 3:
            b.emit(asm.mul(b.pc, dst=reg, srcs=(src,)))
        elif kind == 4:
            addr = DATA_BASE + rng.randrange(256) * 64
            b.emit(asm.load(b.pc, dst=reg, addr=addr, addr_srcs=(src,)))
        elif kind == 5:
            addr = DATA_BASE + rng.randrange(256) * 64
            b.emit(asm.store(b.pc, src=src, addr=addr))
        elif kind == 6:
            b.emit(asm.fma(b.pc, dst=40 + rng.randrange(4),
                           srcs=(40 + rng.randrange(4), 33),
                           lanes=rng.randrange(1, 5), width_lanes=4))
        elif kind == 7:
            b.emit(asm.branch(b.pc, taken=rng.random() < 0.5,
                              target=loop_pc, srcs=(src,)))
            loop_pc = b.pc  # occasionally move the loop head
        elif kind == 8:
            b.emit(asm.microcoded_fp(b.pc, dst=44, srcs=(32,), n_uops=3))
        else:
            if rng.random() < 0.2:
                b.emit(asm.sync_yield(b.pc, rng.randrange(1, 30)))
            else:
                b.emit(asm.vec_int(b.pc, dst=52, srcs=(52,), lanes=4,
                                   width_lanes=4))
    return b.program()


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_programs())
def test_invariants_on_random_programs(prog):
    result = simulate(prog, tiny_core())
    check_invariants(result)
    assert result.committed_instrs == len(prog)
    assert result.committed_uops == prog.uop_count


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_programs(), st.sampled_from(["simple", "speculative"]))
def test_invariants_in_hardware_modes(prog, mode_name):
    from repro.core.wrongpath import WrongPathMode

    result = simulate(prog, tiny_core(), mode=WrongPathMode(mode_name))
    report = result.report
    for stack in (report.dispatch, report.issue, report.commit):
        assert stack.total() == pytest.approx(result.cycles, abs=1e-3)
