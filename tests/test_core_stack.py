"""Unit tests for the stack containers."""

import pytest

from repro.core.components import Component, FlopsComponent
from repro.core.stack import (
    CpiStack,
    FlopsStack,
    average_stacks,
    normalized_difference,
    sum_flops_stacks,
)


def make_stack(base=500.0, dcache=300.0, bpred=200.0, instrs=2000):
    stack = CpiStack(stage="dispatch", cycles=base + dcache + bpred,
                     instructions=instrs)
    stack.add(Component.BASE, base)
    stack.add(Component.DCACHE, dcache)
    stack.add(Component.BPRED, bpred)
    return stack


def test_components_sum_to_cpi():
    stack = make_stack()
    assert sum(stack.cpi_components().values()) == pytest.approx(stack.cpi())


def test_cpi_and_ipc_are_reciprocal():
    stack = make_stack()
    assert stack.cpi() * stack.ipc() == pytest.approx(1.0)


def test_component_cpi():
    stack = make_stack(dcache=300.0, instrs=2000)
    assert stack.component_cpi(Component.DCACHE) == pytest.approx(0.15)


def test_missing_component_is_zero():
    stack = make_stack()
    assert stack.get(Component.MICROCODE) == 0.0
    assert stack.component_cpi(Component.MICROCODE) == 0.0


def test_normalized_sums_to_one():
    stack = make_stack()
    assert sum(stack.normalized().values()) == pytest.approx(1.0)


def test_ipc_stack_height_is_max_ipc():
    stack = make_stack()
    ipc_components = stack.ipc_components(max_ipc=4.0)
    assert sum(ipc_components.values()) == pytest.approx(4.0)
    # base counter 500 of 1000 cycles at max IPC 4 -> 2.0, which equals the
    # achieved IPC (2000 instructions / 1000 cycles): "the base component
    # is now the obtained IPC" (Sec. V-B).
    assert ipc_components[Component.BASE] == pytest.approx(stack.ipc())


def test_copy_is_independent():
    stack = make_stack()
    clone = stack.copy()
    clone.add(Component.BASE, 100.0)
    assert stack.get(Component.BASE) == 500.0


def test_average_stacks_component_per_component():
    """Paper Sec. IV: 'We aggregate the CPI stacks by averaging them
    component per component.'"""
    a = make_stack(base=400.0, dcache=400.0, bpred=200.0)
    b = make_stack(base=600.0, dcache=200.0, bpred=200.0)
    avg = average_stacks([a, b])
    assert avg.get(Component.BASE) == pytest.approx(500.0)
    assert avg.get(Component.DCACHE) == pytest.approx(300.0)
    assert avg.total() == pytest.approx(1000.0)


def test_average_requires_stacks():
    with pytest.raises(ValueError):
        average_stacks([])


def make_flops_stack(base=0.4, mem=0.35, frontend=0.25, cycles=1000.0):
    stack = FlopsStack(cycles=cycles, peak_per_cycle=64.0)
    stack.add(FlopsComponent.BASE, base * cycles)
    stack.add(FlopsComponent.MEM, mem * cycles)
    stack.add(FlopsComponent.FRONTEND, frontend * cycles)
    stack.flops = base * cycles * 64.0
    return stack


def test_flops_equation_1():
    """FLOPS = base/cycles * freq * M (Equation 1)."""
    stack = make_flops_stack(base=0.5)
    # 0.5 * 1 GHz * 64 = 32 GFLOPS per core.
    assert stack.gflops(1.0) == pytest.approx(32.0)
    # Socket view scales linearly with cores.
    assert stack.gflops(1.0, cores=10) == pytest.approx(320.0)


def test_flops_rate_stack_height_is_peak():
    stack = make_flops_stack()
    rates = stack.rate_components(2.0, cores=4)
    assert sum(rates.values()) == pytest.approx(2.0 * 64.0 * 4)


def test_flops_achieved_fraction():
    stack = make_flops_stack(base=0.4)
    assert stack.achieved_fraction() == pytest.approx(0.4)


def test_sum_flops_stacks_preserves_fractions():
    a = make_flops_stack(base=0.4)
    b = make_flops_stack(base=0.6, mem=0.15)
    total = sum_flops_stacks([a, b])
    assert total.achieved_fraction() == pytest.approx(0.5)


def test_normalized_difference_sums_to_zero_for_full_partitions():
    a = {FlopsComponent.BASE: 0.6, FlopsComponent.MEM: 0.4}
    b = {FlopsComponent.BASE: 0.3, FlopsComponent.MEM: 0.7}
    diff = normalized_difference(a, b, list(a))
    assert sum(diff.values()) == pytest.approx(0.0)
    assert diff[FlopsComponent.BASE] == pytest.approx(0.3)
