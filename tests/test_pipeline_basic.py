"""Pipeline timing semantics on small hand-built programs."""

import pytest

from repro.core.components import Component
from repro.isa import decoder as asm
from repro.pipeline.core import simulate
from repro.workloads.base import DATA_BASE, TraceBuilder

from tests.conftest import load_loop, serial_chain, straightline_alu


def test_ilp_code_reaches_ideal_cpi(tiny):
    """Independent ALU work saturates the pipeline: CPI -> 1/W."""
    result = simulate(straightline_alu(2000), tiny,
                      warmup_instructions=200)
    assert result.cpi == pytest.approx(1 / tiny.dispatch_width, rel=0.05)


def test_ideal_cpi_stack_is_all_base(tiny):
    result = simulate(straightline_alu(2000), tiny,
                      warmup_instructions=200)
    report = result.report
    for stack in (report.dispatch, report.issue, report.commit):
        assert stack.get(Component.BASE) / stack.total() > 0.95


def test_serial_alu_chain_runs_one_per_cycle(tiny):
    """A 1-cycle dependence chain executes one op per cycle."""
    result = simulate(serial_chain(1000, "alu"), tiny,
                      warmup_instructions=100)
    assert result.cpi == pytest.approx(1.0, rel=0.05)


def test_serial_mul_chain_costs_full_latency(tiny):
    """A multiply chain is bounded by the multiply latency."""
    latency = tiny.latencies[asm.UopClass.MUL]
    result = simulate(serial_chain(500, "mul"), tiny,
                      warmup_instructions=100)
    assert result.cpi == pytest.approx(latency, rel=0.05)


def test_mul_chain_blamed_to_alu_latency(tiny):
    result = simulate(serial_chain(500, "mul"), tiny)
    issue = result.report.issue
    assert issue.get(Component.ALU_LAT) > 0.5 * issue.total()


def test_unpipelined_divide_serializes(tiny):
    """Independent divides still serialize on the single divide unit."""
    b = TraceBuilder("divs", seed=1)
    for i in range(200):
        b.emit(asm.div(b.pc, dst=2 + i % 8, srcs=(10,)))
    result = simulate(b.program(), tiny)
    latency = tiny.latencies[asm.UopClass.DIV]
    assert result.cpi == pytest.approx(latency, rel=0.1)


def test_commit_count_matches_trace(tiny):
    prog = straightline_alu(777)
    result = simulate(prog, tiny)
    assert result.committed_instrs == len(prog)
    assert result.committed_uops == prog.uop_count


def test_determinism(tiny):
    prog = load_loop(500, lines=64, stride_lines=3)
    a = simulate(prog, tiny, seed=42)
    b = simulate(prog, tiny, seed=42)
    assert a.cycles == b.cycles
    assert a.report.dispatch.counters == b.report.dispatch.counters


def test_accounting_off_gives_same_timing(tiny):
    prog = load_loop(500, lines=64, stride_lines=3)
    with_acct = simulate(prog, tiny, accounting=True)
    without = simulate(prog, tiny, accounting=False)
    assert with_acct.cycles == without.cycles
    assert without.report is None


def test_warmup_excludes_cold_misses(tiny):
    """With warmup covering the first pass, steady-state CPI is lower."""
    prog = load_loop(2000, lines=16)  # 16 lines revisited constantly
    cold = simulate(prog, tiny)
    warm = simulate(prog, tiny, warmup_instructions=500)
    assert warm.cpi <= cold.cpi
    assert warm.cycles < cold.cycles


def test_l1_resident_loads_near_ideal(tiny):
    prog = load_loop(2000, lines=4)
    result = simulate(prog, tiny, warmup_instructions=200)
    # One load port on tiny: loads are port-bound at CPI ~1.
    assert result.cpi == pytest.approx(1.0, rel=0.1)


def test_cold_loads_show_dcache_component(tiny):
    prog = load_loop(400, lines=4096, stride_lines=7)
    result = simulate(prog, tiny)
    commit = result.report.commit
    assert commit.get(Component.DCACHE) > 0.3 * commit.total()


def test_max_cycles_guard(tiny):
    prog = straightline_alu(100)
    with pytest.raises(RuntimeError):
        simulate_with_limit(prog, tiny)


def simulate_with_limit(prog, config):
    from repro.pipeline.core import CoreSimulator

    return CoreSimulator(prog, config).run(max_cycles=3)


def test_requires_memory_hierarchy(tiny):
    from dataclasses import replace

    from repro.pipeline.core import CoreSimulator

    config = replace(tiny, memory=None)
    with pytest.raises(ValueError):
        CoreSimulator(straightline_alu(10), config)


def test_empty_residue_drains(tiny):
    """The simulator terminates once the trace and pipeline drain."""
    b = TraceBuilder("drain", seed=1)
    b.emit(asm.load(b.pc, dst=2, addr=DATA_BASE))
    b.emit(asm.alu(b.pc, dst=3, srcs=(2,)))
    result = simulate(b.program(), tiny)
    assert result.committed_uops == 2
    assert result.cycles > 0
