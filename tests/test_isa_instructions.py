"""Unit tests for macro instructions and programs."""

import pytest

from repro.isa import decoder as asm
from repro.isa.instructions import Instruction, Program, concat_programs
from repro.isa.uops import MicroOp, UopClass


def test_fallthrough_and_next_pc():
    instr = asm.alu(0x1000, dst=2, length=4)
    assert instr.fallthrough == 0x1004
    assert instr.next_pc == 0x1004


def test_taken_branch_next_pc_is_target():
    br = asm.branch(0x1000, taken=True, target=0x2000)
    assert br.next_pc == 0x2000


def test_not_taken_branch_next_pc_is_fallthrough():
    br = asm.branch(0x1000, taken=False, target=0x2000)
    assert br.next_pc == 0x1004


def test_branch_requires_branch_uop():
    with pytest.raises(ValueError):
        Instruction(
            pc=0, length=4, uops=(MicroOp(UopClass.ALU),),
            is_branch=True, taken=True, target=16,
        )


def test_instruction_requires_positive_length():
    with pytest.raises(ValueError):
        Instruction(pc=0, length=0, uops=(MicroOp(UopClass.NOP),))


def test_instruction_requires_uops_or_yield():
    with pytest.raises(ValueError):
        Instruction(pc=0, length=4, uops=())


def test_program_counts():
    prog = Program("p")
    prog.extend([
        asm.load(0, dst=2, addr=64),
        asm.store(4, src=2, addr=128),
        asm.branch(8, taken=True, target=0),
        asm.fma(12, dst=40, srcs=(40,), lanes=4, width_lanes=4),
    ])
    assert len(prog) == 4
    assert prog.load_count == 1
    assert prog.store_count == 1
    assert prog.branch_count == 1
    assert prog.flop_count == 8  # 4 lanes x 2 ops
    assert prog.vfp_uop_count == 1


def test_program_uop_count_includes_split_uops():
    prog = Program("p")
    prog.extend([asm.fma(0, dst=40, srcs=(40,), lanes=4, width_lanes=4,
                         mem_addr=64)])
    assert len(prog) == 1
    assert prog.uop_count == 2  # load + fma


def test_program_summary_fractions():
    prog = Program("p")
    prog.extend([asm.alu(0, dst=2),
                 asm.fma(4, dst=40, srcs=(40,), lanes=4, width_lanes=4)])
    summary = prog.summary()
    assert summary["instructions"] == 2
    assert summary["vfp_uop_fraction"] == pytest.approx(0.5)


def test_concat_programs():
    a = Program("a")
    a.extend([asm.alu(0, dst=2)])
    b = Program("b")
    b.extend([asm.alu(4, dst=3), asm.alu(8, dst=4)])
    merged = concat_programs("ab", [a, b])
    assert len(merged) == 3
    assert merged.name == "ab"


def test_program_indexing_and_iteration():
    prog = Program("p")
    instrs = [asm.alu(i * 4, dst=2) for i in range(5)]
    prog.extend(instrs)
    assert prog[0] is instrs[0]
    assert list(prog) == instrs
