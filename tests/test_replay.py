"""Periodic steady-state replay: bitwise equivalence and unit behaviour.

The replay engine's contract mirrors the quiescent-cycle fast-forward
engine's: skipping whole loop iterations changes *nothing* observable.
Every ``SimResult`` field (cycles, stacks, cache stats, predictor stats)
must be bit-for-bit identical to the cycle-by-cycle run, in every
wrong-path mode, with and without warmup.  The differential matrix here
enforces that; the unit tests pin down the trace period analysis and the
state fingerprints the fixed-point check is built from — each
``fingerprint()`` must change whenever the underlying behavioural state
changes, or the engine could jump from a state it never actually
recorded.
"""

from __future__ import annotations

import pytest

from repro.branch.predictors import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    GsharePredictor,
    TournamentPredictor,
)
from repro.config.presets import broadwell, knights_landing
from repro.core.wrongpath import WrongPathMode
from repro.memory.cache import Cache
from repro.memory.dram import DramModel
from repro.memory.mshr import MshrFile
from repro.memory.prefetcher import StreamPrefetcher
from repro.memory.tlb import Tlb
from repro.pipeline.core import (
    ENV_REPLAY,
    CoreSimulator,
    replay_default,
    simulate,
)
from repro.pipeline.replay import find_period
from repro.pipeline.resources import FunctionalUnitPool
from repro.pipeline.result import SimResult
from repro.workloads.registry import make_trace

N = 2_000


def _comparable(result) -> dict:
    """Everything that must be identical (host-side telemetry excluded)."""
    payload = result.to_dict()
    for key in ("wall_seconds", "ff_windows", "ff_cycles_skipped",
                "replay_windows", "replay_cycles_skipped"):
        payload.pop(key)
    return payload


def _run_pair(workload, config, *, mode=WrongPathMode.EXACT, warmup=0, n=N):
    trace = make_trace(workload, n, 1)
    on = CoreSimulator(trace, config, mode=mode,
                       warmup_instructions=warmup, replay=True)
    off = CoreSimulator(trace, config, mode=mode,
                        warmup_instructions=warmup, replay=False)
    return on, on.run(), off, off.run()


# ---------------------------------------------------------------------------
# differential matrix: replay on == replay off, bit for bit
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workload", ["exchange2", "spin", "mcf", "bwaves"])
@pytest.mark.parametrize("preset", [broadwell, knights_landing])
@pytest.mark.parametrize("mode", list(WrongPathMode))
@pytest.mark.parametrize("warmup", [0, 200])
def test_replay_bitwise_identical(workload, preset, mode, warmup):
    on, res_on, off, res_off = _run_pair(
        workload, preset(), mode=mode, warmup=warmup
    )
    assert _comparable(res_on) == _comparable(res_off)
    assert off.replay_windows == 0 and off.replay_cycles_skipped == 0


@pytest.mark.parametrize("workload", ["exchange2", "spin"])
@pytest.mark.parametrize("preset", [broadwell, knights_landing])
def test_replay_engages_on_periodic_traces(workload, preset):
    """The two designated loop traces must actually take the macro jump
    (EXACT mode; other modes legitimately disengage the engine)."""
    on, res_on, _, _ = _run_pair(workload, preset(), n=4_000)
    assert on.replay_windows > 0, "replay never engaged"
    assert on.replay_cycles_skipped > 0
    assert res_on.replay_windows == on.replay_windows
    assert res_on.replay_cycles_skipped == on.replay_cycles_skipped


def test_replay_identical_with_warmup_boundary_inside_loop():
    """Warmup that ends mid-loop must not perturb the recorded window."""
    for warmup in (50, 96, 150):
        _, res_on, _, res_off = _run_pair(
            "exchange2", broadwell(), warmup=warmup, n=4_000
        )
        assert _comparable(res_on) == _comparable(res_off)


def test_replay_composes_with_fast_forward():
    """Both engines on together must still be bitwise identical."""
    trace = make_trace("spin", 4_000, 1)
    both = simulate(trace, broadwell(), fast_forward=True, replay=True)
    neither = simulate(trace, broadwell(), fast_forward=False, replay=False)
    assert _comparable(both) == _comparable(neither)


# ---------------------------------------------------------------------------
# escape hatches
# ---------------------------------------------------------------------------


def test_replay_param_disables_engine():
    trace = make_trace("spin", 2_000, 1)
    sim = CoreSimulator(trace, broadwell(), replay=False)
    sim.run()
    assert sim.replay_windows == 0 and sim.replay_cycles_skipped == 0


def test_replay_env_default(monkeypatch):
    monkeypatch.delenv(ENV_REPLAY, raising=False)
    assert replay_default() is True
    monkeypatch.setenv(ENV_REPLAY, "0")
    assert replay_default() is False
    trace = make_trace("spin", 2_000, 1)
    sim = CoreSimulator(trace, broadwell())  # replay=None -> env
    sim.run()
    assert sim.replay_windows == 0


def test_simulate_wrapper_passes_replay_through():
    trace = make_trace("spin", 2_000, 1)
    res_on = simulate(trace, broadwell(), replay=True)
    res_off = simulate(trace, broadwell(), replay=False)
    assert _comparable(res_on) == _comparable(res_off)
    assert res_on.replay_windows > 0
    assert res_off.replay_windows == 0


# ---------------------------------------------------------------------------
# trace period analysis
# ---------------------------------------------------------------------------


def test_find_period_on_static_loop():
    trace = make_trace("spin", 2_000, 1)
    found = find_period(trace)
    assert found is not None
    start, period = found
    assert period == 11  # 8 FMAs + load + alu + branch
    assert start == 0  # static body: periodic from the first instruction
    instrs = trace.instructions
    for i in range(start, len(instrs) - period):
        assert instrs[i] == instrs[i + period]


def test_find_period_on_rotating_loop():
    """exchange2's load rotates through 8 slots: the instruction-level
    period is the 8-iteration super-period, not the loop body length."""
    trace = make_trace("exchange2", 2_000, 1)
    found = find_period(trace)
    assert found is not None
    start, period = found
    instrs = trace.instructions
    for i in range(start, len(instrs) - period):
        assert instrs[i] == instrs[i + period]


def test_find_period_rejects_aperiodic_traces():
    assert find_period(make_trace("chase", 2_000, 1)) is None
    assert find_period(make_trace("mcf", 2_000, 1)) is None


def test_find_period_rejects_short_traces():
    from repro.workloads.micro import spin_like

    assert find_period(spin_like(30)) is None  # < _MIN_TRACE instructions


# ---------------------------------------------------------------------------
# fingerprint sensitivity: every structure's fingerprint must change
# when its behavioural state changes
# ---------------------------------------------------------------------------


def test_cache_fingerprint_tracks_contents():
    config = broadwell().memory
    cache = Cache(config.l1d, "l1d")
    fp0 = cache.fingerprint()
    cache.insert(0x40)
    fp1 = cache.fingerprint()
    assert fp1 != fp0
    # LRU order is behavioural state: a hit reorders and must show.
    cache.insert(0x80)
    fp2 = cache.fingerprint()
    cache.lookup(0x40)  # move 0x40 back to MRU
    assert cache.fingerprint() != fp2
    # Dirty bits are behavioural state (they decide writebacks).
    cache.mark_dirty(0x40)
    assert cache.fingerprint() != fp2


def test_tlb_fingerprint_tracks_entries():
    tlb = Tlb(broadwell().memory.dtlb)
    fp0 = tlb.fingerprint()
    tlb.access(0x1000_0000)
    fp1 = tlb.fingerprint()
    assert fp1 != fp0
    tlb.access(0x2000_0000)
    assert tlb.fingerprint() != fp1


def test_mshr_fingerprint_is_relative_and_ignores_expired():
    mshr = MshrFile(4)
    assert mshr.fingerprint(100.0) == ()
    release = mshr.acquire(100.0)
    assert release > 100.0 or release == 100.0
    # Occupy a slot explicitly.
    mshr._busy.append(150.0)
    fp = mshr.fingerprint(100.0)
    assert 50.0 in fp
    # Shift-invariance: the same state 1000 cycles later fingerprints
    # identically relative to the later now.
    mshr.shift_time(100.0, 1000.0)
    assert mshr.fingerprint(1100.0) == fp
    # Expired slots are behaviourally free and must not show.
    assert mshr.fingerprint(2000.0) == ()


def test_prefetcher_fingerprint_tracks_training():
    config = broadwell().memory
    pf = StreamPrefetcher(config.prefetcher, 64)
    fp0 = pf.fingerprint()
    pf.on_demand_access(100)
    fp1 = pf.fingerprint()
    assert fp1 != fp0
    pf.on_demand_access(101)  # trains direction/confidence
    assert pf.fingerprint() != fp1
    # Same line again: delta == 0 never trains (exchange2 relies on it).
    fp2 = pf.fingerprint()
    pf.on_demand_access(101)
    assert pf.fingerprint() == fp2


def test_dram_fingerprint_shift_invariance():
    dram = DramModel(broadwell().memory.dram)
    assert dram.fingerprint(0.0) == 0.0
    dram.access(100.0)
    fp = dram.fingerprint(100.0)
    dram.shift_time(100.0, 500.0)
    assert dram.fingerprint(600.0) == fp


@pytest.mark.parametrize("factory", [
    lambda: BimodalPredictor(bits=6),
    lambda: GsharePredictor(bits=6),
    lambda: TournamentPredictor(bits=6),
])
def test_direction_predictor_fingerprint_tracks_updates(factory):
    pred = factory()
    fp0 = pred.fingerprint()
    pred.update(0x400, True, 0x800)
    fp1 = pred.fingerprint()
    assert fp1 != fp0
    pred.update(0x400, False, 0x800)  # direction counter steps back
    assert pred.fingerprint() != fp1


def test_btb_fingerprint_tracks_targets():
    pred = AlwaysTakenPredictor(btb_entries=64)
    fp0 = pred.fingerprint()
    pred.btb.update(0x400, 0x800)
    fp1 = pred.fingerprint()
    assert fp1 != fp0
    pred.btb.update(0x400, 0xC00)  # retarget same entry
    assert pred.fingerprint() != fp1


def test_fu_pool_fingerprint_relative_and_ignores_expired():
    pool = FunctionalUnitPool(broadwell())
    fp0 = pool.fingerprint(100)
    assert fp0 == ()
    if pool._mul_busy_until:
        pool._mul_busy_until[0] = 105.0
        fp1 = pool.fingerprint(100)
        assert fp1 == (5.0,)
        pool.shift_time(100, 1000)
        assert pool.fingerprint(1100) == fp1
        assert pool.fingerprint(2000) == ()


def test_frontend_fingerprint_tracks_stall_and_position():
    sim = CoreSimulator(make_trace("spin", 200, 1), broadwell())
    fe = sim.frontend
    fp0 = fe.fingerprint(0)
    # A stall deadline is state, relative to the query cycle.
    fe._stall_until = 25
    assert fe.fingerprint(0) != fp0
    assert fe.fingerprint(30) == fp0  # expired: behaviourally identical
    fe._stall_until = 0


def test_frontend_shift_moves_position_and_deadline():
    sim = CoreSimulator(make_trace("spin", 200, 1), broadwell())
    fe = sim.frontend
    idx, seq, block = fe._idx, fe.seq, fe.block
    fe._stall_until = 50
    fe.shift(10, 1000, 44, 88, 4)
    assert fe._idx == idx + 44
    assert fe.seq == seq + 88
    assert fe.block == block + 4
    assert fe._stall_until == 1050


# ---------------------------------------------------------------------------
# result round trip
# ---------------------------------------------------------------------------


def test_simresult_roundtrip_keeps_telemetry():
    trace = make_trace("spin", 4_000, 1)
    result = simulate(trace, broadwell(), replay=True)
    assert result.replay_windows > 0
    clone = SimResult.from_dict(result.to_dict())
    assert clone.to_dict() == result.to_dict()
    assert clone.replay_windows == result.replay_windows
    assert clone.replay_cycles_skipped == result.replay_cycles_skipped
    assert clone.ff_windows == result.ff_windows
    assert clone.ff_cycles_skipped == result.ff_cycles_skipped


def test_simresult_roundtrip_defaults_missing_telemetry_to_zero():
    trace = make_trace("spin", 1_000, 1)
    payload = simulate(trace, broadwell()).to_dict()
    for key in ("ff_windows", "ff_cycles_skipped",
                "replay_windows", "replay_cycles_skipped"):
        payload.pop(key)
    clone = SimResult.from_dict(payload)
    assert clone.replay_windows == 0
    assert clone.ff_cycles_skipped == 0
