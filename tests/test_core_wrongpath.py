"""Unit tests for the wrong-path discernment strategies (Sec. III-B)."""

import pytest

from repro.core.components import Component
from repro.core.stack import CpiStack
from repro.core.wrongpath import (
    SimpleWrongPathCorrector,
    SpeculativeCounterFile,
)


def make_stack(base, bpred=0.0, stage="dispatch"):
    stack = CpiStack(stage=stage, cycles=base + bpred, instructions=100)
    stack.add(Component.BASE, base)
    if bpred:
        stack.add(Component.BPRED, bpred)
    return stack


def test_simple_correction_moves_surplus_base_to_bpred():
    """Yasin-style: 'bad speculation slots are issue slots minus retire
    slots'."""
    dispatch = make_stack(base=80.0, bpred=20.0)
    commit = make_stack(base=60.0, stage="commit")
    corrected = SimpleWrongPathCorrector.apply(dispatch, commit)
    assert corrected.get(Component.BASE) == pytest.approx(60.0)
    assert corrected.get(Component.BPRED) == pytest.approx(40.0)
    assert corrected.total() == pytest.approx(dispatch.total())


def test_simple_correction_noop_without_surplus():
    dispatch = make_stack(base=60.0, bpred=20.0)
    commit = make_stack(base=60.0, stage="commit")
    corrected = SimpleWrongPathCorrector.apply(dispatch, commit)
    assert corrected.get(Component.BASE) == pytest.approx(60.0)
    assert corrected.get(Component.BPRED) == pytest.approx(20.0)


def test_simple_correction_does_not_mutate_input():
    dispatch = make_stack(base=80.0)
    commit = make_stack(base=60.0, stage="commit")
    SimpleWrongPathCorrector.apply(dispatch, commit)
    assert dispatch.get(Component.BASE) == 80.0


def test_speculative_commit_merges_components():
    spec = SpeculativeCounterFile()
    stack = CpiStack(stage="dispatch")
    spec.add(1, Component.BASE, 3.0)
    spec.add(1, Component.DCACHE, 2.0)
    spec.add(2, Component.BASE, 1.0)
    spec.commit_up_to(1, stack)
    assert stack.get(Component.BASE) == pytest.approx(3.0)
    assert stack.get(Component.DCACHE) == pytest.approx(2.0)
    assert spec.outstanding_blocks == 1  # block 2 still pending


def test_speculative_squash_drains_to_bpred():
    """Squashed blocks' cycles all become branch-misprediction cycles,
    whatever they were tentatively attributed to."""
    spec = SpeculativeCounterFile()
    stack = CpiStack(stage="dispatch")
    spec.add(5, Component.BASE, 2.0)
    spec.add(5, Component.DCACHE, 3.0)
    spec.add(6, Component.DEPEND, 1.0)
    spec.squash_from(4, stack)
    assert stack.get(Component.BPRED) == pytest.approx(6.0)
    assert spec.outstanding_blocks == 0


def test_speculative_squash_spares_older_blocks():
    spec = SpeculativeCounterFile()
    stack = CpiStack(stage="dispatch")
    spec.add(3, Component.BASE, 2.0)
    spec.add(7, Component.BASE, 4.0)
    spec.squash_from(5, stack)
    assert stack.get(Component.BPRED) == pytest.approx(4.0)
    spec.commit_up_to(3, stack)
    assert stack.get(Component.BASE) == pytest.approx(2.0)


def test_speculative_flush_all():
    spec = SpeculativeCounterFile()
    stack = CpiStack(stage="dispatch")
    spec.add(1, Component.BASE, 1.0)
    spec.add(2, Component.ICACHE, 2.0)
    spec.flush_all(stack)
    assert stack.total() == pytest.approx(3.0)
    assert spec.outstanding_blocks == 0


def test_speculative_zero_amounts_ignored():
    spec = SpeculativeCounterFile()
    spec.add(1, Component.BASE, 0.0)
    assert spec.outstanding_blocks == 0


def test_total_cycles_conserved_through_squash_and_commit():
    """No cycle is lost or duplicated by the speculative machinery."""
    spec = SpeculativeCounterFile()
    stack = CpiStack(stage="dispatch")
    total = 0.0
    for block in range(10):
        spec.add(block, Component.BASE, 1.5)
        spec.add(block, Component.DCACHE, 0.5)
        total += 2.0
    spec.commit_up_to(4, stack)
    spec.squash_from(7, stack)
    spec.flush_all(stack)
    assert stack.total() == pytest.approx(total)
