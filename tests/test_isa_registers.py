"""Unit tests for the architectural register namespace."""

import pytest

from repro.isa.registers import (
    FIRST_VEC_REG,
    NO_REG,
    NUM_INT_REGS,
    NUM_VEC_REGS,
    TOTAL_REGS,
    int_reg,
    is_vec_reg,
    vec_reg,
)


def test_total_is_sum_of_files():
    assert TOTAL_REGS == NUM_INT_REGS + NUM_VEC_REGS


def test_int_reg_identity():
    assert int_reg(0) == 0
    assert int_reg(NUM_INT_REGS - 1) == NUM_INT_REGS - 1


def test_vec_reg_offset():
    assert vec_reg(0) == FIRST_VEC_REG
    assert vec_reg(NUM_VEC_REGS - 1) == TOTAL_REGS - 1


def test_int_reg_bounds():
    with pytest.raises(ValueError):
        int_reg(NUM_INT_REGS)
    with pytest.raises(ValueError):
        int_reg(-1)


def test_vec_reg_bounds():
    with pytest.raises(ValueError):
        vec_reg(NUM_VEC_REGS)
    with pytest.raises(ValueError):
        vec_reg(-1)


def test_is_vec_reg_partition():
    assert not is_vec_reg(int_reg(5))
    assert is_vec_reg(vec_reg(5))


def test_no_reg_sentinel_is_not_a_register():
    assert NO_REG < 0
