"""Pipeline frontend features: I-cache stalls, microcode, sync yields."""

import pytest
from dataclasses import replace

from repro.core.components import Component, FlopsComponent
from repro.isa import decoder as asm
from repro.pipeline.core import simulate
from repro.workloads.base import TraceBuilder


def big_code_program(n_blocks=64, iters=6):
    """Code footprint far beyond the tiny core's 2 KB L1I."""
    b = TraceBuilder("bigcode", seed=1)
    count = 0
    for _ in range(iters):
        for block in range(n_blocks):
            b.at(0x0040_0000 + block * 256)
            for j in range(8):
                b.emit(asm.alu(b.pc, dst=2 + j % 8, srcs=(2 + j % 8,)))
                count += 1
    return b.program()


def test_icache_misses_produce_icache_component(tiny):
    result = simulate(big_code_program(), tiny)
    dispatch = result.report.dispatch
    assert dispatch.get(Component.ICACHE) > 0.1 * dispatch.total()


def test_perfect_icache_removes_the_component(tiny):
    prog = big_code_program()
    ideal = simulate(prog, replace(tiny, perfect_icache=True))
    assert ideal.report.dispatch.get(Component.ICACHE) == 0.0
    baseline = simulate(prog, tiny)
    assert ideal.cycles < baseline.cycles


def test_small_code_fits_l1i(tiny):
    b = TraceBuilder("small", seed=1)
    loop_pc = b.pc
    for i in range(1000):
        b.at(loop_pc)
        for j in range(4):
            b.emit(asm.alu(b.pc, dst=2 + j, srcs=(2 + j,)))
        b.emit(asm.branch(b.pc, taken=True, target=loop_pc, srcs=(2,)))
    result = simulate(b.program(), tiny, warmup_instructions=100)
    dispatch = result.report.dispatch
    assert dispatch.get(Component.ICACHE) < 0.02 * dispatch.total()


def microcoded_program(n=300):
    b = TraceBuilder("micro", seed=1)
    loop_pc = b.pc
    for i in range(n):
        b.at(loop_pc)
        b.emit(asm.microcoded_fp(b.pc, dst=40 + i % 4, srcs=(32, 33),
                                 n_uops=4))
        b.emit(asm.alu(b.pc, dst=2, srcs=(2,)))
        b.emit(asm.branch(b.pc, taken=True, target=loop_pc, srcs=(2,)))
    return b.program()


def test_microcode_component_appears(tiny):
    """The microcode sequencer (1 uop/cycle) starves the 2-wide dispatch:
    the paper's povray-on-KNL `Microcode` component (Fig. 3d)."""
    result = simulate(microcoded_program(), tiny,
                      warmup_instructions=50)
    dispatch = result.report.dispatch
    assert dispatch.get(Component.MICROCODE) > 0


def test_microcode_throttles_delivery(tiny):
    """A faster microcode sequencer removes the decode bottleneck."""
    # Pure stream of microcoded instructions: the sequencer (1 uop/cycle)
    # is the only frontend limiter.
    b = TraceBuilder("pure-micro", seed=1)
    loop_pc = b.pc
    for i in range(250):
        b.at(loop_pc)
        b.emit(asm.microcoded_fp(b.pc, dst=40 + i % 4, srcs=(32, 33),
                                 n_uops=4))
    prog = b.program()
    # Two vector units so FP throughput (2/cycle) exceeds the sequencer
    # rate (1 uop/cycle): the sequencer is the binding resource.
    wide = replace(tiny, vector_units=2)
    slow = simulate(prog, wide, warmup_instructions=50)
    fast = simulate(prog, replace(wide, microcode_uops_per_cycle=4),
                    warmup_instructions=50)
    assert slow.cycles > fast.cycles


def test_sync_yield_deschedules_core(tiny):
    b = TraceBuilder("sync", seed=1)
    base = b.pc
    for i in range(100):
        b.at(base)
        b.emit(asm.alu(b.pc, dst=2, srcs=(2,)))
    b.emit(asm.sync_yield(b.pc, 500))
    for i in range(100):
        b.at(base + 8)
        b.emit(asm.alu(b.pc, dst=3, srcs=(3,)))
    result = simulate(b.program(), tiny)
    # The 500 yielded cycles appear in every stack as Unsched.
    for stack in (result.report.dispatch, result.report.issue,
                  result.report.commit):
        assert stack.get(Component.UNSCHED) >= 500
    assert result.cycles >= 500 + 100


def test_sync_yield_in_flops_stack(tiny):
    b = TraceBuilder("sync", seed=1)
    base = b.pc
    for i in range(50):
        b.at(base)
        b.emit(asm.fma(b.pc, dst=40 + i % 8, srcs=(40 + i % 8, 33),
                       lanes=4, width_lanes=4))
    b.emit(asm.sync_yield(b.pc, 300))
    result = simulate(b.program(), tiny)
    flops = result.report.flops
    assert flops.get(FlopsComponent.UNSCHED) >= 300


def test_execution_resumes_after_yield(tiny):
    b = TraceBuilder("sync", seed=1)
    b.emit(asm.alu(b.pc, dst=2, srcs=(2,)))
    b.emit(asm.sync_yield(b.pc, 50))
    b.emit(asm.alu(b.pc, dst=3, srcs=(3,)))
    result = simulate(b.program(), tiny)
    assert result.committed_instrs == 3


def test_trace_end_drain_is_not_misattributed(tiny):
    """After the trace ends, residual drain cycles go to OTHER, not to a
    stale frontend reason."""
    b = TraceBuilder("drain", seed=1)
    base = b.pc
    for i in range(100):
        b.at(base)
        b.emit(asm.alu(b.pc, dst=2, srcs=(2,)))
    b.emit(asm.div(b.pc, dst=3, srcs=(2,)))
    result = simulate(b.program(), tiny, warmup_instructions=50)
    # The final divide drains for ~20 cycles; those belong to the divide
    # (ALU latency), not to a stale frontend reason.
    assert result.report.commit.get(Component.ICACHE) < 3
    assert result.report.commit.get(Component.ALU_LAT) > 10
