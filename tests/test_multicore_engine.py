"""Differential tests for the shared-memory multi-core engine.

The engine's correctness contract has two pillars:

* **1-core identity**: a 1-core :class:`MulticoreSimulator` is bitwise
  identical to a plain :class:`CoreSimulator` — same stacks, telemetry
  and serialized payloads — across presets, wrong-path modes and warmup
  settings.  The lockstep scheduler, the shared-backend plumbing and the
  barrier hook must all be invisible at N=1.

* **Contention oracle**: with shared-resource contention switched off
  (infinite shared-L3 capacity and MSHRs, zero DRAM bandwidth cost,
  disjoint per-core footprints, no barriers), an N-core engine run is
  exactly N independent single-core runs.  With contention on, per-core
  cycle counts are monotonically non-decreasing in the core count and
  the growth is absorbed by the memory components and the barrier-wait
  ``Unsched`` component — per-core stacks always sum to per-core cycles.

Determinism is the third pillar: repeated runs are byte-identical, seeds
are plumbed per core, and harness scheduling (serial vs fork/spawn
pools) never changes a result.
"""

from __future__ import annotations

import dataclasses
import multiprocessing

import pytest

from repro.config.cores import CacheConfig, DramConfig
from repro.config.presets import broadwell, tiny_core
from repro.core import invariants
from repro.core.components import Component
from repro.core.wrongpath import WrongPathMode
from repro.experiments import runner
from repro.experiments.cache import TELEMETRY, CaseSpec
from repro.experiments.multicore import simulate_socket
from repro.experiments.parallel import run_cases, run_multicore_cases
from repro.isa import decoder as asm
from repro.pipeline.core import CoreSimulator
from repro.pipeline.multicore import MulticoreSimulator
from repro.workloads.base import DATA_BASE, TraceBuilder
from repro.workloads.deepbench import threaded_conv_traces
from repro.workloads.registry import make_threaded_traces, make_trace

N = 2000


def _comparable(result) -> dict:
    payload = result.to_dict()
    payload.pop("wall_seconds")
    return payload


def _per_core_comparable(results) -> list[dict]:
    return [_comparable(r) for r in results]


# ---------------------------------------------------------------------------
# pillar 1: 1-core identity


@pytest.mark.parametrize("preset", [tiny_core, broadwell])
@pytest.mark.parametrize("mode", list(WrongPathMode))
@pytest.mark.parametrize("warmup", [0, 600])
def test_one_core_engine_is_bitwise_identical(preset, mode, warmup):
    config = preset()
    trace = make_trace("mcf", N, seed=3)
    single = CoreSimulator(
        trace, config, mode=mode, warmup_instructions=warmup, seed=7
    ).run()
    multi = MulticoreSimulator(
        [trace], config, mode=mode, warmup_instructions=warmup, seeds=(7,)
    ).run()
    assert multi.cores == 1
    assert _comparable(multi.per_core[0]) == _comparable(single)


def test_one_core_engine_matches_across_workload_character():
    """The identity holds on memory-, branch- and sync-heavy traces."""
    config = tiny_core()
    for name in ("mcf", "leela", "conv-vgg-2-fwd"):
        trace = make_trace(name, N, seed=3)
        single = CoreSimulator(trace, config, seed=7).run()
        multi = MulticoreSimulator([trace], config, seeds=(7,)).run()
        assert _comparable(multi.per_core[0]) == _comparable(single), name


def test_one_core_engine_checkpoint_resume_is_identical(tmp_path):
    from repro.pipeline import checkpoint as ckpt

    config = tiny_core()
    trace = make_trace("mcf", N, seed=3)
    baseline = MulticoreSimulator([trace], config, seeds=(7,)).run()

    saved = []

    def capture(path, instrs):
        saved.append((path, instrs))

    sim = MulticoreSimulator([trace], config, seeds=(7,))
    sim.run(
        checkpoint_interval=500, checkpoint_key="one-core-engine",
        on_checkpoint=capture,
    )
    assert saved, "no checkpoint was ever taken"
    path, _instrs = saved[0]
    resumed = MulticoreSimulator.resume(path).run()
    assert _per_core_comparable(resumed.per_core) == (
        _per_core_comparable(baseline.per_core)
    )
    ckpt.clear_checkpoints("one-core-engine")


# ---------------------------------------------------------------------------
# pillar 3: determinism


def test_n_core_repeat_runs_are_byte_identical():
    config = tiny_core()
    traces = make_threaded_traces("conv-vgg-2-fwd", 2, 4000, seed=3)
    first = MulticoreSimulator(traces, config, seed=11).run()
    second = MulticoreSimulator(traces, config, seed=11).run()
    assert first.fingerprint() != ""
    assert _per_core_comparable(first.per_core) == (
        _per_core_comparable(second.per_core)
    )


def test_per_core_seeds_are_plumbed():
    """Explicit per-core seeds reach the cores; different seeds on a
    branchy workload change the wrong-path fingerprint."""
    config = tiny_core()
    traces = [make_trace("leela", N, seed=3), make_trace("leela", N, seed=4)]
    base = MulticoreSimulator(traces, config, seeds=(7, 8)).run()
    # Same seeds again: identical.
    again = MulticoreSimulator(traces, config, seeds=(7, 8)).run()
    assert _per_core_comparable(base.per_core) == (
        _per_core_comparable(again.per_core)
    )
    # Per-core runs with the same seed must match the engine's cores
    # when contention cannot occur (exchange2/leela barely touch memory,
    # but use the no-contention config to be exact).
    solo = [
        CoreSimulator(traces[i], config, seed=(7, 8)[i]).run()
        for i in range(2)
    ]
    for engine_result, solo_result in zip(base.per_core, solo):
        assert engine_result.committed_instrs == solo_result.committed_instrs


def test_engine_checkpoint_resume_n_cores(tmp_path):
    from repro.pipeline import checkpoint as ckpt

    config = tiny_core()
    traces = make_threaded_traces("conv-vgg-2-fwd", 2, 4000, seed=3)
    baseline = MulticoreSimulator(traces, config, seed=11).run()

    saved = []
    sim = MulticoreSimulator(traces, config, seed=11)
    sim.run(
        checkpoint_interval=1000, checkpoint_key="two-core-engine",
        on_checkpoint=lambda path, instrs: saved.append(path),
    )
    assert saved
    resumed = MulticoreSimulator.resume(saved[len(saved) // 2]).run()
    assert _per_core_comparable(resumed.per_core) == (
        _per_core_comparable(baseline.per_core)
    )
    ckpt.clear_checkpoints("two-core-engine")


@pytest.mark.parametrize(
    "method",
    [
        pytest.param("fork"),
        pytest.param("spawn", marks=pytest.mark.slow),
    ],
)
def test_multicore_batch_serial_vs_pool_identical(method):
    if method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"start method {method!r} unavailable here")
    specs = [
        CaseSpec(
            workload="conv-vgg-2-fwd", preset="tiny", instructions=4000,
            seed=3, cores=cores,
        )
        for cores in (1, 2)
    ]
    serial = run_multicore_cases(specs, jobs=1)
    runner.clear_cache()
    pooled = run_multicore_cases(specs, jobs=4, mp_start_method=method)
    for serial_socket, pooled_socket in zip(serial, pooled):
        assert _per_core_comparable(serial_socket) == (
            _per_core_comparable(pooled_socket)
        )


def test_multicore_batch_second_run_from_cache():
    spec = CaseSpec(
        workload="conv-vgg-2-fwd", preset="tiny", instructions=4000,
        seed=3, cores=2,
    )
    first = run_multicore_cases([spec], jobs=1)
    runner.clear_cache(disk=False)
    TELEMETRY.reset()
    second = run_multicore_cases([spec], jobs=1)
    assert TELEMETRY.sim_invocations == 0, (
        "warm-cache multicore rerun must not invoke the engine"
    )
    assert _per_core_comparable(first[0]) == _per_core_comparable(second[0])


def test_one_core_socket_spec_is_the_historical_case():
    """cores=1 keeps the historical cache key and the plain trace."""
    spec_multi = CaseSpec(
        workload="mcf", preset="tiny", instructions=N, seed=3, cores=1
    )
    spec_single = CaseSpec(
        workload="mcf", preset="tiny", instructions=N, seed=3
    )
    assert spec_multi.key() == spec_single.key()
    assert spec_multi.member_key(0) == spec_single.key()
    (per_core,) = run_multicore_cases([spec_multi], jobs=1)
    direct = runner.run_spec(spec_single)
    assert len(per_core) == 1
    assert _comparable(per_core[0]) == _comparable(direct)


def test_multicore_keys_leave_single_core_fingerprints_untouched():
    base = CaseSpec(workload="mcf", preset="tiny", instructions=N)
    multi = CaseSpec(workload="mcf", preset="tiny", instructions=N, cores=4)
    assert "cores" not in base.timing_fingerprint()
    assert multi.timing_fingerprint()["cores"] == 4
    assert multi.timing_fingerprint()["multicore_schema"] == 1
    assert multi.member_key(0) != multi.member_key(1)
    assert multi.label().endswith("x4")
    with pytest.raises(ValueError):
        CaseSpec(workload="mcf", preset="tiny", cores=0)


def test_run_cases_rejects_multicore_specs():
    with pytest.raises(ValueError, match="run_multicore_cases"):
        run_cases(
            [CaseSpec(workload="mcf", preset="tiny", cores=2)], jobs=1
        )


# ---------------------------------------------------------------------------
# pillar 2: contention oracle


def _no_contention_config():
    """tiny core with a shared level that cannot couple the cores:
    enormous shared L3 and MSHR pool, DRAM with latency but zero
    per-line bandwidth cost."""
    config = tiny_core()
    memory = dataclasses.replace(
        config.memory,
        l3=CacheConfig(64 * 1024 * 1024, 16, latency=20, mshrs=64),
        dram=DramConfig(latency=60, cycles_per_line=0.0),
    )
    return dataclasses.replace(config, name="tiny-nc", memory=memory)


def _disjoint_load_trace(core: int, n: int) -> "Program":
    """A barrier-free load/ALU loop over a per-core-disjoint footprint."""
    b = TraceBuilder(f"disjoint-t{core}", seed=1 + core)
    base = DATA_BASE + core * 0x100_0000
    pc0 = b.pc
    for i in range(n):
        b.at(pc0 + (i % 8) * 4)
        if i % 3 == 0:
            addr = base + (i * 7 % 512) * 64
            b.emit(asm.load(b.pc, dst=2, addr=addr, addr_srcs=(1,)))
        else:
            reg = 2 + i % 4
            b.emit(asm.alu(b.pc, dst=reg, srcs=(reg,)))
    return b.program()


def test_no_contention_engine_equals_independent_cores():
    """Infinite shared bandwidth/capacity: N-core == N solo runs."""
    config = _no_contention_config()
    traces = [_disjoint_load_trace(core, N) for core in range(3)]
    engine = MulticoreSimulator(
        traces, config, seeds=(7, 8, 9), replay=False
    ).run()
    for core, trace in enumerate(traces):
        solo = CoreSimulator(
            trace, config, seed=7 + core, replay=False
        ).run()
        assert engine.per_core[core].cycles == solo.cycles, f"core {core}"
        engine_report = engine.per_core[core].report
        solo_report = solo.report
        for stage in ("dispatch", "issue", "commit"):
            assert getattr(engine_report, stage).to_dict() == (
                getattr(solo_report, stage).to_dict()
            ), f"core {core} {stage}"


def _contended_config():
    """tiny core with a small shared L3 and slow, narrow DRAM."""
    config = tiny_core()
    memory = dataclasses.replace(
        config.memory,
        l3=CacheConfig(8 * 1024, 2, latency=20, mshrs=2),
        dram=DramConfig(latency=120, cycles_per_line=16.0),
    )
    return dataclasses.replace(config, name="tiny-ct", memory=memory)


def test_contended_cycles_monotonic_in_core_count():
    """Adding cores to a contended socket never speeds a core up, and
    the slowdown is absorbed by memory components plus Unsched.

    Every core runs the *same* program at every core count (disjoint
    footprints, no barriers), so core ``i``'s cycle count is directly
    comparable across socket sizes.
    """
    config = _contended_config()
    traces = [_disjoint_load_trace(core, N) for core in range(4)]
    per_count: dict[int, list] = {}
    for cores in (1, 2, 4):
        result = MulticoreSimulator(
            traces[:cores], config,
            seeds=tuple(7 + i for i in range(cores)), replay=False,
        ).run()
        per_count[cores] = list(result.per_core)
    for smaller, larger in ((1, 2), (2, 4)):
        for core in range(smaller):
            assert (
                per_count[larger][core].cycles
                >= per_count[smaller][core].cycles
            ), f"core {core} sped up going {smaller} -> {larger} cores"
    # Per-core stacks always sum to per-core cycles (invariant guard)...
    for cores in (2, 4):
        assert not invariants.verify_per_core_results(
            per_count[cores], context=f"contended-x{cores}"
        )
    # ...and the whole slowdown lands in the memory + Unsched components
    # (the work per core is identical, so base/ALU/branch terms cannot
    # move).
    solo = per_count[1][0].report.commit
    contended = per_count[4][0].report.commit
    delta_cycles = per_count[4][0].cycles - per_count[1][0].cycles
    assert delta_cycles > 0, "the contended config produced no contention"
    absorbed = (
        contended.get(Component.DCACHE) - solo.get(Component.DCACHE)
    ) + (
        contended.get(Component.UNSCHED) - solo.get(Component.UNSCHED)
    )
    assert absorbed == pytest.approx(delta_cycles, rel=0.01)


def conv_cfg():
    from repro.workloads.deepbench import conv_configs

    for cfg in conv_configs():
        if cfg.name == "conv-vgg-2":
            return cfg
    raise AssertionError("conv-vgg-2 config missing")


def test_unsched_absorbs_injected_imbalance():
    """A 2-core socket with one idle-ish core: the light core's barrier
    waits show up as Unsched and its stack still sums to its cycles."""
    config = tiny_core()
    traces = threaded_conv_traces(
        conv_cfg(), "fwd", 2, 3000, seed=3, imbalance=1.0
    )
    result = MulticoreSimulator(traces, config, seed=11).run()
    light, heavy = result.per_core
    assert light.committed_instrs < heavy.committed_instrs
    light_unsched = light.report.commit.get(Component.UNSCHED)
    heavy_unsched = heavy.report.commit.get(Component.UNSCHED)
    assert light_unsched > heavy_unsched > 0
    assert not invariants.verify_per_core_results(
        result.per_core, context="imbalance"
    )


# ---------------------------------------------------------------------------
# simulate_socket ordering + engine integration


def test_simulate_socket_homogeneous_thread_order_is_pinned():
    """per_thread[i] is thread i (trace seed base_seed + i), regardless
    of batch scheduling: the regression guard for the old dict-iteration
    ordering bug."""
    config = tiny_core()
    socket = simulate_socket(
        "leela", config, threads=3, instructions=N, base_seed=5,
        jobs=1, homogeneous=True,
    )
    for thread in range(3):
        direct = runner.run_spec(
            CaseSpec(
                workload="leela", config=config, instructions=N,
                seed=5 + thread, sim_seed=5 + 1000 + thread,
            )
        )
        assert _comparable(socket.per_thread[thread]) == (
            _comparable(direct)
        ), f"thread {thread} out of order"


def test_simulate_socket_engine_runs_contended_cores():
    config = tiny_core()
    socket = simulate_socket(
        "conv-vgg-2-fwd", config, threads=2, instructions=4000,
        base_seed=3, jobs=1,
    )
    assert socket.threads == 2
    assert len(socket.per_thread) == 2
    assert any(
        r.report.commit.get(Component.UNSCHED) > 0
        for r in socket.per_thread
    )
    # Aggregation follows the paper's rules on the engine results too.
    expected = sum(
        r.report.commit.total() for r in socket.per_thread
    ) / 2
    assert socket.commit.total() == pytest.approx(expected)
