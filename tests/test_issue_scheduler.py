"""Event-driven issue scheduler: differential identity and unit contracts.

The scheduler rewrite (writeback wakeups feeding a seq-ordered ready
structure, pooled ``InflightUop`` records, memoized decode, signature-
batched accounting) must be observationally invisible: every cell of the
workloads x configs x wrong-path-modes x warmup x fast-forward matrix
must produce a ``SimResult`` bit-for-bit identical to the legacy
full-RS-scan scheduler (``legacy_issue_scan=True``).
"""

from __future__ import annotations

import pytest

from repro.config.presets import broadwell, knights_landing
from repro.core.commit import CommitAccountant
from repro.core.components import Component
from repro.core.observation import CycleObservation
from repro.core.wrongpath import WrongPathMode
from repro.isa import decoder as asm
from repro.isa.uops import MicroOp, UopClass
from repro.pipeline.core import CoreSimulator
from repro.pipeline.inflight import POOL_ALU, POOL_LOAD, UopPool
from repro.workloads.base import DATA_BASE, TraceBuilder
from repro.workloads.registry import make_trace

CONFIGS = {"bdw": broadwell, "knl": knights_landing}

#: Cached traces: building one per matrix cell would dominate runtime.
_TRACES: dict[str, object] = {}


def _trace(workload: str, instructions: int = 2500):
    key = f"{workload}:{instructions}"
    if key not in _TRACES:
        _TRACES[key] = make_trace(workload, instructions, 1)
    return _TRACES[key]


def _result_dict(trace, cfg_fn, *, mode, warmup, fast_forward, legacy):
    sim = CoreSimulator(
        trace,
        cfg_fn(),
        mode=mode,
        warmup_instructions=warmup,
        fast_forward=fast_forward,
        legacy_issue_scan=legacy,
    )
    data = sim.run().to_dict()
    # Host-side telemetry: the replay engine only arms on the batched
    # event path, so its counters legitimately differ from legacy runs.
    for key in ("wall_seconds", "ff_windows", "ff_cycles_skipped",
                "replay_windows", "replay_cycles_skipped"):
        data.pop(key, None)
    return data


# ---------------------------------------------------------------------------
# Differential matrix: event scheduler vs legacy full-RS scan
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("workload", ["mcf", "exchange2"])
@pytest.mark.parametrize("cfg", ["bdw", "knl"])
@pytest.mark.parametrize("mode", list(WrongPathMode))
@pytest.mark.parametrize("warmup", [0, 600])
@pytest.mark.parametrize("fast_forward", [False, True])
def test_bitwise_identical_to_legacy_scan(
    workload, cfg, mode, warmup, fast_forward
):
    trace = _trace(workload)
    kwargs = dict(mode=mode, warmup=warmup, fast_forward=fast_forward)
    event = _result_dict(trace, CONFIGS[cfg], legacy=False, **kwargs)
    legacy = _result_dict(trace, CONFIGS[cfg], legacy=True, **kwargs)
    assert event == legacy


@pytest.mark.parametrize("workload", ["bwaves", "povray", "chase"])
def test_bitwise_identical_additional_workloads(workload):
    """Spot checks widening workload coverage (vector FP, microcode,
    DRAM-latency pointer chase) on the default cell."""
    trace = _trace(workload)
    kwargs = dict(
        mode=WrongPathMode.EXACT, warmup=0, fast_forward=True
    )
    event = _result_dict(trace, broadwell, legacy=False, **kwargs)
    legacy = _result_dict(trace, broadwell, legacy=True, **kwargs)
    assert event == legacy


# ---------------------------------------------------------------------------
# Free-list pooling contracts
# ---------------------------------------------------------------------------

def test_release_clears_edges_then_acquire_resets_classification():
    pool = UopPool()
    load = MicroOp(UopClass.LOAD, srcs=(1,), dst=2, addr=64, size=8)
    rec = pool.acquire(load, None, 0, 0, False, True, False)
    peer = pool.acquire(load, None, 1, 0, False, True, False)
    # Dirty every mutable field a pipeline pass can touch.
    rec.producers.append(peer)
    peer.consumers.append(rec)
    rec.consumers.append(peer)
    rec.waiters = [(1, peer)]
    rec.issued = rec.done = True
    rec.dcache_miss = True
    rec.mispredicted = True
    rec.parked = True

    pool.release(rec)
    assert rec.producers == [] and rec.consumers == []
    assert rec.waiters is None
    assert len(pool) == 1

    alu = MicroOp(UopClass.ALU, srcs=(), dst=3, addr=-1, size=8)
    rec2 = pool.acquire(alu, None, 2, 1, False, False, False)
    assert rec2 is rec  # recycled, not freshly built
    assert rec2.uop is alu and rec2.seq == 2 and rec2.block_id == 1
    # Classification fields all follow the new micro-op's class.
    assert rec2.is_load is False
    assert rec2.is_store is False
    assert rec2.is_branch is False
    assert rec2.multi_cycle is False
    assert rec2.pool == POOL_ALU
    assert rec2.ops == 0
    assert rec2.is_vu_nonvfp is False
    # Execution state is reset; rename assigns deps_left afresh.
    assert rec2.issued is False and rec2.done is False
    assert rec2.squashed is False
    assert rec2.dcache_miss is False
    assert rec2.mispredicted is False
    assert rec2.parked is False
    assert rec2.producers == [] and rec2.consumers == []
    assert rec2.waiters is None


def test_acquire_classifies_load_from_recycled_alu():
    pool = UopPool()
    alu = MicroOp(UopClass.ALU, srcs=(), dst=3, addr=-1, size=8)
    rec = pool.acquire(alu, None, 0, 0, False, True, False)
    pool.release(rec)
    load = MicroOp(UopClass.LOAD, srcs=(1,), dst=2, addr=64, size=8)
    rec2 = pool.acquire(load, None, 1, 0, False, True, False)
    assert rec2 is rec
    assert rec2.is_load is True
    assert rec2.pool == POOL_LOAD
    assert rec2.multi_cycle is True  # loads are always multi-cycle


def test_pool_records_enter_free_list_clean_after_full_run():
    """End-to-end invariant: every record parked in the free list after a
    mispredict-heavy run has severed edges and cleared scheduler state."""
    sim = CoreSimulator(_trace("mcf"), broadwell(), fast_forward=True)
    sim.run()
    free = sim._pool._free
    assert free  # pooling actually engaged
    for rec in free:
        assert rec.producers == []
        assert rec.consumers == []
        assert rec.waiters is None
        assert rec.parked is False


# ---------------------------------------------------------------------------
# Decode memoization
# ---------------------------------------------------------------------------

def test_decode_memo_validated_by_instruction_identity():
    """A different Instruction object at a reused pc must re-decode: the
    memo is keyed by pc but validated by object identity."""
    b = TraceBuilder("memo-identity", seed=1)
    pc0 = b.pc
    first = asm.alu(pc0, dst=2, srcs=(2,))
    b.at(pc0)
    b.emit(first)
    for _ in range(4):
        b.emit(asm.alu(b.pc, dst=3, srcs=(3,)))
    # Same pc, structurally different instruction (decoder memo key
    # differs, so a fresh object replaces the first one).
    second = asm.load(pc0, dst=4, addr=DATA_BASE)
    assert second is not first
    b.at(pc0)
    b.emit(second)
    program = b.program()

    sim = CoreSimulator(program, broadwell())
    result = sim.run()
    assert result.committed_uops == program.uop_count
    cached_instr, rows = sim.frontend._decode_cache[pc0]
    assert cached_instr is second  # memo re-validated, not stale
    assert rows[0][0] is second.uops[0]
    assert rows[0][1] is True  # is_load column follows the new decode


def test_wrong_path_synthesis_leaves_decode_memo_consistent():
    """Wrong-path uop synthesis must never pollute the decode memo: after
    a mispredict-heavy run every entry still maps its pc to the live
    Instruction and to exactly the rows a fresh decode produces."""
    trace = _trace("mcf")
    sim = CoreSimulator(trace, broadwell(), fast_forward=True)
    sim.run()
    fe = sim.frontend
    assert fe.delivered_wrong > 0  # wrong-path delivery actually ran
    by_pc = {instr.pc: instr for instr in trace.instructions}
    for pc, (instr, rows) in fe._decode_cache.items():
        assert instr is by_pc[pc]
        assert rows == fe._decode(instr)


# ---------------------------------------------------------------------------
# Batched accounting units
# ---------------------------------------------------------------------------

def test_legacy_env_var_selects_the_scan_scheduler(monkeypatch):
    trace = _trace("exchange2")
    monkeypatch.setenv("REPRO_LEGACY_ISSUE_SCAN", "1")
    assert CoreSimulator(trace, broadwell())._event is False
    monkeypatch.setenv("REPRO_LEGACY_ISSUE_SCAN", "0")
    assert CoreSimulator(trace, broadwell())._event is True
    # The explicit kwarg wins over the environment.
    monkeypatch.setenv("REPRO_LEGACY_ISSUE_SCAN", "1")
    assert CoreSimulator(
        trace, broadwell(), legacy_issue_scan=False
    )._event is True


def test_signature_batching_gated_to_exact_event_mode():
    trace = _trace("exchange2")
    assert CoreSimulator(trace, broadwell())._batch is True
    assert CoreSimulator(
        trace, broadwell(), mode=WrongPathMode.SIMPLE
    )._batch is False
    assert CoreSimulator(
        trace, broadwell(), mode=WrongPathMode.SPECULATIVE
    )._batch is False
    assert CoreSimulator(
        trace, broadwell(), legacy_issue_scan=True
    )._batch is False
    assert CoreSimulator(
        trace, broadwell(), accounting=False
    )._batch is False


def test_commit_observe_repeat_full_width_matches_loop():
    """n == W cycles batch as whole BASE increments (the bulk path the
    signature batcher leans on)."""
    width = 4
    obs = CycleObservation()
    obs.n_commit = width
    bulk, loop = CommitAccountant(width), CommitAccountant(width)
    bulk.observe_repeat(obs, 7)
    for _ in range(7):
        loop.observe(obs)
    assert bulk.stack.to_dict() == loop.stack.to_dict()
    assert bulk.stack.get(Component.BASE) == 7.0


def test_commit_observe_repeat_stall_matches_loop():
    width = 4
    obs = CycleObservation()
    obs.n_commit = 1  # partial commit: falls back to the per-cycle loop
    obs.rob_empty = False
    bulk, loop = CommitAccountant(width), CommitAccountant(width)
    bulk.observe_repeat(obs, 9)
    for _ in range(9):
        loop.observe(obs)
    assert bulk.stack.to_dict() == loop.stack.to_dict()
