"""Unit tests for the multi-stage collector and bounds analysis."""

import pytest

from repro.core.components import Component
from repro.core.multistage import MultiStageCollector, Stage
from repro.core.observation import CycleObservation
from repro.core.wrongpath import WrongPathMode


def collect(observations, width=4, **kwargs):
    collector = MultiStageCollector(width, **kwargs)
    for obs in observations:
        collector.observe(obs)
    return collector.finalize(len(observations), 100, name="test")


def test_report_has_all_stages():
    report = collect([CycleObservation(n_dispatch=4, n_issue=4, n_commit=4)])
    assert report.stack(Stage.DISPATCH) is report.dispatch
    assert report.stack(Stage.ISSUE) is report.issue
    assert report.stack(Stage.COMMIT) is report.commit
    assert set(report.stacks) == {Stage.DISPATCH, Stage.ISSUE, Stage.COMMIT}


def test_flops_accountant_optional():
    report = collect([CycleObservation()])
    assert report.flops is None
    report = collect([CycleObservation()], vector_units=2, vector_lanes=16)
    assert report.flops is not None


def test_component_bounds_span_stages():
    obs = [
        # dispatch blames icache; commit sees dcache via the head.
        CycleObservation(
            n_dispatch=0, uop_queue_empty=True, fe_reason=Component.ICACHE,
            n_issue=0, rs_empty=True,
            n_commit=4,
        ),
        CycleObservation(n_dispatch=4, n_issue=4, n_commit=0, rob_empty=True,
                         fe_reason=Component.ICACHE),
    ]
    report = collect(obs)
    low, high = report.component_bounds(Component.ICACHE)
    assert low <= high
    # dispatch saw 1 icache cycle, commit saw 1: both 1/100 CPI here.
    assert high == pytest.approx(0.01)


def test_covers_and_bound_error():
    obs = [CycleObservation(
        n_dispatch=0, uop_queue_empty=True, fe_reason=Component.ICACHE,
        n_issue=0, rs_empty=True, n_commit=4)]
    report = collect(obs)
    low, high = report.component_bounds(Component.ICACHE)
    mid = (low + high) / 2
    assert report.covers(Component.ICACHE, mid)
    assert report.bound_error(Component.ICACHE, mid) == 0.0
    assert report.bound_error(Component.ICACHE, high + 0.5) == pytest.approx(
        -0.5
    )
    assert report.bound_error(Component.ICACHE, low - 0.25) == pytest.approx(
        0.25
    )


def test_stage_error_is_signed():
    obs = [CycleObservation(
        n_dispatch=0, uop_queue_empty=True, fe_reason=Component.BPRED,
        n_issue=4, n_commit=4)]
    report = collect(obs)
    predicted = report.dispatch.component_cpi(Component.BPRED)
    assert report.stage_error(Stage.DISPATCH, Component.BPRED, 0.0) == (
        pytest.approx(predicted)
    )


def test_simple_mode_applies_base_correction_on_finalize():
    # Dispatch processes wrong-path work; commit does not.
    obs = [CycleObservation(n_dispatch=2, n_dispatch_wrong=2,
                            n_issue=2, n_issue_wrong=2, n_commit=2,
                            rob_head=None)]
    report = collect(obs, mode=WrongPathMode.SIMPLE)
    # Dispatch base must equal commit base after correction; the surplus
    # went to bpred.
    assert report.dispatch.get(Component.BASE) == pytest.approx(
        report.commit.get(Component.BASE))
    assert report.dispatch.get(Component.BPRED) == pytest.approx(0.5)


def test_all_stacks_share_cycles_and_instructions():
    report = collect([CycleObservation(n_dispatch=4, n_issue=4, n_commit=4)])
    for stage in Stage:
        stack = report.stack(stage)
        assert stack.cycles == 1
        assert stack.instructions == 100


def test_cpi_comes_from_commit_stack():
    report = collect([CycleObservation(n_commit=4)] * 10)
    assert report.cpi() == report.commit.cpi()
