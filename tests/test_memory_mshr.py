"""Unit tests for the MSHR file (outstanding-miss queueing)."""

import pytest

from repro.memory.mshr import MshrFile


def test_free_slot_grants_immediately():
    mshr = MshrFile(2)
    assert mshr.acquire(10.0) == 10.0


def test_full_file_queues_on_earliest_release():
    mshr = MshrFile(2)
    for release in (100.0, 200.0):
        assert mshr.acquire(0.0) == 0.0
        mshr.hold_until(release)
    # Both slots busy: the next miss waits for the 100-cycle release.
    assert mshr.acquire(0.0) == 100.0


def test_released_slots_are_reusable():
    mshr = MshrFile(1)
    mshr.acquire(0.0)
    mshr.hold_until(50.0)
    assert mshr.acquire(60.0) == 60.0  # released at 50


def test_grant_never_before_request():
    mshr = MshrFile(1)
    mshr.acquire(0.0)
    mshr.hold_until(5.0)
    assert mshr.acquire(10.0) == 10.0


def test_wait_statistics():
    mshr = MshrFile(1)
    mshr.acquire(0.0)
    mshr.hold_until(100.0)
    mshr.acquire(0.0)  # waits 100
    assert mshr.total_wait == pytest.approx(100.0)
    assert mshr.max_wait == pytest.approx(100.0)
    assert mshr.average_wait == pytest.approx(50.0)  # 2 acquisitions


def test_outstanding_count():
    mshr = MshrFile(4)
    for _ in range(3):
        mshr.acquire(0.0)
        mshr.hold_until(100.0)
    assert mshr.outstanding(50.0) == 3
    assert mshr.outstanding(150.0) == 0


def test_queueing_cascades():
    """Three misses through one slot serialize completely."""
    mshr = MshrFile(1)
    grants = []
    t = 0.0
    for _ in range(3):
        grant = mshr.acquire(t)
        grants.append(grant)
        mshr.hold_until(grant + 100.0)
    assert grants == [0.0, 100.0, 200.0]


def test_requires_positive_size():
    with pytest.raises(ValueError):
        MshrFile(0)
