"""Direct unit tests for pipeline building blocks (frontend, FU pool,
in-flight records, results)."""

import pytest

from repro.branch.predictors import make_predictor
from repro.config.presets import tiny_core
from repro.core.components import Component
from repro.isa import decoder as asm
from repro.isa.instructions import Program
from repro.isa.uops import UopClass
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.frontend import Frontend
from repro.pipeline.inflight import InflightUop
from repro.pipeline.resources import FunctionalUnitPool
from repro.pipeline.result import SimResult
from repro.workloads.base import TraceBuilder


def make_frontend(instrs, config=None):
    config = config or tiny_core()
    prog = Program("fe-test")
    prog.extend(instrs)
    hierarchy = MemoryHierarchy(config.memory)
    predictor = make_predictor(config.predictor, config.predictor_bits,
                               config.btb_entries)
    return Frontend(prog, config, hierarchy, predictor), config


def small_loop(n=8):
    b = TraceBuilder("loop", seed=1)
    base = b.pc
    out = []
    for i in range(n):
        b.at(base)
        out.append(b.emit(asm.alu(b.pc, dst=2, srcs=(2,))))
    return out


# --- Frontend ---------------------------------------------------------------

def test_frontend_delivers_in_program_order():
    fe, _ = make_frontend(small_loop(6))
    delivered = []
    cycle = 0
    while not fe.idle and cycle < 200:
        delivered.extend(fe.deliver(cycle, room=8))
        cycle += 1
    assert [u.seq for u in delivered] == sorted(u.seq for u in delivered)
    assert len(delivered) == 6


def test_frontend_respects_room():
    fe, _ = make_frontend(small_loop(8))
    # Drain the initial I-cache stall first.
    cycle = 0
    out = []
    while not out and cycle < 200:
        out = fe.deliver(cycle, room=1)
        cycle += 1
    assert len(out) == 1
    assert fe.deliver(cycle, room=0) == []


def test_frontend_icache_stall_reports_reason():
    fe, config = make_frontend(small_loop(4))
    # First fetch misses the cold I-cache.
    assert fe.deliver(0, room=8) == []
    assert fe.reason(1) is Component.ICACHE


def test_frontend_decode_width_limits_delivery():
    fe, config = make_frontend(small_loop(8))
    cycle = 0
    out = []
    while not out and cycle < 200:
        out = fe.deliver(cycle, room=8)
        cycle += 1
    assert len(out) <= config.decode_width


def test_frontend_microcode_rate_limit():
    b = TraceBuilder("micro", seed=1)
    instrs = [b.emit(asm.microcoded_fp(b.pc, dst=40, srcs=(32,),
                                       n_uops=4))]
    fe, config = make_frontend(instrs)
    cycle = 0
    per_cycle = []
    while not fe.idle and cycle < 300:
        per_cycle.append(len(fe.deliver(cycle, room=8)))
        cycle += 1
    assert max(per_cycle) <= config.microcode_uops_per_cycle


def test_frontend_mispredict_enters_wrong_path():
    b = TraceBuilder("br", seed=1)
    instrs = [
        b.emit(asm.alu(b.pc, dst=2, srcs=(2,))),
        # Taken branch: the cold BTB cannot know the target -> mispredict.
        b.emit(asm.branch(b.pc, taken=True, target=0x400000, srcs=(2,))),
        b.emit(asm.alu(b.pc, dst=3, srcs=(3,))),
    ]
    fe, _ = make_frontend(instrs)
    cycle = 0
    while not fe.wrong_path and cycle < 300:
        fe.deliver(cycle, room=8)
        cycle += 1
    assert fe.wrong_path
    assert fe.resolving_branch is not None
    # Wrong-path delivery produces synthesized micro-ops.
    wrong = fe.deliver(cycle, room=8)
    assert wrong and all(u.wrong_path for u in wrong)
    # Redirect ends wrong-path mode and pays the penalty.
    fe.redirect(cycle)
    assert not fe.wrong_path
    assert fe.deliver(cycle + 1, room=8) == []
    assert fe.reason(cycle + 1) is Component.BPRED


def test_frontend_sync_blocks_until_released():
    b = TraceBuilder("sync", seed=1)
    instrs = [
        b.emit(asm.sync_yield(b.pc, 10)),
        b.emit(asm.alu(b.pc, dst=2, srcs=(2,))),
    ]
    fe, _ = make_frontend(instrs)
    cycle = 0
    delivered = []
    while not delivered and cycle < 300:
        delivered = fe.deliver(cycle, room=8)
        cycle += 1
    assert fe.waiting_sync is not None
    assert fe.deliver(cycle, room=8) == []
    assert fe.reason(cycle) is Component.UNSCHED
    fe.sync_released()
    assert fe.waiting_sync is None


def test_frontend_idle_after_trace():
    fe, _ = make_frontend(small_loop(2))
    for cycle in range(300):
        fe.deliver(cycle, room=8)
    assert fe.idle
    assert fe.reason(301) is None


# --- FunctionalUnitPool -------------------------------------------------------

def test_fu_pool_per_cycle_slots():
    config = tiny_core()  # 1 load port
    pool = FunctionalUnitPool(config)
    pool.new_cycle(0)
    load = InflightUop(
        asm.load(0, dst=2, addr=64).uops[0], None, 0, 0
    )
    assert pool.can_issue(load.pool)
    pool.take(load.pool, UopClass.LOAD, 0, 1)
    assert not pool.can_issue(load.pool)
    pool.new_cycle(1)
    assert pool.can_issue(load.pool)


def test_fu_pool_unpipelined_divide_blocks_unit():
    config = tiny_core()  # 1 mul unit; DIV unpipelined, latency 20
    pool = FunctionalUnitPool(config)
    div = InflightUop(asm.div(0, dst=2).uops[0], None, 0, 0)
    pool.new_cycle(0)
    assert pool.can_issue(div.pool)
    pool.take(div.pool, UopClass.DIV, 0, 20)
    pool.new_cycle(5)
    assert not pool.can_issue(div.pool)  # still busy
    pool.new_cycle(20)
    assert pool.can_issue(div.pool)      # released


def test_fu_pool_issue_width_caps_everything():
    config = tiny_core()  # issue width 4
    pool = FunctionalUnitPool(config)
    pool.new_cycle(0)
    alu = InflightUop(asm.alu(0, dst=2).uops[0], None, 0, 0)
    taken = 0
    while pool.can_issue(alu.pool):
        pool.take(alu.pool, UopClass.ALU, 0, 1)
        taken += 1
    assert taken <= config.issue_width


# --- InflightUop / SimResult --------------------------------------------------

def test_inflight_first_unfinished_producer():
    producer_a = InflightUop(asm.alu(0, dst=2).uops[0], None, 0, 0)
    producer_b = InflightUop(asm.mul(4, dst=3).uops[0], None, 1, 0)
    consumer = InflightUop(asm.alu(8, dst=4, srcs=(2, 3)).uops[0],
                           None, 2, 0)
    consumer.producers = [producer_a, producer_b]
    assert consumer.first_unfinished_producer() is producer_a
    producer_a.done = True
    assert consumer.first_unfinished_producer() is producer_b
    producer_b.done = True
    assert consumer.first_unfinished_producer() is None


def test_simresult_derived_metrics():
    result = SimResult(
        name="x", config_name="y", cycles=200, committed_uops=100,
        committed_instrs=80, branch_lookups=10, branch_mispredicts=2,
        wall_seconds=0.5,
    )
    assert result.cpi == pytest.approx(2.0)
    assert result.ipc == pytest.approx(0.5)
    assert result.cpi_per_instr == pytest.approx(2.5)
    assert result.mispredict_rate == pytest.approx(0.2)
    assert result.simulated_uops_per_second == pytest.approx(200.0)
    assert result.summary()["cpi"] == pytest.approx(2.0)


def test_simresult_zero_guards():
    result = SimResult(name="x", config_name="y", cycles=0,
                       committed_uops=0, committed_instrs=0)
    assert result.cpi == 0.0
    assert result.ipc == 0.0
    assert result.mispredict_rate == 0.0
    assert result.simulated_uops_per_second == 0.0
