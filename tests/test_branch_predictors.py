"""Unit tests for the branch prediction substrate."""

import pytest

from repro.branch.predictors import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    BranchTargetBuffer,
    GsharePredictor,
    TournamentPredictor,
    make_predictor,
)


def _train(predictor, pc, outcomes, target=0x2000):
    """Run a direction sequence through predict/update; return accuracy."""
    correct = 0
    for taken in outcomes:
        prediction = predictor.predict(pc)
        if prediction.correct_for(taken, target):
            correct += 1
        predictor.update(pc, taken, target)
    return correct / len(outcomes)


def test_btb_learns_targets():
    btb = BranchTargetBuffer(64)
    assert btb.lookup(0x100) is None
    btb.update(0x100, 0x500)
    assert btb.lookup(0x100) == 0x500


def test_btb_tag_mismatch_misses():
    btb = BranchTargetBuffer(4)
    btb.update(0x100, 0x500)
    # Fill many other branches so 0x100's slot can be stolen; a stolen slot
    # must return None, never a wrong target for the stored pc.
    for pc in range(0x1000, 0x3000, 0x40):
        btb.update(pc, pc + 64)
    looked = btb.lookup(0x100)
    assert looked in (None, 0x500)


def test_btb_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        BranchTargetBuffer(100)


def test_always_taken_never_learns():
    predictor = AlwaysTakenPredictor()
    accuracy = _train(predictor, 0x100, [False] * 50)
    assert accuracy == 0.0


def test_bimodal_learns_bias():
    predictor = BimodalPredictor(bits=10)
    accuracy = _train(predictor, 0x100, [True] * 100)
    assert accuracy > 0.95


def test_bimodal_hysteresis_tolerates_rare_flips():
    predictor = BimodalPredictor(bits=10)
    # Mostly taken with a single not-taken blip: 2-bit counters should not
    # flip the prediction after one contrary outcome.
    outcomes = [True] * 20 + [False] + [True] * 20
    accuracy = _train(predictor, 0x100, outcomes)
    assert accuracy > 0.9


def test_gshare_learns_alternating_pattern():
    predictor = GsharePredictor(bits=12)
    outcomes = [i % 2 == 0 for i in range(400)]
    # Skip warmup: measure the tail.
    _train(predictor, 0x100, outcomes[:100])
    accuracy = _train(predictor, 0x100, outcomes[100:])
    assert accuracy > 0.95


def test_gshare_learns_periodic_pattern():
    predictor = GsharePredictor(bits=12)
    outcomes = ([True, True, False] * 100)
    _train(predictor, 0x100, outcomes)
    accuracy = _train(predictor, 0x100, outcomes)
    assert accuracy > 0.9


def test_tournament_beats_components_on_mixed_workload():
    """The chooser should route biased branches to bimodal and patterned
    branches to gshare, doing at least as well as the worst component."""
    tournament = TournamentPredictor(bits=12)
    accuracy = _train(tournament, 0x100, [True] * 200)
    assert accuracy > 0.95


def test_aligned_branch_pcs_do_not_alias():
    """Block-aligned code (branches every 512 B) must spread across the
    tables — the multiplicative pc hash regression test."""
    predictor = BimodalPredictor(bits=12)
    pcs = [0x400000 + i * 512 for i in range(128)]
    # Train every branch strongly not-taken.
    for _ in range(4):
        for pc in pcs:
            predictor.update(pc, False, 0)
    wrong = sum(1 for pc in pcs if predictor.predict(pc).taken)
    assert wrong < len(pcs) // 8


def test_mispredict_bookkeeping():
    predictor = GsharePredictor()
    predictor.record(True)
    predictor.record(False)
    assert predictor.lookups == 2
    assert predictor.mispredicts == 1
    assert predictor.mispredict_rate == pytest.approx(0.5)


def test_make_predictor_registry():
    for name in ("perfect", "always-taken", "bimodal", "gshare",
                 "tournament"):
        assert make_predictor(name) is not None
    with pytest.raises(KeyError):
        make_predictor("tage")


def test_prediction_correct_for_requires_target_on_taken():
    predictor = GsharePredictor(bits=8)
    predictor.update(0x100, True, 0x900)
    predictor.update(0x100, True, 0x900)
    prediction = predictor.predict(0x100)
    if prediction.taken:
        assert prediction.correct_for(True, 0x900)
        assert not prediction.correct_for(True, 0x800)
