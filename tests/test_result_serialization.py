"""SimResult and everything it transitively holds must round-trip.

Worker processes and the disk cache move results exclusively through
``to_dict``/``from_dict``, so a field silently dropped there corrupts
every parallel or cached experiment.  These tests pin (a) exact
round-trip equality and (b) that the payload covers every dataclass
field, so adding a field without serializing it fails loudly.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.core.multistage import MultiStageReport
from repro.core.stack import CpiStack, FlopsStack
from repro.core.topdown import TopDownReport
from repro.experiments.runner import clear_cache, get_trace
from repro.pipeline.core import simulate
from repro.pipeline.result import ACCOUNTING_SCHEMA_VERSION, SimResult

N = 3000


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.fixture(scope="module")
def result(tiny_module_config):
    trace = get_trace("gemm-train-1760-knl", N, 1)
    return simulate(
        trace,
        tiny_module_config,
        warmup_instructions=int(len(trace) * 0.3),
        seed=778,
        topdown=True,
    )


@pytest.fixture(scope="module")
def tiny_module_config():
    from repro.config.presets import tiny_core

    return tiny_core()


def _assert_payload_covers_fields(obj, payload, *, skip=()):
    """Every dataclass field must appear in the serialized payload."""
    for field in dataclasses.fields(obj):
        if field.name in skip:
            continue
        assert field.name in payload, (
            f"{type(obj).__name__}.{field.name} missing from to_dict() — "
            "serialize it or the cache/workers will drop it"
        )


def test_simresult_payload_covers_every_field(result):
    payload = result.to_dict()
    _assert_payload_covers_fields(result, payload)
    assert payload["schema"] == ACCOUNTING_SCHEMA_VERSION
    report = result.report
    assert report is not None
    _assert_payload_covers_fields(report, payload["report"])
    for stage in ("dispatch", "issue", "commit"):
        _assert_payload_covers_fields(
            getattr(report, stage), payload["report"][stage]
        )
    assert report.flops is not None, "FLOPS workload must produce a stack"
    _assert_payload_covers_fields(report.flops, payload["report"]["flops"])
    assert report.topdown is not None
    _assert_payload_covers_fields(
        report.topdown, payload["report"]["topdown"]
    )


def test_simresult_round_trip_is_lossless(result):
    restored = SimResult.from_dict(result.to_dict())
    assert restored.to_dict() == result.to_dict()
    assert restored.cycles == result.cycles
    assert restored.committed_uops == result.committed_uops
    assert restored.committed_instrs == result.committed_instrs
    assert restored.memory_stats == result.memory_stats
    assert restored.branch_lookups == result.branch_lookups
    assert restored.branch_mispredicts == result.branch_mispredicts
    assert restored.wrong_path_uops == result.wrong_path_uops
    assert restored.wall_seconds == result.wall_seconds
    assert restored.cpi == result.cpi


def test_round_trip_restores_canonical_enum_members(result):
    """Counters must be keyed by the singleton enum members again.

    The accountants use identity hashing (``__hash__ = object.__hash__``),
    so deserialization must map names back onto the canonical members —
    equal-but-distinct enum objects would make every lookup miss.
    """
    restored = SimResult.from_dict(result.to_dict())
    report = restored.report
    assert report is not None
    original = result.report
    assert original is not None
    for stage in ("dispatch", "issue", "commit"):
        got = getattr(report, stage)
        want = getattr(original, stage)
        for component, value in want.counters.items():
            # Identity-based lookup with the canonical member must work.
            assert got.counters[component] == value
        assert got.cpi() == want.cpi()
    assert report.flops is not None and original.flops is not None
    for component, value in original.flops.counters.items():
        assert report.flops.counters[component] == value


def test_stack_round_trips():
    stack = CpiStack(name="w", stage="issue", cycles=100.0, instructions=40)
    from repro.core.components import Component

    stack.add(Component.BASE, 60.0)
    stack.add(Component.DCACHE, 40.0)
    restored = CpiStack.from_dict(stack.to_dict())
    assert restored.to_dict() == stack.to_dict()
    assert restored.component_cpi(Component.DCACHE) == stack.component_cpi(
        Component.DCACHE
    )

    from repro.core.components import FlopsComponent

    flops = FlopsStack(name="w", cycles=100.0, flops=320.0,
                       peak_per_cycle=8.0)
    flops.add(FlopsComponent.BASE, 40.0)
    flops.add(FlopsComponent.MEM, 60.0)
    restored_flops = FlopsStack.from_dict(flops.to_dict())
    assert restored_flops.to_dict() == flops.to_dict()
    assert restored_flops.gflops(2.0) == flops.gflops(2.0)


def test_multistage_report_round_trip_without_optionals(result):
    report = result.report
    assert report is not None
    bare = MultiStageReport(
        name=report.name,
        dispatch=report.dispatch,
        issue=report.issue,
        commit=report.commit,
        flops=None,
        topdown=None,
    )
    restored = MultiStageReport.from_dict(bare.to_dict())
    assert restored.flops is None
    assert restored.topdown is None
    assert restored.to_dict() == bare.to_dict()


def test_topdown_report_round_trip(result):
    report = result.report
    assert report is not None and report.topdown is not None
    topdown = report.topdown
    restored = TopDownReport.from_dict(topdown.to_dict())
    assert restored.to_dict() == topdown.to_dict()
    assert restored.level1_fractions() == topdown.level1_fractions()


def test_simresult_pickles(result):
    """Worker transport and the disk cache both pickle the payload."""
    payload = pickle.loads(pickle.dumps(result.to_dict()))
    restored = SimResult.from_dict(payload)
    assert restored.to_dict() == result.to_dict()


def test_from_dict_rejects_stale_schema(result):
    payload = result.to_dict()
    payload["schema"] = ACCOUNTING_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema"):
        SimResult.from_dict(payload)
