"""Unit tests for the Table II stage accountants.

These drive the accountants with hand-built :class:`CycleObservation`
sequences — the accountants are pure per-cycle algorithms, independent of
the pipeline, exactly as in the paper's Table II pseudocode.
"""

import pytest
from hypothesis import given, strategies as st

from repro.core.blame import classify_blamed_uop, frontend_component
from repro.core.commit import CommitAccountant
from repro.core.components import Component
from repro.core.dispatch import DispatchAccountant
from repro.core.issue import IssueAccountant
from repro.core.observation import CycleObservation
from repro.core.wrongpath import WrongPathMode


class FakeUop:
    """Minimal BlamableUop implementation."""

    def __init__(self, *, is_load=False, dcache_miss=False, issued=True,
                 done=False, multi_cycle=False, block_id=0):
        self.is_load = is_load
        self.dcache_miss = dcache_miss
        self.issued = issued
        self.done = done
        self.multi_cycle = multi_cycle
        self.block_id = block_id


MISSING_LOAD = dict(is_load=True, dcache_miss=True, issued=True)
EXECUTING_DIV = dict(multi_cycle=True, issued=True)
WAITING_ALU = dict(issued=False)


# --- blame classification (Table II lines 10-16) ---------------------------

def test_blame_missing_load_is_dcache():
    assert classify_blamed_uop(FakeUop(**MISSING_LOAD)) is Component.DCACHE


def test_blame_l1_hitting_load_in_flight_is_alu():
    uop = FakeUop(is_load=True, dcache_miss=False, issued=True)
    assert classify_blamed_uop(uop) is Component.ALU_LAT


def test_blame_unissued_load_is_depend():
    uop = FakeUop(is_load=True, issued=False)
    assert classify_blamed_uop(uop) is Component.DEPEND


def test_blame_multicycle_executing_is_alu():
    assert classify_blamed_uop(FakeUop(**EXECUTING_DIV)) is Component.ALU_LAT


def test_blame_waiting_single_cycle_is_depend():
    assert classify_blamed_uop(FakeUop(**WAITING_ALU)) is Component.DEPEND


def test_frontend_component_passthrough_and_fallback():
    assert frontend_component(Component.ICACHE) is Component.ICACHE
    assert frontend_component(Component.BPRED) is Component.BPRED
    assert frontend_component(Component.MICROCODE) is Component.MICROCODE
    assert frontend_component(Component.UNSCHED) is Component.UNSCHED
    assert frontend_component(None) is Component.OTHER
    assert frontend_component(Component.DCACHE) is Component.OTHER


# --- dispatch accountant -----------------------------------------------------

def test_dispatch_full_width_is_all_base():
    acct = DispatchAccountant(width=4)
    for _ in range(10):
        acct.observe(CycleObservation(n_dispatch=4))
    stack = acct.finalize(10, 40)
    assert stack.get(Component.BASE) == pytest.approx(10.0)
    assert stack.total() == pytest.approx(10.0)


def test_dispatch_fe_empty_icache():
    acct = DispatchAccountant(width=4)
    acct.observe(CycleObservation(
        n_dispatch=0, uop_queue_empty=True, fe_reason=Component.ICACHE))
    stack = acct.finalize(1, 0)
    assert stack.get(Component.ICACHE) == pytest.approx(1.0)


def test_dispatch_partial_cycle_splits_base_and_stall():
    acct = DispatchAccountant(width=4)
    acct.observe(CycleObservation(
        n_dispatch=1, uop_queue_empty=True, fe_reason=Component.BPRED))
    stack = acct.finalize(1, 1)
    assert stack.get(Component.BASE) == pytest.approx(0.25)
    assert stack.get(Component.BPRED) == pytest.approx(0.75)


def test_dispatch_window_full_blames_rob_head():
    acct = DispatchAccountant(width=4)
    acct.observe(CycleObservation(
        n_dispatch=0, window_full=True, rob_head=FakeUop(**MISSING_LOAD)))
    stack = acct.finalize(1, 0)
    assert stack.get(Component.DCACHE) == pytest.approx(1.0)


def test_dispatch_window_full_with_done_head_is_other():
    acct = DispatchAccountant(width=4)
    acct.observe(CycleObservation(
        n_dispatch=0, window_full=True,
        rob_head=FakeUop(done=True, issued=True)))
    stack = acct.finalize(1, 0)
    assert stack.get(Component.OTHER) == pytest.approx(1.0)


def test_dispatch_wrong_path_cycles_are_bpred_in_exact_mode():
    acct = DispatchAccountant(width=4, mode=WrongPathMode.EXACT)
    acct.observe(CycleObservation(
        n_dispatch=0, n_dispatch_wrong=4, wrong_path_active=True))
    stack = acct.finalize(1, 0)
    assert stack.get(Component.BPRED) == pytest.approx(1.0)


def test_dispatch_simple_mode_counts_wrong_path_as_base():
    acct = DispatchAccountant(width=4, mode=WrongPathMode.SIMPLE)
    acct.observe(CycleObservation(
        n_dispatch=0, n_dispatch_wrong=4, wrong_path_active=True))
    stack = acct.finalize(1, 0)
    assert stack.get(Component.BASE) == pytest.approx(1.0)


def test_dispatch_unscheduled_cycle():
    acct = DispatchAccountant(width=4)
    acct.observe(CycleObservation(unscheduled=True))
    stack = acct.finalize(1, 0)
    assert stack.get(Component.UNSCHED) == pytest.approx(1.0)


def test_dispatch_fe_priority_over_window():
    """Table II checks FE-empty before the window (lines 4 then 9)."""
    acct = DispatchAccountant(width=4)
    acct.observe(CycleObservation(
        n_dispatch=0, uop_queue_empty=True, fe_reason=Component.ICACHE,
        window_full=True, rob_head=FakeUop(**MISSING_LOAD)))
    stack = acct.finalize(1, 0)
    assert stack.get(Component.ICACHE) == pytest.approx(1.0)
    assert stack.get(Component.DCACHE) == 0.0


# --- issue accountant --------------------------------------------------------

def test_issue_producer_lookup_blames_executing_producer():
    acct = IssueAccountant(width=4)
    acct.observe(CycleObservation(
        n_issue=0, first_nonready_producer=FakeUop(**EXECUTING_DIV)))
    stack = acct.finalize(1, 0)
    assert stack.get(Component.ALU_LAT) == pytest.approx(1.0)


def test_issue_producer_load_blames_dcache():
    acct = IssueAccountant(width=4)
    acct.observe(CycleObservation(
        n_issue=0, first_nonready_producer=FakeUop(**MISSING_LOAD)))
    stack = acct.finalize(1, 0)
    assert stack.get(Component.DCACHE) == pytest.approx(1.0)


def test_issue_structural_stall_is_other():
    """Only the issue stage can see structural stalls (Sec. V-A)."""
    acct = IssueAccountant(width=4)
    acct.observe(CycleObservation(n_issue=1, structural_stall=True))
    stack = acct.finalize(1, 1)
    assert stack.get(Component.OTHER) == pytest.approx(0.75)


def test_issue_rs_empty_takes_frontend_reason():
    acct = IssueAccountant(width=4)
    acct.observe(CycleObservation(
        n_issue=0, rs_empty=True, fe_reason=Component.MICROCODE))
    stack = acct.finalize(1, 0)
    assert stack.get(Component.MICROCODE) == pytest.approx(1.0)


def test_issue_rs_empty_window_full_blames_head():
    acct = IssueAccountant(width=4)
    acct.observe(CycleObservation(
        n_issue=0, rs_empty=True, window_full=True,
        rob_head=FakeUop(**MISSING_LOAD)))
    stack = acct.finalize(1, 0)
    assert stack.get(Component.DCACHE) == pytest.approx(1.0)


def test_issue_wider_stage_carries_excess():
    """Issue width > W: f > 1 transfers to the next cycle (Sec. III-A)."""
    acct = IssueAccountant(width=4)
    acct.observe(CycleObservation(n_issue=8))
    acct.observe(CycleObservation(
        n_issue=0, first_nonready_producer=FakeUop(**EXECUTING_DIV)))
    stack = acct.finalize(2, 8)
    assert stack.get(Component.BASE) == pytest.approx(2.0)
    assert stack.get(Component.ALU_LAT) == 0.0


# --- commit accountant -------------------------------------------------------

def test_commit_rob_empty_frontend_blame():
    acct = CommitAccountant(width=4)
    acct.observe(CycleObservation(
        n_commit=0, rob_empty=True, fe_reason=Component.ICACHE))
    stack = acct.finalize(1, 0)
    assert stack.get(Component.ICACHE) == pytest.approx(1.0)


def test_commit_rob_empty_during_wrong_path_is_bpred():
    acct = CommitAccountant(width=4)
    acct.observe(CycleObservation(
        n_commit=0, rob_empty=True, wrong_path_active=True))
    stack = acct.finalize(1, 0)
    assert stack.get(Component.BPRED) == pytest.approx(1.0)


def test_commit_head_not_done_blames_head():
    acct = CommitAccountant(width=4)
    acct.observe(CycleObservation(
        n_commit=1, rob_head=FakeUop(**WAITING_ALU)))
    stack = acct.finalize(1, 1)
    assert stack.get(Component.DEPEND) == pytest.approx(0.75)


def test_commit_done_head_width_limited_is_other():
    acct = CommitAccountant(width=4)
    acct.observe(CycleObservation(
        n_commit=2, rob_head=FakeUop(done=True)))
    stack = acct.finalize(1, 2)
    assert stack.get(Component.OTHER) == pytest.approx(0.5)


# --- the invariant, under arbitrary observation streams ---------------------

_components = st.sampled_from([None, Component.ICACHE, Component.BPRED,
                               Component.MICROCODE])
_heads = st.sampled_from([None,
                          FakeUop(**MISSING_LOAD),
                          FakeUop(**EXECUTING_DIV),
                          FakeUop(**WAITING_ALU)])


@st.composite
def observations(draw):
    return CycleObservation(
        unscheduled=draw(st.booleans()),
        wrong_path_active=draw(st.booleans()),
        fe_reason=draw(_components),
        n_dispatch=draw(st.integers(0, 4)),
        n_dispatch_wrong=draw(st.integers(0, 4)),
        uop_queue_empty=draw(st.booleans()),
        window_full=draw(st.booleans()),
        n_issue=draw(st.integers(0, 8)),
        n_issue_wrong=draw(st.integers(0, 8)),
        rs_empty=draw(st.booleans()),
        structural_stall=draw(st.booleans()),
        first_nonready_producer=draw(_heads),
        n_commit=draw(st.integers(0, 4)),
        rob_empty=draw(st.booleans()),
        rob_head=draw(_heads),
    )


@given(st.lists(observations(), min_size=1, max_size=100))
def test_every_accountant_sums_to_cycle_count(obs_list):
    """Each accountant adds exactly 1.0 per cycle, whatever it observes:
    the width carry only moves base cycles between adjacent cycles, never
    creates or destroys them."""
    for make in (
        lambda: DispatchAccountant(4),
        lambda: IssueAccountant(4),
        lambda: CommitAccountant(4),
        lambda: DispatchAccountant(4, WrongPathMode.SIMPLE),
        lambda: DispatchAccountant(4, WrongPathMode.SPECULATIVE),
    ):
        acct = make()
        for obs in obs_list:
            acct.observe(obs)
        stack = acct.finalize(len(obs_list), 1)
        assert stack.total() == pytest.approx(len(obs_list))
