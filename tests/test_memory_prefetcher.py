"""Unit tests for the stream prefetcher."""

from repro.config.cores import PrefetcherConfig
from repro.memory.prefetcher import StreamPrefetcher


def make_pf(**kwargs):
    defaults = dict(enabled=True, streams=4, degree=2, distance=8,
                    train_threshold=2)
    defaults.update(kwargs)
    return StreamPrefetcher(PrefetcherConfig(**defaults), line_bytes=64)


def test_disabled_prefetcher_is_silent():
    pf = make_pf(enabled=False)
    for line in range(10):
        assert pf.on_demand_access(line) == []


def test_needs_training_before_issuing():
    pf = make_pf(train_threshold=2)
    assert pf.on_demand_access(0) == []   # allocate stream
    assert pf.on_demand_access(1) == []   # confidence 1 < 2
    assert pf.on_demand_access(2) != []   # trained


def test_prefetches_ahead_of_demand():
    pf = make_pf()
    for line in range(3):
        pf.on_demand_access(line)
    targets = pf.on_demand_access(3)
    assert targets
    assert all(t > 3 for t in targets)
    assert all(t <= 3 + 8 for t in targets)  # within distance


def test_descending_stream():
    pf = make_pf()
    issued = []
    for line in range(100, 90, -1):
        issued.extend(pf.on_demand_access(line))
    assert issued
    assert all(t < 91 for t in issued[-2:])


def test_no_duplicate_lines_within_stream():
    pf = make_pf(degree=2, distance=16)
    issued = []
    for line in range(20):
        issued.extend(pf.on_demand_access(line))
    assert len(issued) == len(set(issued))


def test_direction_flip_resets_confidence():
    pf = make_pf()
    for line in range(4):
        pf.on_demand_access(line)
    # Direction change: no prefetch on the flip itself; the stream then
    # retrains downward and resumes after train_threshold strides.
    assert pf.on_demand_access(2) == []
    retrained = pf.on_demand_access(1)
    assert all(t < 1 for t in retrained)


def test_random_accesses_do_not_train():
    pf = make_pf()
    issued = []
    # Lines in one region but with alternating directions.
    for line in (0, 5, 1, 6, 2, 7, 0, 5):
        issued.extend(pf.on_demand_access(line))
    assert issued == []


def test_stream_table_is_bounded():
    pf = make_pf(streams=2)
    # Touch many distinct regions (region = 4 KB = 64 lines).
    for region in range(10):
        pf.on_demand_access(region * 64)
    assert len(pf._streams) <= 2


def test_trigger_and_issue_stats():
    pf = make_pf()
    for line in range(10):
        pf.on_demand_access(line)
    assert pf.triggers > 0
    assert pf.issued > 0
