"""Fault-injection tests for the supervised batch scheduler.

Every supervision path — crash retry, hang deadline, broken-pool rebuild
with serial fallback, partial batches with persisted failure reports and
targeted re-runs — is driven deterministically through the
:data:`repro.experiments.supervisor.fault_plan` hook.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments import parallel, supervisor
from repro.experiments.cache import TELEMETRY, CaseSpec
from repro.experiments.parallel import run_cases
from repro.experiments.runner import clear_cache
from repro.experiments.supervisor import (
    BatchFailure,
    case_deadline,
    resolve_case_timeout,
)

#: Small enough that a faulted case retries in well under a second.
N = 2000


def _start_method() -> str:
    """Pool start method for these tests (CI runs them under spawn too)."""
    return os.environ.get("REPRO_TEST_START_METHOD", "fork")


@pytest.fixture(autouse=True)
def _fresh_harness():
    clear_cache()
    TELEMETRY.reset()
    supervisor.clear_failures()
    supervisor.fault_plan = None
    yield
    supervisor.fault_plan = None
    supervisor.clear_failures()
    clear_cache()
    TELEMETRY.reset()


def _spec(seed: int = 1) -> CaseSpec:
    return CaseSpec(workload="mcf", preset="tiny", instructions=N, seed=seed)


def _comparable(result) -> dict:
    """Everything that must be identical (host timing excluded)."""
    payload = result.to_dict()
    payload.pop("wall_seconds")
    return payload


# ---------------------------------------------------------------------------
# deadlines


def test_case_deadline_scales_with_instructions():
    small = case_deadline(_spec())
    big = case_deadline(
        CaseSpec(workload="mcf", preset="tiny", instructions=10 * N)
    )
    assert big > small > 0
    # spec without explicit instructions: the workload default sizes it
    sized = case_deadline(CaseSpec(workload="mcf", preset="tiny"))
    assert sized > case_deadline(_spec())
    assert case_deadline(_spec(), 7.5) == 7.5, "override wins"


def test_case_timeout_resolution(monkeypatch):
    monkeypatch.delenv(supervisor.ENV_CASE_TIMEOUT, raising=False)
    assert resolve_case_timeout(None) is None
    assert resolve_case_timeout(3.0) == 3.0
    monkeypatch.setenv(supervisor.ENV_CASE_TIMEOUT, "12.5")
    assert resolve_case_timeout(None) == 12.5
    assert resolve_case_timeout(3.0) == 3.0, "explicit argument beats env"
    monkeypatch.setenv(supervisor.ENV_CASE_TIMEOUT, "nope")
    with pytest.raises(ValueError):
        resolve_case_timeout(None)
    monkeypatch.setenv(supervisor.ENV_CASE_TIMEOUT, "-1")
    with pytest.raises(ValueError):
        resolve_case_timeout(None)
    with pytest.raises(ValueError):
        resolve_case_timeout(0.0)


def test_fault_plan_env_parsing(monkeypatch):
    monkeypatch.setenv(
        supervisor.ENV_FAULT_PLAN,
        json.dumps({"mcf@tiny": {"kind": "crash"}}),
    )
    plan = supervisor.get_fault_plan()
    assert plan == {"mcf@tiny": {"kind": "crash"}}
    monkeypatch.setenv(supervisor.ENV_FAULT_PLAN, "{not json")
    with pytest.raises(ValueError):
        supervisor.get_fault_plan()
    monkeypatch.setenv(supervisor.ENV_FAULT_PLAN, '["a-list"]')
    with pytest.raises(ValueError):
        supervisor.get_fault_plan()


# ---------------------------------------------------------------------------
# crash retry and recovery


def test_crash_is_retried_and_recovers_serial():
    clean, = run_cases([_spec()], jobs=1)
    clear_cache()
    TELEMETRY.reset()
    supervisor.fault_plan = {"mcf@tiny": {"kind": "crash", "times": 1}}
    result, = run_cases([_spec()], jobs=1, retry_backoff=0)
    assert _comparable(result) == _comparable(clean), (
        "a retried case must produce the identical result"
    )
    stats = parallel.LAST_BATCH
    assert stats.retries >= 1 and stats.failures == 0
    assert not supervisor.failed_keys(), "a recovered case leaves no record"


def test_crash_is_retried_and_recovers_pool():
    specs = [_spec(seed) for seed in (1, 2, 3)]
    clean = [_comparable(r) for r in run_cases(specs, jobs=1)]
    clear_cache()
    TELEMETRY.reset()
    supervisor.fault_plan = {specs[1].label(): {"kind": "crash", "times": 1}}
    results = run_cases(
        specs, jobs=2, mp_start_method=_start_method(), retry_backoff=0
    )
    assert [_comparable(r) for r in results] == clean
    assert parallel.LAST_BATCH.retries >= 1
    assert TELEMETRY.sim_invocations == len(specs), (
        "pool-side telemetry must count each successful simulation once"
    )


def test_env_fault_plan_reaches_workers(monkeypatch):
    monkeypatch.setenv(
        supervisor.ENV_FAULT_PLAN,
        json.dumps({"*": {"kind": "crash", "times": 99}}),
    )
    with pytest.raises(BatchFailure):
        run_cases([_spec()], jobs=1, max_attempts=2, retry_backoff=0)
    assert supervisor.failed_keys() == {_spec().key()}


# ---------------------------------------------------------------------------
# hangs and deadlines


def test_serial_hang_hits_deadline():
    supervisor.fault_plan = {"*": {"kind": "hang", "seconds": 30.0,
                                   "times": 9}}
    results = run_cases(
        [_spec()], jobs=1, keep_going=True, case_timeout=0.3,
        max_attempts=1, retry_backoff=0,
    )
    assert results == [None]
    stats = parallel.LAST_BATCH
    assert stats.timeouts == 1 and stats.failures == 1
    report = stats.failure_reports[_spec().key()]
    assert report.classification == "timeout"
    assert report.attempts[-1].executor == "serial"


def test_pool_hang_does_not_stall_batch():
    hung, healthy = _spec(1), _spec(2)
    supervisor.fault_plan = {
        hung.key()[:16]: {"kind": "hang", "seconds": 5.0, "times": 9}
    }
    results = run_cases(
        [hung, healthy], jobs=2, mp_start_method=_start_method(),
        keep_going=True, case_timeout=0.5, max_attempts=1, retry_backoff=0,
    )
    assert results[0] is None, "the hung case times out"
    assert results[1] is not None, "the healthy case still completes"
    assert parallel.LAST_BATCH.timeouts >= 1
    record = supervisor.load_failure(hung.key())
    assert record is not None and record["classification"] == "timeout"


# ---------------------------------------------------------------------------
# broken pools


def test_worker_death_rebuilds_pool_then_falls_back_serial():
    specs = [_spec(seed) for seed in (1, 2)]
    clean = [_comparable(r) for r in run_cases(specs, jobs=1)]
    clear_cache()
    TELEMETRY.reset()
    # Two abort rounds: the first breaks the pool (rebuild), the second
    # breaks the rebuilt pool (fall back to in-process serial, where
    # abort degrades to a plain crash and the third attempt succeeds).
    supervisor.fault_plan = {"*": {"kind": "abort", "times": 2}}
    results = run_cases(
        specs, jobs=2, mp_start_method=_start_method(), retry_backoff=0
    )
    assert [_comparable(r) for r in results] == clean
    stats = parallel.LAST_BATCH
    assert stats.pool_rebuilds >= 1
    assert stats.serial_fallback
    assert stats.failures == 0


# ---------------------------------------------------------------------------
# partial batches and targeted re-runs


def test_keep_going_partial_batch_and_targeted_rerun():
    bad, good = _spec(1), _spec(2)
    supervisor.fault_plan = {
        bad.key()[:16]: {"kind": "crash", "times": 99}
    }
    results = run_cases(
        [bad, good], jobs=1, keep_going=True, max_attempts=2,
        retry_backoff=0,
    )
    assert results[0] is None and results[1] is not None
    record = supervisor.load_failure(bad.key())
    assert record is not None
    assert record["classification"] == "crash"
    assert record["label"] == bad.label()
    assert len(record["attempts"]) == 2
    assert "injected crash" in record["attempts"][0]["error"]
    assert record["spec"]["workload"] == "mcf"

    # Targeted re-run: only the failed key needs recomputing (the good
    # case is served from cache — zero extra simulator invocations).
    supervisor.fault_plan = None
    TELEMETRY.reset()
    assert supervisor.failed_keys() == {bad.key()}
    rerun = run_cases([bad, good], jobs=1)
    assert all(r is not None for r in rerun)
    assert TELEMETRY.sim_invocations == 1
    assert not supervisor.failed_keys(), "success clears the stale record"


def test_batch_failure_raised_without_keep_going():
    supervisor.fault_plan = {"*": {"kind": "crash", "times": 99}}
    with pytest.raises(BatchFailure) as excinfo:
        run_cases([_spec()], jobs=1, max_attempts=2, retry_backoff=0)
    assert "mcf@tiny" in str(excinfo.value)
    assert "crash" in str(excinfo.value)
    assert _spec().key() in excinfo.value.failures


# ---------------------------------------------------------------------------
# corrupted payloads


def test_garbage_payload_classified_corrupt_and_not_cached():
    supervisor.fault_plan = {"*": {"kind": "corrupt", "style": "garbage",
                                   "times": 99}}
    results = run_cases(
        [_spec()], jobs=1, keep_going=True, max_attempts=2, retry_backoff=0
    )
    assert results == [None]
    report = parallel.LAST_BATCH.failure_reports[_spec().key()]
    assert report.classification == "corrupt-payload"
    from repro.experiments.cache import get_disk_cache

    assert get_disk_cache().get(_spec().key()) is None


def test_corrupt_cycles_classified_invariant():
    supervisor.fault_plan = {"*": {"kind": "corrupt", "style": "cycles",
                                   "times": 99}}
    results = run_cases(
        [_spec()], jobs=1, keep_going=True, max_attempts=2, retry_backoff=0
    )
    assert results == [None]
    report = parallel.LAST_BATCH.failure_reports[_spec().key()]
    assert report.classification == "invariant"


def test_corrupt_schema_payload_is_rejected():
    supervisor.fault_plan = {"*": {"kind": "corrupt", "style": "schema",
                                   "times": 1}}
    result, = run_cases([_spec()], jobs=1, retry_backoff=0)
    assert result is not None, "retry after the one corrupted attempt"
    assert parallel.LAST_BATCH.retries >= 1


# ---------------------------------------------------------------------------
# interrupts


def test_keyboard_interrupt_propagates_and_harness_survives():
    supervisor.fault_plan = {"*": {"kind": "interrupt", "times": 1}}
    with pytest.raises(KeyboardInterrupt):
        run_cases([_spec()], jobs=1, retry_backoff=0)
    supervisor.fault_plan = None
    result, = run_cases([_spec()], jobs=1)
    assert result is not None, "the harness stays usable after Ctrl-C"


# ---------------------------------------------------------------------------
# failure-report store


def test_failure_store_roundtrip_and_clear():
    report = supervisor.FailureReport(
        key="deadbeef" * 8,
        label="mcf@tiny",
        classification="crash",
        attempts=[
            supervisor.Attempt(
                attempt=0, classification="crash", error="boom",
                elapsed_seconds=0.1, executor="pool",
            )
        ],
        spec={"workload": "mcf"},
    )
    supervisor.save_failure(report)
    loaded = supervisor.load_failure(report.key)
    assert loaded is not None
    assert loaded["schema"] == supervisor.FAILURE_SCHEMA
    assert loaded["attempts"][0]["error"] == "boom"
    assert [r["key"] for r in supervisor.list_failures()] == [report.key]
    assert supervisor.clear_failures() == 1
    assert supervisor.list_failures() == []
    assert supervisor.load_failure(report.key) is None


def test_list_failures_skips_unreadable_records():
    path = supervisor.failures_dir() / "broken.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("{truncated")
    assert supervisor.list_failures() == []


# ---------------------------------------------------------------------------
# spawn parity (CI also runs the whole module under spawn)


@pytest.mark.slow
def test_crash_recovery_under_spawn():
    specs = [_spec(seed) for seed in (1, 2)]
    clean = [_comparable(r) for r in run_cases(specs, jobs=1)]
    clear_cache()
    TELEMETRY.reset()
    supervisor.fault_plan = {specs[0].label(): {"kind": "crash", "times": 1}}
    results = run_cases(
        specs, jobs=2, mp_start_method="spawn", retry_backoff=0
    )
    assert [_comparable(r) for r in results] == clean
    assert parallel.LAST_BATCH.retries >= 1
