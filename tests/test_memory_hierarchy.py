"""Unit tests for the composed memory hierarchy."""

import pytest

from repro.config.cores import (
    CacheConfig,
    DramConfig,
    MemoryConfig,
    PrefetcherConfig,
    TlbConfig,
)
from repro.memory.hierarchy import MemoryHierarchy


def small_memory(prefetch=False, l2_mshrs=4):
    return MemoryConfig(
        l1i=CacheConfig(1024, 2, latency=2, mshrs=2),
        l1d=CacheConfig(1024, 2, latency=3, mshrs=4),
        l2=CacheConfig(8 * 1024, 4, latency=10, mshrs=l2_mshrs),
        l3=None,
        dram=DramConfig(latency=100, cycles_per_line=4.0),
        prefetcher=PrefetcherConfig(enabled=prefetch, distance=8, degree=2),
        itlb=TlbConfig(entries=64, miss_penalty=0),
        dtlb=TlbConfig(entries=64, miss_penalty=0),
    )


def test_l1_hit_latency():
    h = MemoryHierarchy(small_memory())
    h.dload(0x1000, 0)  # fill
    result = h.dload(0x1000, 1000)
    assert result.complete == 1003
    assert result.l1_hit
    assert result.level == "L1"


def test_cold_miss_goes_to_dram():
    h = MemoryHierarchy(small_memory())
    result = h.dload(0x1000, 0)
    assert not result.l1_hit
    assert result.level == "DRAM"
    # L1 tag (3) + DRAM (100): completion at least the DRAM latency.
    assert result.complete >= 100


def test_l2_hit_after_l1_eviction():
    h = MemoryHierarchy(small_memory())
    h.dload(0x0, 0)
    # Evict line 0 from the 2-way L1 set by loading 2 conflicting lines.
    sets = h.l1d.config.num_sets
    h.dload(sets * 64, 500)
    h.dload(2 * sets * 64, 1000)
    result = h.dload(0x0, 2000)
    assert result.level == "L2"
    assert not result.l1_hit


def test_miss_merge_returns_same_completion_and_is_not_a_hit():
    """Two accesses to one in-flight line share the fill; the second is
    NOT an L1 hit (the l1_hit misclassification regression test)."""
    h = MemoryHierarchy(small_memory())
    first = h.dload(0x4000, 0)
    second = h.dload(0x4000, 1)
    assert second.complete == first.complete
    assert not second.l1_hit


def test_ifetch_and_dload_share_the_l2():
    """Unified L2: instruction fills occupy the same L2 the data uses."""
    h = MemoryHierarchy(small_memory())
    h.ifetch(0x8000, 0)
    line = 0x8000 >> 6
    assert h.l2.probe(line)
    # A data access to the same line now hits in L2 (not DRAM).
    result = h.dload(0x8000, 1000)
    assert result.level == "L2"


def test_perfect_icache_never_touches_l2():
    h = MemoryHierarchy(small_memory(), perfect_icache=True)
    result = h.ifetch(0x8000, 0)
    assert result.l1_hit
    assert h.l2.stats.accesses == 0


def test_perfect_dcache_always_min_latency():
    h = MemoryHierarchy(small_memory(), perfect_dcache=True)
    for i in range(20):
        result = h.dload(0x10000 + i * 64, i * 10)
        assert result.l1_hit
    assert h.dram.accesses == 0


def test_l2_mshr_contention_delays_latecomers():
    h = MemoryHierarchy(small_memory(l2_mshrs=2))
    # Fill both L2 MSHRs with distinct misses at t=0.
    a = h.dload(0x10000, 0)
    b = h.dload(0x20000, 0)
    # Third miss must queue behind the earliest release.
    c = h.dload(0x30000, 0)
    assert c.complete > max(a.complete, b.complete) - 4  # queued
    assert c.complete > 100


def test_tlb_miss_penalty_added():
    mem = small_memory()
    mem = MemoryConfig(
        l1i=mem.l1i, l1d=mem.l1d, l2=mem.l2, l3=None, dram=mem.dram,
        prefetcher=mem.prefetcher,
        itlb=TlbConfig(entries=4, miss_penalty=50),
        dtlb=TlbConfig(entries=4, miss_penalty=50),
    )
    h = MemoryHierarchy(mem)
    h.dload(0x1000, 0)
    # Same line, same page: TLB hit + L1 hit.
    warm = h.dload(0x1000, 1000)
    assert warm.complete == 1003
    # Same line but force the page out of the tiny TLB.
    for page in range(1, 9):
        h.dload(page * 4096, 2000)
    cold_tlb = h.dload(0x1000, 5000)
    assert cold_tlb.complete >= 5050
    assert not cold_tlb.l1_hit  # TLB misses count as data-side misses


def test_prefetcher_fills_l2_ahead():
    h = MemoryHierarchy(small_memory(prefetch=True))
    for i in range(6):
        h.dload(0x40000 + i * 64, i * 50)
    # Lines ahead of the stream should now be in the L2 (or in flight).
    ahead = (0x40000 >> 6) + 7
    assert h.l2.probe(ahead) or ahead in h._dchain[1].outstanding


def test_probe_latency_does_not_mutate():
    h = MemoryHierarchy(small_memory())
    h.dload(0x1000, 0)
    accesses = h.l1d.stats.accesses
    latency = h.probe_latency(0x1000, 100)
    assert latency == 100 + 3
    assert h.l1d.stats.accesses == accesses
    # Unknown line estimates a full-path latency without filling anything.
    assert h.probe_latency(0x999000, 100) > 110
    assert not h.l1d.probe(0x999000 >> 6)


def test_dirty_writeback_cascades():
    h = MemoryHierarchy(small_memory())
    h.dstore(0x0, 0)
    sets = h.l1d.config.num_sets
    # Evict the dirty line from L1: it must land dirty in the L2.
    h.dload(sets * 64, 100)
    h.dload(2 * sets * 64, 200)
    line = 0
    assert h.l2.probe(line)


def test_stats_shape():
    h = MemoryHierarchy(small_memory())
    h.dload(0x1000, 0)
    h.ifetch(0x2000, 0)
    stats = h.stats()
    for key in ("l1i", "l1d", "l2", "dram", "itlb", "dtlb", "prefetcher",
                "l2_mshr"):
        assert key in stats
    assert "l3" not in stats  # this config has no L3


def test_l3_level_reported_when_present():
    mem = small_memory()
    mem = MemoryConfig(
        l1i=mem.l1i, l1d=mem.l1d, l2=mem.l2,
        l3=CacheConfig(32 * 1024, 4, latency=30, mshrs=8),
        dram=mem.dram, prefetcher=mem.prefetcher,
        itlb=mem.itlb, dtlb=mem.dtlb,
    )
    h = MemoryHierarchy(mem)
    h.dload(0x5000, 0)
    assert "l3" in h.stats()
