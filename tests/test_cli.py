"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    for argv in (
        ["run", "--workload", "mcf"],
        ["workloads"],
        ["presets"],
        ["table1"],
        ["fig3", "--case", "fig3a"],
        ["fig5"],
        ["overhead"],
    ):
        args = parser.parse_args(argv)
        assert callable(args.func)


def test_parser_rejects_unknown_workload():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--workload", "nonexistent"])


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "mcf" in out and "cactus" in out


def test_presets_command(capsys):
    assert main(["presets"]) == 0
    out = capsys.readouterr().out
    for name in ("bdw", "knl", "skx"):
        assert name in out


def test_run_command_prints_stacks(capsys):
    code = main(["run", "--workload", "exchange2", "--core", "tiny",
                 "--instructions", "2000", "--flops"])
    assert code == 0
    out = capsys.readouterr().out
    assert "dispatch" in out and "issue" in out and "commit" in out
    assert "CPI=" in out


def test_run_command_modes(capsys):
    code = main(["run", "--workload", "leela", "--core", "tiny",
                 "--instructions", "2000", "--mode", "simple"])
    assert code == 0
    assert "bpred" in capsys.readouterr().out


def test_overhead_command(capsys):
    code = main(["overhead", "--workload", "exchange2", "--core", "tiny",
                 "--instructions", "1500"])
    assert code == 0
    assert "overhead" in capsys.readouterr().out


def test_socket_command(capsys):
    code = main(["socket", "--workload", "exchange2", "--core", "tiny",
                 "--threads", "2", "--instructions", "1500"])
    assert code == 0
    out = capsys.readouterr().out
    assert "socket" in out and "homogeneity" in out
