"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.core import invariants
from repro.experiments import supervisor


def test_parser_subcommands():
    parser = build_parser()
    for argv in (
        ["run", "--workload", "mcf"],
        ["workloads"],
        ["presets"],
        ["table1"],
        ["fig3", "--case", "fig3a"],
        ["fig5"],
        ["overhead"],
        ["profile", "mcf"],
        ["profile", "mcf", "--config", "knl"],
        ["failures", "list"],
        ["failures", "clear"],
        ["checkpoints", "list"],
        ["checkpoints", "clear"],
    ):
        args = parser.parse_args(argv)
        assert callable(args.func)


def test_parser_harness_flags():
    parser = build_parser()
    args = parser.parse_args(
        ["table1", "--jobs", "2", "--case-timeout", "1.5", "--keep-going",
         "--no-strict"]
    )
    assert args.jobs == 2
    assert args.case_timeout == 1.5
    assert args.keep_going and args.no_strict
    defaults = parser.parse_args(["fig5"])
    assert defaults.case_timeout is None
    assert not defaults.keep_going and not defaults.no_strict


def test_parser_rejects_unknown_workload():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--workload", "nonexistent"])


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "mcf" in out and "cactus" in out


def test_presets_command(capsys):
    assert main(["presets"]) == 0
    out = capsys.readouterr().out
    for name in ("bdw", "knl", "skx"):
        assert name in out


def test_run_command_prints_stacks(capsys):
    code = main(["run", "--workload", "exchange2", "--core", "tiny",
                 "--instructions", "2000", "--flops"])
    assert code == 0
    out = capsys.readouterr().out
    assert "dispatch" in out and "issue" in out and "commit" in out
    assert "CPI=" in out


def test_run_command_modes(capsys):
    code = main(["run", "--workload", "leela", "--core", "tiny",
                 "--instructions", "2000", "--mode", "simple"])
    assert code == 0
    assert "bpred" in capsys.readouterr().out


def test_overhead_command(capsys):
    code = main(["overhead", "--workload", "exchange2", "--core", "tiny",
                 "--instructions", "1500"])
    assert code == 0
    assert "overhead" in capsys.readouterr().out


def test_profile_command(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["profile", "exchange2", "--core", "tiny",
                 "--instructions", "1500", "--top", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "cumulative" in out
    report = tmp_path / "results" / "profile_exchange2.txt"
    assert report.exists()
    text = report.read_text()
    assert "committed_uops" in text and "_step_event" in text


def test_socket_command(capsys):
    code = main(["socket", "--workload", "exchange2", "--core", "tiny",
                 "--threads", "2", "--instructions", "1500"])
    assert code == 0
    out = capsys.readouterr().out
    assert "socket" in out and "homogeneity" in out


def test_failures_commands(capsys):
    supervisor.clear_failures()
    assert main(["failures", "list"]) == 0
    assert "no failure reports" in capsys.readouterr().out
    supervisor.save_failure(
        supervisor.FailureReport(
            key="cafe" * 16, label="mcf@tiny", classification="timeout",
            attempts=[
                supervisor.Attempt(
                    attempt=0, classification="timeout",
                    error="no result within the 0.3s deadline",
                    elapsed_seconds=0.3, executor="pool",
                )
            ],
        )
    )
    assert main(["failures", "list"]) == 0
    out = capsys.readouterr().out
    assert "mcf@tiny" in out and "timeout" in out
    assert main(["failures", "clear"]) == 0
    assert "removed 1" in capsys.readouterr().out
    assert supervisor.list_failures() == []


def test_batch_failure_exits_nonzero(capsys, monkeypatch):
    monkeypatch.setattr(
        supervisor, "fault_plan", {"*": {"kind": "crash", "times": 99}}
    )
    from repro.experiments.runner import clear_cache

    clear_cache()
    code = main(["fig5", "--jobs", "1", "--instructions", "1500"])
    assert code == 1
    captured = capsys.readouterr()
    assert "failed after supervision" in captured.err
    assert "[harness]" in captured.out, "the summary line still prints"
    supervisor.clear_failures()
    clear_cache()


def test_keep_going_failed_baseline_omits_group(capsys, monkeypatch):
    """A baseline that never recovers drops its whole Table I group."""
    monkeypatch.setattr(
        supervisor, "fault_plan",
        {"mcf@knl": {"kind": "crash", "times": 99}},
    )
    from repro.experiments.runner import clear_cache

    clear_cache()
    code = main(["table1", "--jobs", "1", "--instructions", "1500",
                 "--keep-going"])
    assert code == 0
    out = capsys.readouterr().out
    assert "mcf on BDW" in out, "the healthy group still renders"
    assert "mcf on KNL" not in out, "the group without a baseline is gone"
    supervisor.clear_failures()
    clear_cache()


def test_keep_going_incomplete_socket_fails_cleanly(capsys, monkeypatch):
    """Aggregates that need every case report IncompleteBatch, not a crash."""
    monkeypatch.setattr(
        supervisor, "fault_plan", {"*": {"kind": "crash", "times": 99}}
    )
    from repro.experiments.runner import clear_cache

    clear_cache()
    code = main(["socket", "--workload", "exchange2", "--core", "tiny",
                 "--threads", "2", "--instructions", "1500", "--keep-going"])
    assert code == 1
    captured = capsys.readouterr()
    assert "needs the whole 2-core engine run" in captured.err
    supervisor.clear_failures()
    clear_cache()
    # The homogeneous oracle path reports per-thread holes the same way.
    code = main(["socket", "--workload", "exchange2", "--core", "tiny",
                 "--threads", "2", "--instructions", "1500", "--keep-going",
                 "--homogeneous"])
    assert code == 1
    captured = capsys.readouterr()
    assert "needs all 2 threads" in captured.err
    supervisor.clear_failures()
    clear_cache()


def test_no_strict_flag_disables_guard(capsys):
    import os

    previous = os.environ.pop(invariants.ENV_STRICT, None)
    try:
        code = main(["table1", "--jobs", "1", "--instructions", "1500",
                     "--no-strict"])
        assert code == 0
        assert not invariants.strict_enabled()
        assert os.environ.get(invariants.ENV_STRICT) == "0", (
            "workers must inherit non-strict mode via the environment"
        )
    finally:
        invariants.set_strict(None)
        os.environ.pop(invariants.ENV_STRICT, None)
        if previous is not None:
            os.environ[invariants.ENV_STRICT] = previous
    capsys.readouterr()


def test_no_fast_forward_flag_sets_env(capsys):
    import os

    from repro.pipeline.core import ENV_FAST_FORWARD, fast_forward_default

    previous = os.environ.pop(ENV_FAST_FORWARD, None)
    try:
        code = main(["run", "--workload", "exchange2", "--core", "tiny",
                     "--instructions", "2000", "--no-fast-forward"])
        assert code == 0
        assert os.environ.get(ENV_FAST_FORWARD) == "0", (
            "workers must inherit the escape hatch via the environment"
        )
        assert fast_forward_default() is False
    finally:
        os.environ.pop(ENV_FAST_FORWARD, None)
        if previous is not None:
            os.environ[ENV_FAST_FORWARD] = previous
    capsys.readouterr()


def test_checkpoints_commands(capsys):
    from repro.pipeline import checkpoint as ckpt

    ckpt.clear_checkpoints()
    capsys.readouterr()
    assert main(["checkpoints", "list"]) == 0
    assert "no checkpoints" in capsys.readouterr().out
    ckpt.save_checkpoint(
        ckpt.checkpoint_path("feed" * 16, 1200),
        b"payload",
        {"case": "mcf", "config": "bdw", "committed_instrs": 1200},
    )
    assert main(["checkpoints", "list"]) == 0
    out = capsys.readouterr().out
    assert "mcf" in out and "1200" in out
    assert main(["checkpoints", "clear"]) == 0
    assert "removed 1" in capsys.readouterr().out
    assert ckpt.list_checkpoints() == []


def test_checkpoint_interval_flag_sets_env(capsys, monkeypatch):
    import os

    from repro.experiments.runner import clear_cache
    from repro.pipeline.checkpoint import (
        ENV_CHECKPOINT_INTERVAL,
        checkpoint_interval_default,
    )

    monkeypatch.setenv(ENV_CHECKPOINT_INTERVAL, "")
    clear_cache()
    code = main(["fig5", "--jobs", "1", "--instructions", "1500",
                 "--checkpoint-interval", "400"])
    assert code == 0
    assert os.environ.get(ENV_CHECKPOINT_INTERVAL) == "400", (
        "workers must inherit the cadence via the environment"
    )
    assert checkpoint_interval_default() == 400
    clear_cache()
    capsys.readouterr()
