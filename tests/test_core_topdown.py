"""Unit tests for the Yasin top-down baseline (paper Sec. II)."""

import pytest

from repro.core.components import Component
from repro.core.observation import CycleObservation
from repro.core.topdown import (
    BackendDetail,
    FrontendDetail,
    TopDownAccountant,
    TopLevel,
)


class FakeUop:
    def __init__(self, *, is_load=False, dcache_miss=False, issued=True,
                 done=False, multi_cycle=False):
        self.is_load = is_load
        self.dcache_miss = dcache_miss
        self.issued = issued
        self.done = done
        self.multi_cycle = multi_cycle


def finalize(acct, cycles):
    return acct.finalize(cycles)


def test_full_retiring_cycle():
    acct = TopDownAccountant(4)
    acct.observe(CycleObservation(n_dispatch=4))
    report = finalize(acct, 1)
    assert report.level1[TopLevel.RETIRING] == pytest.approx(1.0)


def test_level1_is_a_partition():
    acct = TopDownAccountant(4)
    observations = [
        CycleObservation(n_dispatch=2, uop_queue_empty=True,
                         fe_reason=Component.ICACHE),
        CycleObservation(n_dispatch=0, n_dispatch_wrong=4,
                         wrong_path_active=True),
        CycleObservation(n_dispatch=0, window_full=True,
                         rob_head=FakeUop(is_load=True, dcache_miss=True)),
        CycleObservation(n_dispatch=4),
    ]
    for obs in observations:
        acct.observe(obs)
    report = finalize(acct, len(observations))
    assert sum(report.level1.values()) == pytest.approx(len(observations))
    assert sum(report.level1_fractions().values()) == pytest.approx(1.0)


def test_wrong_path_slots_are_bad_speculation():
    acct = TopDownAccountant(4)
    acct.observe(CycleObservation(n_dispatch=0, n_dispatch_wrong=4,
                                  wrong_path_active=True))
    report = finalize(acct, 1)
    assert report.level1[TopLevel.BAD_SPECULATION] == pytest.approx(1.0)


def test_frontend_priority_over_backend():
    """The paper's critique: when frontend and backend stall together,
    top-down's dispatch-based level 1 charges the frontend."""
    acct = TopDownAccountant(4)
    acct.observe(CycleObservation(
        n_dispatch=0, uop_queue_empty=True, fe_reason=Component.ICACHE,
        window_full=True,
        rob_head=FakeUop(is_load=True, dcache_miss=True),
    ))
    report = finalize(acct, 1)
    assert report.level1.get(TopLevel.FRONTEND_BOUND, 0.0) == (
        pytest.approx(1.0)
    )
    assert report.level1.get(TopLevel.BACKEND_BOUND, 0.0) == 0.0


def test_window_full_is_backend_bound():
    acct = TopDownAccountant(4)
    acct.observe(CycleObservation(
        n_dispatch=1, window_full=True,
        rob_head=FakeUop(is_load=True, dcache_miss=True),
    ))
    report = finalize(acct, 1)
    assert report.level1[TopLevel.BACKEND_BOUND] == pytest.approx(0.75)


def test_frontend_detail_microcode():
    acct = TopDownAccountant(4)
    acct.observe(CycleObservation(
        n_dispatch=0, uop_queue_empty=True,
        fe_reason=Component.MICROCODE))
    report = finalize(acct, 1)
    assert report.frontend_detail[FrontendDetail.MICROCODE] == 1.0


def test_backend_detail_memory_vs_core():
    acct = TopDownAccountant(4)
    acct.observe(CycleObservation(
        n_dispatch=4, n_issue=0,
        first_nonready_producer=FakeUop(is_load=True, dcache_miss=True)))
    acct.observe(CycleObservation(
        n_dispatch=4, n_issue=0,
        first_nonready_producer=FakeUop(issued=True, multi_cycle=True)))
    report = finalize(acct, 2)
    assert report.backend_detail[BackendDetail.MEMORY_BOUND] == 1.0
    assert report.backend_detail[BackendDetail.CORE_BOUND] == 1.0


def test_lower_levels_do_not_sum_to_cycles():
    """Sec. II: "the components at the lower levels do not add up to the
    total cycle count" — by construction the details are measured at
    different stages with different denominators."""
    acct = TopDownAccountant(4)
    acct.observe(CycleObservation(
        n_dispatch=0, uop_queue_empty=True, fe_reason=Component.ICACHE,
        n_issue=0, rs_empty=False,
        first_nonready_producer=FakeUop(is_load=True, dcache_miss=True)))
    report = finalize(acct, 1)
    detail_total = (sum(report.frontend_detail.values())
                    + sum(report.backend_detail.values()))
    assert detail_total != pytest.approx(1.0)


def test_memory_bound_cpi_units():
    acct = TopDownAccountant(4)
    acct.observe(CycleObservation(
        n_dispatch=4, n_issue=0,
        first_nonready_producer=FakeUop(is_load=True, dcache_miss=True)))
    report = finalize(acct, 1)
    assert report.memory_bound_cpi(10) == pytest.approx(0.1)
    assert report.memory_bound_cpi(0) == 0.0


def test_integration_with_simulator(tiny):
    from repro.pipeline.core import simulate
    from tests.conftest import load_loop

    result = simulate(load_loop(800, lines=4096, stride_lines=7), tiny,
                      topdown=True)
    report = result.report.topdown
    assert report is not None
    fractions = report.level1_fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)
    # A miss-heavy load loop is mostly backend bound.
    assert fractions[TopLevel.BACKEND_BOUND] > 0.3
