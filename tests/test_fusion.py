"""Fused multi-accountant execution: bitwise parity and plumbing.

The fusion engine (``run_cases(..., fuse=True)``, the default) groups
cache-missing cases that share one *timing key* — identical trace,
machine config, wrong-path mode, warmup and seeds — and runs each group
as a single pipeline pass with every member's collector attached.  The
guarantees pinned here:

* every fused member's result is bitwise identical to its unfused run —
  across workloads, presets, wrong-path modes, warmup fractions, the
  fast-forward/replay skip engines, and collector sets (multi-stage,
  topdown, accounting off, non-default accounting width);
* attaching 0, 1 or many collectors never perturbs the timing: cycle
  counts and every timing-side field are invariant (the timing oracle);
* a fused run checkpoints and resumes mid-flight with *all* collectors
  restored bitwise;
* fused members land in the disk cache under their own per-case keys
  (warm reruns need zero simulator invocations), and the pre-existing
  cache keys of default-accounting cases are unchanged;
* the batch summary line and telemetry report fused groups / runs saved;
* ``FusedGroup`` construction rejects malformed memberships.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.config.idealize import PERFECT_DCACHE
from repro.core.wrongpath import WrongPathMode
from repro.experiments import runner, supervisor
from repro.experiments.cache import TELEMETRY, CaseSpec, FusedGroup
from repro.experiments.parallel import run_cases
from repro.pipeline import checkpoint as ckpt

N = 2500


@pytest.fixture(autouse=True)
def _fresh_harness():
    runner.clear_cache()
    TELEMETRY.reset()
    yield
    runner.clear_cache()
    TELEMETRY.reset()


def _comparable(result) -> dict:
    """Everything that must be bitwise identical between a fused and an
    unfused run.

    Host wall time and the fast-forward/replay window counters are
    excluded: they are documented host-side observability counters, and
    a fused run legitimately arms the skip engines differently (e.g. a
    topdown member disables commit batching and with it replay) without
    affecting any architectural number.
    """
    payload = result.to_dict()
    for key in (
        "wall_seconds",
        "ff_windows",
        "ff_cycles_skipped",
        "replay_windows",
        "replay_cycles_skipped",
    ):
        payload.pop(key)
    return payload


def _variant_specs(
    workload: str = "mcf",
    preset: str = "tiny",
    *,
    mode: WrongPathMode = WrongPathMode.EXACT,
    warmup_fraction: float = 0.0,
) -> list[CaseSpec]:
    """One timing, four accounting configurations."""
    base = dict(
        workload=workload,
        preset=preset,
        instructions=N,
        mode=mode,
        warmup_fraction=warmup_fraction,
    )
    return [
        CaseSpec(**base),
        CaseSpec(**base, topdown=True),
        CaseSpec(**base, accounting=False),
        CaseSpec(**base, accounting_width=2),
    ]


def _run_both_ways(specs: list[CaseSpec], **kwargs) -> tuple[list, list]:
    """Run the same batch unfused then fused, cache-free, serially."""
    unfused = run_cases(specs, jobs=1, use_cache=False, fuse=False, **kwargs)
    runner.clear_cache()
    fused = run_cases(specs, jobs=1, use_cache=False, fuse=True, **kwargs)
    return unfused, fused


# ---------------------------------------------------------------------------
# differential matrix: fused is bitwise identical to unfused
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", list(WrongPathMode))
@pytest.mark.parametrize("warmup", [0.0, 0.3])
def test_fused_matches_unfused_across_modes_and_warmup(mode, warmup):
    specs = _variant_specs(mode=mode, warmup_fraction=warmup)
    unfused, fused = _run_both_ways(specs)
    for spec, a, b in zip(specs, unfused, fused):
        assert _comparable(a) == _comparable(b), spec.label()


@pytest.mark.parametrize(
    "workload, preset",
    [("chase", "tiny"), ("exchange2", "bdw"), ("spin", "knl")],
)
def test_fused_matches_unfused_across_machines(workload, preset):
    specs = _variant_specs(workload, preset)
    unfused, fused = _run_both_ways(specs)
    for spec, a, b in zip(specs, unfused, fused):
        assert _comparable(a) == _comparable(b), spec.label()


@pytest.mark.parametrize(
    "fast_forward, replay",
    [("0", "0"), ("1", "0"), ("1", "1")],
)
def test_fused_matches_unfused_with_skip_engines(
    monkeypatch, fast_forward, replay
):
    monkeypatch.setenv("REPRO_FAST_FORWARD", fast_forward)
    monkeypatch.setenv("REPRO_REPLAY", replay)
    # ``spin`` has quiescent and steady-state stretches the skip engines
    # actually engage on.
    specs = _variant_specs("spin", "tiny", warmup_fraction=0.2)
    unfused, fused = _run_both_ways(specs)
    for spec, a, b in zip(specs, unfused, fused):
        assert _comparable(a) == _comparable(b), spec.label()


def test_fused_mixed_batch_with_distinct_timings():
    """Fusable variants mixed with singleton timings: grouping must not
    disturb spec order, dedup, or the singletons' results."""
    variants = _variant_specs()
    singles = [
        CaseSpec(workload="bwaves", preset="tiny", instructions=N),
        CaseSpec(
            workload="mcf", preset="tiny", instructions=N,
            idealization=PERFECT_DCACHE,
        ),
    ]
    specs = variants + singles + [variants[0]]  # plus one duplicate
    unfused, fused = _run_both_ways(specs)
    for spec, a, b in zip(specs, unfused, fused):
        assert _comparable(a) == _comparable(b), spec.label()
    assert fused[-1] is fused[0], "duplicate specs still share one result"


@pytest.mark.parametrize(
    "method",
    [
        pytest.param("fork"),
        pytest.param("spawn", marks=pytest.mark.slow),
    ],
)
def test_fused_pool_matches_unfused_serial(method):
    if method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"start method {method!r} unavailable here")
    specs = _variant_specs() + _variant_specs("chase")
    unfused = run_cases(specs, jobs=1, use_cache=False, fuse=False)
    runner.clear_cache()
    TELEMETRY.reset()
    fused = run_cases(
        specs, jobs=2, use_cache=False, fuse=True, mp_start_method=method
    )
    assert TELEMETRY.sim_invocations == 2, "one pipeline run per timing"
    for spec, a, b in zip(specs, unfused, fused):
        assert _comparable(a) == _comparable(b), spec.label()


# ---------------------------------------------------------------------------
# timing-invariance oracle: collectors never perturb the timing
# ---------------------------------------------------------------------------


_TIMING_FIELDS = (
    "cycles",
    "committed_instrs",
    "committed_uops",
    "wrong_path_uops",
    "branch_lookups",
    "branch_mispredicts",
    "memory_stats",
)


@pytest.mark.parametrize("mode", list(WrongPathMode))
@pytest.mark.parametrize("warmup", [0.0, 0.3])
def test_timing_oracle_collector_count_invariance(mode, warmup):
    """0, 1, or all collectors attached: the timing fingerprint and the
    cycle count never move."""
    from repro.config.presets import get_preset
    from repro.core.multistage import CollectorSpec
    from repro.pipeline.core import CoreSimulator

    trace = runner.get_trace("mcf", N, 1)
    config = get_preset("tiny")
    warmup_instructions = int(N * warmup)
    collector_sets = [
        (CollectorSpec(accounting=False),),  # 0 collectors
        (CollectorSpec(),),  # 1 collector
        (  # all of them
            CollectorSpec(),
            CollectorSpec(topdown=True),
            CollectorSpec(accounting=False),
            CollectorSpec(accounting_width=2),
        ),
    ]
    results = []
    for collectors in collector_sets:
        sim = CoreSimulator(
            trace,
            config,
            mode=mode,
            warmup_instructions=warmup_instructions,
            seed=7,
            collectors=collectors,
        )
        results.append(sim.run())
    baseline = results[0]
    for result in results[1:]:
        for field in _TIMING_FIELDS:
            assert getattr(result, field) == getattr(baseline, field), field


def test_timing_oracle_with_skip_engines(monkeypatch):
    monkeypatch.setenv("REPRO_FAST_FORWARD", "1")
    monkeypatch.setenv("REPRO_REPLAY", "1")
    test_timing_oracle_collector_count_invariance(WrongPathMode.EXACT, 0.2)


# ---------------------------------------------------------------------------
# checkpoint/resume mid-fused-run
# ---------------------------------------------------------------------------


class _Interrupted(Exception):
    """Raised by the checkpoint hook to kill a fused run mid-flight."""


def test_fused_checkpoint_resume_restores_all_collectors():
    group = FusedGroup(specs=tuple(_variant_specs()))
    clean, resumed_from = runner.execute_fused_checkpointed(group, None)
    assert resumed_from is None

    ckpt.clear_checkpoints(group.key())

    def hook(path, instrs):
        raise _Interrupted

    with pytest.raises(_Interrupted):
        runner.execute_fused_checkpointed(group, 600, on_checkpoint=hook)
    assert ckpt.list_case_checkpoints(group.key()), (
        "the interrupted fused run never wrote a checkpoint"
    )
    recovered, resumed_from = runner.execute_fused_checkpointed(group, 600)
    assert resumed_from is not None and resumed_from > 0
    assert len(recovered) == len(group.specs)
    for spec, a, b in zip(group.specs, clean, recovered):
        assert _comparable(a) == _comparable(b), spec.label()
    ckpt.clear_checkpoints(group.key())


def test_fused_checkpoint_lives_under_group_key():
    """A fused checkpoint must never be resumable by a member alone (or
    vice versa): the group key is derived from all member keys."""
    group = FusedGroup(specs=tuple(_variant_specs()))
    member_keys = {spec.key() for spec in group.specs}
    assert group.key() not in member_keys
    smaller = FusedGroup(specs=group.specs[:2])
    assert smaller.key() != group.key()


# ---------------------------------------------------------------------------
# cache keys and publication
# ---------------------------------------------------------------------------


def test_default_fingerprint_unchanged_by_accounting_fields():
    """Pre-existing cache entries stay valid: a default-accounting spec
    fingerprints exactly as before the accounting fields existed."""
    spec = CaseSpec(workload="mcf", preset="tiny", instructions=N)
    fp = spec.fingerprint()
    assert "accounting" not in fp
    assert "topdown" not in fp
    assert "accounting_width" not in fp
    assert fp == spec.timing_fingerprint()


def test_variant_keys_discriminate_but_share_timing():
    default, topdown, noacc, wide = _variant_specs()
    keys = {s.key() for s in (default, topdown, noacc, wide)}
    assert len(keys) == 4, "accounting variants must not collide"
    timings = {s.timing_key() for s in (default, topdown, noacc, wide)}
    assert len(timings) == 1, "accounting must not leak into the timing key"
    other = CaseSpec(workload="chase", preset="tiny", instructions=N)
    assert other.timing_key() not in timings
    assert topdown.label().endswith("#td")
    assert noacc.label().endswith("#noacc")


def test_fused_members_published_under_own_keys():
    specs = _variant_specs()
    first = run_cases(specs, jobs=1, fuse=True)
    assert TELEMETRY.sim_invocations == 1
    for spec in specs:
        assert runner.lookup_cached(spec.key()) is not None
    # A fresh session (memo dropped, disk kept) is served without any
    # simulation — fused or otherwise.
    runner.clear_cache(disk=False)
    TELEMETRY.reset()
    second = run_cases(specs, jobs=1, fuse=True)
    assert TELEMETRY.sim_invocations == 0
    assert TELEMETRY.disk_hits == len(specs)
    for a, b in zip(first, second):
        assert a.to_dict() == b.to_dict()


def test_unfused_env_escape_hatch(monkeypatch):
    monkeypatch.setenv("REPRO_FUSE", "0")
    specs = _variant_specs()
    run_cases(specs, jobs=1, use_cache=False)
    assert TELEMETRY.sim_invocations == len(specs)
    assert TELEMETRY.fused_groups == 0


def test_summary_line_reports_fusion():
    from repro.experiments import parallel

    specs = _variant_specs()
    run_cases(specs, jobs=1, use_cache=False, fuse=True)
    batch = parallel.LAST_BATCH
    assert batch is not None
    assert batch.fused_groups == 1
    assert batch.fused_runs_saved == len(specs) - 1
    assert "1 fused groups (3 runs saved)" in batch.summary()
    assert TELEMETRY.counters()["fused_groups"] == 1
    assert TELEMETRY.counters()["fused_runs_saved"] == 3


# ---------------------------------------------------------------------------
# construction and payload validation
# ---------------------------------------------------------------------------


def test_fused_group_rejects_malformed_membership():
    specs = _variant_specs()
    with pytest.raises(ValueError, match="at least two"):
        FusedGroup(specs=(specs[0],))
    other = CaseSpec(workload="chase", preset="tiny", instructions=N)
    with pytest.raises(ValueError, match="timing key"):
        FusedGroup(specs=(specs[0], other))


def test_group_payload_validation_catches_member_damage():
    group = FusedGroup(specs=tuple(_variant_specs()[:2]))
    results, _ = runner.execute_fused_checkpointed(group, None)
    payload = {"fused": [r.to_dict() for r in results]}
    decoded = supervisor.validate_group_payload(payload, group)
    for a, b in zip(results, decoded):
        assert a.to_dict() == b.to_dict()
    with pytest.raises(Exception):
        supervisor.validate_group_payload({"fused": payload["fused"][:1]}, group)
    damaged = {"fused": [dict(payload["fused"][0]), payload["fused"][1]]}
    damaged["fused"][0]["cycles"] = -1
    with pytest.raises(Exception):
        supervisor.validate_group_payload(damaged, group)
