"""Unit tests for the instruction builders (decode conventions)."""

import pytest

from repro.isa import decoder as asm
from repro.isa.registers import NO_REG
from repro.isa.uops import UopClass


def test_alu_single_uop():
    instr = asm.alu(0, dst=3, srcs=(1, 2))
    assert instr.uop_count == 1
    assert instr.uops[0].uclass is UopClass.ALU
    assert instr.uops[0].srcs == (1, 2)
    assert instr.uops[0].dst == 3


def test_load_carries_address_sources():
    instr = asm.load(0, dst=2, addr=0x1000, addr_srcs=(5,))
    uop = instr.uops[0]
    assert uop.uclass is UopClass.LOAD
    assert uop.addr == 0x1000
    assert uop.srcs == (5,)


def test_store_reads_data_and_address_registers():
    instr = asm.store(0, src=7, addr=0x40, addr_srcs=(5,))
    uop = instr.uops[0]
    assert uop.uclass is UopClass.STORE
    assert uop.srcs == (7, 5)
    assert uop.dst == NO_REG


def test_fma_register_form_is_single_uop():
    instr = asm.fma(0, dst=40, srcs=(40, 41), lanes=16, width_lanes=16)
    assert instr.uop_count == 1
    assert instr.uops[0].uclass is UopClass.FMA


def test_fma_memory_operand_splits_into_load_plus_fma():
    """Sec. V-B: 'A VFP instruction that has a memory operand is split into
    two micro-operations: one load and one VFP calculation.'"""
    instr = asm.fma(0, dst=40, srcs=(40, 41), lanes=16, width_lanes=16,
                    mem_addr=0x1000, addr_srcs=(1,))
    assert instr.uop_count == 2
    load, fma = instr.uops
    assert load.uclass is UopClass.LOAD
    assert fma.uclass is UopClass.FMA
    # The FMA depends on the load through the decode temp register.
    assert load.dst in fma.srcs


def test_broadcast_memory_form_splits():
    instr = asm.broadcast(0, dst=39, width_lanes=16, mem_addr=0x2000)
    assert instr.uop_count == 2
    load, bcast = instr.uops
    assert load.uclass is UopClass.LOAD
    assert bcast.uclass is UopClass.BROADCAST
    assert load.dst in bcast.srcs


def test_load_op_temp_registers_rotate():
    """Adjacent load-op instructions must not serialize on one temp."""
    temps = set()
    for i in range(8):
        instr = asm.fma(i * 4, dst=40, srcs=(40,), lanes=4, width_lanes=4,
                        mem_addr=0x1000 + i * 64)
        temps.add(instr.uops[0].dst)
    assert len(temps) > 1


def test_microcoded_fp_chain_dependencies():
    instr = asm.microcoded_fp(0, dst=45, srcs=(32, 33), n_uops=4)
    assert instr.microcoded
    assert instr.uop_count == 4
    assert instr.decode_cycles == 4
    # Internal chain: each uop consumes its predecessor's destination.
    for prev, cur in zip(instr.uops, instr.uops[1:]):
        assert prev.dst in cur.srcs
    assert instr.uops[-1].dst == 45


def test_microcoded_fp_minimum_uops():
    with pytest.raises(ValueError):
        asm.microcoded_fp(0, dst=45, n_uops=1)


def test_sync_yield():
    instr = asm.sync_yield(0, 100)
    assert instr.yield_cycles == 100
    assert instr.uops[0].uclass is UopClass.SYNC


def test_sync_yield_requires_positive_cycles():
    with pytest.raises(ValueError):
        asm.sync_yield(0, 0)


def test_branch_has_resolution_info():
    instr = asm.branch(0x100, taken=True, target=0x200, srcs=(4,))
    assert instr.is_branch
    assert instr.taken
    assert instr.target == 0x200


def test_masked_fma_lanes():
    instr = asm.fma(0, dst=40, srcs=(40,), lanes=5, width_lanes=16)
    assert instr.uops[0].lanes == 5
    assert instr.uops[0].flops == 10
