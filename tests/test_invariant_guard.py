"""Runtime invariant guard: accounting identities enforced end to end.

The guard must (a) pass silently on every real experiment, (b) catch a
corrupted result before it reaches the disk cache, and (c) self-heal a
poisoned cache entry by evicting it on read.
"""

from __future__ import annotations

import pickle

import pytest

from repro.config.presets import tiny_core
from repro.core import invariants
from repro.core.invariants import InvariantViolation
from repro.experiments.cache import TELEMETRY, CaseSpec, get_disk_cache
from repro.experiments.error import figure2_errors
from repro.experiments.flops_study import figure5_case
from repro.experiments.idealization import table1_rows
from repro.experiments.multicore import simulate_socket
from repro.experiments.parallel import run_cases
from repro.experiments.runner import clear_cache, execute_spec, store_result

N = 2500


@pytest.fixture(autouse=True)
def _fresh_harness(monkeypatch):
    monkeypatch.delenv(invariants.ENV_STRICT, raising=False)
    invariants.set_strict(None)
    clear_cache()
    TELEMETRY.reset()
    invariants.GUARD.warnings.clear()
    yield
    invariants.set_strict(None)
    invariants.GUARD.warnings.clear()
    clear_cache()
    TELEMETRY.reset()


def _spec(seed: int = 1) -> CaseSpec:
    return CaseSpec(workload="mcf", preset="tiny", instructions=N, seed=seed)


def _comparable(result) -> dict:
    """Everything that must be identical (host timing excluded)."""
    payload = result.to_dict()
    payload.pop("wall_seconds")
    return payload


# ---------------------------------------------------------------------------
# the guard accepts every real experiment (strict mode is the default)


def test_guard_is_strict_by_default(monkeypatch):
    monkeypatch.delenv(invariants.ENV_STRICT, raising=False)
    assert invariants.strict_enabled()
    monkeypatch.setenv(invariants.ENV_STRICT, "0")
    assert not invariants.strict_enabled()
    invariants.set_strict(True)
    assert invariants.strict_enabled(), "explicit override beats the env"


def test_all_experiments_pass_strict_guard():
    """All four experiment families under the guard, zero violations.

    The guard raises on any violation in strict mode, so merely completing
    is the assertion; the explicit checks document the healthy state.
    """
    assert invariants.strict_enabled()
    table1_rows(instructions=N, jobs=1)
    figure2_errors(
        "tiny", workloads=("mcf", "imagick"), instructions=N, jobs=1
    )
    figure5_case(instructions=N, jobs=1)
    simulate_socket("mcf", tiny_core(), threads=2, instructions=N, jobs=1)
    assert invariants.GUARD.warnings == []


def test_check_result_empty_on_healthy_result():
    result = execute_spec(_spec())
    assert invariants.check_result(result) == []


# ---------------------------------------------------------------------------
# corrupted results are stopped before the disk cache


def _corrupted(spec: CaseSpec):
    result = execute_spec(spec)
    result.cycles += 12_345  # breaks every stack-total identity
    return result


def test_store_result_rejects_corrupt_result_strict():
    spec = _spec()
    bad = _corrupted(spec)
    with pytest.raises(InvariantViolation) as excinfo:
        store_result(spec.key(), spec, bad)
    assert "mcf@tiny" in str(excinfo.value)
    assert get_disk_cache().get(spec.key()) is None, (
        "a violating result must never reach the disk cache"
    )


def test_store_result_non_strict_warns_but_never_disk_caches():
    spec = _spec()
    bad = _corrupted(spec)
    invariants.set_strict(False)
    with pytest.warns(RuntimeWarning):
        store_result(spec.key(), spec, bad)
    assert invariants.GUARD.warnings, "the violation is recorded"
    assert get_disk_cache().get(spec.key()) is None, (
        "non-strict mode still refuses to persist a violating result"
    )


def test_violation_messages_name_the_failed_checks():
    bad = _corrupted(_spec())
    checks = {v.check for v in invariants.check_result(bad)}
    assert "stack-total" in checks
    assert "stack-cycles" in checks
    assert "flops-total" in checks


def test_negative_component_detected():
    result = execute_spec(_spec())
    report = result.report
    assert report is not None
    component = next(iter(report.issue.counters))
    report.issue.counters[component] -= 10 * result.cycles
    checks = {v.check for v in invariants.check_result(result)}
    assert "negative-component" in checks


def test_stack_instruction_mismatch_detected():
    result = execute_spec(_spec())
    assert result.report is not None
    result.report.commit.instructions += 7
    checks = {v.check for v in invariants.check_result(result)}
    assert "stack-instructions" in checks


def test_mispredicts_exceeding_lookups_detected():
    result = execute_spec(_spec())
    result.branch_mispredicts = result.branch_lookups + 1
    checks = {v.check for v in invariants.check_result(result)}
    assert "counts" in checks


def test_invariant_violation_pickles():
    exc = InvariantViolation(
        "mcf@tiny", [invariants.Violation("stack-total", "off by 12345")]
    )
    clone = pickle.loads(pickle.dumps(exc))
    assert clone.context == "mcf@tiny"
    assert str(clone) == str(exc)


# ---------------------------------------------------------------------------
# poisoned disk entries self-heal on read


def test_poisoned_disk_entry_evicted_and_recomputed():
    spec = _spec()
    original, = run_cases([spec], jobs=1)
    cache = get_disk_cache()
    path = cache.path_for(spec.key())
    payload = pickle.loads(path.read_bytes())
    payload["result"]["cycles"] += 99_999
    path.write_bytes(pickle.dumps(payload))

    TELEMETRY.reset()
    assert cache.get(spec.key()) is None, "poisoned entry reads as a miss"
    assert TELEMETRY.corrupt_entries == 1
    assert not path.exists(), "the poisoned entry is evicted"

    # A fresh batch recomputes and repopulates transparently.  The memo
    # still holds the healthy original, so drop it to force the disk path.
    clear_cache(disk=False)
    recomputed, = run_cases([spec], jobs=1)
    assert _comparable(recomputed) == _comparable(original)


def test_warm_cache_rerun_is_simulation_free_with_guard():
    specs = [_spec(seed) for seed in (1, 2)]
    run_cases(specs, jobs=1)
    clear_cache(disk=False)  # drop the memo, keep the disk entries
    TELEMETRY.reset()
    rerun = run_cases(specs, jobs=1)
    assert all(r is not None for r in rerun)
    assert TELEMETRY.sim_invocations == 0, (
        "the guard must not break the zero-sims warm-rerun guarantee"
    )
