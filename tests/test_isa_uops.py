"""Unit tests for the micro-op model."""

import pytest

from repro.isa.uops import (
    MEMORY_CLASSES,
    VFP_CLASSES,
    VU_CLASSES,
    MicroOp,
    UopClass,
    WrongPathTemplate,
)


def test_vfp_subset_of_vu():
    assert VFP_CLASSES < VU_CLASSES


def test_vec_int_and_broadcast_are_vu_but_not_vfp():
    assert UopClass.VEC_INT in VU_CLASSES
    assert UopClass.BROADCAST in VU_CLASSES
    assert UopClass.VEC_INT not in VFP_CLASSES
    assert UopClass.BROADCAST not in VFP_CLASSES


def test_fma_counts_two_flops_per_lane():
    uop = MicroOp(UopClass.FMA, lanes=16, width_lanes=16)
    assert uop.flops == 32
    assert uop.ops_per_lane == 2


def test_fp_add_counts_one_flop_per_lane():
    uop = MicroOp(UopClass.FP_ADD, lanes=8, width_lanes=8)
    assert uop.flops == 8
    assert uop.ops_per_lane == 1


def test_masked_lanes_reduce_flops():
    uop = MicroOp(UopClass.FMA, lanes=5, width_lanes=16)
    assert uop.flops == 10


def test_non_fp_has_zero_flops():
    for uclass in (UopClass.ALU, UopClass.LOAD, UopClass.VEC_INT):
        kwargs = {"addr": 64} if uclass is UopClass.LOAD else {}
        assert MicroOp(uclass, **kwargs).flops == 0


def test_memory_uops_require_address():
    with pytest.raises(ValueError):
        MicroOp(UopClass.LOAD)
    with pytest.raises(ValueError):
        MicroOp(UopClass.STORE)


def test_lanes_bounded_by_width():
    with pytest.raises(ValueError):
        MicroOp(UopClass.FMA, lanes=17, width_lanes=16)


def test_memory_classes():
    assert MEMORY_CLASSES == {UopClass.LOAD, UopClass.STORE}
    assert MicroOp(UopClass.LOAD, addr=0).is_memory
    assert not MicroOp(UopClass.ALU).is_memory


def test_wrong_path_template_normalizes_weights():
    template = WrongPathTemplate(mix=((UopClass.ALU, 2.0),
                                      (UopClass.LOAD, 2.0)))
    # u < 0.5 -> ALU, u >= 0.5 -> LOAD
    assert template.pick_class(0.1) is UopClass.ALU
    assert template.pick_class(0.9) is UopClass.LOAD


def test_wrong_path_template_rejects_zero_weights():
    with pytest.raises(ValueError):
        WrongPathTemplate(mix=((UopClass.ALU, 0.0),))


def test_wrong_path_template_covers_unit_interval():
    template = WrongPathTemplate()
    for u in (0.0, 0.25, 0.5, 0.75, 0.999999):
        assert isinstance(template.pick_class(u), UopClass)
