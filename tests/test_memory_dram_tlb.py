"""Unit tests for the DRAM bandwidth model and the TLBs."""

import pytest

from repro.config.cores import DramConfig, TlbConfig
from repro.memory.dram import DramModel
from repro.memory.tlb import Tlb


def test_dram_unloaded_latency():
    dram = DramModel(DramConfig(latency=100, cycles_per_line=4.0))
    assert dram.access(0.0) == 100.0


def test_dram_bandwidth_spacing():
    dram = DramModel(DramConfig(latency=100, cycles_per_line=4.0))
    first = dram.access(0.0)
    second = dram.access(0.0)   # same-cycle request queues 4 cycles
    assert second == first + 4.0


def test_dram_idle_gap_resets_queue():
    dram = DramModel(DramConfig(latency=100, cycles_per_line=4.0))
    dram.access(0.0)
    assert dram.access(1000.0) == 1100.0  # no queueing after a gap


def test_dram_queue_delay_stat():
    dram = DramModel(DramConfig(latency=100, cycles_per_line=10.0))
    dram.access(0.0)
    dram.access(0.0)
    assert dram.total_queue_delay == pytest.approx(10.0)
    assert dram.average_queue_delay == pytest.approx(5.0)


def test_dram_writeback_consumes_bandwidth():
    dram = DramModel(DramConfig(latency=100, cycles_per_line=4.0))
    dram.writeback(0.0)
    assert dram.access(0.0) == 104.0


def test_tlb_hit_after_fill():
    tlb = Tlb(TlbConfig(entries=4, page_bytes=4096, miss_penalty=20))
    assert tlb.access(0x1000) == 20   # cold miss
    assert tlb.access(0x1FFF) == 0    # same page
    assert tlb.access(0x2000) == 20   # next page


def test_tlb_lru_eviction():
    tlb = Tlb(TlbConfig(entries=2, page_bytes=4096, miss_penalty=20))
    tlb.access(0x0000)
    tlb.access(0x1000)
    tlb.access(0x0000)          # refresh page 0
    tlb.access(0x2000)          # evicts page 1 (LRU)
    assert tlb.access(0x0000) == 0
    assert tlb.access(0x1000) == 20


def test_tlb_miss_rate():
    tlb = Tlb(TlbConfig(entries=8, page_bytes=4096, miss_penalty=20))
    tlb.access(0x0000)
    tlb.access(0x0008)
    assert tlb.miss_rate == pytest.approx(0.5)


def test_tlb_capacity_respected():
    tlb = Tlb(TlbConfig(entries=4, page_bytes=4096, miss_penalty=20))
    for page in range(16):
        tlb.access(page * 4096)
    assert len(tlb._entries) <= 4
