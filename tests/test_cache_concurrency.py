"""Concurrent and crash-safety behaviour of the disk cache.

Pool workers, parallel pytest sessions and killed writers all share one
``results/.cache`` tree; these tests hammer the same key from several
processes and assert the atomic-rename protocol never exposes a torn
entry, never leaks temp files, and never raises out of a reader.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle

import pytest

from repro.experiments.cache import TELEMETRY, CaseSpec, DiskCache
from repro.experiments.runner import clear_cache, execute_spec

N = 1500


@pytest.fixture(autouse=True)
def _fresh_harness():
    clear_cache()
    TELEMETRY.reset()
    yield
    clear_cache()
    TELEMETRY.reset()


def _case():
    spec = CaseSpec(workload="exchange2", preset="tiny", instructions=N)
    return spec, execute_spec(spec)


def _hammer_writer(root, key, fingerprint, payload, rounds, errors):
    """Child: repeatedly write the same entry (atomic-rename race)."""
    try:
        from repro.pipeline.result import SimResult

        cache = DiskCache(root)
        result = SimResult.from_dict(payload)
        for _ in range(rounds):
            cache.put(key, fingerprint, result)
    except BaseException as exc:  # noqa: BLE001 - report to the parent
        errors.put(f"writer: {exc!r}")


def _hammer_reader(root, key, expected_cycles, rounds, errors):
    """Child: repeatedly read; a hit must be valid, a miss must be None."""
    try:
        cache = DiskCache(root)
        for _ in range(rounds):
            result = cache.get(key)
            if result is not None and result.cycles != expected_cycles:
                errors.put(f"reader: wrong cycles {result.cycles}")
                return
    except BaseException as exc:  # noqa: BLE001
        errors.put(f"reader: {exc!r}")


def _hammer_purger(root, rounds, errors):
    """Child: sweep entries and temp files while others read/write."""
    try:
        cache = DiskCache(root)
        for _ in range(rounds):
            cache.purge_tmp()
            cache.purge()
    except BaseException as exc:  # noqa: BLE001
        errors.put(f"purger: {exc!r}")


def test_concurrent_writers_readers_and_purgers(tmp_path):
    spec, result = _case()
    key = spec.key()
    ctx = multiprocessing.get_context("fork")
    errors = ctx.Queue()
    root = str(tmp_path / "cache")
    payload = result.to_dict()
    children = [
        ctx.Process(
            target=_hammer_writer,
            args=(root, key, spec.fingerprint(), payload, 60, errors),
        )
        for _ in range(2)
    ] + [
        ctx.Process(
            target=_hammer_reader,
            args=(root, key, result.cycles, 120, errors),
        )
        for _ in range(2)
    ] + [
        ctx.Process(target=_hammer_purger, args=(root, 40, errors))
    ]
    for child in children:
        child.start()
    for child in children:
        child.join(timeout=60)
    assert all(child.exitcode == 0 for child in children)
    failures = []
    while not errors.empty():
        failures.append(errors.get())
    assert failures == []
    # No temp litter survives the free-for-all.
    cache = DiskCache(root)
    assert list(cache.root.glob("??/*.pkl.tmp*")) == []


def test_corrupt_entry_evicted_under_concurrent_reader(tmp_path):
    """A reader racing a corrupt-entry writer sees misses, never errors."""
    spec, result = _case()
    key = spec.key()
    root = str(tmp_path / "cache")
    cache = DiskCache(root)
    cache.put(key, spec.fingerprint(), result)
    path = cache.path_for(key)

    ctx = multiprocessing.get_context("fork")
    errors = ctx.Queue()
    reader = ctx.Process(
        target=_hammer_reader, args=(root, key, result.cycles, 200, errors)
    )
    reader.start()
    for round_no in range(50):
        path.parent.mkdir(parents=True, exist_ok=True)
        if round_no % 2:
            path.write_bytes(b"\x00torn pickle\x00")
        else:
            cache.put(key, spec.fingerprint(), result)
    reader.join(timeout=60)
    assert reader.exitcode == 0
    assert errors.empty()


def test_put_cleans_tmp_on_mid_write_failure(tmp_path, monkeypatch):
    spec, result = _case()
    cache = DiskCache(tmp_path / "cache")

    def explode(*args, **kwargs):
        raise RuntimeError("simulated mid-pickle crash")

    monkeypatch.setattr(pickle, "dump", explode)
    with pytest.raises(RuntimeError):
        cache.put(spec.key(), spec.fingerprint(), result)
    monkeypatch.undo()
    assert list(cache.root.glob("??/*.pkl.tmp*")) == [], (
        "the temp file must not survive a mid-write failure"
    )
    assert cache.get(spec.key()) is None


def test_purge_tmp_sweeps_stale_files_only(tmp_path):
    spec, result = _case()
    cache = DiskCache(tmp_path / "cache")
    cache.put(spec.key(), spec.fingerprint(), result)
    shard = cache.path_for(spec.key()).parent
    stale = shard / "orphan.pkl.tmp12345"
    stale.write_bytes(b"leftover from a killed writer")
    fresh = shard / "inflight.pkl.tmp67890"
    fresh.write_bytes(b"another writer, mid-flight")
    os.utime(stale, (0, 0))  # ancient mtime

    assert cache.purge_tmp(max_age_seconds=3600) == 1
    assert not stale.exists()
    assert fresh.exists(), "young temp files survive an age-limited sweep"
    assert cache.purge_tmp() == 1, "an unconditional sweep takes the rest"
    assert cache.get(spec.key()) is not None, "real entries are untouched"


def test_purge_removes_tmp_files_too(tmp_path):
    spec, result = _case()
    cache = DiskCache(tmp_path / "cache")
    cache.put(spec.key(), spec.fingerprint(), result)
    shard = cache.path_for(spec.key()).parent
    (shard / "orphan.pkl.tmp999").write_bytes(b"x")
    removed = cache.purge()
    assert removed == 1, "purge() reports real entries, not temp litter"
    assert list(cache.root.glob("??/*")) == []
