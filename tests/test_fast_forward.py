"""Quiescent-cycle fast-forward: bitwise equivalence and unit behaviour.

The engine's contract is that skipping provably-stalled cycles changes
*nothing* observable: every ``SimResult`` field (cycles, stacks, cache
stats, top-down report) must be bit-for-bit identical to the
cycle-by-cycle loop, in every wrong-path mode, with and without warmup.
The differential matrix here enforces that; the unit tests pin down the
per-accountant ``observe_repeat`` equivalence (including the
width-normalizer carry drain and the active-observation fallback) and
the ``next_event`` queries the window bound is built from.
"""

from __future__ import annotations

import math

import pytest

from repro.config.presets import broadwell, knights_landing
from repro.core.commit import CommitAccountant
from repro.core.components import Component
from repro.core.dispatch import DispatchAccountant
from repro.core.flops import FlopsAccountant
from repro.core.issue import IssueAccountant
from repro.core.multistage import MultiStageCollector
from repro.core.observation import CycleObservation
from repro.core.topdown import TopDownAccountant
from repro.core.wrongpath import WrongPathMode
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.core import (
    ENV_FAST_FORWARD,
    CoreSimulator,
    fast_forward_default,
    simulate,
)
from repro.workloads.registry import make_trace

N = 2_000


def _comparable(result) -> dict:
    """Everything that must be identical (host-side telemetry excluded)."""
    payload = result.to_dict()
    for key in ("wall_seconds", "ff_windows", "ff_cycles_skipped",
                "replay_windows", "replay_cycles_skipped"):
        payload.pop(key)
    return payload


def _run_pair(workload, config, *, mode=WrongPathMode.EXACT, warmup=0,
              topdown=False, n=N):
    trace = make_trace(workload, n, 1)
    on = CoreSimulator(trace, config, mode=mode, topdown=topdown,
                       warmup_instructions=warmup, fast_forward=True)
    off = CoreSimulator(trace, config, mode=mode, topdown=topdown,
                        warmup_instructions=warmup, fast_forward=False)
    return on, on.run(), off, off.run()


# ---------------------------------------------------------------------------
# differential matrix: ff on == ff off, bit for bit
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workload", ["mcf", "bwaves"])
@pytest.mark.parametrize("preset", [broadwell, knights_landing])
@pytest.mark.parametrize("mode", list(WrongPathMode))
@pytest.mark.parametrize("warmup", [0, 200])
def test_fast_forward_bitwise_identical(workload, preset, mode, warmup):
    on, res_on, off, res_off = _run_pair(
        workload, preset(), mode=mode, warmup=warmup
    )
    assert _comparable(res_on) == _comparable(res_off)
    assert on.ff_cycles_skipped > 0, "fast-forward never engaged"
    assert off.ff_windows == 0 and off.ff_cycles_skipped == 0


def test_fast_forward_identical_with_topdown():
    _, res_on, _, res_off = _run_pair("mcf", broadwell(), topdown=True)
    assert _comparable(res_on) == _comparable(res_off)
    assert res_on.report is not None and res_on.report.topdown is not None


def test_memory_bound_trace_skips_most_cycles():
    on, res_on, _, res_off = _run_pair("chase", broadwell())
    assert _comparable(res_on) == _comparable(res_off)
    # The DRAM-latency pointer chase is the engine's best case: the
    # overwhelming majority of cycles sit inside quiescent windows.
    assert on.ff_cycles_skipped > 0.9 * res_on.cycles


# ---------------------------------------------------------------------------
# escape hatches
# ---------------------------------------------------------------------------


def test_fast_forward_param_disables_engine():
    trace = make_trace("chase", 1_000, 1)
    sim = CoreSimulator(trace, broadwell(), fast_forward=False)
    sim.run()
    assert sim.ff_windows == 0 and sim.ff_cycles_skipped == 0


def test_fast_forward_env_default(monkeypatch):
    monkeypatch.delenv(ENV_FAST_FORWARD, raising=False)
    assert fast_forward_default() is True
    monkeypatch.setenv(ENV_FAST_FORWARD, "0")
    assert fast_forward_default() is False
    trace = make_trace("chase", 1_000, 1)
    sim = CoreSimulator(trace, broadwell())  # fast_forward=None -> env
    sim.run()
    assert sim.ff_windows == 0


def test_simulate_wrapper_passes_fast_forward_through():
    trace = make_trace("chase", 1_000, 1)
    res_on = simulate(trace, broadwell(), fast_forward=True)
    res_off = simulate(trace, broadwell(), fast_forward=False)
    assert _comparable(res_on) == _comparable(res_off)


# ---------------------------------------------------------------------------
# observe_repeat(obs, k) == k x observe(obs), per accountant
# ---------------------------------------------------------------------------


class _FakeUop:
    """Minimal BlamableUop for stall observations."""

    def __init__(self, *, is_load=False, dcache_miss=False, issued=False,
                 done=False, multi_cycle=False, block_id=0):
        self.is_load = is_load
        self.dcache_miss = dcache_miss
        self.issued = issued
        self.done = done
        self.multi_cycle = multi_cycle
        self.block_id = block_id
        self.producers: list = []


def _dcache_stall_obs() -> CycleObservation:
    """A pure stall cycle blocked on a missing load at the ROB head."""
    obs = CycleObservation()
    obs.window_full = True
    obs.rob_head = _FakeUop(is_load=True, dcache_miss=True, issued=True)
    miss = _FakeUop(is_load=True, dcache_miss=True, issued=True)
    waiter = _FakeUop()
    waiter.producers = [miss]
    obs.first_nonready_producer = miss
    obs.vfp_in_rs = True
    obs.oldest_vfp_producer = miss
    return obs


def _frontend_stall_obs() -> CycleObservation:
    obs = CycleObservation()
    obs.uop_queue_empty = True
    obs.rs_empty = True
    obs.rob_empty = True
    obs.fe_reason = Component.ICACHE
    return obs


def _active_obs() -> CycleObservation:
    obs = CycleObservation()
    obs.n_dispatch = 3
    obs.n_issue = 2
    obs.n_commit = 1
    obs.flops_issued = 4.0
    obs.n_vfp_issued = 1
    return obs


def _accountants():
    return [
        ("dispatch", lambda: DispatchAccountant(4)),
        ("dispatch-spec",
         lambda: DispatchAccountant(4, WrongPathMode.SPECULATIVE)),
        ("issue", lambda: IssueAccountant(4)),
        ("commit", lambda: CommitAccountant(4)),
        ("flops", lambda: FlopsAccountant(2, 8)),
        ("topdown", lambda: TopDownAccountant(4)),
    ]


def _state(accountant):
    """Comparable accounting state, whatever the accountant type."""
    if isinstance(accountant, TopDownAccountant):
        return (
            accountant._cycles,
            dict(accountant.report.level1),
            dict(accountant.report.frontend_detail),
            dict(accountant.report.backend_detail),
        )
    state = [dict(accountant.stack.counters)]
    norm = getattr(accountant, "norm", None)
    if norm is not None:
        state.append(norm.carry)
    spec = getattr(accountant, "spec", None)
    if spec is not None:
        state.append({
            block: dict(counters)
            for block, counters in spec.pending.items()
        })
    return state


@pytest.mark.parametrize("make_obs", [_dcache_stall_obs, _frontend_stall_obs,
                                      _active_obs])
@pytest.mark.parametrize("name,factory", _accountants())
def test_observe_repeat_equals_k_observes(name, factory, make_obs):
    k = 7
    bulk, loop = factory(), factory()
    obs = make_obs()
    bulk.observe_repeat(obs, k)
    for _ in range(k):
        loop.observe(obs)
    assert _state(bulk) == _state(loop), name


@pytest.mark.parametrize("name,factory", _accountants())
def test_observe_repeat_drains_width_carry(name, factory):
    """A preceding over-wide cycle leaves normalizer carry; the repeat
    path must account the drain cycles one by one before bulk-adding."""
    k = 5
    bulk, loop = factory(), factory()
    wide = _active_obs()
    wide.n_dispatch = wide.n_issue = wide.n_commit = 9  # > width: carry
    stall = _dcache_stall_obs()
    bulk.observe(wide)
    bulk.observe_repeat(stall, k)
    loop.observe(wide)
    for _ in range(k):
        loop.observe(stall)
    assert _state(bulk) == _state(loop), name


def test_collector_observe_repeat_fans_out():
    k = 11
    bulk = MultiStageCollector(4, vector_units=2, vector_lanes=8,
                               topdown=True)
    loop = MultiStageCollector(4, vector_units=2, vector_lanes=8,
                               topdown=True)
    obs = _frontend_stall_obs()
    bulk.observe_repeat(obs, k)
    for _ in range(k):
        loop.observe(obs)
    for attr in ("dispatch", "issue", "commit", "flops", "topdown"):
        assert _state(getattr(bulk, attr)) == _state(getattr(loop, attr)), attr


# ---------------------------------------------------------------------------
# next_event queries
# ---------------------------------------------------------------------------


def test_frontend_next_event_states():
    sim = CoreSimulator(make_trace("mcf", 200, 1), broadwell())
    fe = sim.frontend
    # Actively delivering: no skipping allowed.
    assert fe.next_event(0) == 0.0
    # Stalled: the stall expiry is the next event.
    fe._stall(25, Component.ICACHE)
    assert fe.next_event(10) == 25.0
    assert fe.next_event(30) == 30.0  # stall expired: active again
    # Waiting on a sync release: only the core can wake it.
    fe.waiting_sync = object()
    assert fe.next_event(10) == math.inf
    fe.waiting_sync = None
    # Idle (trace exhausted): never delivers again.
    fe._idx = fe._count
    fe._decoded_idx = fe._decoded_len
    assert fe.next_event(100) == math.inf


def test_hierarchy_next_event_tracks_fills():
    hierarchy = MemoryHierarchy(broadwell().memory)
    assert hierarchy.next_event(0) == math.inf
    result = hierarchy.dload(0x1000_0000, 0)
    assert not result.l1_hit
    event = hierarchy.next_event(0)
    assert 0 < event <= result.complete
    # Past the last fill, the queue drains back to +inf.
    assert hierarchy.next_event(int(result.complete) + 1_000) == math.inf
