"""Fig. 1: example CPI stacks at dispatch, issue and commit for one app.

The paper's motivating figure: the same execution, three different stacks.
The frontend components (bpred/icache) are largest at dispatch; the
backend components (dcache/alu/depend) largest at commit.
"""

from repro.core.components import (
    BACKEND_COMPONENTS,
    FRONTEND_COMPONENTS,
)
from repro.experiments.runner import run_case
from repro.viz.ascii import render_cpi_stack

from benchmarks.conftest import run_once


def test_fig1_example_stacks(benchmark, reporter):
    result = run_once(benchmark, lambda: run_case("mcf", "bdw"))
    report = result.report
    scale = result.cpi
    for stack in (report.dispatch, report.issue, report.commit):
        reporter.emit(render_cpi_stack(stack, scale=scale))
        reporter.emit()

    # Shape assertions: the Fig. 1 stage disagreement.
    fe_dispatch = sum(report.dispatch.get(c) for c in FRONTEND_COMPONENTS)
    fe_commit = sum(report.commit.get(c) for c in FRONTEND_COMPONENTS)
    be_dispatch = sum(report.dispatch.get(c) for c in BACKEND_COMPONENTS)
    be_commit = sum(report.commit.get(c) for c in BACKEND_COMPONENTS)
    reporter.emit(
        f"frontend cycles: dispatch {fe_dispatch:.0f} >= commit "
        f"{fe_commit:.0f}; backend cycles: commit {be_commit:.0f} >= "
        f"dispatch {be_dispatch:.0f}"
    )
    assert fe_dispatch > fe_commit
    assert be_commit > be_dispatch
