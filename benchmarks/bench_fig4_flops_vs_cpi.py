"""Fig. 4: normalized FLOPS-stack minus CPI-stack differences, DeepBench.

Paper shape claims:

* the FLOPS base component is always *smaller* than the CPI base
  (negative base difference), and the gap is much larger on KNL than SKX
  (2-wide KNL needs *every* micro-op to be an FMA to close it);
* sgemm on KNL is compensated mainly by `mem` (JIT memory-operand FMAs
  wait on the L1), sgemm on SKX shows a small base gap (~-5%);
* the convolution groups show large differences on both machines, with
  visible `mem` contributions.
"""

from repro.core.components import FlopsComponent
from repro.experiments.flops_study import figure4_differences
from repro.viz.ascii import render_table

from benchmarks.conftest import run_once


def test_fig4_flops_vs_cpi(benchmark, reporter):
    diffs = run_once(benchmark, figure4_differences)
    shown = [
        c for c in FlopsComponent
        if any(abs(v.get(c, 0.0)) > 0.001 for v in diffs.values())
    ]
    rows = []
    for (group, preset), values in diffs.items():
        row = {"group": group, "machine": preset}
        row.update({c.value: values.get(c, 0.0) for c in shown})
        rows.append(row)
    reporter.emit(
        "Fig. 4: normalized FLOPS-stack component minus CPI-stack "
        "component (sums to 0 per row)"
    )
    reporter.emit(render_table(rows, float_format="{:+.3f}"))
    reporter.emit_csv("series", rows)

    base = {key: v[FlopsComponent.BASE] for key, v in diffs.items()}
    # Base difference negative everywhere.
    assert all(v < 0 for v in base.values()), base
    # And much larger (more negative) on KNL than SKX for sgemm.
    assert base[("sgemm-train", "knl")] < 3 * base[("sgemm-train", "skx")]
    reporter.emit(
        f"\nbase diff sgemm-train: KNL {base[('sgemm-train', 'knl')]:+.3f} "
        f"vs SKX {base[('sgemm-train', 'skx')]:+.3f}"
    )
    # sgemm/KNL compensated dominantly by the memory component.
    knl_sgemm = diffs[("sgemm-train", "knl")]
    compensators = {
        c: v for c, v in knl_sgemm.items()
        if c is not FlopsComponent.BASE and v > 0
    }
    assert max(compensators, key=compensators.get) is FlopsComponent.MEM
    # Every row sums to ~zero (both stacks are normalized partitions).
    for key, values in diffs.items():
        assert abs(sum(values.values())) < 1e-9, key
