"""Sec. IV claim: accounting adds negligible simulation-time overhead.

The paper reports <1% on Sniper (C++).  Our accountants are pure Python on
a pure-Python simulator, so the relative cost is higher; the bench records
the measured ratio and asserts it stays within a small-constant factor —
i.e. the per-cycle accounting work is O(1) like the paper's.
"""

from repro.experiments.overhead import measure_overhead
from repro.experiments.runner import get_trace

from benchmarks.conftest import run_once


def test_accounting_overhead(benchmark, reporter):
    trace = get_trace("mcf", 8000, 1)  # materialize once, outside the reps
    result = run_once(
        benchmark,
        lambda: measure_overhead("mcf", "bdw", instructions=8000, trace=trace),
    )
    reporter.emit(
        "Multi-stage CPI + FLOPS accounting overhead (mcf on BDW, "
        f"{result.cycles} cycles):"
    )
    reporter.emit(
        f"  accounting on : {result.seconds_with:.3f} s"
    )
    reporter.emit(
        f"  accounting off: {result.seconds_without:.3f} s"
    )
    reporter.emit(
        f"  overhead      : {100 * result.overhead_fraction:+.1f}% "
        "(paper: <1% in Sniper's C++; pure Python pays more per cycle "
        "but stays O(1))"
    )
    assert result.overhead_fraction < 1.5
