"""Fused multi-accountant execution: the wall-clock win, with floors.

The fusion engine runs every case that shares one timing — same trace,
machine, wrong-path mode, warmup and seeds, different accounting
configuration — as a single pipeline pass with all collectors attached.
This bench times the two batch shapes fusion was built for and pins the
speedups as committed floors:

* the **comparison batch** (topdown vs. multi-stage stacks vs. a
  no-accounting timing reference for each workload, three cases per
  timing) must run at least ``2x`` faster fused than unfused;
* the **Fig. 2 matrix** (baseline + idealized timings, each wanting both
  the multi-stage and the topdown stacks, two cases per timing) must run
  at least ``1.5x`` faster fused.

Timing is plain ``time.perf_counter`` over full ``run_cases`` batches
(min of several repeats, fused and unfused interleaved round-robin so a
host-load spike hits both) — no pytest-benchmark fixture — so the CI
perf-smoke job can run this file standalone.  Results land in
``results/BENCH_fusion.json``; the committed copy documents the measured
ratios the floors were derived from.  Both floors are same-run ratios —
host-independent, enforced without slack.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.config.idealize import PERFECT_BPRED, PERFECT_DCACHE
from repro.experiments import runner
from repro.experiments.cache import TELEMETRY, CaseSpec
from repro.experiments.parallel import run_cases

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_fusion.json"

#: Same-run fused/unfused wall-clock floors (host-independent, no slack).
COMPARISON_FLOOR = 2.0
FIG2_FLOOR = 1.5

#: Repeats per batch shape; the minimum wall time per arm is reported.
REPEATS = 3

N = 5_000

#: The comparison batch: for every workload, the multi-stage stacks, the
#: topdown stacks, and a no-accounting timing reference — one timing,
#: three accounting configurations.
COMPARISON_WORKLOADS = ("mcf", "chase", "exchange2")

#: The Fig. 2-shaped matrix: baseline + idealized timings per workload,
#: each timing wanted with both the multi-stage and the topdown stacks.
FIG2_WORKLOADS = ("mcf", "exchange2")
FIG2_IDEALIZATIONS = (None, PERFECT_DCACHE, PERFECT_BPRED)


def comparison_specs() -> list[CaseSpec]:
    specs: list[CaseSpec] = []
    for workload in COMPARISON_WORKLOADS:
        base = dict(workload=workload, preset="bdw", instructions=N)
        specs.append(CaseSpec(**base))
        specs.append(CaseSpec(**base, topdown=True))
        specs.append(CaseSpec(**base, accounting=False))
    return specs


def fig2_specs() -> list[CaseSpec]:
    specs: list[CaseSpec] = []
    for workload in FIG2_WORKLOADS:
        for ideal in FIG2_IDEALIZATIONS:
            base = dict(
                workload=workload, preset="bdw", instructions=N,
                idealization=ideal,
            )
            specs.append(CaseSpec(**base))
            specs.append(CaseSpec(**base, topdown=True))
    return specs


def _time_batch(specs: list[CaseSpec]) -> dict:
    """Best-of-``REPEATS`` wall time for the fused and unfused arms.

    ``use_cache=False`` keeps every rep honest (no memo/disk hits), and
    the traces are materialized once up front so trace generation rides
    on neither arm.
    """
    for spec in specs:
        runner.get_trace(spec.workload, spec.instructions, spec.seed)
    best: dict[bool, float] = {}
    sims: dict[bool, int] = {}
    for _ in range(REPEATS):
        for fuse in (False, True):
            before = TELEMETRY.sim_invocations
            start = time.perf_counter()
            run_cases(specs, jobs=1, use_cache=False, fuse=fuse)
            wall = time.perf_counter() - start
            sims[fuse] = TELEMETRY.sim_invocations - before
            if fuse not in best or wall < best[fuse]:
                best[fuse] = wall
    speedup = best[False] / best[True] if best[True] > 0 else None
    return {
        "cases": len(specs),
        "unfused_runs": sims[False],
        "fused_runs": sims[True],
        "unfused_wall_seconds": round(best[False], 4),
        "fused_wall_seconds": round(best[True], 4),
        "speedup": round(speedup, 2),
    }


def test_fusion_speedup(reporter):
    batches = {
        "comparison": (comparison_specs(), COMPARISON_FLOOR),
        "fig2_matrix": (fig2_specs(), FIG2_FLOOR),
    }
    payload: dict = {
        "bench": "fusion",
        "repeats": REPEATS,
        "instructions": N,
        "floors": {"comparison": COMPARISON_FLOOR, "fig2_matrix": FIG2_FLOOR},
        "batches": {},
    }
    for name, (specs, floor) in batches.items():
        cell = _time_batch(specs)
        payload["batches"][name] = cell
        reporter.emit(
            f"{name:12s}: {cell['cases']} cases as "
            f"{cell['fused_runs']} fused runs "
            f"(vs {cell['unfused_runs']} unfused): "
            f"unfused={cell['unfused_wall_seconds']:.3f}s "
            f"fused={cell['fused_wall_seconds']:.3f}s "
            f"speedup={cell['speedup']}x (floor {floor}x)"
        )

    RESULTS_DIR.mkdir(exist_ok=True)
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    reporter.emit(f"wrote {BASELINE_PATH.relative_to(RESULTS_DIR.parent)}")

    comparison = payload["batches"]["comparison"]
    fig2 = payload["batches"]["fig2_matrix"]
    # Fusion must actually have fused: one pipeline run per timing.
    assert comparison["fused_runs"] == len(COMPARISON_WORKLOADS)
    assert fig2["fused_runs"] == len(FIG2_WORKLOADS) * len(FIG2_IDEALIZATIONS)
    assert comparison["speedup"] >= COMPARISON_FLOOR, (
        f"comparison batch fused speedup {comparison['speedup']}x "
        f"is below the {COMPARISON_FLOOR}x floor"
    )
    assert fig2["speedup"] >= FIG2_FLOOR, (
        f"fig2 matrix fused speedup {fig2['speedup']}x "
        f"is below the {FIG2_FLOOR}x floor"
    )
