"""Shared-memory engine throughput: per-core cost of cycle lockstep.

The multi-core engine steps N cores in cycle lockstep over a shared
L3/DRAM backend in one host thread, so its scheduling loop (the
min-(cycle, index) scan, barrier bookkeeping, shared-level arbitration)
taxes every simulated cycle.  This bench pins that tax with a floor and
reports the contended picture alongside:

* **Floor cell** — a 4-core engine run with contention switched off
  (huge shared L3, zero DRAM bandwidth cost, disjoint per-core
  footprints, no barriers).  The differential suite proves each core's
  result is bitwise identical to a solo ``CoreSimulator`` run there, so
  per-core throughput — committed uops per host-second spent simulating
  that core — divided by the solo run's throughput measures *pure
  engine overhead*.  Lockstep interleaving spreads host time evenly
  across identical cores (host seconds per core = wall / N), so the
  per-core rate equals the aggregate uops-per-wall-second and the ratio
  reduces to aggregate-vs-solo.  It must stay at or above
  :data:`PER_CORE_FLOOR`.

* **Contended cell** — the fig-5 threaded conv kernel on SKX, reported
  without a floor: shared-L3/DRAM contention legitimately inflates
  cycles per uop (that is the effect the engine exists to simulate), so
  uops/s/core drops with simulated slowdown, not engine inefficiency.

Replay is disarmed in every cell: the workloads are periodic, so the
steady-state replay engine would legally skip most of the 1-core run
(it is unsound under sharing and auto-disarmed for N > 1), turning the
ratio into replay-vs-no-replay instead of engine-vs-solo.  With the
memory fast path, ``replay=False`` still arms the recorder for silent
skipping, so the solo cells null the engine object outright — the same
disarm the multi-core engine applies to its member cores — keeping
both cells on the identical stepping path.  Fast-forward stays on
everywhere; it is sound for any N.

The measured cells land in ``results/BENCH_multicore.json`` (uploaded
as a CI artifact) next to the committed reference numbers.
"""

from __future__ import annotations

import dataclasses
import json
import time

from repro.config.cores import CacheConfig, DramConfig
from repro.config.presets import skylake_x, tiny_core
from repro.isa import decoder as asm
from repro.pipeline.core import CoreSimulator
from repro.pipeline.multicore import MulticoreSimulator
from repro.workloads.base import DATA_BASE, TraceBuilder
from repro.workloads.registry import make_threaded_traces

from benchmarks.conftest import RESULTS_DIR

BASELINE_PATH = RESULTS_DIR / "BENCH_multicore.json"

CORES = 4
REPEATS = 3
FLOOR_INSTRUCTIONS = 8_000
CONV_WORKLOAD = "conv-vgg-2-fwd"
CONV_INSTRUCTIONS = 6_000

#: 4-core engine per-core throughput floor relative to the 1-core solo
#: run on the no-contention cell, same host, no slack (the cells run
#: moments apart in one process, so host drift cancels).  The per-core
#: simulated work is identical by construction and host time divides
#: evenly under lockstep, so anything below 1.0 is engine scheduling
#: overhead.
PER_CORE_FLOOR = 0.6


def _no_contention_config():
    """tiny core whose shared level cannot couple the cores."""
    config = tiny_core()
    memory = dataclasses.replace(
        config.memory,
        l3=CacheConfig(64 * 1024 * 1024, 16, latency=20, mshrs=64),
        dram=DramConfig(latency=60, cycles_per_line=0.0),
    )
    return dataclasses.replace(config, name="tiny-nc", memory=memory)


def _disjoint_load_trace(core: int, n: int):
    """A barrier-free load/ALU loop over a per-core-disjoint footprint."""
    b = TraceBuilder(f"disjoint-t{core}", seed=1 + core)
    base = DATA_BASE + core * 0x100_0000
    pc0 = b.pc
    for i in range(n):
        b.at(pc0 + (i % 8) * 4)
        if i % 3 == 0:
            addr = base + (i * 7 % 512) * 64
            b.emit(asm.load(b.pc, dst=2, addr=addr, addr_srcs=(1,)))
        else:
            reg = 2 + i % 4
            b.emit(asm.alu(b.pc, dst=reg, srcs=(reg,)))
    return b.program()


def _solo(trace, config, *, seed):
    """A 1-core simulator with replay disarmed the engine's way.

    The multi-core engine nulls the replay object on every member core
    (recording and silent skipping included); the solo reference must
    step the same code path or the ratio compares recorder overhead,
    not engine overhead.
    """
    sim = CoreSimulator(trace, config, seed=seed, replay=False)
    sim._replay = None
    sim._replay_rec = False
    return sim


def _best(make_sim):
    best = None
    for _ in range(REPEATS):
        sim = make_sim()
        start = time.perf_counter()
        result = sim.run()
        wall = time.perf_counter() - start
        if best is None or wall < best[0]:
            best = (wall, result)
    return best


def _floor_cells() -> dict:
    config = _no_contention_config()
    traces = [_disjoint_load_trace(core, FLOOR_INSTRUCTIONS)
              for core in range(CORES)]
    w_solo, r_solo = _best(lambda: _solo(traces[0], config, seed=7))
    w_eng, r_eng = _best(
        lambda: MulticoreSimulator(
            traces, config,
            seeds=tuple(7 + i for i in range(CORES)), replay=False,
        )
    )
    solo_rate = r_solo.committed_uops / w_solo
    # Host seconds per core = wall / N under lockstep, so the per-core
    # rate (uops/N) / (wall/N) collapses to the aggregate
    # uops-per-wall-second.
    engine_rate = r_eng.committed_uops / w_eng
    return {
        "config": config.name,
        "instructions": FLOOR_INSTRUCTIONS,
        "single": {
            "cores": 1,
            "wall_seconds": round(w_solo, 4),
            "committed_uops": r_solo.committed_uops,
            "cycles": r_solo.cycles,
            "uops_per_second_per_core": round(solo_rate),
        },
        "engine": {
            "cores": CORES,
            "wall_seconds": round(w_eng, 4),
            "host_seconds_per_core": round(w_eng / CORES, 4),
            "committed_uops": r_eng.committed_uops,
            "makespan_cycles": r_eng.cycles,
            "uops_per_second_per_core": round(engine_rate),
        },
        "per_core_ratio": round(engine_rate / solo_rate, 3),
    }


def _contended_cells() -> dict:
    config = skylake_x()
    (solo_trace,) = make_threaded_traces(
        CONV_WORKLOAD, 1, CONV_INSTRUCTIONS, seed=3
    )
    traces = make_threaded_traces(
        CONV_WORKLOAD, CORES, CONV_INSTRUCTIONS, seed=3
    )
    w_solo, r_solo = _best(lambda: _solo(solo_trace, config, seed=7))
    w_eng, r_eng = _best(
        lambda: MulticoreSimulator(traces, config, seed=7, replay=False)
    )
    solo_rate = r_solo.committed_uops / w_solo
    engine_rate = r_eng.committed_uops / w_eng
    total_cycles = sum(r.cycles for r in r_eng.per_core)
    return {
        "workload": CONV_WORKLOAD,
        "config": config.name,
        "instructions": CONV_INSTRUCTIONS,
        "single": {
            "cores": 1,
            "wall_seconds": round(w_solo, 4),
            "committed_uops": r_solo.committed_uops,
            "cycles": r_solo.cycles,
            "uops_per_second_per_core": round(solo_rate),
        },
        "engine": {
            "cores": CORES,
            "wall_seconds": round(w_eng, 4),
            "host_seconds_per_core": round(w_eng / CORES, 4),
            "committed_uops": r_eng.committed_uops,
            "makespan_cycles": r_eng.cycles,
            "core_cycles": total_cycles,
            "uops_per_second_per_core": round(engine_rate),
            "core_cycles_per_second": round(total_cycles / w_eng),
        },
        "per_core_ratio": round(engine_rate / solo_rate, 3),
        "note": (
            "informational: contention inflates simulated cycles/uop, so "
            "this ratio measures simulated slowdown, not engine overhead"
        ),
    }


def test_engine_per_core_throughput_floor():
    floor = _floor_cells()
    contended = _contended_cells()
    payload = {
        "bench": "multicore",
        "cores": CORES,
        "repeats": REPEATS,
        "per_core_floor": PER_CORE_FLOOR,
        "replay": "disarmed in every cell",
        "no_contention": floor,
        "contended_conv": contended,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\nno-contention: solo "
        f"{floor['single']['uops_per_second_per_core']:,} uops/s/core, "
        f"{CORES}-core engine "
        f"{floor['engine']['uops_per_second_per_core']:,} uops/s/core "
        f"(ratio {floor['per_core_ratio']:.2f}, floor {PER_CORE_FLOOR}); "
        f"contended conv ratio {contended['per_core_ratio']:.2f} "
        f"(informational)"
    )
    assert floor["per_core_ratio"] >= PER_CORE_FLOOR, (
        f"engine per-core throughput ratio {floor['per_core_ratio']:.3f} "
        f"fell below the {PER_CORE_FLOOR} floor ({floor})"
    )
