"""Harness scaling: wall time vs worker count, and cold vs warm cache.

Not a paper figure — this characterizes the experiment runner itself.
A Fig. 2-shaped sweep (several workloads, baseline + idealized reruns)
is executed cold at jobs ∈ {1, 2, max} and then warm from the disk
cache, and the wall times land in ``results/BENCH_runner_scaling.json``
so runner regressions are visible across commits.

Parallel speedup is only observable on multi-core hosts; the JSON
records ``cpu_count`` so single-core results are not misread.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.config.idealize import PERFECT_BPRED, PERFECT_DCACHE
from repro.experiments import runner
from repro.experiments.cache import TELEMETRY, CaseSpec
from repro.experiments.parallel import run_cases

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

INSTRUCTIONS = 4000
WORKLOADS = ("mcf", "imagick", "exchange2", "povray")


def _sweep_specs() -> list[CaseSpec]:
    specs = [
        CaseSpec(workload=name, preset="tiny", instructions=INSTRUCTIONS)
        for name in WORKLOADS
    ]
    for name in WORKLOADS:
        specs.append(
            CaseSpec(
                workload=name, preset="tiny", instructions=INSTRUCTIONS,
                idealization=PERFECT_DCACHE,
            )
        )
    specs.append(
        CaseSpec(
            workload="exchange2", preset="tiny", instructions=INSTRUCTIONS,
            idealization=PERFECT_BPRED,
        )
    )
    return specs


def _timed_run(specs, *, jobs: int) -> dict:
    TELEMETRY.reset()
    start = time.perf_counter()
    results = run_cases(specs, jobs=jobs)
    wall = time.perf_counter() - start
    sim_seconds = sum(r.wall_seconds for r in results)
    uops = sum(r.committed_uops for r in results)
    return {
        "jobs": jobs,
        "wall_seconds": round(wall, 4),
        "sim_seconds": round(sim_seconds, 4),
        "simulated": TELEMETRY.sim_invocations,
        "disk_hits": TELEMETRY.disk_hits,
        "uops_per_second": round(uops / wall) if wall > 0 else None,
    }


def test_runner_scaling(tmp_path, monkeypatch, reporter):
    # Never touch the developer's real cache while clearing/warming.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    specs = _sweep_specs()
    cpu = os.cpu_count() or 1
    job_levels = sorted({1, 2, max(2, cpu)})

    cold: list[dict] = []
    for jobs in job_levels:
        runner.clear_cache()
        cold.append(_timed_run(specs, jobs=jobs))

    # Warm rerun: the last cold run left a fully populated disk cache.
    runner.clear_cache(disk=False)
    warm = _timed_run(specs, jobs=job_levels[-1])
    assert warm["simulated"] == 0, "warm rerun must be disk-served"

    serial = cold[0]["wall_seconds"]
    payload = {
        "bench": "runner_scaling",
        "cpu_count": cpu,
        "cases": len(specs),
        "instructions_per_case": INSTRUCTIONS,
        "cold": cold,
        "warm": warm,
        "parallel_speedup": {
            str(row["jobs"]): round(serial / row["wall_seconds"], 2)
            for row in cold
            if row["wall_seconds"] > 0
        },
        "cold_vs_warm_speedup": (
            round(serial / warm["wall_seconds"], 1)
            if warm["wall_seconds"] > 0
            else None
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_runner_scaling.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    reporter.emit(f"{len(specs)} cases x {INSTRUCTIONS} instrs, "
                  f"{cpu} CPU(s)")
    for row in cold:
        reporter.emit(
            f"cold jobs={row['jobs']}: {row['wall_seconds']:.2f}s wall "
            f"({row['simulated']} simulated, "
            f"{row['uops_per_second']:,} uops/s)"
        )
    reporter.emit(
        f"warm jobs={warm['jobs']}: {warm['wall_seconds']:.2f}s wall "
        f"({warm['disk_hits']} disk hits, 0 simulated) — "
        f"{payload['cold_vs_warm_speedup']}x faster than cold serial"
    )
    reporter.emit(f"wrote {out.relative_to(RESULTS_DIR.parent)}")
    assert payload["cold_vs_warm_speedup"] > 1
