"""Memory fast path: fast-vs-legacy throughput ratios and pinned floors.

The allocation-free memory hot path (flat array-backed cache/TLB sets,
interned hit results, stall-streak elision and silent replay arming —
all gated together behind ``REPRO_LEGACY_MEMORY`` /
``memory_fast_path``) is proven bitwise-identical to the legacy walk by
``tests/test_memory_hotpath.py``; this bench pins down that it is also
*fast*, two ways:

* **fast_vs_legacy** — same host, same moment: the production fast path
  against the dict-backed legacy oracle, both with the skip engines off
  (``fast_forward=False, replay=False``), best-of-``REPEATS``
  interleaved.  Host-drift-immune, enforced by
  :data:`FAST_VS_LEGACY_FLOORS` without slack.
* **active_uops_per_second vs the PR 8 pins** — the committed
  ``results/BENCH_simulator_speed.json`` ``ff_off`` throughputs from
  before this optimization landed (recorded below as
  :data:`PR8_ACTIVE_BASELINE`), enforced by :data:`PR8_SPEEDUP_FLOORS`.

Where the floors landed, honestly: the ≥2x target holds (with 3x+
margin) on the designated memory-bound trace (``chase``, a DRAM-latency
pointer chase — the workload whose active cycles the memory walk
dominated) and on the two loop traces (``exchange2``/``spin``, which the
fast path's silent replay arming accelerates ~5x with the engines
nominally off — far above their 1.1x requirement).  ``mcf`` and
``bwaves`` gain 1.3–1.6x: their active-cycle profiles are dominated by
wrong-path micro-op churn under branch mispredicts (mcf: ~52k
synthesized wrong-path uops per 8k committed) and by dispatch/issue
bookkeeping (bwaves), not by the memory walk this PR removes, so their
floors are pinned at the measured-with-margin 1.25x/1.15x.  The
per-subsystem evidence lives in DESIGN.md §10.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.config.presets import broadwell, knights_landing
from repro.pipeline.core import CoreSimulator
from repro.workloads.registry import make_trace

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_memory_hotpath.json"

#: Same cells as ``bench_simulator_speed``: (workload, kind, instructions).
MATRIX = (
    ("chase", "memory-bound", 6_000),
    ("mcf", "memory-bound", 8_000),
    ("bwaves", "memory-bound", 10_000),
    ("exchange2", "compute-bound", 30_000),
    ("spin", "compute-bound", 30_000),
)

CONFIGS = (("bdw", broadwell), ("knl", knights_landing))

#: PR 8 ``ff_off`` throughput pins: the ``uops_per_second`` of the
#: committed ``results/BENCH_simulator_speed.json`` as of commit 314aa5c
#: (fused multi-accountant execution — the last state of the simulator
#: before the memory fast path).  ``active_uops_per_second`` keeps the
#: same kwargs (``fast_forward=False, replay=False``), so these are the
#: denominators for the fast path's speedup floors.
PR8_ACTIVE_BASELINE = {
    ("chase", "bdw"): 7_002,
    ("chase", "knl"): 8_814,
    ("mcf", "bdw"): 11_650,
    ("mcf", "knl"): 16_311,
    ("bwaves", "bdw"): 29_367,
    ("bwaves", "knl"): 34_090,
    ("exchange2", "bdw"): 202_750,
    ("exchange2", "knl"): 176_684,
    ("spin", "bdw"): 86_708,
    ("spin", "knl"): 123_717,
}

#: Speedup floors on ``active_uops_per_second`` versus
#: :data:`PR8_ACTIVE_BASELINE`, enforced without slack (the pins are
#: fixed numbers, so host drift eats into the margin; the floors leave
#: at least ~20% under the measured best-of-5 ratios).
PR8_SPEEDUP_FLOORS = {
    "chase": 2.0,
    "exchange2": 2.0,
    "spin": 2.0,
    "mcf": 1.25,
    "bwaves": 1.15,
}

#: Same-host fast-vs-legacy ratio floors (wall-clock ratio of the two
#: interleaved variants, immune to host drift), no slack.
FAST_VS_LEGACY_FLOORS = {
    "chase": 3.0,
    "exchange2": 2.5,
    "spin": 2.5,
    "mcf": 1.2,
    "bwaves": 1.1,
}

#: Committed-baseline slack for the absolute-throughput floors derived
#: from this bench's own committed JSON (CI and developer hosts differ).
SLACK = 0.25

REPEATS = 5

#: The two timed variants: identical kwargs except the representation
#: gate.  Skip engines off so the legacy cell is the true every-cycle
#: reference (the fast cell still elides provably-dead cycles — that is
#: part of the optimization under test, gated by the same flag).
_VARIANTS = (
    ("fast", True),
    ("legacy", False),
)


def _time_cell(workload: str, instructions: int, config_fn) -> dict:
    """Best-of-``REPEATS`` for both variants, interleaved round-robin so
    a transient host-load spike lands on both instead of skewing the
    ratio the floors are built from."""
    best: dict[str, tuple] = {}
    for _ in range(REPEATS):
        for name, fast in _VARIANTS:
            trace = make_trace(workload, instructions, 1)
            sim = CoreSimulator(
                trace, config_fn(), memory_fast_path=fast,
                fast_forward=False, replay=False,
            )
            start = time.perf_counter()
            result = sim.run()
            wall = time.perf_counter() - start
            if name not in best or wall < best[name][0]:
                best[name] = (wall, result)
    cells = {}
    for name, (wall, result) in best.items():
        cells[name] = {
            "wall_seconds": round(wall, 4),
            "uops_per_second": round(result.committed_uops / wall),
            "committed_uops": result.committed_uops,
            "cycles": result.cycles,
        }
    return cells


def _committed_floor(baseline: dict | None, workload: str, cfg: str) -> int:
    if baseline is None:
        return 0
    try:
        cell = baseline["workloads"][workload]["configs"][cfg]
        return int(cell["fast"]["uops_per_second"] * SLACK)
    except (KeyError, TypeError):
        return 0


def test_memory_hotpath_speed(reporter):
    baseline = None
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())

    workloads: dict[str, dict] = {}
    for workload, kind, instructions in MATRIX:
        configs: dict[str, dict] = {}
        for cfg_name, cfg_fn in CONFIGS:
            timed = _time_cell(workload, instructions, cfg_fn)
            fast, legacy = timed["fast"], timed["legacy"]
            ratio = round(
                legacy["wall_seconds"] / fast["wall_seconds"], 2
            )
            active = fast["uops_per_second"]
            pinned = PR8_ACTIVE_BASELINE[(workload, cfg_name)]
            pr8_speedup = round(active / pinned, 2)
            configs[cfg_name] = {
                "fast": fast,
                "legacy": legacy,
                "fast_vs_legacy": ratio,
                "active_uops_per_second": active,
                "pr8_baseline": pinned,
                "speedup_vs_pr8": pr8_speedup,
            }
            reporter.emit(
                f"{workload:10s} {cfg_name} ({kind}): "
                f"fast={fast['wall_seconds']:.3f}s "
                f"legacy={legacy['wall_seconds']:.3f}s "
                f"ratio={ratio}x  "
                f"active={active:,} uops/s "
                f"({pr8_speedup}x vs PR 8 pin {pinned:,})"
            )
        workloads[workload] = {
            "kind": kind, "instructions": instructions, "configs": configs,
        }

    payload = {
        "bench": "memory_hotpath",
        "repeats": REPEATS,
        "baseline_slack": SLACK,
        "pr8_active_baseline": {
            f"{wl}/{cfg}": v
            for (wl, cfg), v in PR8_ACTIVE_BASELINE.items()
        },
        "pr8_speedup_floors": PR8_SPEEDUP_FLOORS,
        "fast_vs_legacy_floors": FAST_VS_LEGACY_FLOORS,
        "workloads": workloads,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    reporter.emit(f"wrote {BASELINE_PATH.relative_to(RESULTS_DIR.parent)}")

    # Pinned PR 8 speedup floors, no slack.
    for workload, ratio in PR8_SPEEDUP_FLOORS.items():
        for cfg_name, _ in CONFIGS:
            cell = workloads[workload]["configs"][cfg_name]
            pinned = PR8_ACTIVE_BASELINE[(workload, cfg_name)]
            floor = int(pinned * ratio)
            assert cell["active_uops_per_second"] >= floor, (
                f"{workload}/{cfg_name} active_uops_per_second "
                f"{cell['active_uops_per_second']:,} is below the "
                f"{ratio}x memory-fast-path floor {floor:,} "
                f"(PR 8 baseline {pinned:,})"
            )

    # Same-host fast-vs-legacy ratio floors, no slack.
    for workload, ratio in FAST_VS_LEGACY_FLOORS.items():
        for cfg_name, _ in CONFIGS:
            cell = workloads[workload]["configs"][cfg_name]
            assert cell["fast_vs_legacy"] >= ratio, (
                f"{workload}/{cfg_name} fast-vs-legacy ratio "
                f"{cell['fast_vs_legacy']}x is below the {ratio}x floor"
            )

    # Absolute floors against this bench's own committed JSON (with
    # slack, host-dependent).
    for workload, data in workloads.items():
        for cfg_name, cell in data["configs"].items():
            floor = _committed_floor(baseline, workload, cfg_name)
            assert cell["fast"]["uops_per_second"] > floor, (
                f"{workload}/{cfg_name} fell below committed floor "
                f"{floor:,}"
            )
