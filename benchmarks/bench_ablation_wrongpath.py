"""Ablation: wrong-path discernment strategies (Sec. III-B).

Compares the dispatch-stage stacks produced by the three strategies on a
mispredict-heavy workload.  Expected shape: SIMPLE recovers most of the
bpred component via the base-difference correction; the per-block
SPECULATIVE counters track EXACT closely (the paper's argument for them in
simulators).
"""

from repro import WrongPathMode
from repro.config.presets import broadwell
from repro.core.components import CPI_COMPONENTS, Component
from repro.experiments.runner import get_trace
from repro.pipeline.core import simulate
from repro.viz.ascii import render_table

from benchmarks.conftest import run_once


def _run_all_modes():
    trace = get_trace("leela", None, 1)
    config = broadwell()
    warmup = len(trace) // 3
    return {
        mode: simulate(trace, config, mode=mode,
                       warmup_instructions=warmup)
        for mode in WrongPathMode
    }


def test_ablation_wrongpath_modes(benchmark, reporter):
    results = run_once(benchmark, _run_all_modes)
    stacks = {m: r.report.dispatch for m, r in results.items()}
    rows = []
    for component in CPI_COMPONENTS:
        values = {
            m.value: stacks[m].component_cpi(component)
            for m in WrongPathMode
        }
        if any(v > 0.001 for v in values.values()):
            rows.append({"component": component.value, **values})
    reporter.emit("Dispatch-stage CPI components by wrong-path strategy "
                  "(leela on BDW):")
    reporter.emit(render_table(rows))

    exact = stacks[WrongPathMode.EXACT]
    for mode in (WrongPathMode.SIMPLE, WrongPathMode.SPECULATIVE):
        err = abs(
            stacks[mode].component_cpi(Component.BPRED)
            - exact.component_cpi(Component.BPRED)
        )
        reporter.emit(
            f"{mode.value}: |bpred - exact| = {err:.4f} CPI"
        )
        # Hardware-feasible strategies stay within 15% of the exact bpred
        # component.
        assert err < 0.15 * exact.component_cpi(Component.BPRED)
    # Timing is identical across modes (accounting never perturbs timing).
    cycles = {r.cycles for r in results.values()}
    assert len(cycles) == 1
