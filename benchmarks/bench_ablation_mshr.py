"""Ablation: L2 MSHR count sweep on the bwaves contention case.

The Fig. 3c mechanism depends on a *finite* L2 MSHR file: more MSHRs mean
less queueing for the I-cache misses stuck behind prefetch traffic.
Sweeping the file size shows the queueing delay collapsing as the file
grows — the knob behind the paper's higher-order effect.
"""

from dataclasses import replace

from repro.config.presets import broadwell
from repro.experiments.runner import get_trace
from repro.pipeline.core import simulate
from repro.viz.ascii import render_table

from benchmarks.conftest import run_once

MSHR_SWEEP = (4, 8, 16, 64)


def _run():
    trace = get_trace("bwaves", None, 1)
    warmup = len(trace) // 3
    out = {}
    for mshrs in MSHR_SWEEP:
        config = broadwell()
        memory = replace(
            config.memory, l2=replace(config.memory.l2, mshrs=mshrs)
        )
        out[mshrs] = simulate(
            trace, replace(config, memory=memory),
            warmup_instructions=warmup,
        )
    return out


def test_ablation_l2_mshrs(benchmark, reporter):
    results = run_once(benchmark, _run)
    rows = []
    for mshrs, result in results.items():
        stats = result.memory_stats["l2_mshr"]
        rows.append(
            {
                "l2 mshrs": mshrs,
                "cpi": result.cpi,
                "avg mshr wait": stats["avg_wait"],
                "max mshr wait": stats["max_wait"],
            }
        )
    reporter.emit("L2 MSHR sweep (bwaves on BDW):")
    reporter.emit(render_table(rows))

    waits = [results[m].memory_stats["l2_mshr"]["avg_wait"]
             for m in MSHR_SWEEP]
    # Queueing decreases monotonically (allowing small noise) with size.
    assert waits[0] > waits[-1]
    assert results[MSHR_SWEEP[0]].cpi >= results[MSHR_SWEEP[-1]].cpi
