"""Table I: CPI components by idealizing structures.

Paper values (for shape reference):

    mcf on KNL   all real 1.41 | 1-cyc ALU -0.02 | perf D$ -0.30 | both -0.36
    mcf on BDW   all real 0.72 | perf bpred -0.33 | perf D$ -0.29 | both -0.47

The KNL rows must show the *hidden-stall* effect (combined delta larger
than the sum of the individual deltas) and the BDW rows the *overlap*
effect (combined delta smaller than the sum).
"""

from repro.experiments.idealization import table1_rows
from repro.viz.ascii import render_table

from benchmarks.conftest import run_once


def test_table1(benchmark, reporter):
    rows = run_once(benchmark, table1_rows)
    reporter.emit("Table I: CPI components by idealizing structures")
    reporter.emit(render_table(rows))

    by_app: dict[str, dict[str, float]] = {}
    for row in rows:
        if row["diff"] is not None:
            by_app.setdefault(row["app"], {})[row["config"]] = row["diff"]

    knl = by_app["mcf on KNL"]
    knl_sum = knl["1-cycle-alu"] + knl["perfect-dcache"]
    knl_both = knl["1-cycle-alu+perfect-dcache"]
    reporter.emit(
        f"\nKNL: sum of parts {knl_sum:.3f} vs combined {knl_both:.3f} "
        f"-> hidden stalls {'REPRODUCED' if knl_both > knl_sum else 'NOT seen'}"
    )
    assert knl_both > knl_sum, "hidden ALU stalls (Table I, KNL)"

    bdw = by_app["mcf on BDW"]
    bdw_sum = bdw["perfect-bpred"] + bdw["perfect-dcache"]
    bdw_both = bdw["perfect-bpred+perfect-dcache"]
    reporter.emit(
        f"BDW: sum of parts {bdw_sum:.3f} vs combined {bdw_both:.3f} "
        f"-> overlap {'REPRODUCED' if bdw_both < bdw_sum else 'NOT seen'}"
    )
    assert bdw_both < bdw_sum, "overlapping penalties (Table I, BDW)"
