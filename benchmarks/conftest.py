"""Shared infrastructure for the benchmark harness.

Every bench regenerates one paper table or figure: it runs the experiment
(timed through pytest-benchmark with a single round — the experiments are
simulations, not microbenchmarks), prints the paper-shaped rows/series, and
appends them to ``results/<bench>.txt`` so the regenerated artifacts
survive the pytest run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

#: Where regenerated tables/figures are written.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


class Reporter:
    """Prints and persists one bench's regenerated output."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.lines: list[str] = []

    def emit(self, text: str = "") -> None:
        self.lines.append(text)

    def emit_csv(self, suffix: str, rows) -> None:
        """Also persist a machine-readable series for downstream plotting."""
        from repro.viz.export import write_csv

        RESULTS_DIR.mkdir(exist_ok=True)
        write_csv(RESULTS_DIR / f"{self.name}.{suffix}.csv", rows)

    def flush(self) -> None:
        body = "\n".join(self.lines) + "\n"
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{self.name}.txt").write_text(body)
        print(f"\n=== {self.name} ===")
        print(body)


@pytest.fixture
def reporter(request):
    rep = Reporter(request.node.name.replace("[", "-").replace("]", ""))
    yield rep
    rep.flush()


def run_once(benchmark, func):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
