"""Ablation: W = min stage width with carry vs naive native width.

Sec. III-A argues the issue stage must be normalized to the *minimum*
stage width: with the native (wider) width, the issue base component
under-counts and spurious stall cycles appear even in stall-free code.
With the min-width carry scheme, all three stacks agree.
"""

from repro.config.presets import broadwell
from repro.core.components import Component
from repro.experiments.runner import get_trace
from repro.pipeline.core import CoreSimulator
from repro.viz.ascii import render_table

from benchmarks.conftest import run_once


def _run_both():
    trace = get_trace("exchange2", None, 1)
    config = broadwell()  # dispatch/commit 4-wide, issue 8-wide
    out = {}
    for label, width in (("min-width (paper)", None),
                         ("native issue width", config.issue_width)):
        sim = CoreSimulator(trace, config, accounting_width=width,
                            warmup_instructions=len(trace) // 3)
        out[label] = sim.run()
    return out


def test_ablation_width_normalization(benchmark, reporter):
    results = run_once(benchmark, _run_both)
    rows = []
    for label, result in results.items():
        issue = result.report.issue
        rows.append(
            {
                "scheme": label,
                "issue base": issue.component_cpi(Component.BASE),
                "commit base": result.report.commit.component_cpi(
                    Component.BASE
                ),
                "issue stall cycles": issue.total()
                - issue.get(Component.BASE),
            }
        )
    reporter.emit(
        "Width normalization ablation (exchange2 on BDW: ILP-saturated)"
    )
    reporter.emit(render_table(rows))

    paper = results["min-width (paper)"].report
    naive = results["native issue width"].report
    # Paper scheme: base (nearly) equal across stages; tiny issue stalls.
    assert abs(
        paper.issue.get(Component.BASE) - paper.commit.get(Component.BASE)
    ) <= 0.02 * paper.issue.cycles
    # Naive scheme: the 8-wide issue stage can never average more than 4
    # uops/cycle here, so its base halves and fake stalls appear.
    assert naive.issue.get(Component.BASE) < 0.7 * paper.issue.get(
        Component.BASE
    )
    naive_stalls = naive.issue.total() - naive.issue.get(Component.BASE)
    paper_stalls = paper.issue.total() - paper.issue.get(Component.BASE)
    reporter.emit(
        f"\nspurious issue stall cycles: naive {naive_stalls:.0f} vs "
        f"paper scheme {paper_stalls:.0f}"
    )
    assert naive_stalls > 2 * paper_stalls
