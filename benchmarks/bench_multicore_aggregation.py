"""Socket-level aggregation (paper Sec. IV methodology).

The paper aggregates per-thread stacks into socket-level figures:
averaging CPI stacks component per component and adding FLOPS stacks.
This bench runs a DeepBench kernel as several homogeneous threads,
aggregates, and checks the premises: threads are homogeneous, the
aggregate preserves the single-thread component shape, and socket FLOPS
scales with the thread count.
"""

from repro.config.presets import skylake_x
from repro.core.components import CPI_COMPONENTS
from repro.experiments.multicore import simulate_socket
from repro.viz.ascii import render_cpi_stack, render_flops_stack

from benchmarks.conftest import run_once

THREADS = 4


def test_multicore_aggregation(benchmark, reporter):
    result = run_once(
        benchmark,
        lambda: simulate_socket(
            "gemm-train-1760-skx", skylake_x(), threads=THREADS,
            instructions=8000, homogeneous=True,
        ),
    )
    reporter.emit(
        f"{THREADS}-thread socket aggregate of gemm-train-1760 on SKX "
        f"(homogeneity: max CPI deviation "
        f"{100 * result.homogeneity():.1f}%)"
    )
    reporter.emit(render_cpi_stack(result.commit))
    reporter.emit()
    if result.flops is not None:
        reporter.emit(
            render_flops_stack(result.flops, 2.1, cores=THREADS)
        )
        reporter.emit(
            f"socket: {result.socket_gflops():,.0f} GFLOPS over "
            f"{THREADS} threads"
        )

    # Homogeneity premise (Sec. IV): per-thread CPIs agree closely.
    assert result.homogeneity() < 0.1
    # The aggregate preserves the single-thread component shape.
    single = result.per_thread[0].report.commit
    for component in CPI_COMPONENTS:
        agg = result.commit.component_cpi(component)
        one = single.component_cpi(component)
        assert abs(agg - one) < 0.1 * max(single.cpi(), 1e-9) + 1e-6, (
            component
        )
    # Socket FLOPS is per-thread FLOPS times the thread count.
    per_thread = result.flops.gflops(2.1)
    assert result.socket_gflops() == THREADS * per_thread
