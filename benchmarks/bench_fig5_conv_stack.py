"""Fig. 5: IPC stack vs FLOPS stack for one conv-train-fwd config on SKX,
without and with a perfect D-cache.

Paper shape: IPC is near ideal (3.7 of 4) while FLOPS reaches only ~43% of
peak; the FLOPS stack explains the gap via frontend (too few VFP
micro-ops), memory (FMAs waiting on loads) and dependences.  Making the
D-cache perfect raises both IPC and FLOPS (paper: +0.2 each in their
units) and shrinks the FLOPS memory component.
"""

from repro.core.components import FlopsComponent
from repro.experiments.flops_study import figure5_case
from repro.viz.ascii import render_stack_bar
from repro.core.components import FLOPS_COMPONENTS

from benchmarks.conftest import run_once


def test_fig5_conv_stack(benchmark, reporter):
    case = run_once(benchmark, figure5_case)
    max_ipc = 4.0
    peak_gflops = 2 * 2 * 16 * 2.1 * 26  # k=2, v=16, 2.1 GHz, 26 cores

    for idealized, label in ((False, "baseline"),
                             (True, "perfect Dcache")):
        ipc = case.ipc_stack(idealized)
        flops = case.flops_stack(idealized)
        reporter.emit(f"--- {label} ---")
        reporter.emit("IPC stack (height = max IPC = 4):")
        reporter.emit(render_stack_bar(ipc, order=list(ipc),
                                       scale=max_ipc,
                                       value_format="{:.2f}"))
        reporter.emit("FLOPS stack (socket GFLOPS; height = peak):")
        reporter.emit(render_stack_bar(flops, order=FLOPS_COMPONENTS,
                                       scale=peak_gflops,
                                       value_format="{:,.0f}"))
        reporter.emit()

    base_frac = case.baseline.report.flops.achieved_fraction()
    ipc_frac = case.baseline.ipc / max_ipc
    reporter.emit(
        f"baseline: IPC at {ipc_frac:.0%} of max while FLOPS at "
        f"{base_frac:.0%} of peak"
    )
    # The Fig. 5 contrast: IPC looks healthy, FLOPS does not.
    assert ipc_frac > 0.7
    assert base_frac < 0.55
    assert ipc_frac - base_frac > 0.2

    # Perfect Dcache: both IPC and FLOPS improve; mem component shrinks.
    ideal = case.perfect_dcache
    assert ideal.ipc > case.baseline.ipc
    ideal_frac = ideal.report.flops.achieved_fraction()
    assert ideal_frac > base_frac
    base_mem = case.baseline.report.flops.normalized().get(
        FlopsComponent.MEM, 0.0
    )
    ideal_mem = ideal.report.flops.normalized().get(
        FlopsComponent.MEM, 0.0
    )
    reporter.emit(
        f"perfect Dcache: FLOPS {base_frac:.0%} -> {ideal_frac:.0%}, "
        f"mem component {base_mem:.1%} -> {ideal_mem:.1%}"
    )
    assert ideal_mem < base_mem
    # The Unsched component (threads yielding on synchronization) exists.
    assert case.baseline.report.flops.get(FlopsComponent.UNSCHED) > 0
