"""Fig. 3: selected multi-stage CPI stacks before/after idealization.

Five case studies, each demonstrating one phenomenon:

* (a) mcf/BDW    — bpred delta inside the dispatch/commit bounds; the
                   dcache delta better predicted by commit.
* (b) cactus/BDW — unified-L2 I$/D$ coupling: perfecting the D-cache
                   shrinks the *icache* component (second-order effect).
* (c) bwaves/BDW — L2-MSHR/bandwidth contention from prefetches: a large
                   measured icache component whose removal gains ~nothing,
                   while a perfect D-cache recovers most of the CPI.
* (d) povray/KNL — the Microcode component exists; idealization deltas
                   land near the multi-stage bounds.
* (e) imagick/KNL— the issue stack's producer lookup exposes multi-cycle
                   ALU latency that dispatch/commit call 'depend'.
"""

import pytest

from repro.core.components import Component
from repro.experiments.idealization import fig3_case
from repro.viz.ascii import render_cpi_stack

from benchmarks.conftest import run_once


def _emit_case(reporter, study):
    report = study.baseline.report
    reporter.emit(
        f"{study.workload} on {study.preset}: baseline CPI "
        f"{study.baseline.cpi:.3f}"
    )
    for stack in (report.dispatch, report.issue, report.commit):
        reporter.emit(render_cpi_stack(stack, scale=study.baseline.cpi))
        reporter.emit()
    for name, result in study.idealized.items():
        reporter.emit(
            f"{name}: CPI {result.cpi:.3f} "
            f"(delta {study.baseline.cpi - result.cpi:+.3f})"
        )


def test_fig3a_mcf_bdw(benchmark, reporter):
    study = run_once(benchmark, lambda: fig3_case("fig3a"))
    _emit_case(reporter, study)
    report = study.baseline.report
    # Dispatch over-estimates bpred, commit under-estimates it, and the
    # actual delta lies between (or near) them.
    d_bpred = report.dispatch.component_cpi(Component.BPRED)
    c_bpred = report.commit.component_cpi(Component.BPRED)
    assert d_bpred > c_bpred
    bpred_delta = study.delta("perfect-bpred")
    reporter.emit(
        f"\nbpred: dispatch {d_bpred:.3f} / commit {c_bpred:.3f} / actual "
        f"{bpred_delta:.3f}"
    )
    # The actual delta lies between the bounds, allowing a margin above
    # the dispatch component: squashing in-flight chase loads makes each
    # misprediction slightly costlier than the frontend-only accounting
    # sees (a second-order effect; see EXPERIMENTS.md).
    assert c_bpred - 0.05 <= bpred_delta <= 1.3 * d_bpred
    # The dcache delta is better predicted by the commit stack.
    dcache_delta = study.delta("perfect-dcache")
    d_err = abs(report.dispatch.component_cpi(Component.DCACHE)
                - dcache_delta)
    c_err = abs(report.commit.component_cpi(Component.DCACHE)
                - dcache_delta)
    reporter.emit(
        f"dcache: dispatch err {d_err:.3f} vs commit err {c_err:.3f}"
    )
    assert c_err < d_err


def test_fig3b_cactus_bdw(benchmark, reporter):
    study = run_once(benchmark, lambda: fig3_case("fig3b"))
    _emit_case(reporter, study)
    base_icache = study.baseline.report.dispatch.component_cpi(
        Component.ICACHE
    )
    ideal_icache = study.idealized[
        "perfect-dcache"
    ].report.dispatch.component_cpi(Component.ICACHE)
    reporter.emit(
        f"\nicache component: baseline {base_icache:.3f} -> "
        f"{ideal_icache:.3f} with a perfect D-cache (unified-L2 coupling)"
    )
    # Sec. V-A: "the Icache component reduces when the L1 Dcache is made
    # perfect, which is the case in this example."
    assert ideal_icache < 0.6 * base_icache


def test_fig3c_bwaves_bdw(benchmark, reporter):
    study = run_once(benchmark, lambda: fig3_case("fig3c"))
    _emit_case(reporter, study)
    report = study.baseline.report
    icache_measured = max(
        report.stack(stage).component_cpi(Component.ICACHE)
        for stage in (report.stacks)
    )
    icache_delta = study.delta("perfect-icache")
    dcache_delta = study.delta("perfect-dcache")
    reporter.emit(
        f"\nicache component up to {icache_measured:.3f}, but a perfect "
        f"L1I gains only {icache_delta:+.3f} CPI (queueing transfers to "
        f"the contended L2 MSHRs); a perfect D-cache gains "
        f"{dcache_delta:+.3f}."
    )
    # Paper: "the observed reduction is less than 0.01".
    assert icache_measured > 0.15 * study.baseline.cpi
    assert abs(icache_delta) < 0.05 * icache_measured
    assert dcache_delta > 0.4 * study.baseline.cpi


def test_fig3d_povray_knl(benchmark, reporter):
    study = run_once(benchmark, lambda: fig3_case("fig3d"))
    _emit_case(reporter, study)
    report = study.baseline.report
    micro = report.dispatch.component_cpi(Component.MICROCODE)
    reporter.emit(f"\nMicrocode component at dispatch: {micro:.3f}")
    assert micro > 0, "the Fig. 3d Microcode component must appear"
    # The idealization deltas stay within (or near) the stage bounds.
    low, high = report.component_bounds(Component.ALU_LAT)
    alu_delta = study.delta("1-cycle-alu")
    reporter.emit(
        f"1-cycle ALU delta {alu_delta:.3f} vs bounds [{low:.3f}, "
        f"{high:.3f}]"
    )
    assert alu_delta <= high + 0.05
    low_b, high_b = report.component_bounds(Component.BPRED)
    bpred_delta = study.delta("perfect-bpred")
    assert low_b - 0.05 <= bpred_delta <= high_b + 0.05


def test_fig3e_imagick_knl(benchmark, reporter):
    study = run_once(benchmark, lambda: fig3_case("fig3e"))
    _emit_case(reporter, study)
    report = study.baseline.report
    # The unique value of the issue stage: dispatch/commit blame `depend`;
    # the producer lookup blames the executing multi-cycle op.
    issue_alu = report.issue.component_cpi(Component.ALU_LAT)
    commit_alu = report.commit.component_cpi(Component.ALU_LAT)
    commit_dep = report.commit.component_cpi(Component.DEPEND)
    reporter.emit(
        f"\nissue alu {issue_alu:.3f} vs commit alu {commit_alu:.3f} "
        f"(+ commit depend {commit_dep:.3f})"
    )
    assert issue_alu > commit_alu
    alu_delta = study.delta("1-cycle-alu")
    reporter.emit(
        f"1-cycle ALU delta {alu_delta:.3f} ~ issue component "
        f"{issue_alu:.3f} (+ recovered dependences)"
    )
    # The actual gain is at least the issue-stack prediction (it also
    # recovers the dependence stalls the chain caused).
    assert alu_delta >= 0.8 * issue_alu
