"""Baseline comparison: Yasin's top-down method vs multi-stage stacks.

The paper's Sec. II critique of top-down: "a stack measured at the
dispatch stage, which is the top level stack in Yasin's proposal,
prioritizes frontend misses, potentially underestimating the impact of
backend misses."  bwaves is the stress case: the frontend (I-cache, via
contended L2 MSHRs) and the backend (streaming loads) stall
simultaneously.  Top-down's level 1 charges those cycles to Frontend
Bound; the actual frontend idealization gains ~nothing while the D-cache
idealization gains a lot — which the multi-stage commit stack sees.
"""

from repro.config.idealize import PERFECT_DCACHE, PERFECT_ICACHE
from repro.config.presets import broadwell
from repro.core.components import Component
from repro.core.topdown import TopLevel
from repro.experiments.runner import get_trace, run_case
from repro.pipeline.core import simulate
from repro.viz.ascii import render_table

from benchmarks.conftest import run_once


def _run():
    trace = get_trace("bwaves", None, 1)
    warmup = len(trace) // 3
    baseline = simulate(trace, broadwell(), warmup_instructions=warmup,
                        topdown=True)
    perfect_i = run_case("bwaves", "bdw", idealization=PERFECT_ICACHE)
    perfect_d = run_case("bwaves", "bdw", idealization=PERFECT_DCACHE)
    return baseline, perfect_i, perfect_d


def test_topdown_vs_multistage(benchmark, reporter):
    baseline, perfect_i, perfect_d = run_once(benchmark, _run)
    topdown = baseline.report.topdown
    fractions = topdown.level1_fractions()
    reporter.emit("Top-down level 1 (bwaves on BDW):")
    reporter.emit(render_table([{
        level.value: fractions[level] for level in TopLevel
    }]))
    fe_delta = baseline.cpi - perfect_i.cpi
    be_delta = baseline.cpi - perfect_d.cpi
    reporter.emit(
        f"\nactual frontend (perfect-L1I) delta: {fe_delta:+.3f} CPI; "
        f"actual backend (perfect-D$) delta: {be_delta:+.3f} CPI"
    )
    commit_dcache = baseline.report.commit.component_cpi(Component.DCACHE)
    reporter.emit(
        f"multi-stage commit dcache component: {commit_dcache:.3f} CPI "
        "(the backend signal top-down's level 1 buries)"
    )
    # The critique: top-down attributes a visible share to the frontend...
    assert fractions[TopLevel.FRONTEND_BOUND] > 0.05
    # ...but the real frontend gain is negligible while the backend gain
    # is large, and the multi-stage commit stack points at the backend.
    assert abs(fe_delta) < 0.1 * be_delta
    assert commit_dcache > 0.5 * be_delta
