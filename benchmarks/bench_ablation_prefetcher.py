"""Ablation: the stream prefetcher's role in the Fig. 3c mechanism.

With the prefetcher off, bwaves' streaming loads pay demand latency (CPI
rises and the D-cache component grows), but the L2 MSHRs decongest — so a
perfect L1 I-cache recovers its component again.  This isolates the
prefetch-contention mechanism behind the 'perfect-Icache gains nothing'
result.
"""

from dataclasses import replace

from repro.config.presets import broadwell
from repro.core.components import Component
from repro.experiments.runner import get_trace
from repro.pipeline.core import simulate
from repro.viz.ascii import render_table

from benchmarks.conftest import run_once


def _run():
    trace = get_trace("bwaves", None, 1)
    warmup = len(trace) // 3
    out = {}
    for label, enabled in (("prefetch on", True), ("prefetch off", False)):
        config = broadwell()
        memory = replace(
            config.memory,
            prefetcher=replace(config.memory.prefetcher, enabled=enabled),
        )
        config = replace(config, memory=memory)
        baseline = simulate(trace, config, warmup_instructions=warmup)
        ideal = simulate(
            trace,
            replace(config, perfect_icache=True),
            warmup_instructions=warmup,
        )
        out[label] = (baseline, ideal)
    return out


def test_ablation_prefetcher(benchmark, reporter):
    results = run_once(benchmark, _run)
    rows = []
    for label, (baseline, ideal) in results.items():
        rows.append(
            {
                "config": label,
                "cpi": baseline.cpi,
                "dcache(commit)": baseline.report.commit.component_cpi(
                    Component.DCACHE
                ),
                "icache(max)": max(
                    baseline.report.stack(s).component_cpi(
                        Component.ICACHE
                    )
                    for s in baseline.report.stacks
                ),
                "perfect-L1I delta": baseline.cpi - ideal.cpi,
                "l2 mshr avg wait": baseline.memory_stats["l2_mshr"][
                    "avg_wait"
                ],
            }
        )
    reporter.emit("Prefetcher ablation (bwaves on BDW):")
    reporter.emit(render_table(rows))

    on_base, on_ideal = results["prefetch on"]
    off_base, off_ideal = results["prefetch off"]
    on_delta = on_base.cpi - on_ideal.cpi
    off_delta = off_base.cpi - off_ideal.cpi
    reporter.emit(
        f"\nperfect-L1I delta: {on_delta:+.3f} with prefetch vs "
        f"{off_delta:+.3f} without"
    )
    # The prefetcher hides the stream latency overall...
    assert on_base.cpi < off_base.cpi
    # ...but congests the L2 MSHRs, which is what nullifies the
    # perfect-icache gain (Fig. 3c's higher-order effect).
    on_wait = on_base.memory_stats["l2_mshr"]["avg_wait"]
    off_wait = off_base.memory_stats["l2_mshr"]["avg_wait"]
    assert on_wait > off_wait
