"""Fig. 2: per-component error distributions, single stacks vs multi-stage.

For every workload where a component reaches 10% of CPI in any stack, the
structure is perfected and the actual CPI delta compared to each stack's
prediction.  The paper's claim: the multi-stage representation has the
smallest error (tightest box, median nearest zero), and no single stack
wins everywhere — dispatch over-estimates frontend components and
under-estimates backend ones; commit the reverse.
"""

import pytest

from repro.core.components import Component
from repro.core.multistage import Stage
from repro.experiments.error import figure2_errors, summarize_errors
from repro.viz.ascii import render_boxplot_table

from benchmarks.conftest import run_once


@pytest.mark.parametrize("preset", ["bdw", "knl"])
def test_fig2_component_errors(benchmark, reporter, preset):
    errors = run_once(benchmark, lambda: figure2_errors(preset))
    reporter.emit(
        f"Fig. 2 ({preset.upper()}): error = predicted component - actual "
        "CPI delta"
    )
    multi_beats_singles = 0
    comparisons = 0
    csv_rows = []
    for component, points in errors.items():
        if not points:
            continue
        stats = summarize_errors(points)
        for point in points:
            csv_rows.append({
                "component": component.value,
                "workload": point.workload,
                "actual_delta": point.actual_delta,
                **{f"err_{s.value}": point.errors[s] for s in Stage},
                "err_multi": point.multistage_error,
            })
        reporter.emit(
            f"\ncomponent {component.value} "
            f"({len(points)} benchmarks over threshold):"
        )
        reporter.emit(render_boxplot_table(stats))
        within = sum(p.within_bounds for p in points)
        reporter.emit(
            f"actual delta within multi-stage bounds: {within}/{len(points)}"
        )
        multi_spread = stats["multi"].high - stats["multi"].low
        for stage in Stage:
            comparisons += 1
            single = stats[stage.value]
            # |median| of the multi-stage error should not exceed the
            # single stack's.
            if abs(stats["multi"].median) <= abs(single.median) + 1e-9:
                multi_beats_singles += 1
    reporter.emit(
        f"\nmulti-stage median error <= single-stack median error in "
        f"{multi_beats_singles}/{comparisons} comparisons"
    )
    reporter.emit_csv("points", csv_rows)
    # The paper's aggregate claim: the combined representation has the
    # lowest error in the clear majority of cases.
    assert multi_beats_singles >= 0.7 * comparisons
