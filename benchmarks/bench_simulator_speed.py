"""Simulator throughput: committed micro-ops per host second.

Not a paper figure — a harness health metric, useful when sizing traces
and for catching simulator performance regressions.  The matrix covers
memory-bound traces (where the quiescent-cycle fast-forward engine does
its work) and compute-bound loop traces (where the periodic steady-state
replay engine does its work and fast-forward must not regress), each on
the Broadwell and Knights Landing presets with fast-forward off, on, and
on-plus-replay.

Timing is plain ``time.perf_counter`` over full simulations (min of
several repeats) — no pytest-benchmark fixture — so the CI perf-smoke
job can run this file standalone.  Results land in
``results/BENCH_simulator_speed.json`` the way ``bench_runner_scaling``
writes ``results/BENCH_runner_scaling.json``; the committed copy doubles
as the throughput baseline the floor assertions are derived from
(replacing the old magic ``> 5_000`` constant).

Each (workload, config) cell also reports ``active_uops_per_second``:
the throughput of the fast-forward-off run.  Since the memory fast path
landed, that run is no longer strictly cycle-by-cycle — the fast path
elides provably-dead stall cycles and silently arms the replay engine
even with the skip engines nominally off — so every cell additionally
times a ``legacy`` variant (``memory_fast_path=False``, both engines
off), which *is* the true every-cycle reference and the denominator for
the engine-speedup assertions below.  The PR 3 scheduler floors keep
their original ``ff_off`` definition: the kwargs are unchanged, only
the implementation behind them got faster.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.config.presets import broadwell, knights_landing
from repro.pipeline.core import CoreSimulator
from repro.workloads.registry import make_trace

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_simulator_speed.json"

#: (workload, kind, instructions).  ``chase`` is the designated
#: memory-bound trace: a DRAM-latency pointer chase with no wrong-path
#: delivery, the fast-forward engine's best case.  ``exchange2`` is the
#: compute-bound guard: nearly every cycle is active, so fast-forward
#: must get out of the way.
MATRIX = (
    ("chase", "memory-bound", 6_000),
    ("mcf", "memory-bound", 8_000),
    ("bwaves", "memory-bound", 10_000),
    ("exchange2", "compute-bound", 30_000),
    ("spin", "compute-bound", 30_000),
)

CONFIGS = (("bdw", broadwell), ("knl", knights_landing))

#: Hard throughput floor for the designated memory-bound trace with
#: fast-forward on (raised from the historical 5,000 once the
#: fast-forward engine landed).
MEMORY_BOUND_FLOOR = 15_000

#: PR 3 active-throughput baselines: the ``ff_off`` ``uops_per_second``
#: of the committed ``results/BENCH_simulator_speed.json`` as of commit
#: 905c8a1 (the last full-RS-scan scheduler).  ``active_uops_per_second``
#: uses the same definition (uops/s with every cycle simulated, i.e.
#: computed over non-skipped cycles only), so these pinned values are the
#: denominators for the event-driven scheduler's speedup floors.
PR3_ACTIVE_BASELINE = {
    ("chase", "bdw"): 2_473,
    ("chase", "knl"): 3_110,
    ("mcf", "bdw"): 5_678,
    ("mcf", "knl"): 7_924,
    ("bwaves", "bdw"): 15_800,
    ("bwaves", "knl"): 19_009,
    ("exchange2", "bdw"): 141_194,
    ("exchange2", "knl"): 117_876,
}

#: Event-driven scheduler speedup floors on ``active_uops_per_second``
#: versus :data:`PR3_ACTIVE_BASELINE`, enforced without slack: the
#: select walk no longer scans the whole reservation station every
#: cycle, so active-cycle throughput must stay ahead of the legacy
#: scheduler by at least these factors.  The exchange2 floor dropped
#: from 1.5 when its load pattern was determinized for the replay
#: engine — the PR 3 pin was measured on the old randomized trace, so
#: the comparison carries extra cross-trace margin.
SCHEDULER_SPEEDUP_FLOORS = {"mcf": 2.0, "bwaves": 1.75, "exchange2": 1.25}

#: PR 5 fast-forward-on baselines: the ``ff_on`` ``uops_per_second`` of
#: the committed ``results/BENCH_simulator_speed.json`` before the
#: periodic steady-state replay engine landed.  The replay engine's
#: value proposition is skipping *active* loop cycles fast-forward can
#: never touch, so its floors are pinned against these.
PR5_FF_BASELINE = {
    ("exchange2", "bdw"): 225_837,
    ("exchange2", "knl"): 193_863,
}

#: Skip-engine speedup floors on the two designated loop traces: the
#: replay-on run must beat the every-cycle ``legacy`` run by at least
#: this wall-clock factor (host-independent ratio, no slack).  Pinned
#: against ``legacy`` rather than the fast-forward-only run because the
#: memory fast path arms replay silently: with it on, ``ff_on`` already
#: replays and the old on-vs-on ratio degenerates to ~1x.
REPLAY_SPEEDUP_FLOORS = {"exchange2": 3.0, "spin": 3.0}

#: Committed-baseline slack: CI and developer machines differ widely, so
#: a run only fails against the baseline when it is slower than
#: ``SLACK`` times the committed number.
SLACK = 0.25

#: Repeats per cell; the minimum is reported.  Host timing on shared
#: machines swings by 10%+, and the no-slack scheduler floors leave only
#: a modest margin, so best-of-5 keeps the floor checks out of the noise.
REPEATS = 5


#: The timed variants per (workload, config) cell:
#: (name, fast_forward, replay, memory_fast_path).  ``legacy`` is the
#: every-cycle reference — dict-backed memory walk, no elision, no
#: engines — that the engine-speedup assertions divide by.
_VARIANTS = (
    ("legacy", False, False, False),
    ("ff_off", False, False, True),
    ("ff_on", True, False, True),
    ("replay_on", True, True, True),
)


def _time_cells(workload: str, instructions: int, config_fn) -> dict:
    """Best-of-``REPEATS`` timing for all variants of one cell.

    The variants are interleaved round-robin rather than timed in
    separate back-to-back blocks, so a transient host-load spike lands
    on every variant instead of silently skewing the speedup ratios the
    floor assertions are built from.
    """
    best: dict[str, tuple] = {}
    for _ in range(REPEATS):
        for name, fast_forward, replay, memory_fast in _VARIANTS:
            trace = make_trace(workload, instructions, 1)
            sim = CoreSimulator(trace, config_fn(),
                                fast_forward=fast_forward, replay=replay,
                                memory_fast_path=memory_fast)
            start = time.perf_counter()
            result = sim.run()
            wall = time.perf_counter() - start
            if name not in best or wall < best[name][0]:
                best[name] = (wall, result, sim)
    cells = {}
    for name, (wall, result, sim) in best.items():
        cells[name] = {
            "wall_seconds": round(wall, 4),
            "uops_per_second": round(result.committed_uops / wall),
            "committed_uops": result.committed_uops,
            "cycles": result.cycles,
            "ff_windows": sim.ff_windows,
            "ff_cycles_skipped": sim.ff_cycles_skipped,
            "replay_windows": sim.replay_windows,
            "replay_cycles_skipped": sim.replay_cycles_skipped,
        }
    return cells


def _baseline_floor(baseline: dict | None, workload: str, cfg: str) -> int:
    """Throughput floor for one cell, derived from the committed JSON."""
    if baseline is None:
        return 0
    try:
        cell = baseline["workloads"][workload]["configs"][cfg]
        return int(cell["ff_on"]["uops_per_second"] * SLACK)
    except (KeyError, TypeError):
        return 0


def _active_baseline_floor(
    baseline: dict | None, workload: str, cfg: str
) -> int:
    """Active-throughput floor from the committed JSON (with slack).

    Older baselines predate the metric; fall back to the ``ff_off``
    throughput, which is the same quantity under its original name.
    """
    if baseline is None:
        return 0
    try:
        cell = baseline["workloads"][workload]["configs"][cfg]
        active = cell.get(
            "active_uops_per_second", cell["ff_off"]["uops_per_second"]
        )
        return int(active * SLACK)
    except (KeyError, TypeError):
        return 0


def test_simulator_speed(reporter):
    baseline = None
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())

    workloads: dict[str, dict] = {}
    for workload, kind, instructions in MATRIX:
        configs: dict[str, dict] = {}
        for cfg_name, cfg_fn in CONFIGS:
            timed = _time_cells(workload, instructions, cfg_fn)
            legacy = timed["legacy"]
            off = timed["ff_off"]
            on = timed["ff_on"]
            replay_on = timed["replay_on"]
            # Engine speedups versus the every-cycle legacy reference
            # (the fast path elides stall streaks even with the engines
            # off, so on-vs-off ratios no longer isolate the engines).
            ff_speedup = (
                round(legacy["wall_seconds"] / on["wall_seconds"], 2)
                if on["wall_seconds"] > 0 else None
            )
            replay_speedup = (
                round(legacy["wall_seconds"] / replay_on["wall_seconds"], 2)
                if replay_on["wall_seconds"] > 0 else None
            )
            # Active throughput: the fast_forward=False run's uops/s —
            # same kwargs as every earlier baseline, now accelerated by
            # the memory fast path (see bench_memory_hotpath for the
            # fast-vs-legacy split of that gain).
            active = off["uops_per_second"]
            pr3 = PR3_ACTIVE_BASELINE.get((workload, cfg_name))
            scheduler_speedup = round(active / pr3, 2) if pr3 else None
            configs[cfg_name] = {
                "legacy": legacy, "ff_off": off, "ff_on": on,
                "replay_on": replay_on,
                "ff_speedup_vs_legacy": ff_speedup,
                "replay_speedup_vs_legacy": replay_speedup,
                "active_uops_per_second": active,
                "scheduler_speedup_vs_pr3": scheduler_speedup,
            }
            reporter.emit(
                f"{workload:10s} {cfg_name} ({kind}): "
                f"legacy={legacy['wall_seconds']:.3f}s "
                f"off={off['wall_seconds']:.3f}s on={on['wall_seconds']:.3f}s "
                f"replay={replay_on['wall_seconds']:.3f}s "
                f"ff={ff_speedup}x replay={replay_speedup}x vs legacy "
                f"{replay_on['uops_per_second']:,} uops/s "
                f"active={active:,} uops/s ({scheduler_speedup}x vs PR 3) "
                f"(ff {on['ff_windows']} windows "
                f"{on['ff_cycles_skipped']}/{on['cycles']} cycles; replay "
                f"{replay_on['replay_windows']} windows "
                f"{replay_on['replay_cycles_skipped']}/{replay_on['cycles']})"
            )
        workloads[workload] = {
            "kind": kind, "instructions": instructions, "configs": configs,
        }

    payload = {
        "bench": "simulator_speed",
        "repeats": REPEATS,
        "memory_bound_trace": "chase",
        "memory_bound_floor_uops_per_second": MEMORY_BOUND_FLOOR,
        "baseline_slack": SLACK,
        "scheduler_speedup_floors": SCHEDULER_SPEEDUP_FLOORS,
        "pr3_active_baseline": {
            f"{wl}/{cfg}": v
            for (wl, cfg), v in PR3_ACTIVE_BASELINE.items()
        },
        "replay_speedup_floors": REPLAY_SPEEDUP_FLOORS,
        "pr5_ff_baseline": {
            f"{wl}/{cfg}": v
            for (wl, cfg), v in PR5_FF_BASELINE.items()
        },
        "workloads": workloads,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    reporter.emit(f"wrote {BASELINE_PATH.relative_to(RESULTS_DIR.parent)}")

    # The designated memory-bound trace must clear the hard floor and
    # show the fast-forward engine actually engaging.
    chase = workloads["chase"]["configs"]["bdw"]
    assert chase["ff_on"]["uops_per_second"] > max(
        MEMORY_BOUND_FLOOR, _baseline_floor(baseline, "chase", "bdw")
    )
    assert chase["ff_speedup_vs_legacy"] >= 3.0
    assert chase["ff_on"]["ff_cycles_skipped"] > 0

    # Compute-bound guard: fast-forward must not regress the plain run
    # (both share the elision machinery; the engine adds only its own
    # window bookkeeping on top).  With the memory fast path both walls
    # sit near 10-30ms, so allow 10% timer noise.
    for cfg_name, _ in CONFIGS:
        cell = workloads["exchange2"]["configs"][cfg_name]
        guard = round(
            cell["ff_off"]["wall_seconds"] / cell["ff_on"]["wall_seconds"],
            2,
        )
        assert guard >= 0.90, (
            f"fast-forward regressed compute-bound exchange2/{cfg_name}: "
            f"{guard}x"
        )

    # Every cell stays above its committed-baseline floor (with slack).
    for workload, data in workloads.items():
        for cfg_name, cell in data["configs"].items():
            floor = _baseline_floor(baseline, workload, cfg_name)
            assert cell["ff_on"]["uops_per_second"] > floor, (
                f"{workload}/{cfg_name} fell below baseline floor {floor:,}"
            )
            active_floor = _active_baseline_floor(
                baseline, workload, cfg_name
            )
            assert cell["active_uops_per_second"] > active_floor, (
                f"{workload}/{cfg_name} active throughput fell below "
                f"baseline floor {active_floor:,}"
            )

    # Event-driven scheduler floors: active-cycle throughput versus the
    # pinned PR 3 (full-RS-scan) baselines, no slack.
    for workload, ratio in SCHEDULER_SPEEDUP_FLOORS.items():
        for cfg_name, _ in CONFIGS:
            cell = workloads[workload]["configs"][cfg_name]
            pinned = PR3_ACTIVE_BASELINE[(workload, cfg_name)]
            floor = int(pinned * ratio)
            assert cell["active_uops_per_second"] >= floor, (
                f"{workload}/{cfg_name} active_uops_per_second "
                f"{cell['active_uops_per_second']:,} is below the "
                f"{ratio}x scheduler floor {floor:,} "
                f"(PR 3 baseline {pinned:,})"
            )

    # Periodic-replay floors: the engine must engage on the two loop
    # traces and beat the every-cycle legacy run by the pinned ratio.
    for workload, ratio in REPLAY_SPEEDUP_FLOORS.items():
        for cfg_name, _ in CONFIGS:
            cell = workloads[workload]["configs"][cfg_name]
            assert cell["replay_on"]["replay_cycles_skipped"] > 0, (
                f"replay never engaged on {workload}/{cfg_name}"
            )
            assert cell["replay_speedup_vs_legacy"] >= ratio, (
                f"{workload}/{cfg_name} replay speedup "
                f"{cell['replay_speedup_vs_legacy']}x is below the "
                f"{ratio}x floor"
            )

    # Replay throughput versus the pinned PR 5 (fast-forward-only)
    # baselines, no slack: exchange2 with replay on must run at least
    # 3x the committed fast-forward-on throughput.
    for (workload, cfg_name), pinned in PR5_FF_BASELINE.items():
        cell = workloads[workload]["configs"][cfg_name]
        floor = int(pinned * 3.0)
        assert cell["replay_on"]["uops_per_second"] >= floor, (
            f"{workload}/{cfg_name} replay_on throughput "
            f"{cell['replay_on']['uops_per_second']:,} is below the "
            f"3x floor {floor:,} (PR 5 ff_on baseline {pinned:,})"
        )
