"""Simulator throughput: committed micro-ops per host second.

Not a paper figure — a harness health metric, useful when sizing traces.
pytest-benchmark's timing is authoritative here (multiple rounds of a
fixed simulation).
"""

from repro.config.presets import broadwell
from repro.experiments.runner import get_trace
from repro.pipeline.core import simulate


def test_simulator_throughput(benchmark, reporter):
    trace = get_trace("exchange2", 10_000, 1)
    config = broadwell()

    result = benchmark.pedantic(
        lambda: simulate(trace, config), rounds=3, iterations=1
    )
    reporter.emit(
        f"exchange2 on BDW: {result.committed_uops} uops in "
        f"{result.cycles} cycles; ~{result.simulated_uops_per_second:,.0f} "
        "simulated uops/s (single round)"
    )
    assert result.simulated_uops_per_second > 5_000
