#!/usr/bin/env python3
"""SPEC-CPU-style bottleneck analysis with idealization validation.

Reproduces the paper's core methodology (Sec. IV-V) on a small scale: for a
couple of workloads, measure the multi-stage CPI stacks, then re-simulate
with one structure made perfect and compare the actual CPI reduction to the
bounds predicted by the stacks.

Run:  python examples/spec_cpu_analysis.py
"""

from repro import Component
from repro.config.idealize import IDEALIZATIONS
from repro.experiments.idealization import run_study
from repro.viz import render_table

CASES = (
    ("mcf", "bdw", Component.BPRED),
    ("mcf", "bdw", Component.DCACHE),
    ("imagick", "knl", Component.ALU_LAT),
    ("leela", "bdw", Component.BPRED),
)


def main() -> None:
    rows = []
    for workload, preset, component in CASES:
        ideal = IDEALIZATIONS[component]
        study = run_study(
            workload, preset, (ideal,), instructions=20_000
        )
        report = study.baseline.report
        assert report is not None
        low, high = report.component_bounds(component)
        actual = study.delta(ideal.name)
        rows.append(
            {
                "workload": workload,
                "core": preset,
                "component": component.value,
                "dispatch": report.dispatch.component_cpi(component),
                "issue": report.issue.component_cpi(component),
                "commit": report.commit.component_cpi(component),
                "actual_delta": actual,
                "within_bounds": low <= actual <= high,
            }
        )
    print("Predicted component (per stack) vs actual CPI reduction:")
    print(render_table(rows))
    print(
        "\nNo single stack is right everywhere: dispatch and commit "
        "bracket the actual gain, and the [min, max] across stages is the "
        "paper's bound.  Where the actual delta escapes the bounds, a "
        "second-order effect is at work (removing one stall source also "
        "shrinks another's penalty) — exactly the cases the paper calls "
        "impossible for any additive stack to capture."
    )


if __name__ == "__main__":
    main()
