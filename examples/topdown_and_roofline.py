#!/usr/bin/env python3
"""Top-down baseline and roofline positioning.

Two extensions bundled with the reproduction:

* the Yasin-style **top-down** hierarchy (the baseline the paper discusses
  in Sec. II) computed side by side with the multi-stage stacks — and the
  case where its dispatch-priority level 1 misleads;
* **roofline positioning** from FLOPS stacks (Sec. III-C: FLOPS stacks
  "augment the roofline model by identifying specific causes why an
  application does not reach its theoretical performance").

Run:  python examples/topdown_and_roofline.py
"""

from repro import get_preset, make_trace, simulate
from repro.core.components import Component
from repro.core.roofline import roofline_point
from repro.core.topdown import TopLevel


def topdown_demo() -> None:
    # bwaves: frontend and backend stall at the same time.
    trace = make_trace("bwaves")
    config = get_preset("bdw")
    result = simulate(trace, config, topdown=True,
                      warmup_instructions=len(trace) // 3)
    topdown = result.report.topdown
    fractions = topdown.level1_fractions()

    print("Top-down level 1 (bwaves on BDW):")
    for level in TopLevel:
        print(f"  {level.value:<16} {fractions[level]:6.1%}")
    commit_dcache = result.report.commit.component_cpi(Component.DCACHE)
    print(
        f"\nTop-down charges {fractions[TopLevel.FRONTEND_BOUND]:.0%} of "
        "slots to the frontend, yet the multi-stage commit stack shows a "
        f"{commit_dcache:.2f}-CPI dcache component — and a perfect L1I "
        "gains ~nothing here (run `python -m repro fig3 --case fig3c`).\n"
        "That is the paper's Sec. II critique of dispatch-priority "
        "accounting, measured."
    )


def roofline_demo() -> None:
    config = get_preset("skx")
    print("\nRoofline positions (SKX, per core):")
    for name in ("gemm-train-1760-skx", "conv-vgg-2-fwd"):
        trace = make_trace(name, 15_000)
        result = simulate(trace, config)  # no warmup: traffic == flops window
        point = roofline_point(result, config)
        bound = "compute" if point.compute_bound else "bandwidth"
        limiter = point.dominant_limiter()
        print(
            f"  {name:<22} AI={point.arithmetic_intensity:6.1f} flop/B  "
            f"{point.achieved_gflops:6.1f} of "
            f"{point.roof_gflops:6.1f} GFLOPS ({bound}-bound roof, "
            f"{point.roof_fraction:.0%}); FLOPS stack blames: "
            f"{limiter.value if limiter else 'nothing'}"
        )
    print(
        "\nThe roofline says how far below the roof a kernel sits; the "
        "FLOPS stack says why — the paper's proposed pairing."
    )


if __name__ == "__main__":
    topdown_demo()
    roofline_demo()
