#!/usr/bin/env python3
"""Hardware-feasible wrong-path accounting (paper Sec. III-B).

A hardware implementation cannot know at dispatch time whether a micro-op
is wrong-path.  The paper proposes two strategies:

* SIMPLE  — count everything, then move the surplus base (vs. the commit
            stack, which never sees wrong-path work) into the bpred
            component;
* SPECULATIVE — per-basic-block speculative counters that merge into the
            global counters at block commit and drain into the bpred
            component on a squash.

This example runs all three modes on a mispredict-heavy workload and
compares the dispatch stacks.

Run:  python examples/hardware_counters.py
"""

from repro import WrongPathMode, get_preset, make_trace, simulate
from repro.core.components import CPI_COMPONENTS
from repro.viz import render_table


def main() -> None:
    trace = make_trace("leela", instructions=20_000)
    config = get_preset("bdw")

    stacks = {}
    for mode in WrongPathMode:
        result = simulate(
            trace, config, mode=mode, warmup_instructions=6_000
        )
        assert result.report is not None
        stacks[mode] = result.report.dispatch

    rows = []
    for component in CPI_COMPONENTS:
        values = {
            mode.value: stacks[mode].component_cpi(component)
            for mode in WrongPathMode
        }
        if any(v > 0.001 for v in values.values()):
            rows.append({"component": component.value, **values})
    print("Dispatch-stage CPI components by wrong-path strategy:")
    print(render_table(rows))
    print(
        "\nEXACT uses functional-first knowledge; SIMPLE recovers most of\n"
        "the bpred component from the base-difference correction; the\n"
        "SPECULATIVE per-block counters track EXACT closely — the paper's\n"
        "recommended hardware design point."
    )


if __name__ == "__main__":
    main()
