#!/usr/bin/env python3
"""FLOPS-stack analysis of HPC kernels (paper Sec. III-C, V-B).

Simulates DeepBench-like sgemm kernels in the two code styles the paper
describes — KNL MKL-JIT (FMA with memory operands) and SKX (broadcast +
register FMAs) — plus a convolution, and prints the issue-stage CPI stack
next to the FLOPS stack.  The interesting part: a kernel can have
near-ideal IPC while achieving only a fraction of peak FLOPS, and the
FLOPS stack says why.

Run:  python examples/hpc_flops_analysis.py
"""

from repro import get_preset
from repro.experiments.runner import run_case
from repro.viz import render_cpi_stack, render_flops_stack

KERNELS = (
    ("gemm-train-1760-knl", "knl"),
    ("gemm-train-1760-skx", "skx"),
    ("conv-vgg-2-fwd", "skx"),
)


def main() -> None:
    for name, preset in KERNELS:
        config = get_preset(preset)
        result = run_case(name, preset, instructions=15_000)
        report = result.report
        assert report is not None and report.flops is not None
        print("=" * 72)
        print(
            f"{name} on {preset.upper()}: IPC {result.ipc:.2f} of "
            f"{config.accounting_width} | achieved "
            f"{report.flops.achieved_fraction():.0%} of peak FLOPS"
        )
        print()
        print(render_cpi_stack(report.issue))
        print()
        print(
            render_flops_stack(
                report.flops, config.frequency_ghz, config.socket_cores
            )
        )
        print()
    print(
        "Note the KNL JIT kernel's large `mem` component (FMAs split into\n"
        "load + FMA micro-ops wait on the L1) versus the SKX kernel's\n"
        "broadcast-induced losses — the paper's Sec. V-B contrast."
    )


if __name__ == "__main__":
    main()
