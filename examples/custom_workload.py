#!/usr/bin/env python3
"""Build a custom trace with the instruction-builder API and analyze it.

Shows the library's lowest-level public surface: construct a program
instruction by instruction (the decoder's builder functions handle
micro-op expansion, load-op splitting and microcode marking), then run it
through the simulator and read the stacks.

Run:  python examples/custom_workload.py
"""

from repro import get_preset, simulate
from repro.isa import decoder as asm
from repro.workloads.base import DATA_BASE, TraceBuilder
from repro.viz import render_cpi_stack


def build_reduction_kernel(iterations: int) -> "Program":
    """A serial floating-point reduction with a streaming input.

    Classic latency-bound pattern: each fp_add depends on the previous one,
    so the FP-add latency is the throughput bound — watch it appear as the
    `alu` component, largest in the issue stack.
    """
    b = TraceBuilder("custom-reduction", seed=7)
    acc = 40       # vector register holding the running sum
    loop_pc = b.pc
    for i in range(iterations):
        b.at(loop_pc)
        addr = DATA_BASE + (i % 256) * 64  # L1-resident input tile
        # Load the next element (it will hit the L1 D-cache).
        b.emit(asm.load(b.pc, dst=33, addr=addr, addr_srcs=(1,)))
        # Serial dependence: acc = acc + element.
        b.emit(asm.fp_add(b.pc, dst=acc, srcs=(acc, 33)))
        # Loop bookkeeping.
        b.emit(asm.alu(b.pc, dst=1, srcs=(1,)))
        b.emit(asm.branch(b.pc, taken=i < iterations - 1, target=loop_pc,
                          srcs=(1,)))
    return b.program()


def main() -> None:
    trace = build_reduction_kernel(4_000)
    print("Trace:", trace.summary())

    config = get_preset("skx")
    result = simulate(trace, config, warmup_instructions=2_000)
    report = result.report
    assert report is not None

    print(f"\nCPI {result.cpi:.3f} (ideal {1 / config.accounting_width})")
    print()
    print(render_cpi_stack(report.issue))

    # An unrolled reduction with 4 accumulators breaks the chain:
    b = TraceBuilder("custom-reduction-unrolled", seed=7)
    loop_pc = b.pc
    for i in range(4_000):
        b.at(loop_pc)
        acc = 40 + i % 4
        addr = DATA_BASE + (i % 256) * 64
        b.emit(asm.load(b.pc, dst=33, addr=addr, addr_srcs=(1,)))
        b.emit(asm.fp_add(b.pc, dst=acc, srcs=(acc, 33)))
        b.emit(asm.alu(b.pc, dst=1, srcs=(1,)))
        b.emit(asm.branch(b.pc, taken=i < 3_999, target=loop_pc, srcs=(1,)))
    unrolled = b.program()
    result2 = simulate(unrolled, config, warmup_instructions=2_000)
    print(
        f"\nWith 4 accumulators the chain breaks: CPI "
        f"{result2.cpi:.3f} (was {result.cpi:.3f})"
    )


if __name__ == "__main__":
    main()
