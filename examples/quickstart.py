#!/usr/bin/env python3
"""Quickstart: simulate one workload and print its multi-stage CPI stacks.

The multi-stage representation (paper Sec. III) measures a CPI stack at the
dispatch, issue and commit stages simultaneously.  Note how the three
stacks agree on the base component but disagree on where the stall cycles
belong — that disagreement is the information a single CPI stack loses.

Run:  python examples/quickstart.py
"""

from repro import get_preset, make_trace, simulate
from repro.viz import render_cpi_stack


def main() -> None:
    # A pointer-chasing, branchy workload (models SPEC CPU's mcf) on a
    # Broadwell-like 4-wide out-of-order core.
    trace = make_trace("mcf")  # registry default: steady-state length
    config = get_preset("bdw")

    # Warmup emulates the paper's fast-forward: caches and predictors train
    # before measurement begins.
    result = simulate(trace, config, warmup_instructions=len(trace) // 3)

    print(
        f"Simulated {result.committed_uops} micro-ops in {result.cycles} "
        f"cycles: CPI={result.cpi:.3f}, "
        f"branch mispredict rate={result.mispredict_rate:.1%}"
    )
    report = result.report
    assert report is not None

    for stack in (report.dispatch, report.issue, report.commit):
        print()
        print(render_cpi_stack(stack))

    # The paper's headline: per component, the three stacks bound the CPI
    # reduction you could get by eliminating that stall source.
    from repro import Component

    low, high = report.component_bounds(Component.DCACHE)
    print(
        f"\nEliminating D-cache misses is worth between {low:.3f} and "
        f"{high:.3f} CPI according to the multi-stage stacks."
    )


if __name__ == "__main__":
    main()
