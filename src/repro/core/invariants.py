"""Runtime invariant guard for simulation results.

The paper's accounting is built on exact identities — every stage's stack
sums to the measured cycle count (Sec. III), the FLOPS stack's per-cycle
slot shares sum to 1 so its counters also total the cycle count (Table
III), and the three stage stacks describe the *same* execution.  A counter
that silently drifts from those identities does not crash anything: it
produces a plausible-looking but wrong CPI stack, and once such a result
lands in the persistent disk cache it poisons every future rerun.

:class:`InvariantGuard` checks a ``SimResult`` against those identities
(plus serialization round-trip integrity) every time one is about to be
returned by the harness or written to a cache:

* each stage's CPI-stack counters sum to the measured cycles within
  tolerance, and each stack's own ``cycles`` field agrees;
* every component counter is non-negative (within float tolerance);
* the dispatch/issue/commit stacks are mutually consistent: same total,
  same micro-op count, all equal to the result's counters;
* the FLOPS-stack components sum to the cycle count (equivalently: the
  per-cycle slot shares sum to the peak slot budget every cycle);
* ``SimResult.from_dict(to_dict(r))`` reproduces the result's fingerprint
  (nothing is lost or mangled by the worker transport / disk encoding).

In **strict** mode (the default, used by tests and CI) a violation raises
:class:`InvariantViolation`; with strict mode off (``--no-strict`` or
``REPRO_STRICT=0``) violations are downgraded to recorded warnings.  In
both modes a violating result is never written to the disk cache.

This module deliberately imports nothing from :mod:`repro.pipeline` so it
can be re-exported from :mod:`repro.core` without an import cycle; it
operates on the ``SimResult`` duck type.
"""

from __future__ import annotations

import os
import warnings as _warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.pipeline.result import SimResult

#: Environment variable: set to ``0`` to downgrade violations to warnings
#: (the CLI's ``--no-strict`` sets this so pool workers inherit it).
ENV_STRICT = "REPRO_STRICT"

#: Default tolerances.  Looser than the unit-test assertions (which run on
#: tiny traces) because the guard also runs on full-size experiments where
#: float accumulation error grows with the cycle count.
REL_TOL = 1e-7
ABS_TOL = 1e-2


@dataclass(slots=True)
class Violation:
    """One failed invariant check."""

    check: str
    detail: str

    def __str__(self) -> str:
        return f"{self.check}: {self.detail}"


class InvariantViolation(ValueError):
    """A result failed the accounting invariants in strict mode."""

    def __init__(self, context: str, violations=()) -> None:
        self.context = context
        self.violations = list(violations)
        joined = "; ".join(str(v) for v in self.violations) or "unknown"
        super().__init__(
            f"invariant violation in {context or 'result'}: {joined}"
        )

    def __reduce__(self):
        # Keep the exception picklable across the worker boundary despite
        # the non-standard __init__ signature.
        return (InvariantViolation, (self.context, self.violations))


class InvariantGuard:
    """Checks the paper's accounting identities on a ``SimResult``.

    ``strict=None`` (the default) defers to the process-wide setting:
    :data:`ENV_STRICT` unless overridden via :meth:`set_strict`.
    """

    def __init__(
        self,
        *,
        strict: bool | None = None,
        rel_tol: float = REL_TOL,
        abs_tol: float = ABS_TOL,
    ) -> None:
        self._strict = strict
        self.rel_tol = rel_tol
        self.abs_tol = abs_tol
        #: (context, violations) pairs recorded in non-strict mode.
        self.warnings: list[tuple[str, list[Violation]]] = []

    # -- strictness -------------------------------------------------------

    @property
    def strict(self) -> bool:
        if self._strict is not None:
            return self._strict
        return os.environ.get(ENV_STRICT, "1") != "0"

    def set_strict(self, strict: bool | None) -> None:
        """Override strictness (``None`` restores the env-driven default)."""
        self._strict = strict

    # -- checks -----------------------------------------------------------

    def _tolerance(self, scale: float) -> float:
        return max(self.abs_tol, self.rel_tol * abs(scale))

    def check(self, result: "SimResult") -> list[Violation]:
        """All violated invariants of ``result`` (empty = healthy)."""
        out: list[Violation] = []
        cycles = result.cycles
        if cycles < 0:
            out.append(Violation("counts", f"negative cycles {cycles}"))
        if result.committed_uops < 0:
            out.append(
                Violation(
                    "counts", f"negative uop count {result.committed_uops}"
                )
            )
        if result.branch_mispredicts > result.branch_lookups:
            out.append(
                Violation(
                    "counts",
                    f"{result.branch_mispredicts} mispredicts > "
                    f"{result.branch_lookups} lookups",
                )
            )

        report = result.report
        if report is not None:
            tol = self._tolerance(cycles)
            neg_tol = self._tolerance(cycles)
            totals: dict[str, float] = {}
            stacks = (
                ("dispatch", report.dispatch),
                ("issue", report.issue),
                ("commit", report.commit),
            )
            for stage_name, stack in stacks:
                total = stack.total()
                totals[stage_name] = total
                if abs(total - cycles) > tol:
                    out.append(
                        Violation(
                            "stack-total",
                            f"{stage_name} components sum to {total:.6f}, "
                            f"measured cycles = {cycles}",
                        )
                    )
                if abs(stack.cycles - cycles) > tol:
                    out.append(
                        Violation(
                            "stack-cycles",
                            f"{stage_name}.cycles = {stack.cycles} != "
                            f"result.cycles = {cycles}",
                        )
                    )
                if stack.instructions != result.committed_uops:
                    out.append(
                        Violation(
                            "stack-instructions",
                            f"{stage_name}.instructions = "
                            f"{stack.instructions} != committed_uops = "
                            f"{result.committed_uops}",
                        )
                    )
                for component, value in stack.counters.items():
                    if value < -neg_tol:
                        out.append(
                            Violation(
                                "negative-component",
                                f"{stage_name}.{component.name} = {value}",
                            )
                        )
            # Mutual consistency of the three accounting points: they
            # describe one execution, so their totals must agree.
            if totals and max(totals.values()) - min(totals.values()) > tol:
                out.append(
                    Violation(
                        "stage-consistency",
                        "stage totals disagree: "
                        + ", ".join(
                            f"{k}={v:.6f}" for k, v in totals.items()
                        ),
                    )
                )
            flops = report.flops
            if flops is not None:
                total = flops.total()
                # Per-cycle slot shares sum to 1 (Table III), so the
                # counters sum to the cycle count — i.e. the rate stack
                # sums to the peak slot budget.
                if abs(total - cycles) > tol:
                    out.append(
                        Violation(
                            "flops-total",
                            f"FLOPS components sum to {total:.6f}, "
                            f"measured cycles = {cycles}",
                        )
                    )
                if flops.peak_per_cycle <= 0:
                    out.append(
                        Violation(
                            "flops-peak",
                            f"peak_per_cycle = {flops.peak_per_cycle}",
                        )
                    )
                for component, value in flops.counters.items():
                    if value < -self._tolerance(cycles):
                        out.append(
                            Violation(
                                "negative-component",
                                f"flops.{component.name} = {value}",
                            )
                        )

        # Serialization round trip: the worker transport and the disk cache
        # both ship ``to_dict`` payloads, so a lossy field means the
        # parallel path silently diverges from the serial one.
        try:
            clone = type(result).from_dict(result.to_dict())
        except Exception as exc:  # noqa: BLE001 - any failure is a violation
            out.append(
                Violation("round-trip", f"serialization failed: {exc!r}")
            )
        else:
            if clone.fingerprint() != result.fingerprint():
                out.append(
                    Violation(
                        "round-trip",
                        "from_dict(to_dict(r)) fingerprint mismatch",
                    )
                )
        return out

    def verify(self, result: "SimResult", context: str = "") -> list[Violation]:
        """Check and enforce: raise in strict mode, record otherwise.

        Returns the violation list (empty when healthy) so callers can
        refuse to cache a downgraded result.
        """
        violations = self.check(result)
        if violations:
            if self.strict:
                raise InvariantViolation(context, violations)
            self.warnings.append((context, violations))
            _warnings.warn(
                f"accounting invariant violations in {context or 'result'}: "
                + "; ".join(str(v) for v in violations),
                RuntimeWarning,
                stacklevel=2,
            )
        return violations


#: The process-wide guard used by the experiment harness.
GUARD = InvariantGuard()


def check_result(result: "SimResult") -> list[Violation]:
    """Violations of ``result`` under the process-wide guard (never raises)."""
    return GUARD.check(result)


def verify_result(result: "SimResult", context: str = "") -> list[Violation]:
    """Enforce the invariants under the process-wide guard."""
    return GUARD.verify(result, context)


def verify_per_core_results(
    per_core, context: str = ""
) -> list[Violation]:
    """Enforce the invariants on every core of a multi-core engine run.

    Each core's result must *independently* satisfy the accounting
    identities: its three stage stacks and its FLOPS stack — including
    the barrier-wait ``Unsched`` component — sum to that core's own
    cycle count, never to the socket makespan or a neighbor's cycles.
    Returns the concatenated violation list (empty = every core healthy);
    in strict mode the first violating core raises with a ``[coreN]``
    context.
    """
    violations: list[Violation] = []
    for core, result in enumerate(per_core):
        label = f"{context}[core{core}]" if context else f"core{core}"
        violations.extend(GUARD.verify(result, context=label))
    return violations


def set_strict(strict: bool | None) -> None:
    """Set process-wide strictness (``None`` = env-driven default)."""
    GUARD.set_strict(strict)


def strict_enabled() -> bool:
    return GUARD.strict
