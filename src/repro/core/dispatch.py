"""Dispatch-stage CPI accounting (Table II, left column).

The dispatch stage is where micro-ops leave the frontend and receive ROB and
reservation-station entries (the accounting point of Eyerman et al.'s
performance counter architecture).  A stall cycle is a cycle in which fewer
than W correct-path micro-ops dispatch; the ground cause is either the
frontend being unable to deliver (I-cache miss, branch misprediction,
microcode sequencing) or the window being full, in which case the ROB head
is blamed.
"""

from __future__ import annotations

from repro.core.blame import classify_blamed_uop, frontend_component
from repro.core.components import Component
from repro.core.observation import CycleObservation
from repro.core.stack import CpiStack
from repro.core.width import WidthNormalizer
from repro.core.wrongpath import SpeculativeCounterFile, WrongPathMode


class DispatchAccountant:
    """Per-cycle CPI accounting at the dispatch stage."""

    stage = "dispatch"

    __slots__ = ("stack", "norm", "mode", "spec", "_block_id", "_pow2")

    def __init__(
        self,
        width: int,
        mode: WrongPathMode = WrongPathMode.EXACT,
    ) -> None:
        self.stack = CpiStack(stage=self.stage)
        self.norm = WidthNormalizer(width)
        #: Power-of-two widths make every per-cycle fraction an exact
        #: dyadic rational, enabling the multiplied bulk paths in
        #: :meth:`observe_repeat` (all shipped presets qualify).
        self._pow2 = width & (width - 1) == 0
        self.mode = mode
        self.spec: SpeculativeCounterFile | None = (
            SpeculativeCounterFile()
            if mode is WrongPathMode.SPECULATIVE
            else None
        )
        self._block_id = 0

    # -- speculative-counter plumbing (driven by the pipeline) --------------

    def set_block(self, block_id: int) -> None:
        """Current basic-block id for speculative attribution."""
        self._block_id = block_id

    def on_block_commit(self, block_id: int) -> None:
        if self.spec is not None:
            self.spec.commit_up_to(block_id, self.stack)

    def on_squash(self, block_id: int) -> None:
        if self.spec is not None:
            self.spec.squash_from(block_id, self.stack)

    # -- per-cycle algorithm -------------------------------------------------

    def _add(
        self,
        component: Component,
        amount: float,
        block_id: int | None = None,
    ) -> None:
        if self.spec is not None:
            block = self._block_id if block_id is None else block_id
            self.spec.add(block, component, amount)
        else:
            self.stack.add(component, amount)

    def _stall_target(
        self, obs: CycleObservation
    ) -> tuple[Component, int | None]:
        """Ground cause of a dispatch stall cycle: (component, blamed block)."""
        if obs.unscheduled:
            return Component.UNSCHED, None
        if obs.uop_queue_empty:
            # FE empty: the frontend could not deliver new micro-ops.
            if obs.wrong_path_active and self.mode is WrongPathMode.EXACT:
                return Component.BPRED, None
            return frontend_component(obs.fe_reason), None
        if obs.window_full:
            # ROB or RS full: blame the instruction at the head of the ROB.
            # A done head means commit bandwidth, not a stall event: OTHER.
            # Speculative counters charge the head's own basic block (it is
            # the architecturally oldest work, so it will commit).
            head = obs.rob_head
            if head is not None and not head.done:
                return classify_blamed_uop(head), head.block_id
            return Component.OTHER, None
        if obs.wrong_path_active and self.mode is WrongPathMode.EXACT:
            # Frontend is delivering wrong-path micro-ops; dispatch slots are
            # being consumed by work a perfect predictor would not create.
            return Component.BPRED, None
        return Component.OTHER, None

    def observe(self, obs: CycleObservation) -> None:
        """Run one cycle of the Table II dispatch algorithm."""
        if self.mode is WrongPathMode.EXACT:
            n = obs.n_dispatch
        else:
            n = obs.n_dispatch + obs.n_dispatch_wrong
        f = self.norm.fraction(n)
        self._add(Component.BASE, f)
        if f >= 1.0:
            return
        component, block_id = self._stall_target(obs)
        self._add(component, 1.0 - f, block_id=block_id)

    def observe_repeat(self, obs: CycleObservation, k: int) -> None:
        """Account ``obs`` for ``k`` consecutive identical cycles.

        Exactly equivalent to calling :meth:`observe` ``k`` times.  Bulk
        fast paths cover every steady state whose per-cycle increments
        are exact dyadic rationals: whole stall cycles (increments 0.0
        and 1.0), full- and over-width cycles, and — for power-of-two
        widths with no pending carry — partial-width cycles, where the
        per-cycle fractions are multiples of 2^-p and iterated adds equal
        one multiply-add bit for bit.
        """
        if self.mode is WrongPathMode.EXACT:
            n = obs.n_dispatch
        else:
            n = obs.n_dispatch + obs.n_dispatch_wrong
        width = self.norm.width
        if n >= width and (n == width or self._pow2):
            # Full (or over-full) width every cycle: f is 1.0 regardless
            # of any carry, so each cycle adds a whole 1.0 of BASE and
            # nothing else — one bulk add of ``float(k)`` is bit-identical
            # to the iterated adds.  An over-wide cycle additionally grows
            # the carry by the same exact dyadic n/W - 1 every cycle (all
            # partial sums are multiples of 2^-p well below 2^53 units, so
            # iterated adds and one multiply-add agree bit for bit).
            self._add(Component.BASE, float(k))
            if n > width:
                self.norm.carry += (n / width - 1.0) * float(k)
            return
        if n:
            if self._pow2 and self.norm.carry == 0.0:
                # Partial-width steady state: with no carry to drain, f is
                # the same exact dyadic n/W every cycle and the carry stays
                # 0.0, so the k base and k stall contributions each reduce
                # to one exact multiply-add.
                f = n / width
                self._add(Component.BASE, f * float(k))
                component, block_id = self._stall_target(obs)
                self._add(component, (1.0 - f) * float(k), block_id=block_id)
                return
            # Non-dyadic width or pending carry: no exact bulk form.
            for _ in range(k):
                self.observe(obs)
            return
        while k > 0 and self.norm.carry != 0.0:
            # Draining the carry makes f nonzero for a few cycles; account
            # those one at a time until the steady state is reached.
            self.observe(obs)
            k -= 1
        if k <= 0:
            return
        component, block_id = self._stall_target(obs)
        self._add(component, float(k), block_id=block_id)

    def finalize(self, cycles: int, instructions: int) -> CpiStack:
        """Close out the stack after the last simulated cycle."""
        if self.spec is not None:
            self.spec.flush_all(self.stack)
        self.stack.cycles = float(cycles)
        self.stack.instructions = instructions
        return self.stack
