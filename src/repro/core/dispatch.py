"""Dispatch-stage CPI accounting (Table II, left column).

The dispatch stage is where micro-ops leave the frontend and receive ROB and
reservation-station entries (the accounting point of Eyerman et al.'s
performance counter architecture).  A stall cycle is a cycle in which fewer
than W correct-path micro-ops dispatch; the ground cause is either the
frontend being unable to deliver (I-cache miss, branch misprediction,
microcode sequencing) or the window being full, in which case the ROB head
is blamed.
"""

from __future__ import annotations

from repro.core.blame import classify_blamed_uop, frontend_component
from repro.core.components import Component
from repro.core.observation import CycleObservation
from repro.core.stack import CpiStack
from repro.core.width import WidthNormalizer
from repro.core.wrongpath import SpeculativeCounterFile, WrongPathMode


class DispatchAccountant:
    """Per-cycle CPI accounting at the dispatch stage."""

    stage = "dispatch"

    __slots__ = ("stack", "norm", "mode", "spec", "_block_id")

    def __init__(
        self,
        width: int,
        mode: WrongPathMode = WrongPathMode.EXACT,
    ) -> None:
        self.stack = CpiStack(stage=self.stage)
        self.norm = WidthNormalizer(width)
        self.mode = mode
        self.spec: SpeculativeCounterFile | None = (
            SpeculativeCounterFile()
            if mode is WrongPathMode.SPECULATIVE
            else None
        )
        self._block_id = 0

    # -- speculative-counter plumbing (driven by the pipeline) --------------

    def set_block(self, block_id: int) -> None:
        """Current basic-block id for speculative attribution."""
        self._block_id = block_id

    def on_block_commit(self, block_id: int) -> None:
        if self.spec is not None:
            self.spec.commit_up_to(block_id, self.stack)

    def on_squash(self, block_id: int) -> None:
        if self.spec is not None:
            self.spec.squash_from(block_id, self.stack)

    # -- per-cycle algorithm -------------------------------------------------

    def _add(
        self,
        component: Component,
        amount: float,
        block_id: int | None = None,
    ) -> None:
        if self.spec is not None:
            block = self._block_id if block_id is None else block_id
            self.spec.add(block, component, amount)
        else:
            self.stack.add(component, amount)

    def observe(self, obs: CycleObservation) -> None:
        """Run one cycle of the Table II dispatch algorithm."""
        if self.mode is WrongPathMode.EXACT:
            n = obs.n_dispatch
        else:
            n = obs.n_dispatch + obs.n_dispatch_wrong
        f = self.norm.fraction(n)
        self._add(Component.BASE, f)
        if f >= 1.0:
            return
        stall = 1.0 - f
        if obs.unscheduled:
            self._add(Component.UNSCHED, stall)
        elif obs.uop_queue_empty:
            # FE empty: the frontend could not deliver new micro-ops.
            if obs.wrong_path_active and self.mode is WrongPathMode.EXACT:
                self._add(Component.BPRED, stall)
            else:
                self._add(frontend_component(obs.fe_reason), stall)
        elif obs.window_full:
            # ROB or RS full: blame the instruction at the head of the ROB.
            # A done head means commit bandwidth, not a stall event: OTHER.
            # Speculative counters charge the head's own basic block (it is
            # the architecturally oldest work, so it will commit).
            if obs.rob_head is not None and not obs.rob_head.done:
                self._add(
                    classify_blamed_uop(obs.rob_head),
                    stall,
                    block_id=obs.rob_head.block_id,
                )
            else:
                self._add(Component.OTHER, stall)
        elif obs.wrong_path_active and self.mode is WrongPathMode.EXACT:
            # Frontend is delivering wrong-path micro-ops; dispatch slots are
            # being consumed by work a perfect predictor would not create.
            self._add(Component.BPRED, stall)
        else:
            self._add(Component.OTHER, stall)

    def finalize(self, cycles: int, instructions: int) -> CpiStack:
        """Close out the stack after the last simulated cycle."""
        if self.spec is not None:
            self.spec.flush_all(self.stack)
        self.stack.cycles = float(cycles)
        self.stack.instructions = instructions
        return self.stack
