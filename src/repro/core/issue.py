"""Issue-stage CPI accounting (Table II, middle column).

The issue stage uniquely has dependence information: instead of blaming the
ROB head, the stall cause is the *producer* of the first (oldest) non-ready
instruction in the reservation stations — "a more accurate instruction to
blame than the head of the ROB, which could be an older instruction that is
almost finished".  The issue stage is also the only stage where structural
stalls (issue ports, FU contention, predicted store-load conflicts) are
visible; those feed the `Other` component (Sec. V-A).
"""

from __future__ import annotations

from repro.core.blame import classify_blamed_uop, frontend_component
from repro.core.components import Component
from repro.core.observation import CycleObservation
from repro.core.stack import CpiStack
from repro.core.width import WidthNormalizer
from repro.core.wrongpath import SpeculativeCounterFile, WrongPathMode


class IssueAccountant:
    """Per-cycle CPI accounting at the issue stage."""

    stage = "issue"

    __slots__ = ("stack", "norm", "mode", "spec", "_block_id")

    def __init__(
        self,
        width: int,
        mode: WrongPathMode = WrongPathMode.EXACT,
    ) -> None:
        self.stack = CpiStack(stage=self.stage)
        self.norm = WidthNormalizer(width)
        self.mode = mode
        self.spec: SpeculativeCounterFile | None = (
            SpeculativeCounterFile()
            if mode is WrongPathMode.SPECULATIVE
            else None
        )
        self._block_id = 0

    # -- speculative-counter plumbing (driven by the pipeline) --------------

    def set_block(self, block_id: int) -> None:
        self._block_id = block_id

    def on_block_commit(self, block_id: int) -> None:
        if self.spec is not None:
            self.spec.commit_up_to(block_id, self.stack)

    def on_squash(self, block_id: int) -> None:
        if self.spec is not None:
            self.spec.squash_from(block_id, self.stack)

    # -- per-cycle algorithm -------------------------------------------------

    def _add(
        self,
        component: Component,
        amount: float,
        block_id: int | None = None,
    ) -> None:
        if self.spec is not None:
            block = self._block_id if block_id is None else block_id
            self.spec.add(block, component, amount)
        else:
            self.stack.add(component, amount)

    def observe(self, obs: CycleObservation) -> None:
        """Run one cycle of the Table II issue algorithm."""
        if self.mode is WrongPathMode.EXACT:
            n = obs.n_issue
        else:
            n = obs.n_issue + obs.n_issue_wrong
        f = self.norm.fraction(n)
        self._add(Component.BASE, f)
        if f >= 1.0:
            return
        stall = 1.0 - f
        if obs.unscheduled:
            self._add(Component.UNSCHED, stall)
        elif obs.rs_empty:
            # RS drained: either the frontend is the limiter, or dispatch is
            # blocked on a full window while the RS runs dry (povray-style
            # microcode stalls arrive here via fe_reason).
            if obs.wrong_path_active and self.mode is WrongPathMode.EXACT:
                self._add(Component.BPRED, stall)
            elif obs.fe_reason is not None:
                self._add(frontend_component(obs.fe_reason), stall)
            elif (
                obs.window_full
                and obs.rob_head is not None
                and not obs.rob_head.done
            ):
                self._add(
                    classify_blamed_uop(obs.rob_head),
                    stall,
                    block_id=obs.rob_head.block_id,
                )
            else:
                self._add(Component.OTHER, stall)
        elif obs.structural_stall:
            # Ready micro-ops existed but ports/FUs/conflicts blocked them:
            # only the issue stage can see these (Sec. V-A, 'Other').
            self._add(Component.OTHER, stall)
        elif obs.first_nonready_producer is not None:
            # prod(first non-ready instr): the instruction whose pending
            # result gates the oldest waiting consumer.
            producer = obs.first_nonready_producer
            self._add(
                classify_blamed_uop(producer),
                stall,
                block_id=getattr(producer, "block_id", None),
            )
        elif obs.wrong_path_active and self.mode is WrongPathMode.EXACT:
            self._add(Component.BPRED, stall)
        else:
            self._add(Component.OTHER, stall)

    def finalize(self, cycles: int, instructions: int) -> CpiStack:
        if self.spec is not None:
            self.spec.flush_all(self.stack)
        self.stack.cycles = float(cycles)
        self.stack.instructions = instructions
        return self.stack
