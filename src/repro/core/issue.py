"""Issue-stage CPI accounting (Table II, middle column).

The issue stage uniquely has dependence information: instead of blaming the
ROB head, the stall cause is the *producer* of the first (oldest) non-ready
instruction in the reservation stations — "a more accurate instruction to
blame than the head of the ROB, which could be an older instruction that is
almost finished".  The issue stage is also the only stage where structural
stalls (issue ports, FU contention, predicted store-load conflicts) are
visible; those feed the `Other` component (Sec. V-A).
"""

from __future__ import annotations

from repro.core.blame import classify_blamed_uop, frontend_component
from repro.core.components import Component
from repro.core.observation import CycleObservation
from repro.core.stack import CpiStack
from repro.core.width import WidthNormalizer
from repro.core.wrongpath import SpeculativeCounterFile, WrongPathMode


class IssueAccountant:
    """Per-cycle CPI accounting at the issue stage."""

    stage = "issue"

    __slots__ = ("stack", "norm", "mode", "spec", "_block_id", "_pow2")

    def __init__(
        self,
        width: int,
        mode: WrongPathMode = WrongPathMode.EXACT,
    ) -> None:
        self.stack = CpiStack(stage=self.stage)
        self.norm = WidthNormalizer(width)
        #: See DispatchAccountant: power-of-two widths enable the exact
        #: multiplied bulk paths in :meth:`observe_repeat`.
        self._pow2 = width & (width - 1) == 0
        self.mode = mode
        self.spec: SpeculativeCounterFile | None = (
            SpeculativeCounterFile()
            if mode is WrongPathMode.SPECULATIVE
            else None
        )
        self._block_id = 0

    # -- speculative-counter plumbing (driven by the pipeline) --------------

    def set_block(self, block_id: int) -> None:
        self._block_id = block_id

    def on_block_commit(self, block_id: int) -> None:
        if self.spec is not None:
            self.spec.commit_up_to(block_id, self.stack)

    def on_squash(self, block_id: int) -> None:
        if self.spec is not None:
            self.spec.squash_from(block_id, self.stack)

    # -- per-cycle algorithm -------------------------------------------------

    def _add(
        self,
        component: Component,
        amount: float,
        block_id: int | None = None,
    ) -> None:
        if self.spec is not None:
            block = self._block_id if block_id is None else block_id
            self.spec.add(block, component, amount)
        else:
            self.stack.add(component, amount)

    def _stall_target(
        self, obs: CycleObservation
    ) -> tuple[Component, int | None]:
        """Ground cause of an issue stall cycle: (component, blamed block)."""
        if obs.unscheduled:
            return Component.UNSCHED, None
        if obs.rs_empty:
            # RS drained: either the frontend is the limiter, or dispatch is
            # blocked on a full window while the RS runs dry (povray-style
            # microcode stalls arrive here via fe_reason).
            if obs.wrong_path_active and self.mode is WrongPathMode.EXACT:
                return Component.BPRED, None
            if obs.fe_reason is not None:
                return frontend_component(obs.fe_reason), None
            head = obs.rob_head
            if obs.window_full and head is not None and not head.done:
                return classify_blamed_uop(head), head.block_id
            return Component.OTHER, None
        if obs.structural_stall:
            # Ready micro-ops existed but ports/FUs/conflicts blocked them:
            # only the issue stage can see these (Sec. V-A, 'Other').
            return Component.OTHER, None
        if obs.first_nonready_producer is not None:
            # prod(first non-ready instr): the instruction whose pending
            # result gates the oldest waiting consumer.
            producer = obs.first_nonready_producer
            return (
                classify_blamed_uop(producer),
                getattr(producer, "block_id", None),
            )
        if obs.wrong_path_active and self.mode is WrongPathMode.EXACT:
            return Component.BPRED, None
        return Component.OTHER, None

    def observe(self, obs: CycleObservation) -> None:
        """Run one cycle of the Table II issue algorithm."""
        if self.mode is WrongPathMode.EXACT:
            n = obs.n_issue
        else:
            n = obs.n_issue + obs.n_issue_wrong
        f = self.norm.fraction(n)
        self._add(Component.BASE, f)
        if f >= 1.0:
            return
        component, block_id = self._stall_target(obs)
        self._add(component, 1.0 - f, block_id=block_id)

    def observe_repeat(self, obs: CycleObservation, k: int) -> None:
        """Account ``obs`` for ``k`` consecutive identical cycles.

        Exactly equivalent to ``k`` calls of :meth:`observe`; see
        :meth:`repro.core.dispatch.DispatchAccountant.observe_repeat` for
        the bit-exactness argument (exact dyadic per-cycle increments for
        the stall, full/over-width and partial-width steady states).
        """
        if self.mode is WrongPathMode.EXACT:
            n = obs.n_issue
        else:
            n = obs.n_issue + obs.n_issue_wrong
        width = self.norm.width
        if n >= width and (n == width or self._pow2):
            # Full/over-width cycles add a whole 1.0 of BASE each; the
            # over-wide carry growth is the same exact dyadic every cycle.
            self._add(Component.BASE, float(k))
            if n > width:
                self.norm.carry += (n / width - 1.0) * float(k)
            return
        if n:
            if self._pow2 and self.norm.carry == 0.0:
                # Partial-width steady state: f = n/W exactly, carry stays
                # 0.0; see DispatchAccountant.observe_repeat.
                f = n / width
                self._add(Component.BASE, f * float(k))
                component, block_id = self._stall_target(obs)
                self._add(component, (1.0 - f) * float(k), block_id=block_id)
                return
            for _ in range(k):
                self.observe(obs)
            return
        while k > 0 and self.norm.carry != 0.0:
            self.observe(obs)
            k -= 1
        if k <= 0:
            return
        component, block_id = self._stall_target(obs)
        self._add(component, float(k), block_id=block_id)

    def finalize(self, cycles: int, instructions: int) -> CpiStack:
        if self.spec is not None:
            self.spec.flush_all(self.stack)
        self.stack.cycles = float(cycles)
        self.stack.instructions = instructions
        return self.stack
