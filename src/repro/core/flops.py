"""FLOPS-stack accounting (Table III).

FLOPS stacks are issue-stage stacks restricted to vector floating-point
work.  Peak performance is M = 2*k*v FLOPs per cycle (k vector units, v
lanes, 2 ops per lane for FMA).  Each cycle decomposes into:

* **base** — FLOPs actually performed, as a fraction of M;
* **non_fma** — loss from VFP micro-ops that are not FMAs (a vector add
  performs one op per lane where an FMA would perform two);
* **mask** — loss from inactive lanes (masked-out elements; we also fold in
  scalar/narrow VFP use, which is zero for the paper's fully-vectorized HPC
  kernels but lets SPEC-like traces produce valid stacks);
* per empty VFP issue slot ((k - n)/k): **frontend** (no VFP work available),
  **non_vfp** (vector unit consumed by integer SIMD or broadcasts), **mem** /
  **depend** (oldest waiting VFP micro-op blocked by a load / another
  producer), **other** (structural), or **unsched** (core descheduled).

The identity base + non_fma + mask + slot-losses = 1 holds every cycle, so
the stack sums exactly to the cycle count.
"""

from __future__ import annotations

from repro.core.components import FlopsComponent
from repro.core.observation import CycleObservation
from repro.core.stack import FlopsStack


class FlopsAccountant:
    """Per-cycle FLOPS accounting at the issue stage (Table III)."""

    __slots__ = ("stack", "vector_units", "vector_lanes", "peak")

    def __init__(self, vector_units: int, vector_lanes: int) -> None:
        if vector_units < 1 or vector_lanes < 1:
            raise ValueError("need at least one vector unit and lane")
        self.vector_units = vector_units
        self.vector_lanes = vector_lanes
        #: M = 2 * k * v: peak FLOPs per cycle.
        self.peak = 2 * vector_units * vector_lanes
        self.stack = FlopsStack(peak_per_cycle=float(self.peak))

    def observe(self, obs: CycleObservation) -> None:
        """Run one cycle of the Table III algorithm."""
        stack = self.stack
        peak = self.peak
        k = self.vector_units

        # f = a*n*m / (2*k*v), computed exactly from per-uop sums.
        f = obs.flops_issued / peak
        stack.add(FlopsComponent.BASE, f)
        stack.flops += obs.flops_issued
        if f >= 1.0:
            return

        # Losses attributable to the VFP micro-ops that *did* issue.
        if obs.non_fma_loss_lanes:
            stack.add(FlopsComponent.NON_FMA, obs.non_fma_loss_lanes / peak)
        if obs.masked_lanes:
            stack.add(FlopsComponent.MASK, 2.0 * obs.masked_lanes / peak)

        # Losses from empty VFP issue slots.
        n = min(obs.n_vfp_issued, k)
        slots = (k - n) / k
        if slots <= 0.0:
            return
        if obs.unscheduled:
            stack.add(FlopsComponent.UNSCHED, slots)
        elif not obs.vfp_in_rs:
            # No VFP instructions available: non-FP code, or the frontend is
            # stalled on an I-cache or branch-predictor miss.
            stack.add(FlopsComponent.FRONTEND, slots)
        elif obs.vu_used_by_non_vfp:
            stack.add(FlopsComponent.NON_VFP, slots)
        elif obs.oldest_vfp_producer is not None:
            if obs.oldest_vfp_producer.is_load:
                stack.add(FlopsComponent.MEM, slots)
            else:
                stack.add(FlopsComponent.DEPEND, slots)
        elif obs.vfp_structural:
            stack.add(FlopsComponent.OTHER, slots)
        else:
            stack.add(FlopsComponent.OTHER, slots)

    def finalize(self, cycles: int) -> FlopsStack:
        self.stack.cycles = float(cycles)
        return self.stack
