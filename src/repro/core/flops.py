"""FLOPS-stack accounting (Table III).

FLOPS stacks are issue-stage stacks restricted to vector floating-point
work.  Peak performance is M = 2*k*v FLOPs per cycle (k vector units, v
lanes, 2 ops per lane for FMA).  Each cycle decomposes into:

* **base** — FLOPs actually performed, as a fraction of M;
* **non_fma** — loss from VFP micro-ops that are not FMAs (a vector add
  performs one op per lane where an FMA would perform two);
* **mask** — loss from inactive lanes (masked-out elements; we also fold in
  scalar/narrow VFP use, which is zero for the paper's fully-vectorized HPC
  kernels but lets SPEC-like traces produce valid stacks);
* per empty VFP issue slot ((k - n)/k): **frontend** (no VFP work available),
  **non_vfp** (vector unit consumed by integer SIMD or broadcasts), **mem** /
  **depend** (oldest waiting VFP micro-op blocked by a load / another
  producer), **other** (structural), or **unsched** (core descheduled).

The identity base + non_fma + mask + slot-losses = 1 holds every cycle, so
the stack sums exactly to the cycle count.
"""

from __future__ import annotations

from repro.core.components import FlopsComponent
from repro.core.observation import CycleObservation
from repro.core.stack import FlopsStack


class FlopsAccountant:
    """Per-cycle FLOPS accounting at the issue stage (Table III)."""

    __slots__ = ("stack", "vector_units", "vector_lanes", "peak", "_dyadic")

    def __init__(self, vector_units: int, vector_lanes: int) -> None:
        if vector_units < 1 or vector_lanes < 1:
            raise ValueError("need at least one vector unit and lane")
        self.vector_units = vector_units
        self.vector_lanes = vector_lanes
        #: M = 2 * k * v: peak FLOPs per cycle.
        self.peak = 2 * vector_units * vector_lanes
        self.stack = FlopsStack(peak_per_cycle=float(self.peak))
        #: Power-of-two peak and unit counts make every per-cycle fraction
        #: an exact dyadic rational when the issued FLOP/lane counts are
        #: integral, enabling the multiplied bulk path in
        #: :meth:`observe_repeat` (all shipped presets qualify).
        self._dyadic = (
            self.peak & (self.peak - 1) == 0
            and vector_units & (vector_units - 1) == 0
        )

    def observe(self, obs: CycleObservation) -> None:
        """Run one cycle of the Table III algorithm."""
        stack = self.stack
        peak = self.peak
        k = self.vector_units

        # f = a*n*m / (2*k*v), computed exactly from per-uop sums.
        f = obs.flops_issued / peak
        stack.add(FlopsComponent.BASE, f)
        stack.flops += obs.flops_issued
        if f >= 1.0:
            return

        # Losses attributable to the VFP micro-ops that *did* issue.
        if obs.non_fma_loss_lanes:
            stack.add(FlopsComponent.NON_FMA, obs.non_fma_loss_lanes / peak)
        if obs.masked_lanes:
            stack.add(FlopsComponent.MASK, 2.0 * obs.masked_lanes / peak)

        # Losses from empty VFP issue slots.
        n = min(obs.n_vfp_issued, k)
        slots = (k - n) / k
        if slots <= 0.0:
            return
        stack.add(self._slot_loss_component(obs), slots)

    def _slot_loss_component(self, obs: CycleObservation) -> FlopsComponent:
        """Table III attribution for empty VFP issue slots."""
        if obs.unscheduled:
            return FlopsComponent.UNSCHED
        if not obs.vfp_in_rs:
            # No VFP instructions available: non-FP code, or the frontend is
            # stalled on an I-cache or branch-predictor miss.
            return FlopsComponent.FRONTEND
        if obs.vu_used_by_non_vfp:
            return FlopsComponent.NON_VFP
        if obs.oldest_vfp_producer is not None:
            if obs.oldest_vfp_producer.is_load:
                return FlopsComponent.MEM
            return FlopsComponent.DEPEND
        # Structural VFP stalls and anything unexplained both land in OTHER.
        return FlopsComponent.OTHER

    def observe_repeat(self, obs: CycleObservation, k: int) -> None:
        """Account ``obs`` for ``k`` consecutive identical cycles.

        Exactly equivalent to ``k`` calls of :meth:`observe`.  With no
        FLOPs and no VFP issue in the repeated cycle, each call adds
        exactly one whole empty-slot cycle to a single component (there is
        no width-normalizer carry in the FLOPS algorithm), so the bulk add
        of ``float(k)`` is bit-identical to the iterated result.  Active
        cycles bulk-apply too when every per-cycle fraction is an exact
        dyadic rational — power-of-two peak and unit counts with integral
        FLOP/lane totals — because each of the (identical) per-cycle adds
        is then a multiple of 2^-p and iterated adds equal one
        multiply-add bit for bit.
        """
        if (
            obs.flops_issued
            or obs.n_vfp_issued
            or obs.non_fma_loss_lanes
            or obs.masked_lanes
        ):
            if (
                self._dyadic
                and float(obs.flops_issued).is_integer()
                and float(obs.non_fma_loss_lanes).is_integer()
                and float(obs.masked_lanes).is_integer()
            ):
                # Mirror observe()'s branch structure with every add
                # multiplied by k; the guards and early returns depend
                # only on the (constant) observation, so all k iterated
                # cycles would take exactly these branches.
                stack = self.stack
                peak = self.peak
                units = self.vector_units
                fk = float(k)
                f = obs.flops_issued / peak
                stack.add(FlopsComponent.BASE, f * fk)
                stack.flops += obs.flops_issued * fk
                if f >= 1.0:
                    return
                if obs.non_fma_loss_lanes:
                    stack.add(
                        FlopsComponent.NON_FMA,
                        (obs.non_fma_loss_lanes / peak) * fk,
                    )
                if obs.masked_lanes:
                    stack.add(
                        FlopsComponent.MASK,
                        (2.0 * obs.masked_lanes / peak) * fk,
                    )
                n = min(obs.n_vfp_issued, units)
                slots = (units - n) / units
                if slots <= 0.0:
                    return
                stack.add(self._slot_loss_component(obs), slots * fk)
                return
            for _ in range(k):
                self.observe(obs)
            return
        self.stack.add(self._slot_loss_component(obs), float(k))

    def finalize(self, cycles: int) -> FlopsStack:
        self.stack.cycles = float(cycles)
        return self.stack
