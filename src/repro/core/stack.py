"""Stack containers: CPI stacks, IPC stacks and FLOPS stacks.

A stack stores *cycle* counters per component; the invariant maintained by
the accountants is that the counters sum to the simulated cycle count.  The
same counters can then be presented three ways:

* **CPI stack** — divide each counter by the (micro-)instruction count; the
  components sum to total CPI (Fig. 1, Fig. 3).
* **IPC stack** — divide by cycles and multiply by max IPC; the base
  component is the achieved IPC and the stack height is the max IPC
  (Fig. 5, left bars).
* **FLOPS stack** — Equation 1: divide by cycles and multiply by peak FLOPS;
  the base component is the achieved FLOPS (Fig. 5, right bars).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence, TypeVar

from repro.core.components import (
    CPI_COMPONENTS,
    FLOPS_COMPONENTS,
    Component,
    FlopsComponent,
)

KeyT = TypeVar("KeyT", Component, FlopsComponent)


@dataclass(slots=True)
class _BaseStack:
    """Shared behaviour of CPI and FLOPS stacks (cycle counters)."""

    name: str = ""
    cycles: float = 0.0
    counters: dict = field(default_factory=dict)

    def add(self, component, amount: float) -> None:
        """Accumulate ``amount`` stall/base cycles into ``component``."""
        if amount:
            self.counters[component] = self.counters.get(component, 0.0) + amount

    def get(self, component) -> float:
        """Raw cycle counter for ``component``."""
        return self.counters.get(component, 0.0)

    def total(self) -> float:
        """Sum of all component counters (should equal ``cycles``)."""
        return sum(self.counters.values())

    def normalized(self) -> dict:
        """Components as fractions of the stack total (sums to 1)."""
        total = self.total()
        if total == 0:
            return {c: 0.0 for c in self.counters}
        return {c: v / total for c, v in self.counters.items()}

    def scaled(self, factor: float) -> dict:
        """Components multiplied by ``factor`` (rate-stack conversions)."""
        return {c: v * factor for c, v in self.counters.items()}


@dataclass(slots=True)
class CpiStack(_BaseStack):
    """A CPI stack measured at one pipeline stage.

    ``instructions`` is the correct-path micro-op count (the paper's
    accounting operates on micro-ops: "an 'instruction' here actually means
    a micro-operation", Sec. V-B).
    """

    stage: str = ""
    instructions: int = 0

    def cpi(self) -> float:
        """Total cycles per (micro-)instruction."""
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions

    def component_cpi(self, component: Component) -> float:
        """CPI contribution of one component."""
        if self.instructions == 0:
            return 0.0
        return self.get(component) / self.instructions

    def cpi_components(self) -> dict[Component, float]:
        """All components in CPI units, in canonical order."""
        if self.instructions == 0:
            return {}
        return {
            c: self.counters[c] / self.instructions
            for c in CPI_COMPONENTS
            if c in self.counters
        }

    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    def ipc_components(self, max_ipc: float) -> dict[Component, float]:
        """IPC-stack view: counters / cycles * max_ipc (sums to max IPC)."""
        if self.cycles == 0:
            return {}
        factor = max_ipc / self.cycles
        return {
            c: self.counters[c] * factor
            for c in CPI_COMPONENTS
            if c in self.counters
        }

    def copy(self) -> "CpiStack":
        out = CpiStack(
            name=self.name,
            cycles=self.cycles,
            stage=self.stage,
            instructions=self.instructions,
        )
        out.counters = dict(self.counters)
        return out

    def to_dict(self) -> dict:
        """Serialize for the disk cache / worker transport.

        Components are stored by enum *name* so deserialization always maps
        back onto the canonical singleton members (the accountants rely on
        identity hashing).
        """
        return {
            "name": self.name,
            "stage": self.stage,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "counters": {c.name: v for c, v in self.counters.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CpiStack":
        out = cls(
            name=data["name"],
            stage=data["stage"],
            cycles=data["cycles"],
            instructions=data["instructions"],
        )
        out.counters = {
            Component[name]: value
            for name, value in data["counters"].items()
        }
        return out


@dataclass(slots=True)
class FlopsStack(_BaseStack):
    """A FLOPS stack (Table III counters, cycle units).

    ``flops`` records the floating-point operations actually performed, used
    for cross-checking Equation 1; ``peak_per_cycle`` is M = 2*k*v.
    """

    flops: float = 0.0
    peak_per_cycle: float = 0.0

    def achieved_fraction(self) -> float:
        """Fraction of peak FLOPS achieved (the normalized base component)."""
        if self.cycles == 0:
            return 0.0
        return self.get(FlopsComponent.BASE) / self.cycles

    def gflops(self, frequency_ghz: float, cores: int = 1) -> float:
        """Equation 1: base/cycles * freq * M (optionally socket-scaled)."""
        return (
            self.achieved_fraction()
            * frequency_ghz
            * self.peak_per_cycle
            * cores
        )

    def rate_components(
        self, frequency_ghz: float, cores: int = 1
    ) -> dict[FlopsComponent, float]:
        """FLOPS-rate stack: each component scaled to GFLOPS.

        The stack height is the peak GFLOPS; the base component is the
        achieved GFLOPS (Sec. III-C: "we obtain a stack with height
        freq * M").
        """
        if self.cycles == 0:
            return {}
        factor = frequency_ghz * self.peak_per_cycle * cores / self.cycles
        return {
            c: self.counters[c] * factor
            for c in FLOPS_COMPONENTS
            if c in self.counters
        }

    def copy(self) -> "FlopsStack":
        out = FlopsStack(
            name=self.name,
            cycles=self.cycles,
            flops=self.flops,
            peak_per_cycle=self.peak_per_cycle,
        )
        out.counters = dict(self.counters)
        return out

    def to_dict(self) -> dict:
        """Serialize for the disk cache / worker transport."""
        return {
            "name": self.name,
            "cycles": self.cycles,
            "flops": self.flops,
            "peak_per_cycle": self.peak_per_cycle,
            "counters": {c.name: v for c, v in self.counters.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FlopsStack":
        out = cls(
            name=data["name"],
            cycles=data["cycles"],
            flops=data["flops"],
            peak_per_cycle=data["peak_per_cycle"],
        )
        out.counters = {
            FlopsComponent[name]: value
            for name, value in data["counters"].items()
        }
        return out


def average_stacks(stacks: Sequence[CpiStack]) -> CpiStack:
    """Average CPI stacks component per component (paper Sec. IV).

    Used to aggregate homogeneous per-thread stacks into one socket-level
    stack: "We aggregate the CPI stacks by averaging them component per
    component."
    """
    if not stacks:
        raise ValueError("cannot average zero stacks")
    out = CpiStack(
        name=stacks[0].name,
        stage=stacks[0].stage,
        cycles=sum(s.cycles for s in stacks) / len(stacks),
        instructions=round(
            sum(s.instructions for s in stacks) / len(stacks)
        ),
    )
    for stack in stacks:
        for comp, value in stack.counters.items():
            out.add(comp, value / len(stacks))
    return out


def sum_flops_stacks(stacks: Sequence[FlopsStack]) -> FlopsStack:
    """Add FLOPS stacks by their components (paper Sec. IV).

    "Similarly, we add the FLOPS stacks by their components."  Cycle counts
    are averaged (homogeneous threads run for the same duration); component
    counters and FLOPs are averaged as well so the per-cycle fractions are
    preserved, then the socket view is obtained via ``cores=`` scaling.
    """
    if not stacks:
        raise ValueError("cannot aggregate zero stacks")
    out = FlopsStack(
        name=stacks[0].name,
        cycles=sum(s.cycles for s in stacks) / len(stacks),
        flops=sum(s.flops for s in stacks) / len(stacks),
        peak_per_cycle=stacks[0].peak_per_cycle,
    )
    for stack in stacks:
        for comp, value in stack.counters.items():
            out.add(comp, value / len(stacks))
    return out


def normalized_difference(
    a: Mapping[KeyT, float], b: Mapping[KeyT, float], keys: Iterable[KeyT]
) -> dict[KeyT, float]:
    """Difference between two normalized stacks per component (Fig. 4)."""
    return {k: a.get(k, 0.0) - b.get(k, 0.0) for k in keys}
