"""Ground-cause classification of a blamed micro-op (Table II, lines 10-16).

All three stage algorithms end in the same three-way test on a blamed
micro-op ``i``::

    if i has Dcache miss:      Dcache_comp += 1 - f
    elif latency[i] > 1 cyc:   ALU_lat_comp += 1 - f
    else:                      depend_comp += 1 - f

The blamed micro-op is the ROB head (dispatch/commit) or the producer of the
first non-ready instruction (issue).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.components import Component


@runtime_checkable
class BlamableUop(Protocol):
    """What the accountants need to know about a pipeline micro-op."""

    #: The micro-op is a load.
    is_load: bool
    #: The micro-op is an in-flight load that missed in the L1 D-cache.
    dcache_miss: bool
    #: The micro-op has started executing.
    issued: bool
    #: The micro-op has finished executing.
    done: bool
    #: The micro-op's execution latency exceeds one cycle.
    multi_cycle: bool


def classify_blamed_uop(uop: BlamableUop) -> Component:
    """Map a blamed micro-op to a backend stall component.

    * An issued load with an outstanding miss is a **Dcache** stall.
    * An issued multi-cycle micro-op (including an L1-hitting load still in
      flight) is an **ALU latency** stall.
    * A micro-op that has not even issued is waiting on operands — a
      **dependence** stall ("single-cycle instructions that can only start
      executing when they are at the head of the ROB because of dependences
      on older instructions").
    """
    if uop.is_load:
        if uop.dcache_miss:
            return Component.DCACHE
        if uop.issued:
            return Component.ALU_LAT
        return Component.DEPEND
    if uop.issued and uop.multi_cycle:
        return Component.ALU_LAT
    # Either a single-cycle micro-op caught in its only execution cycle, or
    # a micro-op still waiting on its operands: a dependence stall.
    return Component.DEPEND


def frontend_component(reason: Component | None) -> Component:
    """Normalize a frontend stall reason into a stack component.

    The frontend reports ICACHE, BPRED, MICROCODE or UNSCHED (draining
    toward a synchronization yield); anything else (e.g. the trace simply
    ran out while the backend drains) is structural OTHER.
    """
    if reason in (
        Component.ICACHE,
        Component.BPRED,
        Component.MICROCODE,
        Component.UNSCHED,
    ):
        return reason
    return Component.OTHER
