"""The per-cycle observation handed from the pipeline to the accountants.

This is the contract between the substrate (:mod:`repro.pipeline`) and the
accounting algorithms (:mod:`repro.core`): every simulated cycle the pipeline
fills one :class:`CycleObservation` describing what each stage did and, when
a stage under-used its width, the raw material needed to find the ground
cause (frontend condition, ROB head, first non-ready reservation-station
entry and its producer).

Keeping cause *classification* in the accountants and cause *observation* in
the pipeline mirrors how the paper separates the accounting algorithms
(Table II/III) from the simulated core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.components import Component


@dataclass(slots=True)
class CycleObservation:
    """Everything the Table II/III algorithms can see in one cycle.

    Micro-op references (``rob_head``, producers) are pipeline-side objects
    satisfying the :class:`repro.core.blame.BlamableUop` protocol.
    """

    # --- global ---
    #: Core descheduled this cycle (thread yielded).
    unscheduled: bool = False
    #: Frontend is fetching down a mispredicted path or refilling after one.
    wrong_path_active: bool = False
    #: Why the frontend delivered nothing (ICACHE / BPRED / MICROCODE), or
    #: None if it was not the limiter this cycle.
    fe_reason: Component | None = None

    # --- dispatch stage ---
    #: Correct-path micro-ops dispatched this cycle.
    n_dispatch: int = 0
    #: Wrong-path micro-ops dispatched this cycle.
    n_dispatch_wrong: int = 0
    #: Uop queue had nothing for dispatch (frontend starved it).
    uop_queue_empty: bool = False
    #: Dispatch blocked because ROB, RS or store queue was full.
    window_full: bool = False

    # --- issue stage ---
    #: Correct-path micro-ops issued this cycle.
    n_issue: int = 0
    #: Wrong-path micro-ops issued this cycle.
    n_issue_wrong: int = 0
    #: Reservation stations held no waiting micro-ops at issue time.
    rs_empty: bool = False
    #: Ready micro-ops were left unissued (ports/FUs/conflicts) this cycle.
    structural_stall: bool = False
    #: Producer of the first (oldest) non-ready RS entry, or None.
    first_nonready_producer: Any = None

    # --- commit stage ---
    #: Correct-path micro-ops committed this cycle.
    n_commit: int = 0
    #: Reorder buffer was empty at commit time.
    rob_empty: bool = False
    #: ROB head micro-op if it blocked commit/dispatch, else None.
    rob_head: Any = None

    # --- FLOPS (issue stage, Table III) ---
    #: FLOPs performed by VFP micro-ops issued this cycle (sum ops*lanes).
    flops_issued: float = 0.0
    #: Number of VFP micro-ops issued this cycle (n in Table III).
    n_vfp_issued: int = 0
    #: Sum over issued VFP micro-ops of (2 - ops_per_lane) * active lanes.
    non_fma_loss_lanes: float = 0.0
    #: Sum over issued VFP micro-ops of (machine lanes - active lanes).
    masked_lanes: float = 0.0
    #: At least one VFP micro-op is waiting in the reservation stations.
    vfp_in_rs: bool = False
    #: A vector unit executed a non-VFP micro-op this cycle.
    vu_used_by_non_vfp: bool = False
    #: Producer of the oldest waiting VFP micro-op, or None.
    oldest_vfp_producer: Any = None
    #: Ready VFP micro-ops were blocked by structural limits this cycle.
    vfp_structural: bool = False

    def reset(self) -> None:
        """Return every field to its default.

        The pipeline reuses one observation object across cycles (the
        per-cycle allocation showed up in profiles); accountants read the
        observation synchronously and never retain a reference, so reuse
        is safe.  Slots are assigned explicitly: routing reset through the
        dataclass-generated ``__init__`` put keyword processing on the
        per-cycle profile.
        """
        self.unscheduled = False
        self.wrong_path_active = False
        self.fe_reason = None
        self.n_dispatch = 0
        self.n_dispatch_wrong = 0
        self.uop_queue_empty = False
        self.window_full = False
        self.n_issue = 0
        self.n_issue_wrong = 0
        self.rs_empty = False
        self.structural_stall = False
        self.first_nonready_producer = None
        self.n_commit = 0
        self.rob_empty = False
        self.rob_head = None
        self.flops_issued = 0.0
        self.n_vfp_issued = 0
        self.non_fma_loss_lanes = 0.0
        self.masked_lanes = 0.0
        self.vfp_in_rs = False
        self.vu_used_by_non_vfp = False
        self.oldest_vfp_producer = None
        self.vfp_structural = False
