"""The paper's primary contribution: multi-stage CPI stacks and FLOPS stacks.

This package implements, independently of the pipeline substrate:

* the stack component taxonomy (:mod:`repro.core.components`),
* CPI/IPC/FLOPS stack containers and aggregation (:mod:`repro.core.stack`),
* the per-cycle accounting algorithms of Table II at the dispatch, issue and
  commit stages (:mod:`repro.core.dispatch`, :mod:`repro.core.issue`,
  :mod:`repro.core.commit`),
* the FLOPS accounting algorithm of Table III (:mod:`repro.core.flops`),
* width normalization with carry (:mod:`repro.core.width`),
* wrong-path discernment strategies (:mod:`repro.core.wrongpath`), and
* the multi-stage collector and bounds analysis (:mod:`repro.core.multistage`).

:mod:`repro.core.invariants` guards those accounting identities at
runtime: every harness result is checked (stacks sum to cycles, stages
agree, FLOPS stack sums to the slot budget, serialization round-trips)
before it is returned or cached.
"""

from repro.core.commit import CommitAccountant
from repro.core.components import (
    CPI_COMPONENTS,
    FLOPS_COMPONENTS,
    Component,
    FlopsComponent,
)
from repro.core.dispatch import DispatchAccountant
from repro.core.flops import FlopsAccountant
from repro.core.invariants import (
    InvariantGuard,
    InvariantViolation,
    Violation,
    check_result,
    verify_result,
)
from repro.core.issue import IssueAccountant
from repro.core.multistage import MultiStageCollector, MultiStageReport, Stage
from repro.core.roofline import RooflinePoint, roofline_point
from repro.core.stack import CpiStack, FlopsStack, average_stacks
from repro.core.topdown import TopDownAccountant, TopDownReport, TopLevel
from repro.core.width import WidthNormalizer
from repro.core.wrongpath import (
    SimpleWrongPathCorrector,
    SpeculativeCounterFile,
    WrongPathMode,
)

__all__ = [
    "CPI_COMPONENTS",
    "CommitAccountant",
    "Component",
    "CpiStack",
    "DispatchAccountant",
    "FLOPS_COMPONENTS",
    "FlopsAccountant",
    "FlopsComponent",
    "FlopsStack",
    "InvariantGuard",
    "InvariantViolation",
    "IssueAccountant",
    "MultiStageCollector",
    "MultiStageReport",
    "RooflinePoint",
    "SimpleWrongPathCorrector",
    "SpeculativeCounterFile",
    "Stage",
    "TopDownAccountant",
    "TopDownReport",
    "TopLevel",
    "Violation",
    "WidthNormalizer",
    "WrongPathMode",
    "average_stacks",
    "check_result",
    "roofline_point",
    "verify_result",
]
