"""Width normalization for stages wider than the narrowest stage.

Sec. III-A: "Instead of using the actual width of the stage, we propose to
set W as the minimum of all stage widths.  As a result, f can be larger than
1 in wider stages.  In that case, we assume f = 1 and 'transfer' the part
larger than one to the next cycle."
"""

from __future__ import annotations


class WidthNormalizer:
    """Converts per-cycle micro-op counts into a useful fraction f in [0, 1].

    ``width`` is W, the minimum of all stage widths.  When a wider stage
    processes more than W micro-ops in a cycle, the excess is carried into
    following cycles, modelling how a wide issue stage hides latency for the
    narrower stages around it.
    """

    __slots__ = ("width", "carry")

    def __init__(self, width: int) -> None:
        if width < 1:
            raise ValueError("accounting width must be >= 1")
        self.width = width
        self.carry = 0.0

    def fraction(self, n: float) -> float:
        """Fold ``n`` processed micro-ops into a fraction of W, with carry."""
        if n < 0:
            raise ValueError("micro-op count cannot be negative")
        f = n / self.width + self.carry
        if f > 1.0:
            self.carry = f - 1.0
            return 1.0
        self.carry = 0.0
        return f

    def reset(self) -> None:
        self.carry = 0.0
