"""Stack component taxonomy.

The paper's simplified algorithms (Table II) measure six CPI components; the
full implementation adds the `Microcode` component that appears for povray on
KNL (Fig. 3d), the structural `Other` component only observable at the issue
stage (Sec. V-A), and the `Unsched` component for descheduled threads
(Fig. 5).  FLOPS stacks (Table III) use their own component set.
"""

from __future__ import annotations

import enum


class Component(enum.Enum):
    """CPI-stack components (Table II plus paper-text extensions)."""

    #: Useful work: fraction of the width used by correct-path micro-ops.
    BASE = "base"
    #: Frontend stalled resolving a branch misprediction.
    BPRED = "bpred"
    #: Frontend stalled on an instruction cache (or ITLB) miss.
    ICACHE = "icache"
    #: Backend stalled on a data cache (or DTLB) miss.
    DCACHE = "dcache"
    #: Backend stalled behind a multi-cycle arithmetic instruction.
    ALU_LAT = "alu"
    #: Backend stalled on inter-instruction dependences (1-cycle producers).
    DEPEND = "depend"
    #: Frontend stalled in the microcode sequencer (Fig. 3d).
    MICROCODE = "microcode"
    #: Structural stalls: issue ports, FU contention, store-load conflicts.
    OTHER = "other"
    #: Core descheduled (thread yielded on synchronization).
    UNSCHED = "unsched"

    # Components are dict keys on the per-cycle accounting fast path;
    # identity hashing is much cheaper than Enum's name-based default and
    # equally correct (enum members are singletons).
    __hash__ = object.__hash__

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Canonical display order for CPI stacks (base at the bottom).
CPI_COMPONENTS: tuple[Component, ...] = (
    Component.BASE,
    Component.BPRED,
    Component.ICACHE,
    Component.DCACHE,
    Component.ALU_LAT,
    Component.DEPEND,
    Component.MICROCODE,
    Component.OTHER,
    Component.UNSCHED,
)


class FlopsComponent(enum.Enum):
    """FLOPS-stack components (Table III plus `Unsched`/`Other`)."""

    #: Cycles-equivalent of FLOPs actually performed.
    BASE = "base"
    #: Loss from issuing non-FMA vector FP work (adds/muls count 1 op).
    NON_FMA = "non_fma"
    #: Loss from masked-out vector lanes.
    MASK = "mask"
    #: No VFP instructions available (non-FP code, I$/bpred misses).
    FRONTEND = "frontend"
    #: Vector unit consumed by non-VFP work (integer SIMD, broadcasts).
    NON_VFP = "non_vfp"
    #: VFP instructions waiting on memory loads.
    MEM = "mem"
    #: VFP instructions waiting on non-memory producers.
    DEPEND = "depend"
    #: Ready VFP work blocked by structural limits.
    OTHER = "other"
    #: Core descheduled (thread yielded on synchronization).
    UNSCHED = "unsched"

    # See Component.__hash__: identity hashing for the accounting fast path.
    __hash__ = object.__hash__

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Canonical display order for FLOPS stacks.
FLOPS_COMPONENTS: tuple[FlopsComponent, ...] = (
    FlopsComponent.BASE,
    FlopsComponent.NON_FMA,
    FlopsComponent.MASK,
    FlopsComponent.FRONTEND,
    FlopsComponent.NON_VFP,
    FlopsComponent.MEM,
    FlopsComponent.DEPEND,
    FlopsComponent.OTHER,
    FlopsComponent.UNSCHED,
)

#: CPI components considered "frontend" (dispatch comp >= issue >= commit).
FRONTEND_COMPONENTS = frozenset(
    {Component.ICACHE, Component.BPRED, Component.MICROCODE}
)

#: CPI components considered "backend" (commit comp >= issue >= dispatch).
BACKEND_COMPONENTS = frozenset(
    {Component.DCACHE, Component.ALU_LAT, Component.DEPEND}
)

#: Map between corresponding CPI and FLOPS components used in the Fig. 4
#: comparison ("the normalized FLOPS base component minus the normalized CPI
#: base component, and similar for the frontend, memory and dependence
#: components").
CPI_TO_FLOPS_COMPARISON: dict[FlopsComponent, tuple[Component, ...]] = {
    FlopsComponent.BASE: (Component.BASE,),
    FlopsComponent.FRONTEND: (
        Component.ICACHE,
        Component.BPRED,
        Component.MICROCODE,
    ),
    FlopsComponent.MEM: (Component.DCACHE,),
    FlopsComponent.DEPEND: (Component.DEPEND, Component.ALU_LAT),
}
