"""Commit-stage CPI accounting (Table II, right column).

The IBM POWER approach: a stall cycle is a cycle in which fewer than W
micro-ops commit.  An empty ROB points at the frontend (the miss penalty is
only charged once the window has drained); an unfinished ROB head points at
the backend (charged as soon as the offending instruction reaches the head).

Wrong-path micro-ops never commit, so this stage needs no wrong-path
discernment (Sec. III-B: "there is no problem at the commit stage").
"""

from __future__ import annotations

from repro.core.blame import classify_blamed_uop, frontend_component
from repro.core.components import Component
from repro.core.observation import CycleObservation
from repro.core.stack import CpiStack
from repro.core.width import WidthNormalizer


class CommitAccountant:
    """Per-cycle CPI accounting at the commit stage."""

    stage = "commit"

    __slots__ = ("stack", "norm")

    def __init__(self, width: int) -> None:
        self.stack = CpiStack(stage=self.stage)
        self.norm = WidthNormalizer(width)

    def observe(self, obs: CycleObservation) -> None:
        """Run one cycle of the Table II commit algorithm."""
        f = self.norm.fraction(obs.n_commit)
        stack = self.stack
        stack.add(Component.BASE, f)
        if f >= 1.0:
            return
        stall = 1.0 - f
        if obs.unscheduled:
            stack.add(Component.UNSCHED, stall)
        elif obs.rob_empty:
            # ROB drained: a frontend event is starving the whole window.
            if obs.wrong_path_active:
                stack.add(Component.BPRED, stall)
            else:
                stack.add(frontend_component(obs.fe_reason), stall)
        elif obs.rob_head is not None and not obs.rob_head.done:
            # ROB head not done: blame its outstanding execution.
            stack.add(classify_blamed_uop(obs.rob_head), stall)
        else:
            stack.add(Component.OTHER, stall)

    def finalize(self, cycles: int, instructions: int) -> CpiStack:
        self.stack.cycles = float(cycles)
        self.stack.instructions = instructions
        return self.stack
