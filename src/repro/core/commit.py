"""Commit-stage CPI accounting (Table II, right column).

The IBM POWER approach: a stall cycle is a cycle in which fewer than W
micro-ops commit.  An empty ROB points at the frontend (the miss penalty is
only charged once the window has drained); an unfinished ROB head points at
the backend (charged as soon as the offending instruction reaches the head).

Wrong-path micro-ops never commit, so this stage needs no wrong-path
discernment (Sec. III-B: "there is no problem at the commit stage").
"""

from __future__ import annotations

from repro.core.blame import classify_blamed_uop, frontend_component
from repro.core.components import Component
from repro.core.observation import CycleObservation
from repro.core.stack import CpiStack
from repro.core.width import WidthNormalizer


class CommitAccountant:
    """Per-cycle CPI accounting at the commit stage."""

    stage = "commit"

    __slots__ = ("stack", "norm", "_pow2")

    def __init__(self, width: int) -> None:
        self.stack = CpiStack(stage=self.stage)
        self.norm = WidthNormalizer(width)
        #: See DispatchAccountant: power-of-two widths enable the exact
        #: multiplied bulk paths in :meth:`observe_repeat`.
        self._pow2 = width & (width - 1) == 0

    def _stall_target(self, obs: CycleObservation) -> Component:
        """Ground cause of a commit stall cycle."""
        if obs.unscheduled:
            return Component.UNSCHED
        if obs.rob_empty:
            # ROB drained: a frontend event is starving the whole window.
            if obs.wrong_path_active:
                return Component.BPRED
            return frontend_component(obs.fe_reason)
        if obs.rob_head is not None and not obs.rob_head.done:
            # ROB head not done: blame its outstanding execution.
            return classify_blamed_uop(obs.rob_head)
        return Component.OTHER

    def observe(self, obs: CycleObservation) -> None:
        """Run one cycle of the Table II commit algorithm."""
        f = self.norm.fraction(obs.n_commit)
        self.stack.add(Component.BASE, f)
        if f >= 1.0:
            return
        self.stack.add(self._stall_target(obs), 1.0 - f)

    def observe_repeat(self, obs: CycleObservation, k: int) -> None:
        """Account ``obs`` for ``k`` consecutive identical cycles.

        Exactly equivalent to ``k`` calls of :meth:`observe`; see
        :meth:`repro.core.dispatch.DispatchAccountant.observe_repeat` for
        the bit-exactness argument (exact dyadic per-cycle increments for
        the stall, full/over-width and partial-width steady states).
        """
        n = obs.n_commit
        width = self.norm.width
        if n >= width and (n == width or self._pow2):
            # Full/over-width cycles add a whole 1.0 of BASE each; the
            # over-wide carry growth is the same exact dyadic every cycle.
            self.stack.add(Component.BASE, float(k))
            if n > width:
                self.norm.carry += (n / width - 1.0) * float(k)
            return
        if n:
            if self._pow2 and self.norm.carry == 0.0:
                # Partial-width steady state: f = n/W exactly, carry stays
                # 0.0; see DispatchAccountant.observe_repeat.
                f = n / width
                self.stack.add(Component.BASE, f * float(k))
                self.stack.add(self._stall_target(obs), (1.0 - f) * float(k))
                return
            for _ in range(k):
                self.observe(obs)
            return
        while k > 0 and self.norm.carry != 0.0:
            self.observe(obs)
            k -= 1
        if k <= 0:
            return
        self.stack.add(self._stall_target(obs), float(k))

    def finalize(self, cycles: int, instructions: int) -> CpiStack:
        self.stack.cycles = float(cycles)
        self.stack.instructions = instructions
        return self.stack
