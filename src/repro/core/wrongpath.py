"""Discerning wrong-path from correct-path work (paper Sec. III-B).

Three strategies are implemented:

* **EXACT** — functional-first simulation knows the correct path before
  timing starts, so wrong-path micro-ops are simply excluded from ``n`` and
  wrong-path delivery cycles are charged to the branch-misprediction
  component directly.
* **SIMPLE** — the hardware-friendly approach: treat every micro-op as
  correct path while accounting, then correct afterwards by moving the
  difference between this stage's base component and the commit stage's base
  component into the branch component ("bad speculation slots are calculated
  as the number of issue slots minus the number of retire slots", Yasin's
  method as cited by the paper).
* **SPECULATIVE** — per-basic-block speculative counters (the CPI counter
  architecture of Eyerman et al. as adopted by the paper): cycle components
  accumulate into a per-block buffer; blocks that commit merge into the
  global counters, squashed blocks drain into the branch component.
"""

from __future__ import annotations

import enum

from repro.core.components import Component
from repro.core.stack import CpiStack


class WrongPathMode(enum.Enum):
    """How an accountant discerns wrong-path work (Sec. III-B)."""

    EXACT = "exact"
    SIMPLE = "simple"
    SPECULATIVE = "speculative"


class SpeculativeCounterFile:
    """Per-basic-block speculative cycle counters.

    Blocks are identified by a monotonically increasing id assigned by the
    frontend at each branch.  ``add`` buffers a contribution against a block;
    ``commit_up_to`` merges every block at or below an id into the stack
    (those blocks are architecturally committed); ``squash_from`` drains every
    block above an id into the branch-misprediction component.
    """

    __slots__ = ("pending",)

    def __init__(self) -> None:
        self.pending: dict[int, dict[Component, float]] = {}

    def add(self, block_id: int, component: Component, amount: float) -> None:
        if not amount:
            return
        block = self.pending.get(block_id)
        if block is None:
            block = {}
            self.pending[block_id] = block
        block[component] = block.get(component, 0.0) + amount

    def commit_up_to(self, block_id: int, stack: CpiStack) -> None:
        """Merge all blocks with id <= ``block_id`` into ``stack``."""
        done = [bid for bid in self.pending if bid <= block_id]
        for bid in done:
            for component, amount in self.pending.pop(bid).items():
                stack.add(component, amount)

    def squash_from(self, block_id: int, stack: CpiStack) -> None:
        """Drain all blocks with id > ``block_id`` into the bpred component."""
        squashed = [bid for bid in self.pending if bid > block_id]
        for bid in squashed:
            total = sum(self.pending.pop(bid).values())
            stack.add(Component.BPRED, total)

    def flush_all(self, stack: CpiStack) -> None:
        """End of simulation: merge everything still pending as committed."""
        for block in self.pending.values():
            for component, amount in block.items():
                stack.add(component, amount)
        self.pending.clear()

    @property
    def outstanding_blocks(self) -> int:
        return len(self.pending)


class SimpleWrongPathCorrector:
    """Post-hoc base-difference correction for the SIMPLE mode.

    Because the commit stage never sees wrong-path micro-ops, its base
    component is the correct one; the surplus base measured at an earlier
    stage is (mostly) wrong-path work and is moved to the branch component.
    """

    @staticmethod
    def apply(stack: CpiStack, commit_stack: CpiStack) -> CpiStack:
        """Return a corrected copy of ``stack``.

        Both stacks must cover the same execution (same cycles and committed
        micro-op count).
        """
        corrected = stack.copy()
        surplus = corrected.get(Component.BASE) - commit_stack.get(
            Component.BASE
        )
        if surplus > 0:
            corrected.counters[Component.BASE] = commit_stack.get(
                Component.BASE
            )
            corrected.add(Component.BPRED, surplus)
        return corrected
