"""Yasin's top-down method — the baseline the paper positions against.

Related work (Sec. II): "A mixed approach is taken by Yasin.  In his
hierarchical accounting mechanism, a top level stack is measured at the
dispatch stage, discerning between frontend and backend stalls, but
without subdividing these into specific miss events ...  In the next
levels, specific miss event penalties are measured at different stages:
front-end miss events at the dispatch stage, and back-end miss events at
the issue stage.  As a result, the components at the lower levels do not
add up to the total cycle count."

This module implements that scheme on the same per-cycle observations the
multi-stage accountants consume, so the two representations can be
compared head to head (see ``bench_topdown_comparison.py``).  The paper's
critique — that the dispatch-based top level prioritizes frontend misses
and can understate backend misses — falls out of the level-1 slot
attribution below: a cycle where the frontend delivers nothing is charged
to Frontend Bound even when the backend is simultaneously stalled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.blame import classify_blamed_uop
from repro.core.components import Component
from repro.core.observation import CycleObservation
from repro.core.width import WidthNormalizer


class TopLevel(enum.Enum):
    """Yasin's level-1 categories (slot-based, at dispatch)."""

    RETIRING = "retiring"
    BAD_SPECULATION = "bad_speculation"
    FRONTEND_BOUND = "frontend_bound"
    BACKEND_BOUND = "backend_bound"

    __hash__ = object.__hash__


class FrontendDetail(enum.Enum):
    """Level-2 frontend breakdown (measured at dispatch)."""

    ICACHE = "icache"
    MICROCODE = "microcode"
    OTHER = "other"

    __hash__ = object.__hash__


class BackendDetail(enum.Enum):
    """Level-2 backend breakdown (measured at issue, per Yasin)."""

    MEMORY_BOUND = "memory_bound"
    CORE_BOUND = "core_bound"

    __hash__ = object.__hash__


@dataclass(slots=True)
class TopDownReport:
    """The hierarchical stack: level-1 fractions plus level-2 details.

    ``level1`` sums to 1 (it is a slot partition).  ``frontend_detail``
    and ``backend_detail`` are measured at *different* stages and in
    different denominators — exactly why, as the paper notes, "the
    components at the lower levels do not add up to the total cycle
    count".
    """

    cycles: int
    level1: dict[TopLevel, float] = field(default_factory=dict)
    frontend_detail: dict[FrontendDetail, float] = field(
        default_factory=dict
    )
    backend_detail: dict[BackendDetail, float] = field(default_factory=dict)

    def level1_fractions(self) -> dict[TopLevel, float]:
        total = sum(self.level1.values())
        if total == 0:
            return {k: 0.0 for k in TopLevel}
        return {k: self.level1.get(k, 0.0) / total for k in TopLevel}

    def memory_bound_cpi(self, instructions: int) -> float:
        """Backend-level memory estimate in CPI units."""
        if instructions == 0:
            return 0.0
        return (
            self.backend_detail.get(BackendDetail.MEMORY_BOUND, 0.0)
            / instructions
        )

    def to_dict(self) -> dict:
        """Serialize for the disk cache / worker transport (by enum name)."""
        return {
            "cycles": self.cycles,
            "level1": {k.name: v for k, v in self.level1.items()},
            "frontend_detail": {
                k.name: v for k, v in self.frontend_detail.items()
            },
            "backend_detail": {
                k.name: v for k, v in self.backend_detail.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TopDownReport":
        return cls(
            cycles=data["cycles"],
            level1={
                TopLevel[k]: v for k, v in data["level1"].items()
            },
            frontend_detail={
                FrontendDetail[k]: v
                for k, v in data["frontend_detail"].items()
            },
            backend_detail={
                BackendDetail[k]: v
                for k, v in data["backend_detail"].items()
            },
        )


class TopDownAccountant:
    """Per-cycle top-down slot accounting.

    Level 1 partitions each cycle's W dispatch slots:

    * slots filled with correct-path micro-ops -> Retiring;
    * slots filled with wrong-path micro-ops, or starved while recovering
      from a misprediction -> Bad Speculation;
    * slots starved by the frontend -> Frontend Bound;
    * everything else (window full, structural) -> Backend Bound.

    Level 2 refines Frontend Bound at the dispatch stage
    (icache/microcode) and Backend Bound at the *issue* stage
    (memory-bound vs core-bound via the producer of the first non-ready
    micro-op).
    """

    __slots__ = ("report", "norm", "_cycles")

    def __init__(self, width: int) -> None:
        self.report = TopDownReport(cycles=0)
        self.norm = WidthNormalizer(width)
        self._cycles = 0

    def observe(self, obs: CycleObservation) -> None:
        self._cycles += 1
        level1 = self.report.level1
        width = self.norm.width

        retiring = self.norm.fraction(obs.n_dispatch)
        level1[TopLevel.RETIRING] = (
            level1.get(TopLevel.RETIRING, 0.0) + retiring
        )
        remaining = 1.0 - retiring
        if remaining <= 0.0:
            self._observe_level2(obs)
            return

        bad_spec = min(remaining, obs.n_dispatch_wrong / width)
        if obs.wrong_path_active:
            # Recovery bubbles count as bad speculation too.
            bad_spec = remaining
        if bad_spec > 0.0:
            level1[TopLevel.BAD_SPECULATION] = (
                level1.get(TopLevel.BAD_SPECULATION, 0.0) + bad_spec
            )
            remaining -= bad_spec
        if remaining <= 0.0:
            self._observe_level2(obs)
            return

        if obs.unscheduled or obs.uop_queue_empty:
            # Frontend could not feed the machine: Frontend Bound —
            # *regardless* of simultaneous backend stalls (the
            # dispatch-priority behaviour the paper criticizes).
            level1[TopLevel.FRONTEND_BOUND] = (
                level1.get(TopLevel.FRONTEND_BOUND, 0.0) + remaining
            )
        else:
            level1[TopLevel.BACKEND_BOUND] = (
                level1.get(TopLevel.BACKEND_BOUND, 0.0) + remaining
            )
        self._observe_level2(obs)

    def observe_repeat(self, obs: CycleObservation, k: int) -> None:
        """Account ``obs`` for ``k`` consecutive identical cycles.

        Exactly equivalent to ``k`` calls of :meth:`observe`.  With no
        dispatch or issue activity in the repeated cycle (the only case
        the fast-forward engine produces), each cycle contributes exactly
        0.0 retiring slots and 1.0 whole slots to a single level-1
        category, and whole 1.0 increments to the level-2 details — all
        exact in floating point, so bulk adds of ``float(k)`` match the
        iterated result bit for bit.
        """
        if obs.n_dispatch or obs.n_dispatch_wrong or obs.n_issue:
            for _ in range(k):
                self.observe(obs)
            return
        while k > 0 and self.norm.carry != 0.0:
            self.observe(obs)
            k -= 1
        if k <= 0:
            return
        self._cycles += k
        level1 = self.report.level1
        # observe() touches the Retiring entry even at fraction 0.0;
        # replicate the key creation (adding 0.0 once is idempotent).
        level1[TopLevel.RETIRING] = level1.get(TopLevel.RETIRING, 0.0) + 0.0
        if obs.wrong_path_active:
            level1[TopLevel.BAD_SPECULATION] = (
                level1.get(TopLevel.BAD_SPECULATION, 0.0) + float(k)
            )
        elif obs.unscheduled or obs.uop_queue_empty:
            level1[TopLevel.FRONTEND_BOUND] = (
                level1.get(TopLevel.FRONTEND_BOUND, 0.0) + float(k)
            )
        else:
            level1[TopLevel.BACKEND_BOUND] = (
                level1.get(TopLevel.BACKEND_BOUND, 0.0) + float(k)
            )
        # Level-2 details: whole 1.0 increments per cycle in both tables.
        if obs.uop_queue_empty and not obs.wrong_path_active:
            fe = self.report.frontend_detail
            if obs.fe_reason is Component.ICACHE:
                fe_key = FrontendDetail.ICACHE
            elif obs.fe_reason is Component.MICROCODE:
                fe_key = FrontendDetail.MICROCODE
            else:
                fe_key = FrontendDetail.OTHER
            fe[fe_key] = fe.get(fe_key, 0.0) + float(k)
        if not obs.rs_empty:
            producer = obs.first_nonready_producer
            if producer is not None:
                be = self.report.backend_detail
                if classify_blamed_uop(producer) is Component.DCACHE:
                    be_key = BackendDetail.MEMORY_BOUND
                else:
                    be_key = BackendDetail.CORE_BOUND
                be[be_key] = be.get(be_key, 0.0) + float(k)

    def _observe_level2(self, obs: CycleObservation) -> None:
        # Frontend detail at the dispatch stage.
        if obs.uop_queue_empty and not obs.wrong_path_active:
            fe = self.report.frontend_detail
            if obs.fe_reason is Component.ICACHE:
                key = FrontendDetail.ICACHE
            elif obs.fe_reason is Component.MICROCODE:
                key = FrontendDetail.MICROCODE
            else:
                key = FrontendDetail.OTHER
            fe[key] = fe.get(key, 0.0) + 1.0
        # Backend detail at the issue stage (per Yasin).
        if not obs.rs_empty and obs.n_issue < self.norm.width:
            producer = obs.first_nonready_producer
            if producer is not None:
                be = self.report.backend_detail
                blame = classify_blamed_uop(producer)
                if blame is Component.DCACHE:
                    key = BackendDetail.MEMORY_BOUND
                else:
                    key = BackendDetail.CORE_BOUND
                be[key] = be.get(key, 0.0) + 1.0 - (
                    obs.n_issue / self.norm.width
                )

    def finalize(self, cycles: int) -> TopDownReport:
        self.report.cycles = cycles
        return self.report
