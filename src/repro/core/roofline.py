"""Roofline positioning from FLOPS stacks (paper Sec. III-C).

"This makes the FLOPS stack an intuitive representation for FLOPS based
performance analysis, allowing it to augment the roofline model by
identifying specific causes why an application does not reach its
theoretical performance."

The roofline model bounds attainable FLOPS by
``min(peak_flops, bandwidth * arithmetic_intensity)``.  This module
derives the roofline coordinates of a simulation and pairs them with the
FLOPS-stack components, answering not only *where* a kernel sits under
the roof but *why* it is not on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.cores import CoreConfig
from repro.core.components import FlopsComponent
from repro.pipeline.result import SimResult


@dataclass(frozen=True, slots=True)
class RooflinePoint:
    """One kernel's position under the roofline."""

    #: FLOPs per byte of DRAM traffic.
    arithmetic_intensity: float
    #: Achieved GFLOPS (per core).
    achieved_gflops: float
    #: Compute roof: peak GFLOPS (per core).
    peak_gflops: float
    #: Memory roof at this intensity: bandwidth * intensity.
    bandwidth_roof_gflops: float
    #: The FLOPS-stack explanation of the gap (normalized components).
    limiters: dict[FlopsComponent, float]

    @property
    def roof_gflops(self) -> float:
        """The attainable bound at this arithmetic intensity."""
        return min(self.peak_gflops, self.bandwidth_roof_gflops)

    @property
    def compute_bound(self) -> bool:
        """True if the compute roof is the binding one."""
        return self.peak_gflops <= self.bandwidth_roof_gflops

    @property
    def roof_fraction(self) -> float:
        """Achieved FLOPS as a fraction of the attainable roof."""
        if self.roof_gflops == 0:
            return 0.0
        return self.achieved_gflops / self.roof_gflops

    def dominant_limiter(self) -> FlopsComponent | None:
        """Largest non-base FLOPS-stack component: the paper's 'why'."""
        losses = {
            c: v for c, v in self.limiters.items()
            if c is not FlopsComponent.BASE
        }
        if not losses:
            return None
        return max(losses, key=losses.get)


def roofline_point(
    result: SimResult, config: CoreConfig, *, line_bytes: int = 64
) -> RooflinePoint:
    """Compute a kernel's roofline coordinates from its simulation.

    DRAM traffic is measured, not estimated: every DRAM access in the
    hierarchy moved one cache line.  Note that memory statistics cover the
    whole run while the FLOPS stack covers the measured region, so for a
    consistent intensity run the simulation without warmup (the cold
    first-pass traffic is then part of the kernel's real traffic).
    """
    report = result.report
    if report is None or report.flops is None:
        raise ValueError("roofline analysis needs a FLOPS stack")
    flops_stack = report.flops
    dram_accesses = result.memory_stats.get("dram", {}).get("accesses", 0)
    bytes_moved = dram_accesses * line_bytes
    total_flops = flops_stack.flops
    intensity = (
        total_flops / bytes_moved if bytes_moved > 0 else float("inf")
    )
    achieved = flops_stack.gflops(config.frequency_ghz)
    peak = config.peak_flops_per_cycle * config.frequency_ghz
    # Per-core DRAM bandwidth in GB/s: line size over the per-line service
    # interval, times the clock.
    bandwidth_gbs = (
        line_bytes
        / config.memory.dram.cycles_per_line
        * config.frequency_ghz
    )
    bandwidth_roof = (
        bandwidth_gbs * intensity if intensity != float("inf") else peak
    )
    return RooflinePoint(
        arithmetic_intensity=intensity,
        achieved_gflops=achieved,
        peak_gflops=peak,
        bandwidth_roof_gflops=bandwidth_roof,
        limiters=flops_stack.normalized(),
    )
