"""Multi-stage collection and bounds analysis — the paper's headline idea.

A :class:`MultiStageCollector` runs the dispatch, issue and commit
accountants (and optionally the FLOPS accountant) side by side over the same
execution; the resulting :class:`MultiStageReport` exposes, per component,
the *range* [min, max] across stages — the upper and lower bound on the CPI
reduction expected from eliminating that stall source (Sec. I: "The
different CPI stacks show the range of the possible CPI reduction if a
certain stall event is eliminated").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.commit import CommitAccountant
from repro.core.components import Component, FlopsComponent
from repro.core.dispatch import DispatchAccountant
from repro.core.flops import FlopsAccountant
from repro.core.issue import IssueAccountant
from repro.core.observation import CycleObservation
from repro.core.stack import CpiStack, FlopsStack
from repro.core.wrongpath import SimpleWrongPathCorrector, WrongPathMode


class Stage(enum.Enum):
    """The three accounting points of Table II."""

    DISPATCH = "dispatch"
    ISSUE = "issue"
    COMMIT = "commit"


ALL_STAGES = (Stage.DISPATCH, Stage.ISSUE, Stage.COMMIT)


@dataclass(frozen=True)
class CollectorSpec:
    """Declarative description of one attached accounting collector.

    The simulator timing is observational (the paper's core claim): any
    number of these can ride along on one pipeline run without changing a
    single simulated cycle.  ``accounting=False`` describes the "no
    collector" member of a fused group — the timing runs, nothing
    observes.  ``accounting_width`` of ``None`` defers to the machine
    config's width, matching the single-collector default.
    """

    accounting: bool = True
    topdown: bool = False
    accounting_width: int | None = None

    def fingerprint(self) -> dict:
        """Canonical JSON-able identity (for cache keys and telemetry)."""
        return {
            "accounting": self.accounting,
            "topdown": self.topdown,
            "accounting_width": self.accounting_width,
        }


class FanoutCollector:
    """Forward one observation stream to several independent collectors.

    Keeps the simulator's hot path monomorphic: ``sim.collector`` is
    either ``None``, one :class:`MultiStageCollector`, or this wrapper —
    the per-cycle call sites never iterate.  The replay engine's
    ``observe_repeat`` bulk feed and the checkpoint pickle both work
    through it unchanged, because it exposes exactly the collector
    protocol the simulator drives.
    """

    __slots__ = ("members",)

    def __init__(self, members: list["MultiStageCollector"]) -> None:
        self.members = list(members)

    def observe(self, obs: "CycleObservation") -> None:
        for member in self.members:
            member.observe(obs)

    def observe_repeat(self, obs: "CycleObservation", k: int) -> None:
        for member in self.members:
            member.observe_repeat(obs, k)

    def set_block(self, block_id: int) -> None:
        for member in self.members:
            member.set_block(block_id)

    def on_block_commit(self, block_id: int) -> None:
        for member in self.members:
            member.on_block_commit(block_id)

    def on_squash(self, block_id: int) -> None:
        for member in self.members:
            member.on_squash(block_id)


class MultiStageCollector:
    """Runs all stage accountants simultaneously over one execution.

    The paper shows this costs <1% simulation time; the collector therefore
    does only O(1) work per cycle beyond the underlying accountants.
    """

    __slots__ = ("dispatch", "issue", "commit", "flops", "topdown", "mode")

    def __init__(
        self,
        width: int,
        *,
        mode: WrongPathMode = WrongPathMode.EXACT,
        vector_units: int = 0,
        vector_lanes: int = 0,
        topdown: bool = False,
    ) -> None:
        self.mode = mode
        self.dispatch = DispatchAccountant(width, mode)
        self.issue = IssueAccountant(width, mode)
        self.commit = CommitAccountant(width)
        self.flops: FlopsAccountant | None = None
        if vector_units and vector_lanes:
            self.flops = FlopsAccountant(vector_units, vector_lanes)
        self.topdown = None
        if topdown:
            from repro.core.topdown import TopDownAccountant

            self.topdown = TopDownAccountant(width)

    def observe(self, obs: CycleObservation) -> None:
        self.dispatch.observe(obs)
        self.issue.observe(obs)
        self.commit.observe(obs)
        if self.flops is not None:
            self.flops.observe(obs)
        if self.topdown is not None:
            self.topdown.observe(obs)

    def observe_repeat(self, obs: CycleObservation, k: int) -> None:
        """Account ``obs`` for ``k`` consecutive identical cycles.

        Bit-identical to ``k`` calls of :meth:`observe`; each accountant
        provides its own repeat-count fast path (falling back to the
        per-cycle loop whenever the observation is not a pure stall).
        """
        self.dispatch.observe_repeat(obs, k)
        self.issue.observe_repeat(obs, k)
        self.commit.observe_repeat(obs, k)
        if self.flops is not None:
            self.flops.observe_repeat(obs, k)
        if self.topdown is not None:
            self.topdown.observe_repeat(obs, k)

    def repeat_program(self, obs: CycleObservation):
        """Compile ``obs``'s per-cycle accounting into a flat update list.

        Returns ``(entries, norms, flops_stack, flops_issued)`` where
        applying ``counters[comp] += amt * float(k)`` for each entry (in
        order), plus ``flops_stack.flops += flops_issued * float(k)``, is
        bit-identical to :meth:`observe_repeat` with repeat count ``k`` —
        **provided** every normalizer in ``norms`` has ``carry == 0.0``
        at apply time (the caller must check; carries stay 0.0 whenever
        per-cycle counts never exceed the accounting width, which the
        uniform-width batching precondition guarantees).

        Returns ``False`` when no such program exists: top-down attached
        (its interval state machine is not a fixed update list), a
        non-EXACT mode (speculative counter files buffer per-block), a
        non-pow2 width (per-cycle fractions are not exact dyadics), an
        over-width count, or non-integral FLOP/lane totals.  The
        bit-exactness argument for each multiplied amount is the same as
        in the accountants' own ``observe_repeat`` bulk paths — this
        method only memoizes which branches those paths would take.
        """
        if self.topdown is not None or self.mode is not WrongPathMode.EXACT:
            return False
        dispatch = self.dispatch
        issue = self.issue
        commit = self.commit
        if not (dispatch._pow2 and issue._pow2 and commit._pow2):
            return False
        if (
            dispatch.spec is not None
            or issue.spec is not None
        ):
            return False
        entries = []
        for acc, n in (
            (dispatch, obs.n_dispatch),
            (issue, obs.n_issue),
            (commit, obs.n_commit),
        ):
            width = acc.norm.width
            if n > width:
                return False
            f = n / width
            if f:
                entries.append((acc.stack.counters, Component.BASE, f))
            if f < 1.0:
                target = acc._stall_target(obs)
                comp = target if acc is commit else target[0]
                entries.append((acc.stack.counters, comp, 1.0 - f))
        flops_stack = None
        flops_issued = 0.0
        fa = self.flops
        if fa is not None:
            if not fa._dyadic:
                return False
            if not (
                float(obs.flops_issued).is_integer()
                and float(obs.non_fma_loss_lanes).is_integer()
                and float(obs.masked_lanes).is_integer()
            ):
                return False
            peak = fa.peak
            units = fa.vector_units
            counters = fa.stack.counters
            f = obs.flops_issued / peak
            if f:
                entries.append((counters, FlopsComponent.BASE, f))
            if obs.flops_issued:
                flops_stack = fa.stack
                flops_issued = obs.flops_issued
            if f < 1.0:
                if obs.non_fma_loss_lanes:
                    entries.append((
                        counters,
                        FlopsComponent.NON_FMA,
                        obs.non_fma_loss_lanes / peak,
                    ))
                if obs.masked_lanes:
                    entries.append((
                        counters,
                        FlopsComponent.MASK,
                        2.0 * obs.masked_lanes / peak,
                    ))
                n_vfp = obs.n_vfp_issued
                if n_vfp > units:
                    n_vfp = units
                slots = (units - n_vfp) / units
                if slots > 0.0:
                    entries.append((
                        counters,
                        fa._slot_loss_component(obs),
                        slots,
                    ))
        return (
            tuple(entries),
            (dispatch.norm, issue.norm, commit.norm),
            flops_stack,
            flops_issued,
        )

    # -- speculative-counter event plumbing ----------------------------------

    def set_block(self, block_id: int) -> None:
        if self.mode is WrongPathMode.SPECULATIVE:
            self.dispatch.set_block(block_id)
            self.issue.set_block(block_id)

    def on_block_commit(self, block_id: int) -> None:
        if self.mode is WrongPathMode.SPECULATIVE:
            self.dispatch.on_block_commit(block_id)
            self.issue.on_block_commit(block_id)

    def on_squash(self, block_id: int) -> None:
        if self.mode is WrongPathMode.SPECULATIVE:
            self.dispatch.on_squash(block_id)
            self.issue.on_squash(block_id)

    # -- finalization ---------------------------------------------------------

    def finalize(
        self, cycles: int, instructions: int, name: str = ""
    ) -> "MultiStageReport":
        dispatch = self.dispatch.finalize(cycles, instructions)
        issue = self.issue.finalize(cycles, instructions)
        commit = self.commit.finalize(cycles, instructions)
        if self.mode is WrongPathMode.SIMPLE:
            # Hardware-style correction: surplus base over the commit stack
            # is dispatched/issued wrong-path work -> branch component.
            dispatch = SimpleWrongPathCorrector.apply(dispatch, commit)
            issue = SimpleWrongPathCorrector.apply(issue, commit)
        for stack in (dispatch, issue, commit):
            stack.name = name
        flops_stack = None
        if self.flops is not None:
            flops_stack = self.flops.finalize(cycles)
            flops_stack.name = name
        topdown_report = None
        if self.topdown is not None:
            topdown_report = self.topdown.finalize(cycles)
        return MultiStageReport(
            name=name,
            dispatch=dispatch,
            issue=issue,
            commit=commit,
            flops=flops_stack,
            topdown=topdown_report,
        )


@dataclass(slots=True)
class MultiStageReport:
    """The three per-stage CPI stacks (plus FLOPS stack) for one execution.

    ``topdown`` carries the Yasin-style hierarchical baseline when the
    collector was built with ``topdown=True`` (for head-to-head
    comparisons; see :mod:`repro.core.topdown`).
    """

    name: str
    dispatch: CpiStack
    issue: CpiStack
    commit: CpiStack
    flops: FlopsStack | None = None
    topdown: object | None = None

    def stack(self, stage: Stage) -> CpiStack:
        if stage is Stage.DISPATCH:
            return self.dispatch
        if stage is Stage.ISSUE:
            return self.issue
        return self.commit

    @property
    def stacks(self) -> dict[Stage, CpiStack]:
        return {stage: self.stack(stage) for stage in ALL_STAGES}

    def cpi(self) -> float:
        return self.commit.cpi()

    def component_bounds(
        self, component: Component
    ) -> tuple[float, float]:
        """[min, max] of ``component`` (in CPI units) across the stages.

        This is the paper's bound on the CPI reduction from removing the
        stall source.
        """
        values = [
            self.stack(stage).component_cpi(component)
            for stage in ALL_STAGES
        ]
        return min(values), max(values)

    def covers(self, component: Component, actual_delta: float) -> bool:
        """True if the observed CPI reduction lies within the bounds."""
        low, high = self.component_bounds(component)
        return low <= actual_delta <= high

    def bound_error(self, component: Component, actual_delta: float) -> float:
        """Fig. 2's multi-stage error: 0 inside the bounds, else the signed
        distance from the closest bound to the actual reduction."""
        low, high = self.component_bounds(component)
        if low <= actual_delta <= high:
            return 0.0
        if actual_delta < low:
            return low - actual_delta
        return high - actual_delta

    def stage_error(
        self, stage: Stage, component: Component, actual_delta: float
    ) -> float:
        """Fig. 2's single-stack error: predicted component minus actual."""
        return self.stack(stage).component_cpi(component) - actual_delta

    def to_dict(self) -> dict:
        """Serialize for the disk cache / worker transport."""
        topdown = None
        if self.topdown is not None:
            topdown = self.topdown.to_dict()
        return {
            "name": self.name,
            "dispatch": self.dispatch.to_dict(),
            "issue": self.issue.to_dict(),
            "commit": self.commit.to_dict(),
            "flops": self.flops.to_dict() if self.flops else None,
            "topdown": topdown,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MultiStageReport":
        flops = data.get("flops")
        topdown = data.get("topdown")
        if topdown is not None:
            from repro.core.topdown import TopDownReport

            topdown = TopDownReport.from_dict(topdown)
        return cls(
            name=data["name"],
            dispatch=CpiStack.from_dict(data["dispatch"]),
            issue=CpiStack.from_dict(data["issue"]),
            commit=CpiStack.from_dict(data["commit"]),
            flops=FlopsStack.from_dict(flops) if flops else None,
            topdown=topdown,
        )
