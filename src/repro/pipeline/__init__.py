"""Out-of-order superscalar core substrate.

A cycle-level model of a modern out-of-order pipeline: fetch with I-cache
and branch prediction (including wrong-path execution), decode with a
microcode sequencer, rename/dispatch into ROB + reservation stations,
oldest-first wakeup-select issue over port- and FU-constrained execution
units, a non-blocking memory pipeline with store-to-load forwarding and
conflicts, and in-order commit.  Every cycle it emits one
:class:`repro.core.observation.CycleObservation` to the accounting layer.
"""

from repro.pipeline.core import CoreSimulator, simulate
from repro.pipeline.inflight import InflightUop
from repro.pipeline.result import SimResult

__all__ = ["CoreSimulator", "InflightUop", "SimResult", "simulate"]
