"""The out-of-order core simulator: the per-cycle loop wiring all stages.

Stage order within a cycle is writeback -> commit -> issue -> dispatch ->
fetch/decode, which gives the standard timing: a micro-op dispatched in
cycle t can issue at t+1, and a completing producer wakes consumers in time
for same-cycle issue (back-to-back single-cycle chains execute at one op per
cycle).  One :class:`CycleObservation` is filled per cycle and handed to the
accounting collector — the paper's measurement point.
"""

from __future__ import annotations

import math
import os
import pickle
import time
from collections import deque
from pathlib import Path

from repro.branch.predictors import make_predictor
from repro.config.cores import CoreConfig
from repro.core.components import Component
from repro.core.multistage import (
    CollectorSpec,
    FanoutCollector,
    MultiStageCollector,
)
from repro.core.observation import CycleObservation
from repro.core.wrongpath import WrongPathMode
from repro.isa.instructions import Program
from repro.isa.registers import TOTAL_REGS
from repro.isa.uops import UopClass
from repro.memory.hierarchy import MemoryHierarchy, legacy_memory_default
from repro.pipeline.frontend import Frontend
from repro.pipeline.inflight import POOL_MUL, InflightUop, UopPool
from repro.pipeline.replay import ReplayEngine, find_period
from repro.pipeline.resources import FunctionalUnitPool
from repro.pipeline.result import SimResult

#: Safety net against scheduling bugs: no realistic trace needs more cycles.
_MAX_CYCLES_PER_UOP = 400

#: Environment escape hatch for the quiescent-cycle fast-forward engine.
#: Set to "0" to force cycle-by-cycle simulation everywhere (including
#: pool worker processes, which inherit the environment).
ENV_FAST_FORWARD = "REPRO_FAST_FORWARD"

#: Environment escape hatch for the event-driven issue scheduler.  Set to
#: "1" to fall back to the legacy full-reservation-station scan (bitwise
#: identical results; useful for differential testing and bisection).
#: Inherited by pool worker processes like the other REPRO_* hatches.
ENV_LEGACY_ISSUE_SCAN = "REPRO_LEGACY_ISSUE_SCAN"

#: Environment escape hatch for the periodic steady-state replay engine.
#: Set to "0" to disable replay everywhere (including pool workers).
ENV_REPLAY = "REPRO_REPLAY"


def fast_forward_default() -> bool:
    """Fast-forward setting from the environment (on unless ``"0"``)."""
    return os.environ.get(ENV_FAST_FORWARD, "1") != "0"


def legacy_issue_scan_default() -> bool:
    """Legacy issue-scan setting from the environment (off unless ``"1"``)."""
    return os.environ.get(ENV_LEGACY_ISSUE_SCAN, "0") == "1"


def replay_default() -> bool:
    """Replay setting from the environment (on unless ``"0"``)."""
    return os.environ.get(ENV_REPLAY, "1") != "0"


class _UopSnapshot:
    """Frozen :class:`repro.core.blame.BlamableUop` attribute set.

    A batched observation outlives the cycle it was recorded in, but the
    micro-op records it points at keep evolving (and can be recycled by
    the pool).  Retaining a snapshot of exactly the attributes the
    accountants read makes the held observation immune to both.
    """

    __slots__ = (
        "is_load", "dcache_miss", "issued", "done", "multi_cycle",
        "block_id",
    )


class _ObsBuffer:
    """A retainable observation plus its three blamed-uop snapshots.

    ``delta`` memoizes the collector's per-cycle accounting program for
    this observation (see ``MultiStageCollector.repeat_program``):
    ``None`` means unbuilt, ``False`` means the observation (or the
    attached collector) is not k-scalable and the generic
    ``observe_repeat`` chain must run.  ``delta_epoch`` ties the memo to
    one collector generation — ``_rewrap_collector`` bumps the epoch, so
    programs never outlive the stacks they point into.  Both slots are
    transient: pickling (checkpoints) drops them.
    """

    __slots__ = ("obs", "head", "producer", "vfp", "delta", "delta_epoch")

    def __init__(self) -> None:
        self.obs = CycleObservation()
        self.head = _UopSnapshot()
        self.producer = _UopSnapshot()
        self.vfp = _UopSnapshot()
        self.delta = None
        self.delta_epoch = 0

    def __getstate__(self):
        return (self.obs, self.head, self.producer, self.vfp)

    def __setstate__(self, state):
        self.obs, self.head, self.producer, self.vfp = state
        self.delta = None
        self.delta_epoch = 0


#: Batch signature for a descheduled (Unsched) cycle.
_UNSCHED_SIG = ("unsched",)

#: Placeholder in ``_issue_obs_cache`` for a producer field whose value
#: has not been resolved yet (lazy mode): the ``_oldest_live`` walk and
#: the producer scan are deferred until something actually reads it.
_PENDING = object()

#: Bound on the signature -> retained-observation cache: above this many
#: distinct signatures the overflow path falls back to recycling a
#: private buffer pair (the pre-cache behaviour).  Real traces stay far
#: below it — the cache exists because steady-state loops cycle through a
#: handful of signatures, re-filling ~30 observation fields each time.
_SIG_CACHE_CAP = 8192

#: Serialized stand-in for the :data:`_PENDING` sentinel in a checkpoint
#: payload.  The sentinel is compared by identity, so it cannot survive a
#: pickle round trip; snapshot/restore swap it for this token and back.
#: (Resolving it instead would mutate the ``_nonready`` queues, diverging
#: from the uninterrupted run.)
_PENDING_TOKEN = "__repro_pending__"


class CoreSimulator:
    """Simulates one program on one core configuration."""

    def __init__(
        self,
        program: Program,
        config: CoreConfig,
        *,
        mode: WrongPathMode = WrongPathMode.EXACT,
        accounting: bool = True,
        seed: int = 12345,
        warmup_instructions: int = 0,
        accounting_width: int | None = None,
        topdown: bool = False,
        fast_forward: bool | None = None,
        legacy_issue_scan: bool | None = None,
        replay: bool | None = None,
        memory_fast_path: bool | None = None,
        collectors: "tuple[CollectorSpec, ...] | list[CollectorSpec] | None" = None,
        shared_backend=None,
    ) -> None:
        if config.memory is None:
            raise ValueError("core configuration needs a memory hierarchy")
        self.program = program
        self.config = config
        self.mode = mode
        self._seed = seed
        # Allocation-free memory fast path + flat-array caches; the
        # legacy dict-backed walk (REPRO_LEGACY_MEMORY=1 /
        # memory_fast_path=False) is the differential oracle.  The same
        # gate governs the stall-streak elision below: legacy mode is the
        # fully un-optimized cycle-by-cycle reference.
        self._memory_fast = (
            not legacy_memory_default()
            if memory_fast_path is None
            else memory_fast_path
        )
        # ``shared_backend`` (a SharedMemoryBackend) substitutes a
        # socket-shared L3 + DRAM for the private ones; the multi-core
        # engine owns the backend and steps its member cores externally.
        self.hierarchy = MemoryHierarchy(
            config.memory,
            perfect_icache=config.perfect_icache,
            perfect_dcache=config.perfect_dcache,
            fast_path=self._memory_fast,
            shared=shared_backend,
        )
        self.predictor = make_predictor(
            config.predictor, config.predictor_bits, config.btb_entries
        )
        #: Free-list recycler shared with the frontend: every dynamic
        #: micro-op record is acquired at delivery and released at commit,
        #: squash, or (for squashed in-flight work) writeback.
        self._pool = UopPool()
        self.frontend = Frontend(
            program, config, self.hierarchy, self.predictor, seed=seed,
            pool=self._pool,
        )
        # The simulator drives a *list* of attached collectors.  The
        # legacy accounting/topdown/accounting_width kwargs describe the
        # historical single collector; ``collectors=`` attaches any
        # combination (multi-stage, top-down, none) to one timing run —
        # the fused-execution substrate.  Timing is observational either
        # way: the attached set never changes a simulated cycle.
        if collectors is None:
            collectors = (
                CollectorSpec(
                    accounting=accounting,
                    topdown=topdown,
                    accounting_width=accounting_width,
                ),
            )
        elif not accounting or topdown or accounting_width is not None:
            raise ValueError(
                "pass either collectors= or the legacy accounting/topdown/"
                "accounting_width arguments, not both"
            )
        specs = tuple(collectors)
        if not specs:
            raise ValueError("collectors= needs at least one CollectorSpec")
        self._collector_specs = specs
        #: W for the accounting algorithms; per collector, overridable to
        #: study the Sec. III-A width-normalization choice (width ablation).
        widths = {
            (
                s.accounting_width
                if s.accounting_width is not None
                else config.accounting_width
            )
            for s in specs
            if s.accounting
        }
        self._accounting = bool(widths)
        self._topdown = any(s.topdown for s in specs if s.accounting)
        self._accounting_width = (
            next(iter(widths))
            if len(widths) == 1
            else config.accounting_width
        )
        self._uniform_width = len(widths) <= 1
        self.collectors: list[MultiStageCollector | None] = []
        self.collector: MultiStageCollector | FanoutCollector | None = None
        self._build_collectors()
        #: One SimResult per attached collector, filled by ``_finalize``.
        self.fused_results: list[SimResult] = []
        self.fu = FunctionalUnitPool(config)
        #: uclass -> execution latency, precomputed (latency_of's
        #: membership test + dict lookup sat on the issue fast path).
        self._latency_of = tuple(
            config.latency_of(uclass) for uclass in UopClass
        )
        self.rob: deque[InflightUop] = deque()
        self.rs: list[InflightUop] = []
        self.uop_queue: deque[InflightUop] = deque()
        self.last_writer: list[InflightUop | None] = [None] * TOTAL_REGS
        self.pending_stores: dict[int, InflightUop] = {}
        self.completions: dict[int, list[InflightUop]] = {}
        self.sq_count = 0
        self.cycle = 0
        self.committed_uops = 0
        self.committed_instrs = 0
        self.unsched_remaining = 0
        #: Index of this core within a multi-core engine (0 standalone).
        self.core_id = 0
        #: Multi-core barrier plumbing: the engine installs a hook called
        #: at barrier commit; while ``barrier_waiting`` the core is parked
        #: (the engine stops stepping it) until the last sibling arrives
        #: and the engine converts the wait into ``unsched_remaining``.
        #: Standalone (hook is None) a barrier degrades to a plain yield.
        self._barrier_hook = None
        self.barrier_waiting = False
        self._spec_mode = mode is WrongPathMode.SPECULATIVE
        # Warmup emulates the paper's fast-forward: caches, TLBs and the
        # branch predictor train during the first ``warmup_instructions``
        # macro instructions, then the stack counters restart.
        self.warmup_instructions = warmup_instructions
        self._warmed = warmup_instructions == 0
        self._measure_cycle0 = 0
        self._measure_uops0 = 0
        # Issue quiescence: when a select/scan issues nothing and no event
        # (wakeup, dispatch, squash, store commit, unpipelined-unit release)
        # has changed scheduler state since, the result is identical —
        # reuse it instead of re-running.  Pure optimization; bitwise
        # identical results.
        self._rs_dirty = True
        self._rs_quiet = False
        self._has_correct_waiting = False
        self._issue_obs_cache: tuple = (None, False, False, None, False)
        # Event-driven issue scheduling (wakeup/select).  The legacy
        # full-RS scan is kept behind ``legacy_issue_scan=True`` /
        # REPRO_LEGACY_ISSUE_SCAN=1 for differential verification; both
        # produce bitwise-identical results.  In event mode ``self.rs``
        # stays empty and the scheduler state lives in:
        #   _ready        (seq, uop) entries whose operands are all ready,
        #                 walked in seq order by select; lazily pruned
        #                 (an entry is stale once its uop issued, was
        #                 squashed, or the record was recycled — detected
        #                 by the snapshotted seq no longer matching),
        #   _nonready     correct-path entries dispatched with deps_left>0,
        #                 in dispatch (= seq) order; fronts popped once
        #                 permanently invalid (woken, squashed, recycled),
        #   _nonready_vfp the VFP subset of _nonready,
        #   _rs_count / _rs_correct / _rs_vfp   occupancy counters,
        #   _parked       loads waiting on an older same-address store
        #                 (woken by the store's writeback or by a younger
        #                 store taking over the forwarding slot).
        self._legacy_scan = (
            legacy_issue_scan_default()
            if legacy_issue_scan is None
            else legacy_issue_scan
        )
        self._event = not self._legacy_scan
        self._issue = self._issue_scan if self._legacy_scan else \
            self._issue_select
        self._ready: list[tuple[int, InflightUop]] = []
        self._nonready: deque[tuple[int, InflightUop]] = deque()
        self._nonready_vfp: deque[tuple[int, InflightUop]] = deque()
        self._rs_count = 0
        self._rs_correct = 0
        self._rs_vfp = 0
        self._parked = 0
        # Quiescent-cycle fast-forward: when every stage is provably
        # stalled until a known future event, jump there in one step and
        # bulk-account the identical cycles.  Bitwise identical results;
        # ``fast_forward=False`` (or REPRO_FAST_FORWARD=0) forces the
        # cycle-by-cycle loop.
        self._fast_forward = (
            fast_forward_default() if fast_forward is None else fast_forward
        )
        self.ff_windows = 0
        self.ff_cycles_skipped = 0
        # Stall-streak elision: even with fast-forward disabled, a
        # provably-quiescent window can be processed in one step — the
        # same window logic, minus the ff telemetry (ff_windows /
        # ff_cycles_skipped stay 0, so ``fast_forward=False`` results are
        # still reported as cycle-by-cycle).  Bitwise identical by the
        # same argument as fast-forward itself; gated with the memory
        # fast path so legacy mode remains a true per-cycle oracle.
        self._ff_eligible = self._fast_forward or self._memory_fast
        # One observation object reused across cycles (per-cycle
        # allocation dominated short-stall profiles); accountants never
        # retain a reference.
        self._obs = CycleObservation() if self._accounting else None
        # Config scalars hoisted for the fused event-mode step.
        self._commit_width = config.commit_width
        self._dispatch_width = config.dispatch_width
        self._rob_size = config.rob_size
        self._rs_size = config.rs_size
        self._sq_size = config.store_queue_size
        self._uq_size = config.uop_queue_size
        self._machine_lanes = config.vector_lanes
        # Signature-batched accounting (event mode, EXACT): consecutive
        # cycles whose accountant-visible observation fields are identical
        # accumulate into one observe_repeat call.  The signature covers
        # exactly the fields the dispatch/issue/commit/flops accountants
        # read in EXACT mode (wrong-path counts are unread there);
        # SPECULATIVE interleaves per-block events with observes and
        # SIMPLE reads wrong counts, so both observe every cycle.  A
        # top-down accountant additionally reads the wrong-path dispatch
        # count every cycle and the nonready producer whenever the RS is
        # non-empty and issue is under width, so with top-down attached
        # the signature widens (``_sig_topdown``): n_dispatch_wrong joins
        # the tuple and the producer pruning keeps only the clauses every
        # attached reader agrees on (observe_repeat is k-observe-exact
        # for the top-down accountant too, so batching stays bitwise).
        # With several collectors attached, batching additionally
        # requires one shared accounting width: the signature's
        # head/producer pruning compares against a single W.  Retained
        # observations use _UopSnapshot copies so later pipeline activity
        # (or pool recycling) cannot mutate a batched cycle's blamed
        # micro-ops.
        self._batch = (
            self._accounting
            and self._event
            and mode is WrongPathMode.EXACT
            and self._uniform_width
        )
        self._sig_topdown = self._batch and self._topdown
        self._bat_sig: object = None
        self._bat_k = 0
        self._bat_cur = _ObsBuffer()
        self._bat_spare = _ObsBuffer()
        # Retained-observation cache: the observation fields accountants
        # can read are fully determined by the batch signature (that is
        # the batching invariant), so a signature seen before can reuse
        # its fully-populated buffer instead of re-filling ~30 fields.
        # Steady-state loops cycle through a handful of signatures, so
        # this turns most _retain calls into one dict hit.  Buffers in
        # the cache are written once and never mutated; the private pair
        # is only recycled by the (pathological) overflow path.
        self._sig_cache: dict[tuple, _ObsBuffer] = {}
        self._bat_private = (self._bat_cur, self._bat_spare)
        self._unsched_buf = _ObsBuffer()
        self._unsched_buf.obs.reset()
        self._unsched_buf.obs.unscheduled = True
        self._acc_width = self._accounting_width
        self._vec_units = config.vector_units
        # Lazy producer resolution: when batching (or not accounting at
        # all), the fused select stores _PENDING for the two producer
        # fields and they are resolved on first read.  Sound because the
        # inputs of the deferred walks only change through events that
        # set ``_rs_dirty`` and therefore force a new select first.
        self._lazy_prod = self._batch or not self._accounting
        # Periodic steady-state replay: record one loop iteration's worth
        # of accounting once the machine provably reaches a fixed point
        # (modulo a uniform shift), then skip whole periods at a time.
        # Bitwise identical results; ``replay=False`` / REPRO_REPLAY=0
        # forces cycle-by-cycle simulation of active loops.  Armed only
        # in event mode with signature batching (or with accounting off)
        # and only when the trace itself is periodic.  Like the
        # fast-forward engine, the memory fast path also arms it with
        # ``replay=False`` — steady-state periods are then skipped
        # silently (the telemetry counters stay 0 unless the user asked
        # for replay), which is sound because replay is bitwise-proven.
        self.replay_windows = 0
        self.replay_cycles_skipped = 0
        self._replay_enabled = replay_default() if replay is None else replay
        self._replay: ReplayEngine | None = None
        self._replay_rec = False
        if (
            (self._replay_enabled or self._memory_fast)
            and self._event
            and (self._batch or self.collector is None)
        ):
            region = find_period(program)
            if region is not None:
                self._replay = ReplayEngine(self, region[0], region[1])

    # -- top-level driver --------------------------------------------------------

    def run(
        self,
        max_cycles: int | None = None,
        *,
        checkpoint_interval: int | None = None,
        checkpoint_key: str | None = None,
        on_checkpoint=None,
    ) -> SimResult:
        """Simulate to completion and return the result.

        With ``checkpoint_interval`` set, a crash-safe snapshot is taken
        every that many committed instructions (see
        :mod:`repro.pipeline.checkpoint`); the plain hot loop is used
        otherwise, so checkpointing costs nothing when off.
        """
        if max_cycles is None:
            max_cycles = _MAX_CYCLES_PER_UOP * max(
                self.program.uop_count, 1
            ) + 100_000
        if checkpoint_interval:
            return self._run_checkpointed(
                max_cycles, checkpoint_interval, checkpoint_key,
                on_checkpoint,
            )
        start = time.perf_counter()
        step = self._step_event if self._event else self._step
        # _finished inlined, cheapest-reject first: on almost every cycle
        # the ROB (or the dispatch queue) is non-empty, so the check costs
        # one truthiness test instead of three calls (method + two
        # frontend properties).
        frontend = self.frontend
        rob = self.rob
        queue = self.uop_queue
        while (
            rob
            or queue
            or self.unsched_remaining != 0
            or frontend.waiting_sync is not None
            or frontend.wrong_path
            or frontend._idx < frontend._count
            or frontend._decoded_idx < frontend._decoded_len
        ):
            step()
            if self.cycle > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"(likely a scheduling deadlock) for {self.program.name}"
                )
        return self._finalize(start)

    def _run_checkpointed(
        self,
        max_cycles: int,
        interval: int,
        key: str | None,
        on_checkpoint,
    ) -> SimResult:
        """The run loop with periodic crash-safe snapshots.

        A checkpoint is due every ``interval`` committed instructions; a
        replay/fast-forward jump can cross several due points at once, in
        which case one snapshot is taken and the next due point moves
        past the current progress.  ``on_checkpoint(path, instrs)`` fires
        after each snapshot (``path`` is None when ``key`` is — tests use
        the hook to interrupt; the supervisor's fault injection uses it
        to die deterministically mid-case).
        """
        from repro.pipeline import checkpoint as _ckpt

        start = time.perf_counter()
        step = self._step_event if self._event else self._step
        frontend = self.frontend
        rob = self.rob
        queue = self.uop_queue
        next_due = (self.committed_instrs // interval + 1) * interval
        while (
            rob
            or queue
            or self.unsched_remaining != 0
            or frontend.waiting_sync is not None
            or frontend.wrong_path
            or frontend._idx < frontend._count
            or frontend._decoded_idx < frontend._decoded_len
        ):
            step()
            if self.cycle > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"(likely a scheduling deadlock) for {self.program.name}"
                )
            if self.committed_instrs >= next_due:
                next_due = (
                    self.committed_instrs // interval + 1
                ) * interval
                path = None
                if key is not None:
                    path = _ckpt.checkpoint_path(key, self.committed_instrs)
                    _ckpt.save_checkpoint(
                        path, self.snapshot(), self.checkpoint_meta()
                    )
                if on_checkpoint is not None:
                    on_checkpoint(path, self.committed_instrs)
        return self._finalize(start)

    def _finalize(self, start: float) -> SimResult:
        """Flush pending accounting and build one result per collector.

        Every attached collector yields its own :class:`SimResult` in
        :attr:`fused_results` (spec order); all members share the timing
        fields — cycles, commit counts, memory/branch statistics — because
        they observed the same single pipeline run.  The first member is
        returned for the historical single-collector call sites.
        """
        self._flush_batch()
        wall = time.perf_counter() - start
        measured_cycles = self.cycle - self._measure_cycle0
        measured_uops = self.committed_uops - self._measure_uops0
        self.fused_results = [
            SimResult(
                name=self.program.name,
                config_name=self.config.name,
                cycles=measured_cycles,
                committed_uops=measured_uops,
                committed_instrs=self.committed_instrs,
                report=(
                    collector.finalize(
                        measured_cycles,
                        measured_uops,
                        name=self.program.name,
                    )
                    if collector is not None
                    else None
                ),
                memory_stats=self.hierarchy.stats(),
                branch_lookups=self.predictor.lookups,
                branch_mispredicts=self.predictor.mispredicts,
                wrong_path_uops=self.frontend.delivered_wrong,
                wall_seconds=wall,
                ff_windows=self.ff_windows,
                ff_cycles_skipped=self.ff_cycles_skipped,
                replay_windows=self.replay_windows,
                replay_cycles_skipped=self.replay_cycles_skipped,
            )
            for collector in self.collectors
        ]
        return self.fused_results[0]

    def _finished(self) -> bool:
        return (
            self.frontend.idle
            and not self.rob
            and not self.uop_queue
            and self.unsched_remaining == 0
            and not self.barrier_waiting
        )

    def unfinished(self) -> bool:
        """True while stepping this core can still make progress.

        The exact predicate of the :meth:`run` hot loop (plus barrier
        parking), exposed for external steppers — the multi-core engine
        drives cores one cycle at a time and needs per-core completion.
        """
        frontend = self.frontend
        return bool(
            self.rob
            or self.uop_queue
            or self.unsched_remaining != 0
            or self.barrier_waiting
            or frontend.waiting_sync is not None
            or frontend.wrong_path
            or frontend._idx < frontend._count
            or frontend._decoded_idx < frontend._decoded_len
        )

    def step_cycle(self) -> None:
        """Advance exactly one simulated step (external-stepping hook).

        One call advances :attr:`cycle` by at least one (a fast-forward
        or replay window advances it further in the same call).  Callers
        own loop control: check :meth:`unfinished` before stepping and
        bound runaway cycles themselves.
        """
        if self._event:
            self._step_event()
        else:
            self._step()

    # -- checkpoint / resume -----------------------------------------------------

    def checkpoint_meta(self) -> dict:
        """Human-readable header metadata for a checkpoint file."""
        return {
            "case": self.program.name,
            "config": self.config.name,
            "committed_instrs": self.committed_instrs,
            "committed_uops": self.committed_uops,
            "cycle": self.cycle,
        }

    def snapshot(self) -> bytes:
        """Serialize the complete simulation state into one pickle blob.

        Everything lands in a *single* ``pickle.dumps`` call so the pickle
        memo preserves object identity: an :class:`InflightUop` reachable
        from the ROB, a scheduler deque, ``last_writer`` and a dependence
        edge is stored once and restored as one shared object, exactly
        like the live pipeline.  Only taken between cycles (never
        mid-``_step``), so per-cycle scratch (``self._obs``, the FU pool's
        free-slot counters, the uop free list — a fresh record is
        field-identical to a recycled one) is deliberately excluded.

        The :data:`_PENDING` sentinel is identity-compared and cannot
        survive pickling; it is tokenized here and re-interned by
        :meth:`_restore_state`.  It must *not* be resolved instead:
        :meth:`_resolve_issue_obs` pops from the ``_nonready`` deques,
        which would diverge from the uninterrupted run.
        """
        return pickle.dumps(
            {
                "program": self.program,
                "config": self.config,
                "kwargs": {
                    "mode": self.mode,
                    "seed": self._seed,
                    "warmup_instructions": self.warmup_instructions,
                    "fast_forward": self._fast_forward,
                    "legacy_issue_scan": self._legacy_scan,
                    "replay": self._replay_enabled,
                    "memory_fast_path": self._memory_fast,
                    # The full collector-spec tuple: restoring a fused
                    # run must bring back *all* attached collectors.
                    "collectors": self._collector_specs,
                },
                "state": self._state_dict(),
            }
        )

    def _state_dict(self) -> dict:
        """The picklable mutable-state mapping :meth:`snapshot` wraps.

        Exposed separately so the multi-core engine can compose per-core
        states into one engine-level snapshot (one ``pickle.dumps`` for
        identity preservation) without duplicating program/config/kwargs
        per core.
        """
        obs_cache = tuple(
            _PENDING_TOKEN if value is _PENDING else value
            for value in self._issue_obs_cache
        )
        bat_sig = self._bat_sig
        state = {
            "rob": self.rob,
            "rs": self.rs,
            "uop_queue": self.uop_queue,
            "last_writer": self.last_writer,
            "pending_stores": self.pending_stores,
            "completions": self.completions,
            "sq_count": self.sq_count,
            "cycle": self.cycle,
            "committed_uops": self.committed_uops,
            "committed_instrs": self.committed_instrs,
            "unsched_remaining": self.unsched_remaining,
            "barrier_waiting": self.barrier_waiting,
            "warmed": self._warmed,
            "measure_cycle0": self._measure_cycle0,
            "measure_uops0": self._measure_uops0,
            "rs_dirty": self._rs_dirty,
            "rs_quiet": self._rs_quiet,
            "has_correct_waiting": self._has_correct_waiting,
            "issue_obs_cache": obs_cache,
            "ready": self._ready,
            "nonready": self._nonready,
            "nonready_vfp": self._nonready_vfp,
            "rs_count": self._rs_count,
            "rs_correct": self._rs_correct,
            "rs_vfp": self._rs_vfp,
            "parked": self._parked,
            "ff_windows": self.ff_windows,
            "ff_cycles_skipped": self.ff_cycles_skipped,
            "bat_sig": bat_sig,
            "bat_k": self._bat_k,
            "bat_cur": self._bat_cur,
            "bat_spare": self._bat_spare,
            "replay_windows": self.replay_windows,
            "replay_cycles_skipped": self.replay_cycles_skipped,
            "replay_rec": self._replay_rec,
            "collectors": self.collectors,
            "replay": (
                self._replay.snapshot() if self._replay is not None else None
            ),
            "hierarchy": self.hierarchy.snapshot(),
            "predictor": self.predictor.snapshot(),
            "frontend": self.frontend.snapshot(),
            "fu": self.fu.snapshot(),
        }
        return state

    def _restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot` on a freshly constructed simulator.

        Components are mutated *in place* — the replay engine's shift
        sites and the frontend hold live references to the hierarchy,
        predictor, cache-statistics and counter objects built by
        ``__init__``, so none of them may be replaced wholesale.
        """
        self.rob.clear()
        self.rob.extend(state["rob"])
        self.rs[:] = state["rs"]
        self.uop_queue.clear()
        self.uop_queue.extend(state["uop_queue"])
        self.last_writer[:] = state["last_writer"]
        self.pending_stores.clear()
        self.pending_stores.update(state["pending_stores"])
        self.completions.clear()
        self.completions.update(state["completions"])
        self.sq_count = state["sq_count"]
        self.cycle = state["cycle"]
        self.committed_uops = state["committed_uops"]
        self.committed_instrs = state["committed_instrs"]
        self.unsched_remaining = state["unsched_remaining"]
        # .get(): snapshots from before the multi-core engine lack it.
        self.barrier_waiting = state.get("barrier_waiting", False)
        self._warmed = state["warmed"]
        self._measure_cycle0 = state["measure_cycle0"]
        self._measure_uops0 = state["measure_uops0"]
        self._rs_dirty = state["rs_dirty"]
        self._rs_quiet = state["rs_quiet"]
        self._has_correct_waiting = state["has_correct_waiting"]
        # Re-intern the module-level _PENDING sentinel (identity-compared
        # by _resolve_issue_obs); InflightUop/bool/None values compare
        # unequal to the token string, so the test is exact.
        self._issue_obs_cache = tuple(
            _PENDING if value == _PENDING_TOKEN else value
            for value in state["issue_obs_cache"]
        )
        self._ready[:] = state["ready"]
        self._nonready.clear()
        self._nonready.extend(state["nonready"])
        self._nonready_vfp.clear()
        self._nonready_vfp.extend(state["nonready_vfp"])
        self._rs_count = state["rs_count"]
        self._rs_correct = state["rs_correct"]
        self._rs_vfp = state["rs_vfp"]
        self._parked = state["parked"]
        self.ff_windows = state["ff_windows"]
        self.ff_cycles_skipped = state["ff_cycles_skipped"]
        # Re-intern the _UNSCHED_SIG sentinel (identity-compared in the
        # fused step); no accountant signature equals it — ordinary
        # signatures are longer observation-field tuples.
        bat_sig = state["bat_sig"]
        if bat_sig == _UNSCHED_SIG:
            bat_sig = _UNSCHED_SIG
        self._bat_sig = bat_sig
        self._bat_k = state["bat_k"]
        # The buffers themselves may be swapped wholesale: they are read
        # at call time only and note_cycle always copies, so nothing
        # retains a reference to the constructor-built pair.
        self._bat_cur = state["bat_cur"]
        self._bat_spare = state["bat_spare"]
        self.replay_windows = state["replay_windows"]
        self.replay_cycles_skipped = state["replay_cycles_skipped"]
        self._replay_rec = state["replay_rec"]
        # The pickled collectors (one slot per spec, None for detached
        # members) carry every accountant's mid-run counters; the hot-path
        # view is rebuilt rather than pickled so single/fan-out wrapping
        # stays an implementation detail of this class.
        self.collectors = list(state["collectors"])
        self._rewrap_collector()
        if state["replay"] is not None and self._replay is not None:
            self._replay.restore(state["replay"])
        elif state["replay"] is not None:
            # The checkpoint carries engine state but this simulator has
            # no engine (e.g. a fast-path checkpoint restored under
            # REPRO_LEGACY_MEMORY).  Dropping it is sound — replay never
            # changes results, only skips work — but any in-flight
            # recording is gone, so clear the recording flag with it.
            self._replay_rec = False
        elif self._replay is not None:
            # Conversely the checkpoint was taken with no engine; reset
            # this simulator's engine to its idle state (it attempts
            # recording afresh after the restore).
            self._replay = ReplayEngine(
                self,
                self._replay._region_start,
                self._replay._period,
            )
            self._replay_rec = False
        self.hierarchy.restore(state["hierarchy"])
        self.predictor.restore(state["predictor"])
        self.frontend.restore(state["frontend"])
        self.fu.restore(state["fu"])

    @classmethod
    def from_snapshot(cls, payload: bytes) -> "CoreSimulator":
        """Rebuild a mid-run simulator from a :meth:`snapshot` blob."""
        data = pickle.loads(payload)
        sim = cls(data["program"], data["config"], **data["kwargs"])
        sim._restore_state(data["state"])
        return sim

    @classmethod
    def resume(cls, path: str | Path) -> "CoreSimulator":
        """Rebuild a simulator from a checkpoint *file*.

        Verifies the checksum before unpickling (see
        :func:`repro.pipeline.checkpoint.load_checkpoint`) and raises
        :class:`repro.pipeline.checkpoint.CheckpointError` on any defect.
        Continuing the returned simulator with :meth:`run` produces
        results bitwise identical to the uninterrupted run (modulo
        ``wall_seconds``).
        """
        from repro.pipeline.checkpoint import load_checkpoint

        payload, _meta = load_checkpoint(path)
        return cls.from_snapshot(payload)

    # -- one cycle ---------------------------------------------------------------

    def _step(self) -> None:
        cycle = self.cycle
        collector = self.collector
        obs = self._obs if collector is not None else None
        if obs is not None:
            obs.reset()

        if self.unsched_remaining > 0:
            # Core descheduled: nothing moves; the cycle is Unsched.
            self.unsched_remaining -= 1
            if self.unsched_remaining == 0:
                self.frontend.sync_released()
            if obs is not None:
                obs.unscheduled = True
                collector.observe(obs)
            self.cycle = cycle + 1
            return

        if self._fast_forward and self._rs_quiet and not self._rs_dirty:
            k = self._quiescent_cycles(cycle)
            if k > 0:
                self._fast_forward_by(cycle, k, obs)
                return

        self._writeback(cycle)
        self._commit(cycle, obs)
        self._issue(cycle, obs)
        self._dispatch(cycle, obs)
        if obs is not None:
            # Sample the frontend condition before this cycle's fetch can
            # clear a just-ended stall's reason: the queue the dispatch
            # stage saw was shaped by that stall.
            obs.fe_reason = self.frontend.reason(cycle)
            obs.wrong_path_active = (
                self.frontend.wrong_path
                or obs.fe_reason is Component.BPRED
            )
        self._fetch(cycle)
        if obs is not None:
            collector.observe(obs)
        self.cycle = cycle + 1
        if not self._warmed and self.committed_instrs >= self.warmup_instructions:
            self._end_warmup()

    def _build_collectors(self) -> None:
        """(Re)build every attached collector from its spec.

        Called at construction and again at the warmup boundary, so all
        attached collectors restart measurement together.
        """
        config = self.config
        collectors: list[MultiStageCollector | None] = []
        for spec in self._collector_specs:
            if not spec.accounting:
                collectors.append(None)
                continue
            width = (
                spec.accounting_width
                if spec.accounting_width is not None
                else config.accounting_width
            )
            collectors.append(
                MultiStageCollector(
                    width,
                    mode=self.mode,
                    vector_units=config.vector_units,
                    vector_lanes=config.vector_lanes,
                    topdown=spec.topdown,
                )
            )
        self.collectors = collectors
        self._rewrap_collector()

    def _rewrap_collector(self) -> None:
        """Point ``self.collector`` at the hot-path view of the list:
        ``None``, the lone real collector, or a fan-out wrapper."""
        real = [c for c in self.collectors if c is not None]
        if not real:
            self.collector = None
        elif len(real) == 1:
            self.collector = real[0]
        else:
            self.collector = FanoutCollector(real)
        # Invalidate every memoized accounting program: they hold direct
        # references into the previous collector's stacks.
        self._acc_epoch = getattr(self, "_acc_epoch", 0) + 1

    def _end_warmup(self) -> None:
        """Restart measurement with warm caches/TLBs/predictor state."""
        # The warmup-crossing cycle may sit in a pending batch; it belongs
        # to the warmup collectors, so flush before the swap.
        self._flush_batch()
        self._warmed = True
        self._measure_cycle0 = self.cycle
        self._measure_uops0 = self.committed_uops
        if self._accounting:
            self._build_collectors()

    # -- signature-batched accounting (event mode) --------------------------------

    def _flush_batch(self) -> None:
        """Deliver the pending run of identical cycles to the collector.

        For a single plain :class:`MultiStageCollector` the per-cycle
        accounting of one observation is (in the shipped pow2-width,
        zero-carry configurations) a fixed list of ``counter += amt * k``
        updates; that list is memoized on the retained buffer
        (``repeat_program``) so steady-state flushes skip the whole
        accountant call chain.  Any condition the program cannot cover —
        fan-out collectors, top-down attachment, non-pow2 widths, a
        non-zero width-normalizer carry — falls back to the generic
        ``observe_repeat`` chain, which is the semantic definition.
        """
        k = self._bat_k
        if k:
            self._bat_k = 0
            self._bat_sig = None
            buf = self._bat_cur
            prog = buf.delta
            if prog is None or buf.delta_epoch != self._acc_epoch:
                collector = self.collector
                prog = False
                if type(collector) is MultiStageCollector:
                    prog = collector.repeat_program(buf.obs)
                buf.delta = prog
                buf.delta_epoch = self._acc_epoch
            if prog is False:
                self.collector.observe_repeat(buf.obs, k)
                return
            entries, norms, flops_stack, flops_val = prog
            if (
                norms[0].carry == 0.0
                and norms[1].carry == 0.0
                and norms[2].carry == 0.0
            ):
                fk = float(k)
                for counters, comp, amt in entries:
                    counters[comp] = counters.get(comp, 0.0) + amt * fk
                if flops_stack is not None:
                    flops_stack.flops += flops_val * fk
            else:
                self.collector.observe_repeat(buf.obs, k)

    def _retain(
        self,
        sig: tuple,
        k: int,
        n_dispatch: int,
        n_dispatch_wrong: int,
        n_issue: int,
        n_issue_wrong: int,
        n_commit: int,
        flops_issued: float,
        n_vfp: int,
        non_fma_loss: float,
        masked: float,
        queue_empty: bool,
        window_full: bool,
        rob_empty: bool,
        rs_empty: bool,
        structural: bool,
        vfp_in_rs: bool,
        vu_non_vfp: bool,
        vfp_structural: bool,
        wp_active: bool,
        fe_reason: Component | None,
        head: InflightUop | None,
        producer: InflightUop | None,
        vfp_producer: InflightUop | None,
    ) -> None:
        """Flush the previous batch and start a new one for ``sig``.

        The blamed micro-ops are copied into the buffer's snapshots: the
        observation is not consumed until the batch flushes, by which time
        the live records may have issued, completed, or been recycled.

        A signature seen before reuses its cached buffer outright: every
        accountant-readable observation field is a function of the
        signature (the batching invariant — non-signature fields are
        provably unread for that signature), so the first population is
        valid for every recurrence.
        """
        self._flush_batch()
        cached = self._sig_cache.get(sig)
        if cached is not None:
            self._bat_cur = cached
            self._bat_sig = sig
            self._bat_k = k
            return
        if len(self._sig_cache) < _SIG_CACHE_CAP:
            buf = _ObsBuffer()
            self._sig_cache[sig] = buf
        else:
            # Overflow: recycle the private pair (never a cached buffer,
            # and never the one the pending batch still points at).
            buf = self._bat_private[0]
            if buf is self._bat_cur:
                buf = self._bat_private[1]
            buf.delta = None  # contents change: drop the memoized program
        self._bat_cur = buf
        obs = buf.obs
        obs.unscheduled = False
        obs.wrong_path_active = wp_active
        obs.fe_reason = fe_reason
        obs.n_dispatch = n_dispatch
        obs.n_dispatch_wrong = n_dispatch_wrong
        obs.uop_queue_empty = queue_empty
        obs.window_full = window_full
        obs.n_issue = n_issue
        obs.n_issue_wrong = n_issue_wrong
        obs.rs_empty = rs_empty
        obs.structural_stall = structural
        obs.n_commit = n_commit
        obs.rob_empty = rob_empty
        obs.flops_issued = flops_issued
        obs.n_vfp_issued = n_vfp
        obs.non_fma_loss_lanes = non_fma_loss
        obs.masked_lanes = masked
        obs.vfp_in_rs = vfp_in_rs
        obs.vu_used_by_non_vfp = vu_non_vfp
        obs.vfp_structural = vfp_structural
        if head is None:
            obs.rob_head = None
        else:
            snap = buf.head
            snap.is_load = head.is_load
            snap.dcache_miss = head.dcache_miss
            snap.issued = head.issued
            snap.done = head.done
            snap.multi_cycle = head.multi_cycle
            snap.block_id = head.block_id
            obs.rob_head = snap
        if producer is None:
            obs.first_nonready_producer = None
        else:
            snap = buf.producer
            snap.is_load = producer.is_load
            snap.dcache_miss = producer.dcache_miss
            snap.issued = producer.issued
            snap.done = producer.done
            snap.multi_cycle = producer.multi_cycle
            snap.block_id = producer.block_id
            obs.first_nonready_producer = snap
        if vfp_producer is None:
            obs.oldest_vfp_producer = None
        else:
            snap = buf.vfp
            snap.is_load = vfp_producer.is_load
            snap.dcache_miss = vfp_producer.dcache_miss
            snap.issued = vfp_producer.issued
            snap.done = vfp_producer.done
            snap.multi_cycle = vfp_producer.multi_cycle
            snap.block_id = vfp_producer.block_id
            obs.oldest_vfp_producer = snap
        self._bat_sig = sig
        self._bat_k = k

    # -- fused event-mode cycle ---------------------------------------------------

    def _step_event(self) -> None:
        """One cycle of the event-driven pipeline, stages fused inline.

        Semantically identical to :meth:`_step` with the event-mode issue
        select; the fusion removes per-stage call/observation overhead and
        enables signature batching: under ``_batch`` the observation
        object is only materialized when the accountant-visible signature
        changes, and runs of identical cycles collapse into one
        ``observe_repeat`` (bit-identical — observe_repeat itself is the
        proven-equivalent bulk form used by fast-forward).
        """
        cycle = self.cycle
        collector = self.collector
        batch = self._batch

        replay = self._replay
        if replay is not None:
            skipped = replay.on_cycle(cycle)
            if skipped:
                # The engine already advanced all state; it only could
                # not set ``cycle`` (the local is re-read next step).
                self.cycle = cycle + skipped
                return

        if self.unsched_remaining > 0:
            # Core descheduled: nothing moves; the cycle is Unsched.
            self.unsched_remaining -= 1
            if self.unsched_remaining == 0:
                self.frontend.sync_released()
            if collector is not None:
                if batch:
                    if self._bat_sig is _UNSCHED_SIG:
                        self._bat_k += 1
                    else:
                        self._flush_batch()
                        # Preallocated immutable Unsched buffer: nothing
                        # else is observable in a descheduled cycle.
                        self._bat_cur = self._unsched_buf
                        self._bat_sig = _UNSCHED_SIG
                        self._bat_k = 1
                    if self._replay_rec:
                        replay.note_cycle(
                            _UNSCHED_SIG, 1, self._bat_k > 1
                        )
                else:
                    obs = self._obs
                    obs.reset()
                    obs.unscheduled = True
                    collector.observe(obs)
            self.cycle = cycle + 1
            return

        if self._ff_eligible and self._rs_quiet and not self._rs_dirty:
            k = self._quiescent_cycles(cycle)
            if k > 0:
                self._ff_event(cycle, k)
                return

        frontend = self.frontend
        completions = self.completions
        spec_mode = self._spec_mode
        wb_free_append = self._pool._free.append

        # ---- writeback ----------------------------------------------------
        finishing = completions.pop(cycle, None)
        if finishing:
            self._rs_dirty = True
            ready_append = self._ready.append
            for uop in finishing:
                if uop.squashed:
                    # UopPool.release inlined (wrong-path writeback is
                    # the hot recycle path under heavy misprediction).
                    uop.producers.clear()
                    uop.consumers.clear()
                    uop.waiters = None
                    wb_free_append(uop)
                    continue
                uop.done = True
                consumers = uop.consumers
                if consumers:
                    for consumer in consumers:
                        if consumer.squashed:
                            continue
                        left = consumer.deps_left - 1
                        consumer.deps_left = left
                        if left == 0:
                            ready_append((consumer.seq, consumer))
                        consumer.producers.remove(uop)
                    consumers.clear()
                waiters = uop.waiters
                if waiters is not None:
                    uop.waiters = None
                    for wseq, load in waiters:
                        if load.seq == wseq and load.parked:
                            load.parked = False
                            self._parked -= 1
                            ready_append((wseq, load))
                if uop.mispredicted:
                    self._squash(uop)
                    frontend.redirect(cycle)
                    if spec_mode and collector is not None:
                        collector.on_squash(uop.block_id)

        # ---- commit -------------------------------------------------------
        rob = self.rob
        n_commit = 0
        if rob and rob[0].done:
            last_writer = self.last_writer
            pending_stores = self.pending_stores
            width = self._commit_width
            committed_uops = self.committed_uops
            while n_commit < width and rob and rob[0].done:
                uop = rob.popleft()
                committed_uops += 1
                n_commit += 1
                if uop.is_store:
                    self.sq_count -= 1
                    addr = uop.uop.addr
                    if pending_stores.get(addr) is uop:
                        del pending_stores[addr]
                        self._rs_dirty = True  # forwarding window closed
                stop = False
                if uop.last_of_instr:
                    self.committed_instrs += 1
                    instr = uop.instr
                    if uop.is_branch and spec_mode and collector is not None:
                        collector.on_block_commit(uop.block_id)
                    if instr is not None and instr.yield_cycles > 0:
                        if instr.barrier and self._barrier_hook is not None:
                            # Park until the last sibling core arrives;
                            # the engine's release converts the wait into
                            # unsched_remaining (a 1-core engine releases
                            # immediately, reducing to the else branch).
                            self.barrier_waiting = True
                            self._barrier_hook(self, instr)
                        else:
                            self.unsched_remaining = instr.yield_cycles
                        stop = True
                dst = uop.uop.dst
                if dst >= 0 and last_writer[dst] is uop:
                    last_writer[dst] = None
                # UopPool.release inlined (one call per committed uop).
                uop.producers.clear()
                uop.consumers.clear()
                uop.waiters = None
                wb_free_append(uop)
                if stop:
                    break
            self.committed_uops = committed_uops
        rob_empty = not rob
        head = rob[0] if rob else None

        # ---- issue --------------------------------------------------------
        if self._rs_quiet and not self._rs_dirty:
            # Nothing changed since a select that issued nothing: reuse it.
            (
                first_producer,
                structural,
                vfp_in_rs,
                oldest_vfp_producer,
                vfp_structural,
            ) = self._issue_obs_cache
            rs_empty = not self._has_correct_waiting
            n_issue = 0
            n_issue_wrong = 0
            flops_issued = 0.0
            n_vfp = 0
            non_fma_loss = 0.0
            masked = 0.0
            vu_non_vfp = False
        else:
            fu = self.fu
            machine_lanes = self._machine_lanes
            pending_stores = self.pending_stores
            # fu.begin_issue inlined (one call per active cycle): reset
            # the per-cycle slot counters, recomputing MUL availability
            # from the unpipelined busy times.
            free = fu._free
            free[:] = fu._free_template
            mul_free = 0
            for busy in fu._mul_busy_until:
                if busy <= cycle:
                    mul_free += 1
            free[1] = mul_free
            issue_free = fu._issue_width
            unpipelined = fu._unpipelined_flags
            n_issue = 0
            n_issue_wrong = 0
            structural = False
            vfp_structural = False
            vu_non_vfp = False
            flops_issued = 0.0
            n_vfp = 0
            non_fma_loss = 0.0
            masked = 0.0
            ready = self._ready
            if ready:
                ready.sort()
                keep: list[tuple[int, InflightUop]] = []
                keep_append = keep.append
                parked = self._parked
                rs_count = self._rs_count
                rs_correct = self._rs_correct
                rs_vfp = self._rs_vfp
                reserve_mul = fu._reserve_mul
                hierarchy = self.hierarchy
                latency_of = self._latency_of
                ceil = math.ceil
                for entry in ready:
                    seq, uop = entry
                    if uop.seq != seq or uop.squashed:
                        continue  # stale: issued+recycled, or squashed
                    static = uop.uop
                    is_load = uop.is_load
                    forward_store: InflightUop | None = None
                    if is_load and not uop.wrong_path:
                        store = pending_stores.get(static.addr)
                        if (
                            store is not None
                            and store.seq < seq
                            and not store.squashed
                        ):
                            if store.done:
                                forward_store = store
                            else:
                                # Address conflict: park on the older store.
                                structural = True
                                uop.parked = True
                                parked += 1
                                if store.waiters is None:
                                    store.waiters = [entry]
                                else:
                                    store.waiters.append(entry)
                                continue
                    pool = uop.pool
                    if issue_free > 0 and free[pool] > 0:
                        # _execute inlined (classification comes from the
                        # precomputed record slots, not the enum).
                        uop.issued = True
                        if is_load:
                            if uop.wrong_path:
                                complete = int(ceil(
                                    hierarchy.probe_latency(static.addr, cycle)
                                ))
                            elif forward_store is not None:
                                complete = cycle + 1
                            else:
                                result = hierarchy.dload(static.addr, cycle)
                                complete = int(ceil(result.complete))
                                uop.dcache_miss = not result.l1_hit
                            if complete <= cycle:
                                complete = cycle + 1
                        elif uop.is_store:
                            if not uop.wrong_path:
                                hierarchy.dstore(static.addr, cycle)
                            complete = cycle + 1
                        else:
                            uclass = static.uclass
                            latency = latency_of[uclass]
                            complete = cycle + latency
                            if complete <= cycle:
                                complete = cycle + 1
                            if pool == POOL_MUL and unpipelined[uclass]:
                                reserve_mul(cycle, latency)
                        bucket = completions.get(complete)
                        if bucket is None:
                            completions[complete] = [uop]
                        else:
                            bucket.append(uop)
                        issue_free -= 1
                        free[pool] -= 1
                        rs_count -= 1
                        if uop.wrong_path:
                            n_issue_wrong += 1
                        else:
                            n_issue += 1
                            rs_correct -= 1
                            ops = uop.ops
                            if ops:
                                rs_vfp -= 1
                                lanes = static.lanes
                                if lanes > machine_lanes:
                                    lanes = machine_lanes
                                flops_issued += ops * lanes
                                n_vfp += 1
                                non_fma_loss += (2 - ops) * lanes
                                masked += machine_lanes - lanes
                            elif uop.is_vu_nonvfp:
                                vu_non_vfp = True
                        continue  # issued: leaves the reservation stations
                    structural = True
                    if not uop.wrong_path and uop.ops:
                        vfp_structural = True
                    keep_append(entry)
                self._ready = keep
                self._parked = parked
                self._rs_count = rs_count
                self._rs_correct = rs_correct
                self._rs_vfp = rs_vfp
            if self._parked:
                structural = True
            fu._issue_free = issue_free
            correct_waiting = self._rs_correct
            vfp_in_rs = self._rs_vfp > 0
            if self._lazy_prod:
                first_producer = _PENDING
                oldest_vfp_producer = _PENDING
            else:
                first_nonready = self._oldest_live(self._nonready)
                oldest_vfp_nonready = self._oldest_live(self._nonready_vfp)
                first_producer = (
                    first_nonready.first_unfinished_producer()
                    if first_nonready is not None
                    else None
                )
                oldest_vfp_producer = (
                    oldest_vfp_nonready.first_unfinished_producer()
                    if oldest_vfp_nonready is not None
                    else None
                )
            self._rs_dirty = False
            self._rs_quiet = n_issue + n_issue_wrong == 0
            self._has_correct_waiting = correct_waiting > 0
            self._issue_obs_cache = (
                first_producer,
                structural,
                vfp_in_rs,
                oldest_vfp_producer,
                vfp_structural,
            )
            rs_empty = correct_waiting == 0

        # ---- dispatch -----------------------------------------------------
        queue = self.uop_queue
        n_dispatch = 0
        n_dispatch_wrong = 0
        queue_empty = False
        window_full = False
        last_block_id = -1
        width = self._dispatch_width
        rob_size = self._rob_size
        rs_size = self._rs_size
        sq_size = self._sq_size
        rs_count = self._rs_count
        rs_correct = self._rs_correct
        rs_vfp = self._rs_vfp
        sq_count = self.sq_count
        rob_len = len(rob)
        pending_stores = self.pending_stores
        last_writer = self.last_writer
        ready_append = self._ready.append
        nonready_append = self._nonready.append
        nonready_vfp_append = self._nonready_vfp.append
        rob_append = rob.append
        while n_dispatch + n_dispatch_wrong < width:
            if not queue:
                queue_empty = True
                break
            uop = queue[0]
            is_store = uop.is_store
            if (
                rob_len >= rob_size
                or rs_count >= rs_size
                or (is_store and sq_count >= sq_size)
            ):
                window_full = True
                break
            queue.popleft()
            # _rename inlined (records come from the pool with
            # deps_left == 0 and empty edge lists).
            static = uop.uop
            deps = 0
            for src in static.srcs:
                producer = last_writer[src]
                if (
                    producer is not None
                    and not producer.done
                    and not producer.squashed
                ):
                    uop.producers.append(producer)
                    producer.consumers.append(uop)
                    deps += 1
            uop.deps_left = deps
            dst = static.dst
            if dst >= 0:
                last_writer[dst] = uop
            rob_append(uop)
            rob_len += 1
            rs_count += 1
            entry = (uop.seq, uop)
            if deps == 0:
                ready_append(entry)
            wrong = uop.wrong_path
            if not wrong:
                rs_correct += 1
                ops = uop.ops
                if ops:
                    rs_vfp += 1
                if deps:
                    nonready_append(entry)
                    if ops:
                        nonready_vfp_append(entry)
            if is_store:
                sq_count += 1
                if not wrong and static.addr >= 0:
                    addr = static.addr
                    prev = pending_stores.get(addr)
                    if prev is not None and prev.waiters is not None:
                        # A younger store takes over the forwarding slot:
                        # wake loads parked on the old one (see _dispatch).
                        waiters = prev.waiters
                        prev.waiters = None
                        for wseq, load in waiters:
                            if load.seq == wseq and load.parked:
                                load.parked = False
                                self._parked -= 1
                                ready_append((wseq, load))
                    pending_stores[addr] = uop
            if wrong:
                n_dispatch_wrong += 1
            else:
                n_dispatch += 1
            last_block_id = uop.block_id
        self._rs_count = rs_count
        self._rs_correct = rs_correct
        self._rs_vfp = rs_vfp
        self.sq_count = sq_count
        if n_dispatch or n_dispatch_wrong:
            self._rs_dirty = True
            if spec_mode and collector is not None and last_block_id >= 0:
                collector.set_block(last_block_id)
        if window_full and head is None and rob:
            head = rob[0]

        # ---- frontend sample + fetch --------------------------------------
        if collector is not None:
            # Sample before fetch can clear a just-ended stall's reason.
            # Frontend.reason inlined (keep the branch order in sync with
            # it): two calls per cycle — the method plus the
            # trace_exhausted property — showed in profiles.
            wrong_path = frontend.wrong_path
            if frontend.waiting_sync is not None:
                fe_reason = Component.UNSCHED
            elif cycle < frontend._stall_until:
                fe_reason = frontend._stall_reason
            elif wrong_path:
                fe_reason = Component.BPRED
            elif (
                frontend._idx >= frontend._count
                and frontend._decoded_idx >= frontend._decoded_len
            ):
                fe_reason = None
            else:
                pending = frontend._pending_instr
                if pending is not None and pending.microcoded:
                    fe_reason = Component.MICROCODE
                else:
                    fe_reason = frontend._last_reason
            wp_active = wrong_path or fe_reason is Component.BPRED
        room = self._uq_size - len(queue)
        if room > 0:
            frontend.deliver(cycle, room, queue)

        # ---- accounting ---------------------------------------------------
        if collector is not None:
            if batch:
                # The blamed-uop sub-signatures cover only what EXACT-mode
                # accountants can read (block_id feeds the speculative
                # counter file, which is None here).  ``False`` marks a
                # field that is provably unread this cycle — the stall
                # branch that would consult it cannot be reached — so
                # cycles may batch across different (unread) micro-ops.
                # Readability is a function of sig-covered fields, so
                # every cycle in a batch agrees with the retained one.
                acc_w = self._acc_width
                if (
                    n_commit >= acc_w
                    and not (
                        window_full
                        and (n_dispatch < acc_w or n_issue < acc_w)
                    )
                ):
                    head_sig: object = False  # f >= 1.0 in every reader
                elif head is None:
                    head_sig = None
                else:
                    head_sig = (
                        head.done, head.is_load, head.dcache_miss,
                        head.issued, head.multi_cycle,
                    )
                # Producer pruning: the issue accountant never reaches
                # prod() when issue is at width, the RS is empty, or the
                # stall is structural; a top-down accountant still reads
                # the producer under structural (its backend split only
                # needs rs non-empty and issue under width), so with one
                # attached only the first two clauses prune.
                if n_issue >= acc_w or rs_empty or (
                    structural and not self._sig_topdown
                ):
                    prod_sig: object = False  # no attached reader reaches it
                    first_producer = None
                else:
                    if first_producer is _PENDING:
                        cache = self._resolve_issue_obs()
                        first_producer = cache[0]
                        oldest_vfp_producer = cache[3]
                    if first_producer is None:
                        prod_sig = None
                    else:
                        prod_sig = (
                            first_producer.is_load,
                            first_producer.dcache_miss,
                            first_producer.issued,
                            first_producer.multi_cycle,
                        )
                if not vfp_in_rs or vu_non_vfp or n_vfp >= self._vec_units:
                    vfp_sig: object = False  # slot loss never reaches it
                    oldest_vfp_producer = None
                else:
                    if oldest_vfp_producer is _PENDING:
                        oldest_vfp_producer = self._resolve_issue_obs()[3]
                    vfp_sig = (
                        None if oldest_vfp_producer is None
                        else oldest_vfp_producer.is_load
                    )
                sig = (
                    n_dispatch, n_issue, n_commit, flops_issued, n_vfp,
                    non_fma_loss, masked, queue_empty, window_full,
                    rob_empty, rs_empty, structural, vfp_in_rs, vu_non_vfp,
                    wp_active, fe_reason, head_sig, prod_sig, vfp_sig,
                    # Top-down reads the wrong-path dispatch count every
                    # cycle; constant otherwise, so the tuple shape (and
                    # the no-top-down batching) is unchanged.
                    n_dispatch_wrong if self._sig_topdown else 0,
                )
                if sig == self._bat_sig:
                    self._bat_k += 1
                    if self._replay_rec:
                        self._replay.note_cycle(sig, 1, True)
                else:
                    self._retain(
                        sig, 1, n_dispatch, n_dispatch_wrong, n_issue,
                        n_issue_wrong, n_commit, flops_issued, n_vfp,
                        non_fma_loss, masked, queue_empty, window_full,
                        rob_empty, rs_empty, structural, vfp_in_rs,
                        vu_non_vfp, vfp_structural, wp_active, fe_reason,
                        head, first_producer, oldest_vfp_producer,
                    )
                    if self._replay_rec:
                        self._replay.note_cycle(sig, 1, False)
            else:
                obs = self._obs
                obs.reset()
                obs.wrong_path_active = wp_active
                obs.fe_reason = fe_reason
                obs.n_dispatch = n_dispatch
                obs.n_dispatch_wrong = n_dispatch_wrong
                obs.uop_queue_empty = queue_empty
                obs.window_full = window_full
                obs.n_issue = n_issue
                obs.n_issue_wrong = n_issue_wrong
                obs.rs_empty = rs_empty
                obs.structural_stall = structural
                obs.first_nonready_producer = first_producer
                obs.n_commit = n_commit
                obs.rob_empty = rob_empty
                obs.rob_head = head
                obs.flops_issued = flops_issued
                obs.n_vfp_issued = n_vfp
                obs.non_fma_loss_lanes = non_fma_loss
                obs.masked_lanes = masked
                obs.vfp_in_rs = vfp_in_rs
                obs.vu_used_by_non_vfp = vu_non_vfp
                obs.vfp_structural = vfp_structural
                obs.oldest_vfp_producer = oldest_vfp_producer
                collector.observe(obs)
        self.cycle = cycle + 1
        if (
            not self._warmed
            and self.committed_instrs >= self.warmup_instructions
        ):
            self._end_warmup()

    def _ff_event(self, cycle: int, k: int) -> None:
        """Event-mode fast-forward: jump ``k`` quiescent cycles.

        Like :meth:`_fast_forward_by`, but batch-aware: when the window's
        observation signature matches the pending batch, the ``k`` cycles
        merge into it instead of forcing a flush on either side.
        """
        frontend = self.frontend
        room = self._uq_size - len(self.uop_queue)
        frontend.note_skipped_cycles(cycle, k, room > 0)
        if self._fast_forward:
            self.ff_windows += 1
            self.ff_cycles_skipped += k
        # else: stall-streak elision — the jump is identical but is not
        # reported as fast-forward (fast_forward=False keeps telemetry 0).
        collector = self.collector
        if collector is not None:
            rob = self.rob
            head = rob[0] if rob else None
            rob_empty = not rob
            (
                first_producer,
                structural,
                vfp_in_rs,
                oldest_vfp_producer,
                vfp_structural,
            ) = self._issue_obs_cache
            rs_empty = not self._has_correct_waiting
            queue_empty = not self.uop_queue
            window_full = not queue_empty
            fe_reason = frontend.reason(cycle)
            wp_active = (
                frontend.wrong_path or fe_reason is Component.BPRED
            )
            if self._batch:
                # Same conditional sub-signatures as _step_event; with all
                # counts zero, only the branch conditions can exclude.
                if head is None:
                    head_sig: object = None
                else:
                    head_sig = (
                        head.done, head.is_load, head.dcache_miss,
                        head.issued, head.multi_cycle,
                    )
                if rs_empty or structural:
                    prod_sig: object = False
                    first_producer = None
                else:
                    if first_producer is _PENDING:
                        cache = self._resolve_issue_obs()
                        first_producer = cache[0]
                        oldest_vfp_producer = cache[3]
                    if first_producer is None:
                        prod_sig = None
                    else:
                        prod_sig = (
                            first_producer.is_load,
                            first_producer.dcache_miss,
                            first_producer.issued,
                            first_producer.multi_cycle,
                        )
                if not vfp_in_rs:
                    vfp_sig: object = False
                    oldest_vfp_producer = None
                else:
                    if oldest_vfp_producer is _PENDING:
                        oldest_vfp_producer = self._resolve_issue_obs()[3]
                    vfp_sig = (
                        None if oldest_vfp_producer is None
                        else oldest_vfp_producer.is_load
                    )
                sig = (
                    0, 0, 0, 0.0, 0, 0.0, 0.0, queue_empty, window_full,
                    rob_empty, rs_empty, structural, vfp_in_rs, False,
                    wp_active, fe_reason, head_sig, prod_sig, vfp_sig,
                )
                if sig == self._bat_sig:
                    self._bat_k += k
                    if self._replay_rec:
                        self._replay.note_cycle(sig, k, True)
                else:
                    self._retain(
                        sig, k, 0, 0, 0, 0, 0, 0.0, 0, 0.0, 0.0,
                        queue_empty, window_full, rob_empty, rs_empty,
                        structural, vfp_in_rs, False, vfp_structural,
                        wp_active, fe_reason, head, first_producer,
                        oldest_vfp_producer,
                    )
                    if self._replay_rec:
                        self._replay.note_cycle(sig, k, False)
            else:
                obs = self._obs
                obs.reset()
                obs.rob_empty = rob_empty
                obs.rob_head = head
                obs.first_nonready_producer = first_producer
                obs.structural_stall = structural
                obs.vfp_in_rs = vfp_in_rs
                obs.oldest_vfp_producer = oldest_vfp_producer
                obs.vfp_structural = vfp_structural
                obs.rs_empty = rs_empty
                obs.uop_queue_empty = queue_empty
                obs.window_full = window_full
                obs.fe_reason = fe_reason
                obs.wrong_path_active = wp_active
                collector.observe_repeat(obs, k)
        self.cycle = cycle + k

    # -- quiescent-cycle fast-forward ---------------------------------------------

    def _quiescent_cycles(self, cycle: int) -> int:
        """Length of the provably-stalled window starting at ``cycle``.

        Returns ``k > 0`` only when every stage does nothing for the next
        ``k`` cycles and the per-cycle observation is constant over them:

        * commit blocked (ROB empty or head not done),
        * dispatch blocked (uop queue empty, or its head stopped by a
          full ROB / RS / store queue),
        * issue scan quiet and still valid (checked by the caller via
          ``_rs_quiet``/``_rs_dirty``),
        * no writeback scheduled before ``cycle + k``,
        * frontend inert: stalled past the window, permanently idle, or
          frozen behind a full uop queue.

        ``k`` is bounded by the earliest future event — a completion or
        the frontend stall's expiry — so the window never crosses a cycle
        where anything could change.  In-flight memory fills
        (:meth:`MemoryHierarchy.next_event`) are deliberately *not* part
        of the bound: access timing is computed at request time and no
        memory query happens inside a quiescent window, so a completing
        fill cannot change anything the window observes; demand-miss
        fills coincide with the load's completion event anyway, and
        prefetch fills would only split windows for no reason.  Commit is
        the only place warmup can end, and quiescent windows commit
        nothing, so a window can never cross the warmup boundary.
        """
        rob = self.rob
        if rob and rob[0].done:
            return 0  # commit would retire (and could end warmup / sync)
        queue = self.uop_queue
        if queue:
            head = queue[0]
            if not (
                len(rob) >= self._rob_size
                or self._rs_count >= self._rs_size
                or (head.is_store and self.sq_count >= self._sq_size)
            ):
                return 0  # dispatch would make progress
        completions = self.completions
        wake = min(completions) if completions else math.inf
        if wake <= cycle:
            return 0  # a writeback happens this very cycle
        fe_next = self.frontend.next_event(cycle)
        if fe_next <= cycle:
            room = self._uq_size - len(queue)
            if room > 0:
                return 0  # frontend would deliver into the queue
            # Queue full: _fetch skips deliver() entirely, freezing the
            # frontend (and its reason()) until the core drains the queue.
            fe_next = math.inf
        if fe_next < wake:
            wake = fe_next
        if wake == math.inf:
            return 0  # termination/deadlock: let the normal loop decide
        return int(wake) - cycle

    def _fast_forward_by(
        self, cycle: int, k: int, obs: CycleObservation | None
    ) -> None:
        """Jump ``k`` quiescent cycles in one step, bulk-accounting them."""
        frontend = self.frontend
        room = self.config.uop_queue_size - len(self.uop_queue)
        frontend.note_skipped_cycles(cycle, k, room > 0)
        self.ff_windows += 1
        self.ff_cycles_skipped += k
        if obs is not None:
            rob = self.rob
            obs.rob_empty = not rob
            obs.rob_head = rob[0] if rob else None
            (
                obs.first_nonready_producer,
                obs.structural_stall,
                obs.vfp_in_rs,
                obs.oldest_vfp_producer,
                obs.vfp_structural,
            ) = self._resolve_issue_obs()
            obs.rs_empty = not self._has_correct_waiting
            queue_empty = not self.uop_queue
            obs.uop_queue_empty = queue_empty
            obs.window_full = not queue_empty
            fe_reason = frontend.reason(cycle)
            obs.fe_reason = fe_reason
            obs.wrong_path_active = (
                frontend.wrong_path or fe_reason is Component.BPRED
            )
            self.collector.observe_repeat(obs, k)
        self.cycle = cycle + k

    # -- stages -------------------------------------------------------------------

    def _writeback(self, cycle: int) -> None:
        finishing = self.completions.pop(cycle, None)
        if not finishing:
            return
        self._rs_dirty = True
        event = self._event
        release = self._pool.release
        for uop in finishing:
            if uop.squashed:
                # Squash-released work whose completion was still pending;
                # its record becomes recyclable only now.
                release(uop)
                continue
            uop.done = True
            consumers = uop.consumers
            if consumers:
                for consumer in consumers:
                    if consumer.squashed:
                        continue
                    left = consumer.deps_left - 1
                    consumer.deps_left = left
                    if left == 0 and event:
                        self._ready.append((consumer.seq, consumer))
                    # Sever the back edge so recycling this record cannot
                    # leave a dangling producer reference.  Equivalent for
                    # first_unfinished_producer(): done producers were
                    # skipped anyway.
                    consumer.producers.remove(uop)
                consumers.clear()
            waiters = uop.waiters
            if waiters is not None:
                # Store completed: loads parked on the address conflict
                # become schedulable (they re-check forwarding at select).
                uop.waiters = None
                for seq, load in waiters:
                    if load.seq == seq and load.parked:
                        load.parked = False
                        self._parked -= 1
                        self._ready.append((seq, load))
            if uop.mispredicted:
                self._squash(uop)
                self.frontend.redirect(cycle)
                if self._spec_mode and self.collector is not None:
                    self.collector.on_squash(uop.block_id)

    def _commit(self, cycle: int, obs: CycleObservation | None) -> None:
        rob = self.rob
        last_writer = self.last_writer
        release = self._pool.release
        width = self.config.commit_width
        n = 0
        while n < width and rob and rob[0].done:
            uop = rob.popleft()
            self.committed_uops += 1
            n += 1
            if uop.is_store:
                self.sq_count -= 1
                addr = uop.uop.addr
                if self.pending_stores.get(addr) is uop:
                    del self.pending_stores[addr]
                    self._rs_dirty = True  # forwarding window closed
            stop = False
            if uop.last_of_instr:
                self.committed_instrs += 1
                instr = uop.instr
                if (
                    uop.is_branch
                    and self._spec_mode
                    and self.collector is not None
                ):
                    self.collector.on_block_commit(uop.block_id)
                if instr is not None and instr.yield_cycles > 0:
                    # Sync point: the core deschedules starting next cycle.
                    if instr.barrier and self._barrier_hook is not None:
                        self.barrier_waiting = True
                        self._barrier_hook(self, instr)
                    else:
                        self.unsched_remaining = instr.yield_cycles
                    stop = True
            # Retirement severs the rename-table entry (rename skips done
            # producers, so dropping it is semantically a no-op) and
            # recycles the record.
            dst = uop.uop.dst
            if dst >= 0 and last_writer[dst] is uop:
                last_writer[dst] = None
            release(uop)
            if stop:
                break
        if obs is not None:
            obs.n_commit = n
            obs.rob_empty = not rob
            obs.rob_head = rob[0] if rob else None

    def _issue_scan(self, cycle: int, obs: CycleObservation | None) -> None:
        """Legacy issue stage: full reservation-station scan.

        Kept behind ``legacy_issue_scan=True`` / REPRO_LEGACY_ISSUE_SCAN=1
        as the differential reference for :meth:`_issue_select`.
        """
        # Note: unpipelined-unit releases coincide with their micro-op's
        # completion, so the writeback dirty flag already covers them.
        if self._rs_quiet and not self._rs_dirty:
            # Nothing changed since a scan that issued nothing: the result
            # is identical.  Fill the observation from the cached scan.
            if obs is not None:
                (
                    obs.first_nonready_producer,
                    obs.structural_stall,
                    obs.vfp_in_rs,
                    obs.oldest_vfp_producer,
                    obs.vfp_structural,
                ) = self._issue_obs_cache
                obs.rs_empty = not self._has_correct_waiting
            return
        fu = self.fu
        config = self.config
        machine_lanes = config.vector_lanes
        pending_stores = self.pending_stores
        # FU availability inlined from FunctionalUnitPool.can_issue/take
        # (two method calls per scanned reservation-station entry).
        free, issue_free, unpipelined = fu.begin_issue(cycle)

        n_issue = 0
        n_issue_wrong = 0
        structural = False
        correct_waiting = 0
        first_nonready: InflightUop | None = None
        vfp_in_rs = False
        vfp_structural = False
        vu_non_vfp = False
        oldest_vfp_nonready: InflightUop | None = None
        flops_issued = 0.0
        n_vfp = 0
        non_fma_loss = 0.0
        masked = 0.0

        new_rs: list[InflightUop] = []
        new_rs_append = new_rs.append
        for uop in self.rs:
            if uop.squashed:
                continue
            static = uop.uop
            if uop.deps_left == 0:
                forward_store: InflightUop | None = None
                conflict = False
                if uop.is_load and not uop.wrong_path:
                    store = pending_stores.get(static.addr)
                    if (
                        store is not None
                        and store.seq < uop.seq
                        and not store.squashed
                    ):
                        if store.done:
                            forward_store = store
                        else:
                            # Address conflict: the load must wait for the
                            # older store (structural 'Other' stall).
                            conflict = True
                if conflict:
                    structural = True
                    correct_waiting += 1
                    new_rs_append(uop)
                    continue
                pool = uop.pool
                if issue_free > 0 and free[pool] > 0:
                    latency = self._execute(uop, cycle, forward_store)
                    issue_free -= 1
                    free[pool] -= 1
                    if pool == POOL_MUL and unpipelined[static.uclass]:
                        fu._reserve_mul(cycle, latency)
                    if uop.wrong_path:
                        n_issue_wrong += 1
                    else:
                        n_issue += 1
                        ops = uop.ops
                        if ops:
                            lanes = static.lanes
                            if lanes > machine_lanes:
                                lanes = machine_lanes
                            flops_issued += ops * lanes
                            n_vfp += 1
                            non_fma_loss += (2 - ops) * lanes
                            masked += machine_lanes - lanes
                        elif uop.is_vu_nonvfp:
                            vu_non_vfp = True
                    continue  # issued: leaves the reservation stations
                structural = True
                if not uop.wrong_path:
                    correct_waiting += 1
                    if uop.ops:
                        vfp_in_rs = True
                        vfp_structural = True
            else:
                if not uop.wrong_path:
                    correct_waiting += 1
                    if first_nonready is None:
                        first_nonready = uop
                    if uop.ops:
                        vfp_in_rs = True
                        if oldest_vfp_nonready is None:
                            oldest_vfp_nonready = uop
            new_rs_append(uop)
        self.rs = new_rs
        self._rs_count = len(new_rs)
        fu._issue_free = issue_free

        first_producer = (
            first_nonready.first_unfinished_producer()
            if first_nonready is not None
            else None
        )
        oldest_vfp_producer = (
            oldest_vfp_nonready.first_unfinished_producer()
            if oldest_vfp_nonready is not None
            else None
        )
        self._rs_dirty = False
        self._rs_quiet = n_issue + n_issue_wrong == 0
        self._has_correct_waiting = correct_waiting > 0
        self._issue_obs_cache = (
            first_producer,
            structural,
            vfp_in_rs,
            oldest_vfp_producer,
            vfp_structural,
        )
        if obs is not None:
            obs.n_issue = n_issue
            obs.n_issue_wrong = n_issue_wrong
            obs.rs_empty = correct_waiting == 0
            obs.structural_stall = structural
            obs.first_nonready_producer = first_producer
            obs.flops_issued = flops_issued
            obs.n_vfp_issued = n_vfp
            obs.non_fma_loss_lanes = non_fma_loss
            obs.masked_lanes = masked
            obs.vfp_in_rs = vfp_in_rs
            obs.vu_used_by_non_vfp = vu_non_vfp
            obs.vfp_structural = vfp_structural
            obs.oldest_vfp_producer = oldest_vfp_producer

    def _resolve_issue_obs(self) -> tuple:
        """Resolve deferred producer fields in ``_issue_obs_cache``.

        Between the select that deferred them and this call, no event
        that could change the answer has occurred (any such event sets
        ``_rs_dirty`` and forces a fresh select), so the resolution is
        identical to eager computation at select time.
        """
        cache = self._issue_obs_cache
        if cache[0] is _PENDING:
            # _oldest_live inlined for both queues (two calls per
            # resolution showed in stall-heavy profiles).
            first_producer = None
            entries = self._nonready
            while entries:
                seq, uop = entries[0]
                if uop.seq == seq and not uop.squashed and uop.deps_left > 0:
                    first_producer = uop.first_unfinished_producer()
                    break
                entries.popleft()
            vfp_producer = None
            entries = self._nonready_vfp
            while entries:
                seq, uop = entries[0]
                if uop.seq == seq and not uop.squashed and uop.deps_left > 0:
                    vfp_producer = uop.first_unfinished_producer()
                    break
                entries.popleft()
            cache = (
                first_producer,
                cache[1],
                cache[2],
                vfp_producer,
                cache[4],
            )
            self._issue_obs_cache = cache
        return cache

    @staticmethod
    def _oldest_live(
        entries: deque[tuple[int, InflightUop]]
    ) -> InflightUop | None:
        """Front of a seq-ordered queue, pruning permanently-dead entries.

        An entry is dead once its record was recycled (snapshotted seq no
        longer matches), its micro-op was squashed, or it became ready
        (``deps_left`` never increases) — all irreversible for that
        dynamic instance, so popped fronts never need to come back.
        """
        while entries:
            seq, uop = entries[0]
            if uop.seq == seq and not uop.squashed and uop.deps_left > 0:
                return uop
            entries.popleft()
        return None

    def _issue_select(
        self, cycle: int, obs: CycleObservation | None
    ) -> None:
        """Event-driven issue stage: walk only ready entries.

        Wakeups (writeback, store-conflict resolution) and dispatch push
        candidates into ``_ready``; select sorts it by seq (cheap — the
        list is nearly sorted) and walks it greedily, which reproduces the
        legacy scan's issue decisions and, crucially, its floating-point
        accumulation order: the issued micro-ops form the same
        seq-ordered sequence the full scan issued.  Observation fields
        for non-ready work come from :meth:`_oldest_live` over the
        incrementally-maintained ``_nonready`` queues instead of a scan.
        """
        if self._rs_quiet and not self._rs_dirty:
            # Nothing changed since a select that issued nothing: the
            # result is identical.  Fill the observation from the cache.
            if obs is not None:
                (
                    obs.first_nonready_producer,
                    obs.structural_stall,
                    obs.vfp_in_rs,
                    obs.oldest_vfp_producer,
                    obs.vfp_structural,
                ) = self._resolve_issue_obs()
                obs.rs_empty = not self._has_correct_waiting
            return
        fu = self.fu
        machine_lanes = self.config.vector_lanes
        pending_stores = self.pending_stores
        free, issue_free, unpipelined = fu.begin_issue(cycle)

        n_issue = 0
        n_issue_wrong = 0
        structural = False
        vfp_structural = False
        vu_non_vfp = False
        flops_issued = 0.0
        n_vfp = 0
        non_fma_loss = 0.0
        masked = 0.0

        ready = self._ready
        if ready:
            ready.sort()
            keep: list[tuple[int, InflightUop]] = []
            keep_append = keep.append
            parked = self._parked
            rs_count = self._rs_count
            rs_correct = self._rs_correct
            rs_vfp = self._rs_vfp
            execute = self._execute
            reserve_mul = fu._reserve_mul
            for entry in ready:
                seq, uop = entry
                if uop.seq != seq or uop.squashed:
                    continue  # stale: issued+recycled, or squashed
                static = uop.uop
                forward_store: InflightUop | None = None
                if uop.is_load and not uop.wrong_path:
                    store = pending_stores.get(static.addr)
                    if (
                        store is not None
                        and store.seq < seq
                        and not store.squashed
                    ):
                        if store.done:
                            forward_store = store
                        else:
                            # Address conflict: park on the older store
                            # (structural 'Other' stall).  The store's
                            # writeback — or a younger store taking over
                            # the forwarding slot — re-queues the load.
                            structural = True
                            uop.parked = True
                            parked += 1
                            if store.waiters is None:
                                store.waiters = [entry]
                            else:
                                store.waiters.append(entry)
                            continue
                pool = uop.pool
                if issue_free > 0 and free[pool] > 0:
                    latency = execute(uop, cycle, forward_store)
                    issue_free -= 1
                    free[pool] -= 1
                    if pool == POOL_MUL and unpipelined[static.uclass]:
                        reserve_mul(cycle, latency)
                    rs_count -= 1
                    if uop.wrong_path:
                        n_issue_wrong += 1
                    else:
                        n_issue += 1
                        rs_correct -= 1
                        ops = uop.ops
                        if ops:
                            rs_vfp -= 1
                            lanes = static.lanes
                            if lanes > machine_lanes:
                                lanes = machine_lanes
                            flops_issued += ops * lanes
                            n_vfp += 1
                            non_fma_loss += (2 - ops) * lanes
                            masked += machine_lanes - lanes
                        elif uop.is_vu_nonvfp:
                            vu_non_vfp = True
                    continue  # issued: leaves the reservation stations
                structural = True
                if not uop.wrong_path and uop.ops:
                    vfp_structural = True
                keep_append(entry)
            self._ready = keep
            self._parked = parked
            self._rs_count = rs_count
            self._rs_correct = rs_correct
            self._rs_vfp = rs_vfp
        if self._parked:
            # Parked loads are ready-but-blocked entries the legacy scan
            # saw as a persistent conflict: structural every cycle.
            structural = True
        fu._issue_free = issue_free

        correct_waiting = self._rs_correct
        vfp_in_rs = self._rs_vfp > 0
        first_nonready = self._oldest_live(self._nonready)
        oldest_vfp_nonready = self._oldest_live(self._nonready_vfp)
        first_producer = (
            first_nonready.first_unfinished_producer()
            if first_nonready is not None
            else None
        )
        oldest_vfp_producer = (
            oldest_vfp_nonready.first_unfinished_producer()
            if oldest_vfp_nonready is not None
            else None
        )
        self._rs_dirty = False
        self._rs_quiet = n_issue + n_issue_wrong == 0
        self._has_correct_waiting = correct_waiting > 0
        self._issue_obs_cache = (
            first_producer,
            structural,
            vfp_in_rs,
            oldest_vfp_producer,
            vfp_structural,
        )
        if obs is not None:
            obs.n_issue = n_issue
            obs.n_issue_wrong = n_issue_wrong
            obs.rs_empty = correct_waiting == 0
            obs.structural_stall = structural
            obs.first_nonready_producer = first_producer
            obs.flops_issued = flops_issued
            obs.n_vfp_issued = n_vfp
            obs.non_fma_loss_lanes = non_fma_loss
            obs.masked_lanes = masked
            obs.vfp_in_rs = vfp_in_rs
            obs.vu_used_by_non_vfp = vu_non_vfp
            obs.vfp_structural = vfp_structural
            obs.oldest_vfp_producer = oldest_vfp_producer

    def _execute(
        self,
        uop: InflightUop,
        cycle: int,
        forward_store: InflightUop | None,
    ) -> int:
        """Start execution; returns the FU occupancy latency."""
        static = uop.uop
        uclass = static.uclass
        uop.issued = True
        if uclass is UopClass.LOAD:
            if uop.wrong_path:
                complete = int(
                    math.ceil(self.hierarchy.probe_latency(static.addr, cycle))
                )
            elif forward_store is not None:
                # Store-to-load forwarding out of the store queue.
                complete = cycle + 1
            else:
                result = self.hierarchy.dload(static.addr, cycle)
                complete = int(math.ceil(result.complete))
                uop.dcache_miss = not result.l1_hit
            latency = 1
        elif uclass is UopClass.STORE:
            if not uop.wrong_path:
                # Stores drain through the store buffer; the access updates
                # cache state and bandwidth but does not stall the pipe.
                self.hierarchy.dstore(static.addr, cycle)
            complete = cycle + 1
            latency = 1
        else:
            latency = self._latency_of[uclass]
            complete = cycle + latency
        if complete <= cycle:
            complete = cycle + 1
        bucket = self.completions.get(complete)
        if bucket is None:
            self.completions[complete] = [uop]
        else:
            bucket.append(uop)
        return latency

    def _dispatch(self, cycle: int, obs: CycleObservation | None) -> None:
        config = self.config
        queue = self.uop_queue
        rob = self.rob
        width = config.dispatch_width
        rob_size = config.rob_size
        rs_size = config.rs_size
        sq_size = config.store_queue_size
        event = self._event
        rs_append = self.rs.append
        ready_append = self._ready.append
        nonready_append = self._nonready.append
        nonready_vfp_append = self._nonready_vfp.append
        pending_stores = self.pending_stores
        n = 0
        n_wrong = 0
        queue_empty = False
        window_full = False
        last_block_id = -1
        rename = self._rename
        rob_append = rob.append
        while n + n_wrong < width:
            if not queue:
                queue_empty = True
                break
            uop = queue[0]
            if (
                len(rob) >= rob_size
                or self._rs_count >= rs_size
                or (uop.is_store and self.sq_count >= sq_size)
            ):
                window_full = True
                break
            queue.popleft()
            rename(uop)
            rob_append(uop)
            self._rs_count += 1
            if event:
                entry = (uop.seq, uop)
                if uop.deps_left == 0:
                    ready_append(entry)
                if not uop.wrong_path:
                    self._rs_correct += 1
                    ops = uop.ops
                    if ops:
                        self._rs_vfp += 1
                    if uop.deps_left:
                        nonready_append(entry)
                        if ops:
                            nonready_vfp_append(entry)
            else:
                rs_append(uop)
            if uop.is_store:
                self.sq_count += 1
                if not uop.wrong_path and uop.uop.addr >= 0:
                    addr = uop.uop.addr
                    prev = pending_stores.get(addr)
                    if prev is not None and prev.waiters is not None:
                        # A younger store takes over the forwarding slot:
                        # loads parked on the old store no longer conflict
                        # under the scheduler's older-store test (the new
                        # store is younger than they are) — wake them so
                        # they re-check at select, exactly when the legacy
                        # scan's per-cycle conflict test would evaporate.
                        waiters = prev.waiters
                        prev.waiters = None
                        for wseq, load in waiters:
                            if load.seq == wseq and load.parked:
                                load.parked = False
                                self._parked -= 1
                                ready_append((wseq, load))
                    pending_stores[addr] = uop
            if uop.wrong_path:
                n_wrong += 1
            else:
                n += 1
            last_block_id = uop.block_id
        if n or n_wrong:
            self._rs_dirty = True
            if (
                self._spec_mode
                and self.collector is not None
                and last_block_id >= 0
            ):
                # Accounting happens after dispatch within the cycle, so
                # only the last dispatched micro-op's block matters.
                self.collector.set_block(last_block_id)
        if obs is not None:
            obs.n_dispatch = n
            obs.n_dispatch_wrong = n_wrong
            obs.uop_queue_empty = queue_empty
            obs.window_full = window_full
            if window_full and obs.rob_head is None and rob:
                obs.rob_head = rob[0]

    def _rename(self, uop: InflightUop) -> None:
        last_writer = self.last_writer
        deps = 0
        for src in uop.uop.srcs:
            producer = last_writer[src]
            if (
                producer is not None
                and not producer.done
                and not producer.squashed
            ):
                uop.producers.append(producer)
                producer.consumers.append(uop)
                deps += 1
        # Assigned, not accumulated: pool-recycled records skip the
        # deps_left reset on acquire.
        uop.deps_left = deps
        dst = uop.uop.dst
        if dst >= 0:
            last_writer[dst] = uop

    def _fetch(self, cycle: int) -> None:
        room = self.config.uop_queue_size - len(self.uop_queue)
        if room <= 0:
            return
        self.frontend.deliver(cycle, room, self.uop_queue)

    def _squash(self, branch: InflightUop) -> None:
        """Flush everything younger than the mispredicted ``branch``.

        Squashed records are recycled immediately except issued-but-
        incomplete ones, which a completions bucket still references;
        those are released when their writeback cycle drains the bucket.
        Records still waiting in the reservation stations get their
        dependence edges severed first so a live producer never keeps a
        reference to a recycled consumer.
        """
        boundary = branch.seq
        rob = self.rob
        pending_stores = self.pending_stores
        event = self._event
        releasable: list[InflightUop] = []
        rob_pop = rob.pop
        releasable_append = releasable.append
        rs_count = self._rs_count
        parked = self._parked
        rs_correct = self._rs_correct
        rs_vfp = self._rs_vfp
        while rob and rob[-1].seq > boundary:
            uop = rob_pop()
            uop.squashed = True
            if uop.is_store:
                self.sq_count -= 1
                addr = uop.uop.addr
                if pending_stores.get(addr) is uop:
                    del pending_stores[addr]
            if uop.issued:
                if uop.done:
                    releasable_append(uop)
                # else: a completions bucket still holds it; the skip
                # branch in _writeback releases it.
            else:
                # Still in the reservation stations.
                rs_count -= 1
                if uop.parked:
                    uop.parked = False
                    parked -= 1
                if event and not uop.wrong_path:
                    rs_correct -= 1
                    if uop.ops:
                        rs_vfp -= 1
                for producer in uop.producers:
                    if not producer.done:
                        try:
                            producer.consumers.remove(uop)
                        except ValueError:  # pragma: no cover - defensive
                            pass
                releasable_append(uop)
        self._rs_count = rs_count
        self._parked = parked
        self._rs_correct = rs_correct
        self._rs_vfp = rs_vfp
        for uop in self.uop_queue:
            # Never renamed: no edges to sever.
            uop.squashed = True
            releasable.append(uop)
        self.uop_queue.clear()
        if event and self._memory_fast:
            # Drop issued-but-incomplete squashed records from their
            # completion buckets so their writeback cycles stop pinning
            # the machine active.  Such a writeback only recycles the
            # record (the squashed branch in _step_event), changing no
            # observable state, and the cycle's signature equals its
            # batch's, so eliding straight across it is bit-identical.
            # Wrong-path loads probe without MSHR entries, so nothing in
            # the memory hierarchy references these records either.
            completions = self.completions
            for when in [
                t for t, bucket in completions.items()
                if any(u.squashed for u in bucket)
            ]:
                live = [u for u in completions[when] if not u.squashed]
                for uop in completions[when]:
                    if uop.squashed:
                        releasable_append(uop)
                if live:
                    completions[when] = live
                else:
                    del completions[when]
        if not event:
            self.rs = [u for u in self.rs if not u.squashed]
            self._rs_count = len(self.rs)
        self._rs_dirty = True
        last_writer: list[InflightUop | None] = [None] * TOTAL_REGS
        for uop in rob:
            dst = uop.uop.dst
            if dst >= 0:
                last_writer[dst] = uop
        self.last_writer = last_writer
        # Recycle after every structure above has been rebuilt: the legacy
        # RS filter and the rename-table rebuild must still see the
        # squashed flags/records in place.  (UopPool.release inlined:
        # mispredict-heavy runs recycle most records through here.)
        free_append = self._pool._free.append
        for uop in releasable:
            uop.producers.clear()
            uop.consumers.clear()
            uop.waiters = None
            free_append(uop)


def simulate(
    program: Program,
    config: CoreConfig,
    *,
    mode: WrongPathMode = WrongPathMode.EXACT,
    accounting: bool = True,
    seed: int = 12345,
    warmup_instructions: int = 0,
    topdown: bool = False,
    fast_forward: bool | None = None,
    replay: bool | None = None,
    collectors: "tuple[CollectorSpec, ...] | list[CollectorSpec] | None" = None,
) -> SimResult:
    """Convenience wrapper: build a :class:`CoreSimulator` and run it."""
    return CoreSimulator(
        program,
        config,
        mode=mode,
        accounting=accounting,
        seed=seed,
        warmup_instructions=warmup_instructions,
        topdown=topdown,
        fast_forward=fast_forward,
        replay=replay,
        collectors=collectors,
    ).run()
