"""The out-of-order core simulator: the per-cycle loop wiring all stages.

Stage order within a cycle is writeback -> commit -> issue -> dispatch ->
fetch/decode, which gives the standard timing: a micro-op dispatched in
cycle t can issue at t+1, and a completing producer wakes consumers in time
for same-cycle issue (back-to-back single-cycle chains execute at one op per
cycle).  One :class:`CycleObservation` is filled per cycle and handed to the
accounting collector — the paper's measurement point.
"""

from __future__ import annotations

import math
import os
import time
from collections import deque

from repro.branch.predictors import make_predictor
from repro.config.cores import CoreConfig
from repro.core.components import Component
from repro.core.multistage import MultiStageCollector
from repro.core.observation import CycleObservation
from repro.core.wrongpath import WrongPathMode
from repro.isa.instructions import Program
from repro.isa.registers import TOTAL_REGS
from repro.isa.uops import UopClass
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.frontend import Frontend
from repro.pipeline.inflight import POOL_MUL, InflightUop
from repro.pipeline.resources import FunctionalUnitPool
from repro.pipeline.result import SimResult

#: Safety net against scheduling bugs: no realistic trace needs more cycles.
_MAX_CYCLES_PER_UOP = 400

#: Environment escape hatch for the quiescent-cycle fast-forward engine.
#: Set to "0" to force cycle-by-cycle simulation everywhere (including
#: pool worker processes, which inherit the environment).
ENV_FAST_FORWARD = "REPRO_FAST_FORWARD"


def fast_forward_default() -> bool:
    """Fast-forward setting from the environment (on unless ``"0"``)."""
    return os.environ.get(ENV_FAST_FORWARD, "1") != "0"


class CoreSimulator:
    """Simulates one program on one core configuration."""

    def __init__(
        self,
        program: Program,
        config: CoreConfig,
        *,
        mode: WrongPathMode = WrongPathMode.EXACT,
        accounting: bool = True,
        seed: int = 12345,
        warmup_instructions: int = 0,
        accounting_width: int | None = None,
        topdown: bool = False,
        fast_forward: bool | None = None,
    ) -> None:
        if config.memory is None:
            raise ValueError("core configuration needs a memory hierarchy")
        self.program = program
        self.config = config
        self.mode = mode
        self.hierarchy = MemoryHierarchy(
            config.memory,
            perfect_icache=config.perfect_icache,
            perfect_dcache=config.perfect_dcache,
        )
        self.predictor = make_predictor(
            config.predictor, config.predictor_bits, config.btb_entries
        )
        self.frontend = Frontend(
            program, config, self.hierarchy, self.predictor, seed=seed
        )
        #: W for the accounting algorithms; overridable to study the
        #: Sec. III-A width-normalization choice (see the width ablation).
        self._accounting_width = (
            config.accounting_width
            if accounting_width is None
            else accounting_width
        )
        self._topdown = topdown
        self.collector: MultiStageCollector | None = None
        if accounting:
            self.collector = MultiStageCollector(
                self._accounting_width,
                mode=mode,
                vector_units=config.vector_units,
                vector_lanes=config.vector_lanes,
                topdown=topdown,
            )
        self.fu = FunctionalUnitPool(config)
        #: uclass -> execution latency, precomputed (latency_of's
        #: membership test + dict lookup sat on the issue fast path).
        self._latency_of = tuple(
            config.latency_of(uclass) for uclass in UopClass
        )
        self.rob: deque[InflightUop] = deque()
        self.rs: list[InflightUop] = []
        self.uop_queue: deque[InflightUop] = deque()
        self.last_writer: list[InflightUop | None] = [None] * TOTAL_REGS
        self.pending_stores: dict[int, InflightUop] = {}
        self.completions: dict[int, list[InflightUop]] = {}
        self.sq_count = 0
        self.cycle = 0
        self.committed_uops = 0
        self.committed_instrs = 0
        self.unsched_remaining = 0
        self._spec_mode = mode is WrongPathMode.SPECULATIVE
        # Warmup emulates the paper's fast-forward: caches, TLBs and the
        # branch predictor train during the first ``warmup_instructions``
        # macro instructions, then the stack counters restart.
        self.warmup_instructions = warmup_instructions
        self._warmed = warmup_instructions == 0
        self._measure_cycle0 = 0
        self._measure_uops0 = 0
        self._accounting = accounting
        # Issue-scan quiescence: when a scan issues nothing and no event
        # (wakeup, dispatch, squash, store commit, unpipelined-unit release)
        # has changed scheduler state since, the scan result is identical —
        # reuse it instead of rescanning.  Pure optimization; bitwise
        # identical results.
        self._rs_dirty = True
        self._rs_quiet = False
        self._has_correct_waiting = False
        self._issue_obs_cache: tuple = (None, False, False, None, False)
        # Quiescent-cycle fast-forward: when every stage is provably
        # stalled until a known future event, jump there in one step and
        # bulk-account the identical cycles.  Bitwise identical results;
        # ``fast_forward=False`` (or REPRO_FAST_FORWARD=0) forces the
        # cycle-by-cycle loop.
        self._fast_forward = (
            fast_forward_default() if fast_forward is None else fast_forward
        )
        self.ff_windows = 0
        self.ff_cycles_skipped = 0
        # One observation object reused across cycles (per-cycle
        # allocation dominated short-stall profiles); accountants never
        # retain a reference.
        self._obs = CycleObservation() if accounting else None

    # -- top-level driver --------------------------------------------------------

    def run(self, max_cycles: int | None = None) -> SimResult:
        """Simulate to completion and return the result."""
        if max_cycles is None:
            max_cycles = _MAX_CYCLES_PER_UOP * max(
                self.program.uop_count, 1
            ) + 100_000
        start = time.perf_counter()
        step = self._step
        finished = self._finished
        while not finished():
            step()
            if self.cycle > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"(likely a scheduling deadlock) for {self.program.name}"
                )
        wall = time.perf_counter() - start
        measured_cycles = self.cycle - self._measure_cycle0
        measured_uops = self.committed_uops - self._measure_uops0
        report = None
        if self.collector is not None:
            report = self.collector.finalize(
                measured_cycles, measured_uops, name=self.program.name
            )
        return SimResult(
            name=self.program.name,
            config_name=self.config.name,
            cycles=measured_cycles,
            committed_uops=measured_uops,
            committed_instrs=self.committed_instrs,
            report=report,
            memory_stats=self.hierarchy.stats(),
            branch_lookups=self.predictor.lookups,
            branch_mispredicts=self.predictor.mispredicts,
            wrong_path_uops=self.frontend.delivered_wrong,
            wall_seconds=wall,
        )

    def _finished(self) -> bool:
        return (
            self.frontend.idle
            and not self.rob
            and not self.uop_queue
            and self.unsched_remaining == 0
        )

    # -- one cycle ---------------------------------------------------------------

    def _step(self) -> None:
        cycle = self.cycle
        collector = self.collector
        obs = self._obs if collector is not None else None
        if obs is not None:
            obs.reset()

        if self.unsched_remaining > 0:
            # Core descheduled: nothing moves; the cycle is Unsched.
            self.unsched_remaining -= 1
            if self.unsched_remaining == 0:
                self.frontend.sync_released()
            if obs is not None:
                obs.unscheduled = True
                collector.observe(obs)
            self.cycle = cycle + 1
            return

        if self._fast_forward and self._rs_quiet and not self._rs_dirty:
            k = self._quiescent_cycles(cycle)
            if k > 0:
                self._fast_forward_by(cycle, k, obs)
                return

        self._writeback(cycle)
        self._commit(cycle, obs)
        self._issue(cycle, obs)
        self._dispatch(cycle, obs)
        if obs is not None:
            # Sample the frontend condition before this cycle's fetch can
            # clear a just-ended stall's reason: the queue the dispatch
            # stage saw was shaped by that stall.
            obs.fe_reason = self.frontend.reason(cycle)
            obs.wrong_path_active = (
                self.frontend.wrong_path
                or obs.fe_reason is Component.BPRED
            )
        self._fetch(cycle)
        if obs is not None:
            collector.observe(obs)
        self.cycle = cycle + 1
        if not self._warmed and self.committed_instrs >= self.warmup_instructions:
            self._end_warmup()

    def _end_warmup(self) -> None:
        """Restart measurement with warm caches/TLBs/predictor state."""
        self._warmed = True
        self._measure_cycle0 = self.cycle
        self._measure_uops0 = self.committed_uops
        if self._accounting:
            self.collector = MultiStageCollector(
                self._accounting_width,
                mode=self.mode,
                vector_units=self.config.vector_units,
                vector_lanes=self.config.vector_lanes,
                topdown=self._topdown,
            )

    # -- quiescent-cycle fast-forward ---------------------------------------------

    def _quiescent_cycles(self, cycle: int) -> int:
        """Length of the provably-stalled window starting at ``cycle``.

        Returns ``k > 0`` only when every stage does nothing for the next
        ``k`` cycles and the per-cycle observation is constant over them:

        * commit blocked (ROB empty or head not done),
        * dispatch blocked (uop queue empty, or its head stopped by a
          full ROB / RS / store queue),
        * issue scan quiet and still valid (checked by the caller via
          ``_rs_quiet``/``_rs_dirty``),
        * no writeback scheduled before ``cycle + k``,
        * frontend inert: stalled past the window, permanently idle, or
          frozen behind a full uop queue.

        ``k`` is bounded by the earliest future event — a completion or
        the frontend stall's expiry — so the window never crosses a cycle
        where anything could change.  In-flight memory fills
        (:meth:`MemoryHierarchy.next_event`) are deliberately *not* part
        of the bound: access timing is computed at request time and no
        memory query happens inside a quiescent window, so a completing
        fill cannot change anything the window observes; demand-miss
        fills coincide with the load's completion event anyway, and
        prefetch fills would only split windows for no reason.  Commit is
        the only place warmup can end, and quiescent windows commit
        nothing, so a window can never cross the warmup boundary.
        """
        rob = self.rob
        if rob and rob[0].done:
            return 0  # commit would retire (and could end warmup / sync)
        queue = self.uop_queue
        config = self.config
        if queue:
            head = queue[0]
            if not (
                len(rob) >= config.rob_size
                or len(self.rs) >= config.rs_size
                or (head.is_store and self.sq_count >= config.store_queue_size)
            ):
                return 0  # dispatch would make progress
        completions = self.completions
        wake = min(completions) if completions else math.inf
        if wake <= cycle:
            return 0  # a writeback happens this very cycle
        fe_next = self.frontend.next_event(cycle)
        if fe_next <= cycle:
            room = config.uop_queue_size - len(queue)
            if room > 0:
                return 0  # frontend would deliver into the queue
            # Queue full: _fetch skips deliver() entirely, freezing the
            # frontend (and its reason()) until the core drains the queue.
            fe_next = math.inf
        if fe_next < wake:
            wake = fe_next
        if wake == math.inf:
            return 0  # termination/deadlock: let the normal loop decide
        return int(wake) - cycle

    def _fast_forward_by(
        self, cycle: int, k: int, obs: CycleObservation | None
    ) -> None:
        """Jump ``k`` quiescent cycles in one step, bulk-accounting them."""
        frontend = self.frontend
        room = self.config.uop_queue_size - len(self.uop_queue)
        frontend.note_skipped_cycles(cycle, k, room > 0)
        self.ff_windows += 1
        self.ff_cycles_skipped += k
        if obs is not None:
            rob = self.rob
            obs.rob_empty = not rob
            obs.rob_head = rob[0] if rob else None
            (
                obs.first_nonready_producer,
                obs.structural_stall,
                obs.vfp_in_rs,
                obs.oldest_vfp_producer,
                obs.vfp_structural,
            ) = self._issue_obs_cache
            obs.rs_empty = not self._has_correct_waiting
            queue_empty = not self.uop_queue
            obs.uop_queue_empty = queue_empty
            obs.window_full = not queue_empty
            fe_reason = frontend.reason(cycle)
            obs.fe_reason = fe_reason
            obs.wrong_path_active = (
                frontend.wrong_path or fe_reason is Component.BPRED
            )
            self.collector.observe_repeat(obs, k)
        self.cycle = cycle + k

    # -- stages -------------------------------------------------------------------

    def _writeback(self, cycle: int) -> None:
        finishing = self.completions.pop(cycle, None)
        if not finishing:
            return
        self._rs_dirty = True
        for uop in finishing:
            if uop.squashed:
                continue
            uop.done = True
            for consumer in uop.consumers:
                if not consumer.squashed:
                    consumer.deps_left -= 1
            if uop.mispredicted:
                self._squash(uop)
                self.frontend.redirect(cycle)
                if self._spec_mode and self.collector is not None:
                    self.collector.on_squash(uop.block_id)

    def _commit(self, cycle: int, obs: CycleObservation | None) -> None:
        rob = self.rob
        width = self.config.commit_width
        n = 0
        while n < width and rob and rob[0].done:
            uop = rob.popleft()
            self.committed_uops += 1
            n += 1
            if uop.is_store:
                self.sq_count -= 1
                addr = uop.uop.addr
                if self.pending_stores.get(addr) is uop:
                    del self.pending_stores[addr]
                    self._rs_dirty = True  # forwarding window closed
            if uop.last_of_instr:
                self.committed_instrs += 1
                instr = uop.instr
                if (
                    uop.is_branch
                    and self._spec_mode
                    and self.collector is not None
                ):
                    self.collector.on_block_commit(uop.block_id)
                if instr is not None and instr.yield_cycles > 0:
                    # Sync point: the core deschedules starting next cycle.
                    self.unsched_remaining = instr.yield_cycles
                    break
        if obs is not None:
            obs.n_commit = n
            obs.rob_empty = not rob
            obs.rob_head = rob[0] if rob else None

    def _issue(self, cycle: int, obs: CycleObservation | None) -> None:
        # Note: unpipelined-unit releases coincide with their micro-op's
        # completion, so the writeback dirty flag already covers them.
        if self._rs_quiet and not self._rs_dirty:
            # Nothing changed since a scan that issued nothing: the result
            # is identical.  Fill the observation from the cached scan.
            if obs is not None:
                (
                    obs.first_nonready_producer,
                    obs.structural_stall,
                    obs.vfp_in_rs,
                    obs.oldest_vfp_producer,
                    obs.vfp_structural,
                ) = self._issue_obs_cache
                obs.rs_empty = not self._has_correct_waiting
            return
        fu = self.fu
        fu.new_cycle(cycle)
        config = self.config
        machine_lanes = config.vector_lanes
        pending_stores = self.pending_stores
        # FU availability inlined from FunctionalUnitPool.can_issue/take
        # (two method calls per scanned reservation-station entry).
        free = fu._free
        issue_free = fu._issue_free
        unpipelined = fu._unpipelined_flags

        n_issue = 0
        n_issue_wrong = 0
        structural = False
        correct_waiting = 0
        first_nonready: InflightUop | None = None
        vfp_in_rs = False
        vfp_structural = False
        vu_non_vfp = False
        oldest_vfp_nonready: InflightUop | None = None
        flops_issued = 0.0
        n_vfp = 0
        non_fma_loss = 0.0
        masked = 0.0

        new_rs: list[InflightUop] = []
        new_rs_append = new_rs.append
        for uop in self.rs:
            if uop.squashed:
                continue
            static = uop.uop
            if uop.deps_left == 0:
                forward_store: InflightUop | None = None
                conflict = False
                if uop.is_load and not uop.wrong_path:
                    store = pending_stores.get(static.addr)
                    if (
                        store is not None
                        and store.seq < uop.seq
                        and not store.squashed
                    ):
                        if store.done:
                            forward_store = store
                        else:
                            # Address conflict: the load must wait for the
                            # older store (structural 'Other' stall).
                            conflict = True
                if conflict:
                    structural = True
                    correct_waiting += 1
                    new_rs_append(uop)
                    continue
                pool = uop.pool
                if issue_free > 0 and free[pool] > 0:
                    latency = self._execute(uop, cycle, forward_store)
                    issue_free -= 1
                    free[pool] -= 1
                    if pool == POOL_MUL and unpipelined[static.uclass]:
                        fu._reserve_mul(cycle, latency)
                    if uop.wrong_path:
                        n_issue_wrong += 1
                    else:
                        n_issue += 1
                        ops = uop.ops
                        if ops:
                            lanes = static.lanes
                            if lanes > machine_lanes:
                                lanes = machine_lanes
                            flops_issued += ops * lanes
                            n_vfp += 1
                            non_fma_loss += (2 - ops) * lanes
                            masked += machine_lanes - lanes
                        elif uop.is_vu_nonvfp:
                            vu_non_vfp = True
                    continue  # issued: leaves the reservation stations
                structural = True
                if not uop.wrong_path:
                    correct_waiting += 1
                    if uop.ops:
                        vfp_in_rs = True
                        vfp_structural = True
            else:
                if not uop.wrong_path:
                    correct_waiting += 1
                    if first_nonready is None:
                        first_nonready = uop
                    if uop.ops:
                        vfp_in_rs = True
                        if oldest_vfp_nonready is None:
                            oldest_vfp_nonready = uop
            new_rs_append(uop)
        self.rs = new_rs
        fu._issue_free = issue_free

        first_producer = (
            first_nonready.first_unfinished_producer()
            if first_nonready is not None
            else None
        )
        oldest_vfp_producer = (
            oldest_vfp_nonready.first_unfinished_producer()
            if oldest_vfp_nonready is not None
            else None
        )
        self._rs_dirty = False
        self._rs_quiet = n_issue + n_issue_wrong == 0
        self._has_correct_waiting = correct_waiting > 0
        self._issue_obs_cache = (
            first_producer,
            structural,
            vfp_in_rs,
            oldest_vfp_producer,
            vfp_structural,
        )
        if obs is not None:
            obs.n_issue = n_issue
            obs.n_issue_wrong = n_issue_wrong
            obs.rs_empty = correct_waiting == 0
            obs.structural_stall = structural
            obs.first_nonready_producer = first_producer
            obs.flops_issued = flops_issued
            obs.n_vfp_issued = n_vfp
            obs.non_fma_loss_lanes = non_fma_loss
            obs.masked_lanes = masked
            obs.vfp_in_rs = vfp_in_rs
            obs.vu_used_by_non_vfp = vu_non_vfp
            obs.vfp_structural = vfp_structural
            obs.oldest_vfp_producer = oldest_vfp_producer

    def _execute(
        self,
        uop: InflightUop,
        cycle: int,
        forward_store: InflightUop | None,
    ) -> int:
        """Start execution; returns the FU occupancy latency."""
        static = uop.uop
        uclass = static.uclass
        uop.issued = True
        uop.issue_cycle = cycle
        if uclass is UopClass.LOAD:
            if uop.wrong_path:
                complete = int(
                    math.ceil(self.hierarchy.probe_latency(static.addr, cycle))
                )
            elif forward_store is not None:
                # Store-to-load forwarding out of the store queue.
                complete = cycle + 1
            else:
                result = self.hierarchy.dload(static.addr, cycle)
                complete = int(math.ceil(result.complete))
                uop.dcache_miss = not result.l1_hit
            latency = 1
        elif uclass is UopClass.STORE:
            if not uop.wrong_path:
                # Stores drain through the store buffer; the access updates
                # cache state and bandwidth but does not stall the pipe.
                self.hierarchy.dstore(static.addr, cycle)
            complete = cycle + 1
            latency = 1
        else:
            latency = self._latency_of[uclass]
            complete = cycle + latency
        if complete <= cycle:
            complete = cycle + 1
        uop.complete_cycle = complete
        bucket = self.completions.get(complete)
        if bucket is None:
            self.completions[complete] = [uop]
        else:
            bucket.append(uop)
        return latency

    def _dispatch(self, cycle: int, obs: CycleObservation | None) -> None:
        config = self.config
        queue = self.uop_queue
        rob = self.rob
        rs = self.rs
        width = config.dispatch_width
        rob_size = config.rob_size
        rs_size = config.rs_size
        sq_size = config.store_queue_size
        n = 0
        n_wrong = 0
        queue_empty = False
        window_full = False
        last_block_id = -1
        rename = self._rename
        rob_append = rob.append
        rs_append = rs.append
        while n + n_wrong < width:
            if not queue:
                queue_empty = True
                break
            uop = queue[0]
            if (
                len(rob) >= rob_size
                or len(rs) >= rs_size
                or (uop.is_store and self.sq_count >= sq_size)
            ):
                window_full = True
                break
            queue.popleft()
            rename(uop)
            rob_append(uop)
            rs_append(uop)
            if uop.is_store:
                self.sq_count += 1
                if not uop.wrong_path and uop.uop.addr >= 0:
                    self.pending_stores[uop.uop.addr] = uop
            if uop.wrong_path:
                n_wrong += 1
            else:
                n += 1
            last_block_id = uop.block_id
        if n or n_wrong:
            self._rs_dirty = True
            if (
                self._spec_mode
                and self.collector is not None
                and last_block_id >= 0
            ):
                # Accounting happens after dispatch within the cycle, so
                # only the last dispatched micro-op's block matters.
                self.collector.set_block(last_block_id)
        if obs is not None:
            obs.n_dispatch = n
            obs.n_dispatch_wrong = n_wrong
            obs.uop_queue_empty = queue_empty
            obs.window_full = window_full
            if window_full and obs.rob_head is None and rob:
                obs.rob_head = rob[0]

    def _rename(self, uop: InflightUop) -> None:
        last_writer = self.last_writer
        for src in uop.uop.srcs:
            producer = last_writer[src]
            if (
                producer is not None
                and not producer.done
                and not producer.squashed
            ):
                uop.producers.append(producer)
                producer.consumers.append(uop)
                uop.deps_left += 1
        dst = uop.uop.dst
        if dst >= 0:
            last_writer[dst] = uop

    def _fetch(self, cycle: int) -> None:
        room = self.config.uop_queue_size - len(self.uop_queue)
        if room <= 0:
            return
        for uop in self.frontend.deliver(cycle, room):
            self.uop_queue.append(uop)

    def _squash(self, branch: InflightUop) -> None:
        """Flush everything younger than the mispredicted ``branch``."""
        boundary = branch.seq
        rob = self.rob
        pending_stores = self.pending_stores
        while rob and rob[-1].seq > boundary:
            uop = rob.pop()
            uop.squashed = True
            if uop.is_store:
                self.sq_count -= 1
                addr = uop.uop.addr
                if pending_stores.get(addr) is uop:
                    del pending_stores[addr]
        for uop in self.uop_queue:
            uop.squashed = True
        self.uop_queue.clear()
        self.rs = [u for u in self.rs if not u.squashed]
        self._rs_dirty = True
        last_writer: list[InflightUop | None] = [None] * TOTAL_REGS
        for uop in rob:
            dst = uop.uop.dst
            if dst >= 0:
                last_writer[dst] = uop
        self.last_writer = last_writer


def simulate(
    program: Program,
    config: CoreConfig,
    *,
    mode: WrongPathMode = WrongPathMode.EXACT,
    accounting: bool = True,
    seed: int = 12345,
    warmup_instructions: int = 0,
    topdown: bool = False,
    fast_forward: bool | None = None,
) -> SimResult:
    """Convenience wrapper: build a :class:`CoreSimulator` and run it."""
    return CoreSimulator(
        program,
        config,
        mode=mode,
        accounting=accounting,
        seed=seed,
        warmup_instructions=warmup_instructions,
        topdown=topdown,
        fast_forward=fast_forward,
    ).run()
