"""Periodic steady-state replay: macro fast-forward for active loop cycles.

The quiescent-cycle fast-forward engine (``CoreSimulator._ff_event``) skips
runs of *stalled* cycles.  This module generalizes the idea to runs of
*identical cycle sequences*: a tight loop in steady state repeats an exact
pattern of dispatch/issue/commit activity every iteration, and once the
machine state provably returns to a prior configuration (modulo a uniform
shift of cycle numbers, sequence numbers and trace position), every later
iteration is a replay of the recorded one.

The engine works in three phases:

1. **Trace period analysis** (:func:`find_period`, init time): find the
   smallest instruction-level period ``L`` such that the trace tail repeats
   with lag ``L``.  Aperiodic traces (pointer chases, random-address SPEC
   models) fail here and the engine never arms — zero per-cycle cost.

2. **Record + confirm** (runtime): starting from a clean boundary cycle
   ``t0``, record the signature-batched observation runs the accounting
   collector receives.  At each later cycle whose trace position is
   congruent to ``t0``'s modulo ``L``, compare a full normalized state
   fingerprint against ``t0``'s.  Equality proves the machine is at an
   exact fixed point modulo the shift: every structure either matches
   bit-for-bit (caches, TLBs, predictor tables, LRU orders) or matches
   after subtracting the cycle/seq/block deltas (ROB, scheduler queues,
   completion times, stall deadlines).

3. **Jump**: with period ``P = t1 - t0`` cycles and ``Δ`` instructions,
   skip ``k = (trace_len - idx) // Δ`` whole periods at once — feed the
   recorded observation runs ``k`` times through the proven-equivalent
   ``observe_repeat`` bulk path (reproducing the exact flush/merge pattern
   a cycle-by-cycle run would produce), advance every integer counter by
   ``k`` times its per-period delta, and shift the time-valued and
   seq-valued state forward.  Windows whose float accumulators
   (DRAM queue delay, MSHR waits) advanced are rejected: those cannot be
   bulk-replayed with bitwise-exact arithmetic.

Results are bitwise identical to the cycle-by-cycle run by construction;
``tests/test_replay.py`` verifies this differentially.  Escape hatches
mirror the fast-forward engine's: ``replay=False`` / ``REPRO_REPLAY=0`` /
``--no-replay``.
"""

from __future__ import annotations

from collections import deque

#: Longest backwards scan for the base lag of the trace tail.
_MAX_BASE_LAG = 512
#: Longest instruction period considered (multiples of the base lag).
_MAX_PERIOD = 2048
#: The periodic region must cover at least this many periods to be usable.
_MIN_REPEATS = 4
#: Traces shorter than this are not worth analyzing.
_MIN_TRACE = 64

#: Recording longer than this many cycles is abandoned (steady-state
#: periods are short; a long window means the loop is not yet steady).
_MAX_RECORD_CYCLES = 8192
#: Fingerprint comparisons per recording attempt before giving up.
_MAX_FP_CHECKS = 8
#: Recording spanning more than this many periods' worth of instructions
#: without confirming is abandoned.
_MAX_SPAN_PERIODS = 32
#: Exponential backoff (cycles) between failed recording attempts.
_BACKOFF_INITIAL = 64
_BACKOFF_MAX = 65536


def find_period(program) -> tuple[int, int] | None:
    """Instruction-level periodicity of the trace tail.

    Returns ``(region_start, L)`` such that ``instructions[i + L] ==
    instructions[i]`` for every ``i >= region_start`` (up to the end of
    the trace), or None when no such period exists.  ``==`` is preceded
    by an ``is`` check: trace builders memoize static loop bodies, so the
    common case is identity and costs no deep comparison.

    The search anchors on the last instruction: its nearest earlier
    occurrence gives a base lag, and multiples of that lag are verified
    over the maximal suffix (rotating patterns — e.g. a load address
    cycling through a line — only match at a super-period).  Aperiodic
    traces fail the base-lag scan or the suffix check within one loop
    body's worth of comparisons.
    """
    instrs = program.instructions
    n = len(instrs)
    if n < _MIN_TRACE:
        return None
    last = instrs[-1]
    base = 0
    for lag in range(1, min(_MAX_BASE_LAG, n - 1) + 1):
        prev = instrs[-1 - lag]
        if prev is last or prev == last:
            base = lag
            break
    if not base:
        return None
    for mult in range(1, _MAX_PERIOD // base + 1):
        lag = base * mult
        if lag >= n:
            break
        lowest = n
        i = n - 1
        while i >= lag:
            a = instrs[i]
            b = instrs[i - lag]
            if a is not b and a != b:
                break
            lowest = i
            i -= 1
        if lowest >= n:
            continue
        if n - lowest < _MIN_REPEATS * lag:
            continue
        return (lowest - lag, lag)
    return None


def _copy_obs(src, dst) -> None:
    """Copy one retained observation buffer into another.

    The blamed-uop snapshot objects are per-buffer; pointer fields in the
    copied observation are re-aimed at the destination's own snapshots so
    the copy is self-contained.
    """
    s = src.obs
    d = dst.obs
    d.unscheduled = s.unscheduled
    d.wrong_path_active = s.wrong_path_active
    d.fe_reason = s.fe_reason
    d.n_dispatch = s.n_dispatch
    d.n_dispatch_wrong = s.n_dispatch_wrong
    d.uop_queue_empty = s.uop_queue_empty
    d.window_full = s.window_full
    d.n_issue = s.n_issue
    d.n_issue_wrong = s.n_issue_wrong
    d.rs_empty = s.rs_empty
    d.structural_stall = s.structural_stall
    d.n_commit = s.n_commit
    d.rob_empty = s.rob_empty
    d.flops_issued = s.flops_issued
    d.n_vfp_issued = s.n_vfp_issued
    d.non_fma_loss_lanes = s.non_fma_loss_lanes
    d.masked_lanes = s.masked_lanes
    d.vfp_in_rs = s.vfp_in_rs
    d.vu_used_by_non_vfp = s.vu_used_by_non_vfp
    d.vfp_structural = s.vfp_structural
    for src_snap, dst_snap, field in (
        (src.head, dst.head, "rob_head"),
        (src.producer, dst.producer, "first_nonready_producer"),
        (src.vfp, dst.vfp, "oldest_vfp_producer"),
    ):
        if getattr(s, field) is None:
            setattr(d, field, None)
        else:
            dst_snap.is_load = src_snap.is_load
            dst_snap.dcache_miss = src_snap.dcache_miss
            dst_snap.issued = src_snap.issued
            dst_snap.done = src_snap.done
            dst_snap.multi_cycle = src_snap.multi_cycle
            dst_snap.block_id = src_snap.block_id
            setattr(d, field, dst_snap)


class ReplayEngine:
    """Record-and-replay driver owned by one :class:`CoreSimulator`.

    The simulator calls :meth:`on_cycle` at the top of every event-mode
    cycle (before any stage runs) and :meth:`note_cycle` from its
    signature-batching merge/retain sites while a recording is active.
    """

    __slots__ = (
        "_sim", "_region_start", "_period",
        "_recording", "_disabled", "_next_attempt", "_backoff",
        "_t0", "_idx0", "_seq0", "_block0",
        "_fp0", "_counts0", "_floats0", "_checks",
        "_runs", "_spares", "_sites",
    )

    def __init__(self, sim, region_start: int, period: int) -> None:
        self._sim = sim
        self._region_start = region_start
        self._period = period
        self._recording = False
        self._disabled = False
        self._next_attempt = 0
        self._backoff = _BACKOFF_INITIAL
        self._t0 = 0
        self._idx0 = 0
        self._seq0 = 0
        self._block0 = 0
        self._fp0: tuple | None = None
        self._counts0: list | None = None
        self._floats0: tuple | None = None
        self._checks = 0
        #: Recorded observation runs: [signature, count, buffer] each.
        self._runs: list[list] = []
        self._spares: list = []
        hierarchy = sim.hierarchy
        frontend = sim.frontend
        #: Every integer counter the skipped cycles would have advanced;
        #: each is bumped by k * (its per-period delta) at jump time.
        sites: list[tuple[object, str]] = [
            (sim, "committed_uops"),
            (sim, "committed_instrs"),
            (sim, "ff_windows"),
            (sim, "ff_cycles_skipped"),
            (frontend, "delivered"),
            (frontend, "delivered_wrong"),
            (frontend, "icache_stall_cycles"),
            (sim.predictor, "lookups"),
            (sim.predictor, "mispredicts"),
            (hierarchy, "prefetches_issued"),
            (hierarchy.dram, "accesses"),
            (hierarchy.itlb, "accesses"),
            (hierarchy.itlb, "misses"),
            (hierarchy.dtlb, "accesses"),
            (hierarchy.dtlb, "misses"),
            (hierarchy.prefetcher, "issued"),
            (hierarchy.prefetcher, "triggers"),
        ]
        for level in hierarchy._levels():
            stats = level.cache.stats
            for name in (
                "accesses", "hits", "misses", "evictions",
                "dirty_evictions", "prefetch_fills",
            ):
                sites.append((stats, name))
            sites.append((level.mshr, "acquisitions"))
        self._sites = sites

    # -- per-cycle driver --------------------------------------------------------

    def on_cycle(self, cycle: int) -> int:
        """Advance the engine; returns the number of cycles to skip.

        A non-zero return means the jump already happened: all state has
        been advanced and the caller must only set ``cycle += skipped``
        and end the step without simulating anything.
        """
        sim = self._sim
        frontend = sim.frontend
        if self._recording:
            idx = frontend._idx
            if (
                idx != self._idx0
                and (idx - self._idx0) % self._period == 0
                and self._boundary_ok(frontend)
            ):
                skipped = self._try_confirm(cycle, idx)
                if skipped:
                    return skipped
            if self._recording and (
                cycle - self._t0 > _MAX_RECORD_CYCLES
                or idx - self._idx0 > _MAX_SPAN_PERIODS * self._period
                or self._checks >= _MAX_FP_CHECKS
            ):
                self._abort(cycle)
            return 0
        if self._disabled or cycle < self._next_attempt or not sim._warmed:
            return 0
        idx = frontend._idx
        if idx < self._region_start:
            return 0
        if idx + 2 * self._period > frontend._count:
            # Too close to the end of the trace to ever profit.
            self._disabled = True
            return 0
        if not self._boundary_ok(frontend):
            return 0
        self._begin(cycle, idx)
        return 0

    def note_cycle(self, sig: object, k: int, merged: bool) -> None:
        """Record one signature-batching event (``k`` cycles).

        ``merged=True`` means the cycles joined the pending batch; the
        count is folded into the current run.  The first recorded cycle
        may merge into a *pre-window* pending batch — that is safe
        (signature equality implies accounting equivalence, the batching
        invariant) and the run then starts with a copy of that buffer.
        """
        runs = self._runs
        if merged and runs:
            runs[-1][1] += k
            return
        buf = self._copy_buffer(self._sim._bat_cur)
        runs.append([sig, k, buf])

    # -- checkpoint support ------------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable engine state for the checkpoint engine.

        A checkpoint may land mid-recording, so the anchor state
        (``_t0``/``_idx0``/..., the baseline fingerprint and counter
        snapshot, and the recorded runs) all travel.  ``_sim`` and
        ``_sites`` are excluded — they are live references rebuilt by the
        engine's constructor against the resumed simulator — and
        ``_spares`` is a pure allocation cache.
        """
        return {
            "recording": self._recording,
            "disabled": self._disabled,
            "next_attempt": self._next_attempt,
            "backoff": self._backoff,
            "t0": self._t0,
            "idx0": self._idx0,
            "seq0": self._seq0,
            "block0": self._block0,
            "fp0": self._fp0,
            "counts0": self._counts0,
            "floats0": self._floats0,
            "checks": self._checks,
            "runs": [[sig, k, buf] for sig, k, buf in self._runs],
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot`; mutates this engine in place."""
        self._recording = state["recording"]
        self._disabled = state["disabled"]
        self._next_attempt = state["next_attempt"]
        self._backoff = state["backoff"]
        self._t0 = state["t0"]
        self._idx0 = state["idx0"]
        self._seq0 = state["seq0"]
        self._block0 = state["block0"]
        self._fp0 = state["fp0"]
        self._counts0 = state["counts0"]
        self._floats0 = state["floats0"]
        self._checks = state["checks"]
        self._recycle_runs()
        self._runs[:] = [[sig, k, buf] for sig, k, buf in state["runs"]]

    # -- recording lifecycle -----------------------------------------------------

    def _boundary_ok(self, frontend) -> bool:
        """A window boundary needs a structurally clean frontend/core."""
        sim = self._sim
        return (
            sim.unsched_remaining == 0
            and frontend.waiting_sync is None
            and not frontend.wrong_path
            and frontend.resolving_branch is None
            and frontend._pending_instr is None
            and frontend._decoded_idx >= frontend._decoded_len
        )

    def _begin(self, cycle: int, idx: int) -> None:
        sim = self._sim
        frontend = sim.frontend
        self._recording = True
        sim._replay_rec = True
        self._t0 = cycle
        self._idx0 = idx
        self._seq0 = frontend.seq
        self._block0 = frontend.block
        self._checks = 0
        self._recycle_runs()
        self._fp0 = self._fingerprint(cycle)
        self._counts0 = [getattr(o, a) for o, a in self._sites]
        self._floats0 = self._float_counters()

    def _abort(self, cycle: int) -> None:
        self._recording = False
        self._sim._replay_rec = False
        self._recycle_runs()
        self._next_attempt = cycle + self._backoff
        if self._backoff < _BACKOFF_MAX:
            self._backoff *= 2

    def _try_confirm(self, cycle: int, idx: int) -> int:
        """Fingerprint check at a candidate boundary; jumps on success."""
        self._checks += 1
        if self._fingerprint(cycle) != self._fp0:
            return 0
        if self._float_counters() != self._floats0:
            # A float accumulator advanced: k-fold replay would need
            # non-exact float arithmetic.  Give up on this loop shape.
            self._abort(cycle)
            return 0
        sim = self._sim
        frontend = sim.frontend
        d_cycles = cycle - self._t0
        d_idx = idx - self._idx0
        k = (frontend._count - idx) // d_idx
        if k <= 0:
            self._abort(cycle)
            return 0
        skipped = self._jump(cycle, k, d_cycles, d_idx)
        # Success: rearm immediately (the next attempt will usually find
        # the trace too short and disable itself).
        self._recording = False
        sim._replay_rec = False
        self._recycle_runs()
        self._backoff = _BACKOFF_INITIAL
        self._next_attempt = 0
        return skipped

    # -- the jump ----------------------------------------------------------------

    def _jump(self, cycle: int, k: int, d_cycles: int, d_idx: int) -> int:
        """Advance the machine by ``k`` periods of ``d_cycles`` cycles."""
        sim = self._sim
        frontend = sim.frontend
        jump = k * d_cycles
        seq_shift = k * (frontend.seq - self._seq0)
        block_shift = k * (frontend.block - self._block0)

        self._feed(k)

        counts0 = self._counts0
        for i, (obj, name) in enumerate(self._sites):
            now = getattr(obj, name)
            delta = now - counts0[i]
            if delta:
                setattr(obj, name, now + delta * k)

        # Flag live scheduler-queue entries *before* seqs move: an entry
        # is live only while its snapshotted seq matches an un-issued,
        # un-squashed, un-finished record.  Stale tuples keep their old
        # seq — exactly what a cycle-by-cycle run would hold, and safely
        # inert because seq values are never reused.
        ready = sim._ready
        nonready = sim._nonready
        nonready_vfp = sim._nonready_vfp
        ready_live = [
            u.seq == s and not u.squashed and not u.done and not u.issued
            for s, u in ready
        ]
        nr_live = [
            u.seq == s and not u.squashed and not u.done and not u.issued
            for s, u in nonready
        ]
        nrv_live = [
            u.seq == s and not u.squashed and not u.done and not u.issued
            for s, u in nonready_vfp
        ]
        waiter_sets = []
        for u in sim.rob:
            w = u.waiters
            if w:
                waiter_sets.append((u, [
                    x.seq == s and not x.squashed and not x.done
                    and not x.issued
                    for s, x in w
                ]))

        # Every live record sits in the ROB or the dispatch queue.
        for u in sim.rob:
            u.seq += seq_shift
            u.block_id += block_shift
        for u in sim.uop_queue:
            u.seq += seq_shift
            u.block_id += block_shift

        sim._ready = [
            (s + seq_shift, u) if live else (s, u)
            for (s, u), live in zip(ready, ready_live)
        ]
        sim._nonready = deque(
            (s + seq_shift, u) if live else (s, u)
            for (s, u), live in zip(nonready, nr_live)
        )
        sim._nonready_vfp = deque(
            (s + seq_shift, u) if live else (s, u)
            for (s, u), live in zip(nonready_vfp, nrv_live)
        )
        for u, flags in waiter_sets:
            u.waiters = [
                (s + seq_shift, x) if live else (s, x)
                for (s, x), live in zip(u.waiters, flags)
            ]

        # Completion buckets: all keys are >= cycle (past buckets were
        # popped in their own cycle's writeback).
        sim.completions = {
            c + jump: bucket for c, bucket in sim.completions.items()
        }

        frontend.shift(cycle, jump, k * d_idx, seq_shift, block_shift)
        sim.fu.shift_time(cycle, jump)
        sim.hierarchy.shift_time(cycle, jump)

        if sim._replay_enabled:
            # Telemetry only counts user-requested replay: the memory
            # fast path arms the engine silently (results are bitwise
            # identical either way), and ``replay=False`` runs must
            # keep reporting zero windows.
            sim.replay_windows += 1
            sim.replay_cycles_skipped += jump
        return jump

    def _feed(self, k: int) -> None:
        """Deliver the recorded runs ``k`` times to the collector.

        Replays the exact flush/merge sequence a cycle-by-cycle run would
        produce: the signature stream of the skipped cycles is periodic
        (state periodicity makes behaviour periodic, and signatures are
        shift-invariant), so it equals the recorded stream repeated ``k``
        times, seeded with — and leaving behind — the simulator's pending
        batch.
        """
        sim = self._sim
        collector = sim.collector
        if collector is None or not self._runs:
            return
        observe_repeat = collector.observe_repeat
        sig_p = sim._bat_sig
        k_p = sim._bat_k
        buf_p = sim._bat_cur
        for _ in range(k):
            for run in self._runs:
                if k_p and run[0] == sig_p:
                    k_p += run[1]
                else:
                    if k_p:
                        observe_repeat(buf_p.obs, k_p)
                    sig_p = run[0]
                    k_p = run[1]
                    buf_p = run[2]
        if buf_p is not sim._bat_cur:
            # Never hand an engine-owned buffer to the simulator's
            # spare/current rotation; copy the trailing run instead.
            # The copy must land in a simulator-private buffer: the
            # current one may be an immutable signature-cache entry (or
            # the dedicated Unsched buffer), which other signatures'
            # batches will reuse verbatim.
            dst = sim._bat_private[0]
            if dst is sim._bat_cur:
                dst = sim._bat_private[1]
            _copy_obs(buf_p, dst)
            dst.delta = None
            sim._bat_cur = dst
        sim._bat_sig = sig_p
        sim._bat_k = k_p

    # -- buffers -----------------------------------------------------------------

    def _copy_buffer(self, src):
        buf = self._spares.pop() if self._spares else src.__class__()
        _copy_obs(src, buf)
        return buf

    def _recycle_runs(self) -> None:
        spares = self._spares
        for run in self._runs:
            if len(spares) < 64:
                spares.append(run[2])
        self._runs.clear()

    # -- state fingerprint -------------------------------------------------------

    def _float_counters(self) -> tuple:
        """Float accumulators that must not advance inside a window."""
        hierarchy = self._sim.hierarchy
        vals = [hierarchy.dram.total_queue_delay]
        for level in hierarchy._levels():
            vals.append(level.mshr.total_wait)
            vals.append(level.mshr.max_wait)
        return tuple(vals)

    def _fingerprint(self, cycle: int) -> tuple:
        """Full machine state, normalized modulo the period shift.

        Sequence numbers are taken relative to the next seq the frontend
        will assign, block ids relative to the current block, and every
        absolute cycle value relative to ``cycle``.  Counters, batching
        state, free lists and identity-validated memo caches are
        excluded: counters are delta-advanced, the pending batch is
        handled by :meth:`_feed`, and the rest is behaviourally inert.
        """
        sim = self._sim
        frontend = sim.frontend
        seq0 = frontend.seq
        block0 = frontend.block

        def rel(u) -> tuple:
            waiters = u.waiters
            return (
                u.seq - seq0,
                u.block_id - block0,
                u.uop,
                u.instr,
                u.wrong_path,
                u.last_of_instr,
                u.deps_left,
                u.issued,
                u.done,
                u.dcache_miss,
                u.mispredicted,
                u.parked,
                tuple(p.seq - seq0 for p in u.producers),
                None if waiters is None else tuple(
                    s - seq0 for s, x in waiters
                    if x.seq == s and not x.squashed
                ),
            )

        rob_fp = tuple(rel(u) for u in sim.rob)
        queue_fp = tuple(rel(u) for u in sim.uop_queue)
        # _ready order is normalized by select's sort, so only the live
        # membership matters; _nonready order is dispatch order and is
        # kept (dead entries are skipped by every reader).
        ready_fp = tuple(sorted(
            s - seq0 for s, u in sim._ready
            if u.seq == s and not u.squashed and not u.done and not u.issued
        ))
        nonready_fp = tuple(
            s - seq0 for s, u in sim._nonready
            if u.seq == s and not u.squashed and u.deps_left > 0
        )
        nonready_vfp_fp = tuple(
            s - seq0 for s, u in sim._nonready_vfp
            if u.seq == s and not u.squashed and u.deps_left > 0
        )
        comp_fp = tuple(sorted(
            (c - cycle, tuple(
                (None, True) if u.squashed else (u.seq - seq0, False)
                for u in bucket
            ))
            for c, bucket in sim.completions.items()
        ))
        lw_fp = tuple(
            None if w is None else w.seq - seq0 for w in sim.last_writer
        )
        ps_fp = tuple(sorted(
            (addr, u.seq - seq0)
            for addr, u in sim.pending_stores.items()
        ))
        # The issue-obs cache is observable state only while it is valid
        # for reuse; otherwise the next select recomputes it from scratch.
        if sim._rs_quiet and not sim._rs_dirty:
            cache = sim._resolve_issue_obs()
            cache_fp: object = (
                None if cache[0] is None else cache[0].seq - seq0,
                cache[1],
                cache[2],
                None if cache[3] is None else cache[3].seq - seq0,
                cache[4],
            )
        else:
            cache_fp = None
        return (
            rob_fp,
            queue_fp,
            ready_fp,
            nonready_fp,
            nonready_vfp_fp,
            comp_fp,
            lw_fp,
            ps_fp,
            sim._parked,
            sim._rs_count,
            sim._rs_correct,
            sim._rs_vfp,
            sim.sq_count,
            sim._rs_dirty,
            sim._rs_quiet,
            sim._has_correct_waiting,
            cache_fp,
            frontend.fingerprint(cycle),
            sim.predictor.fingerprint(),
            sim.hierarchy.fingerprint(cycle),
            sim.fu.fingerprint(cycle),
        )
