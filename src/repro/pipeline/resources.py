"""Execution resources: functional-unit pools and issue-port bookkeeping.

Each cycle the scheduler asks the pool whether a micro-op can start this
cycle; pipelined units offer one issue slot per unit per cycle, while
unpipelined units (divides) stay busy for their full latency.  The pool is
indexed by the integer pool ids precomputed on each
:class:`repro.pipeline.inflight.InflightUop` (this sits on the per-cycle
fast path of the simulator).
"""

from __future__ import annotations

from repro.config.cores import CoreConfig
from repro.isa.uops import UopClass
from repro.pipeline.inflight import POOL_MUL

#: Number of distinct FU pools (alu, mul, vu, load, store, branch).
_NUM_POOLS = 6


class FunctionalUnitPool:
    """Per-cycle functional-unit and port availability."""

    __slots__ = ("config", "_mul_busy_until", "_free", "_issue_free",
                 "_unpipelined", "_unpipelined_flags", "_free_template",
                 "_issue_width")

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        #: Busy-until cycle for each (unpipelined-capable) multiply unit.
        self._mul_busy_until = [0] * config.mul_units
        self._issue_free = 0
        self._unpipelined = frozenset(int(c) for c in config.unpipelined)
        #: uclass -> unpipelined flag, indexable by IntEnum (set-membership
        #: on the issue fast path showed in profiles).
        self._unpipelined_flags = tuple(
            int(uclass) in self._unpipelined for uclass in UopClass
        )
        #: Per-cycle slot counts with all units free (slot 1 = MUL is
        #: recomputed each cycle from the unpipelined busy times).
        self._free_template = [
            config.alu_units,
            config.mul_units,
            config.vector_units,
            config.load_ports,
            config.store_ports,
            config.branch_units,
        ]
        self._free = list(self._free_template)
        self._issue_width = config.issue_width

    def new_cycle(self, cycle: int) -> None:
        """Reset per-cycle slot counters."""
        free = self._free
        free[:] = self._free_template
        mul_free = 0
        for busy in self._mul_busy_until:
            if busy <= cycle:
                mul_free += 1
        free[1] = mul_free
        self._issue_free = self._issue_width

    def begin_issue(
        self, cycle: int
    ) -> tuple[list[int], int, tuple[bool, ...]]:
        """Per-cycle reset plus the raw views the scheduler inlines.

        Returns ``(free_slots, issue_width, unpipelined_flags)``: the
        select loop mutates ``free_slots`` in place, tracks the remaining
        issue bandwidth itself, and writes it back into ``_issue_free``
        when the walk ends.
        """
        # new_cycle's body, folded in: this runs once per active cycle
        # and the extra call layer showed in profiles.
        free = self._free
        free[:] = self._free_template
        mul_free = 0
        for busy in self._mul_busy_until:
            if busy <= cycle:
                mul_free += 1
        free[1] = mul_free
        self._issue_free = self._issue_width
        return free, self._issue_width, self._unpipelined_flags

    def can_issue(self, pool: int) -> bool:
        """True if a micro-op using ``pool`` can start this cycle."""
        return self._issue_free > 0 and self._free[pool] > 0

    def take(self, pool: int, uclass: UopClass, cycle: int, latency: int) -> None:
        """Consume the slot for an issued micro-op."""
        self._issue_free -= 1
        self._free[pool] -= 1
        if pool == POOL_MUL and int(uclass) in self._unpipelined:
            self._reserve_mul(cycle, latency)

    def _reserve_mul(self, cycle: int, latency: int) -> None:
        """Mark the earliest-free multiply unit busy until completion."""
        best = 0
        for index, busy in enumerate(self._mul_busy_until):
            if busy <= cycle:
                best = index
                break
        self._mul_busy_until[best] = cycle + latency

    def fingerprint(self, cycle: int) -> tuple:
        """Still-busy multiply-unit deadlines relative to ``cycle``.

        Expired entries are behaviourally free (``_reserve_mul`` only
        needs *some* free unit, and which expired slot gets overwritten
        never changes the surviving busy multiset), so only the sorted
        live deadlines matter.  ``_free``/``_issue_free`` are per-cycle
        scratch reset in :meth:`begin_issue` and are excluded.
        """
        return tuple(
            sorted(b - cycle for b in self._mul_busy_until if b > cycle)
        )

    def shift_time(self, cycle: int, delta: int) -> None:
        """Translate live busy deadlines by ``delta`` (replay jump)."""
        busy = self._mul_busy_until
        for i, b in enumerate(busy):
            if b > cycle:
                busy[i] = b + delta

    def snapshot(self) -> dict:
        """Picklable persistent state.  Exactly the multiply busy times:
        ``_free``/``_issue_free`` are per-cycle scratch rebuilt by
        :meth:`begin_issue` before the next issue walk reads them."""
        return {"mul_busy_until": list(self._mul_busy_until)}

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot`; mutates the list in place."""
        self._mul_busy_until[:] = state["mul_busy_until"]

    def reset(self) -> None:
        self._mul_busy_until = [0] * self.config.mul_units
