"""Crash-safe checkpoint files for a running :class:`CoreSimulator`.

A checkpoint is one file::

    REPRO-CKPT\n
    {json header}\n
    <pickle payload bytes>

The header carries the checkpoint schema version, the SHA-256 of the raw
payload bytes, the payload length, and a small metadata dict (committed
instruction count, cycle, workload/config names).  Readers verify magic,
schema, length and checksum before unpickling anything, so a torn or
bit-flipped file is always detected as :class:`CheckpointError` — never
silently resumed into wrong data.

Writes are atomic: payload lands in a same-directory temp file which is
fsynced and then ``os.replace``d over the final name (the same discipline
as ``DiskCache.put``), so a crash mid-write leaves either the old
checkpoint or none, never a partial one.

Checkpoints live under ``results/.checkpoints/<case-key>/`` (override with
``REPRO_CHECKPOINT_DIR``), one subdirectory per case, one file per
snapshot named ``ckpt_<committed-instructions>.rck``.  Recovery walks the
ladder newest -> older -> fresh start, unlinking any checkpoint whose
checksum fails on the way down.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "ENV_CHECKPOINT_DIR",
    "ENV_CHECKPOINT_INTERVAL",
    "checkpoint_dir_for",
    "checkpoint_interval_default",
    "checkpoint_root",
    "clear_checkpoints",
    "latest_valid_checkpoint",
    "list_case_checkpoints",
    "list_checkpoints",
    "load_checkpoint",
    "newest_progress",
    "save_checkpoint",
]

#: Bump whenever the snapshot payload layout changes; older files are
#: rejected (and evicted by the recovery ladder) instead of misread.
#: 2: multi-collector snapshots — kwargs carry the collector-spec tuple
#: and the state holds one collector slot per spec.
CHECKPOINT_SCHEMA = 2

#: First line of every checkpoint file.
MAGIC = b"REPRO-CKPT\n"

#: Snapshot cadence in committed instructions.  Unset/empty/0 = off.
ENV_CHECKPOINT_INTERVAL = "REPRO_CHECKPOINT_INTERVAL"

#: Override the checkpoint store root (default results/.checkpoints/).
ENV_CHECKPOINT_DIR = "REPRO_CHECKPOINT_DIR"

_FILE_PREFIX = "ckpt_"
_FILE_SUFFIX = ".rck"


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, torn, corrupt, or incompatible."""


def checkpoint_interval_default() -> int | None:
    """Resolve ``REPRO_CHECKPOINT_INTERVAL`` (inherited by pool workers).

    Returns ``None`` when checkpointing is off — the default.  A
    malformed value raises :class:`CheckpointError` naming the variable
    and the offending text, so a typo'd environment surfaces at case
    start instead of as a silent no-checkpoint run.
    """
    raw = os.environ.get(ENV_CHECKPOINT_INTERVAL, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise CheckpointError(
            f"{ENV_CHECKPOINT_INTERVAL} must be an integer number of "
            f"committed instructions, got {raw!r}"
        ) from None
    return value if value > 0 else None


# ---------------------------------------------------------------------------
# File format


def save_checkpoint(path: Path, payload: bytes, meta: dict) -> None:
    """Atomically write ``payload`` (+ checksummed header) to ``path``."""
    header = {
        "schema": CHECKPOINT_SCHEMA,
        "sha256": hashlib.sha256(payload).hexdigest(),
        "payload_bytes": len(payload),
        "meta": meta,
    }
    blob = (
        MAGIC
        + json.dumps(header, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )
        + b"\n"
        + payload
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f"{path.name}.tmp{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed write
            try:
                tmp.unlink()
            except OSError:
                pass


def load_checkpoint(path: Path) -> tuple[bytes, dict]:
    """Read and verify a checkpoint; returns ``(payload, meta)``.

    Raises :class:`CheckpointError` on any defect (missing file, bad
    magic, unparseable or wrong-schema header, truncated payload,
    checksum mismatch).  Never unpickles unverified bytes.
    """
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}")
    if not blob.startswith(MAGIC):
        raise CheckpointError(f"{path} is not a checkpoint (bad magic)")
    newline = blob.find(b"\n", len(MAGIC))
    if newline < 0:
        raise CheckpointError(f"{path} is truncated (no header line)")
    try:
        header = json.loads(blob[len(MAGIC):newline].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckpointError(f"{path} has a corrupt header: {exc}")
    if not isinstance(header, dict):
        raise CheckpointError(f"{path} has a corrupt header (not an object)")
    schema = header.get("schema")
    if schema != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"{path} has checkpoint schema {schema!r}, expected "
            f"{CHECKPOINT_SCHEMA}"
        )
    payload = blob[newline + 1:]
    expected_len = header.get("payload_bytes")
    if expected_len != len(payload):
        raise CheckpointError(
            f"{path} is truncated: header promises {expected_len} payload "
            f"bytes, file holds {len(payload)}"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("sha256"):
        raise CheckpointError(
            f"{path} fails its SHA-256 payload checksum (corrupt)"
        )
    meta = header.get("meta")
    return payload, meta if isinstance(meta, dict) else {}


# ---------------------------------------------------------------------------
# Per-case checkpoint store


def checkpoint_root() -> Path:
    """Directory holding per-case checkpoint subdirectories."""
    env = os.environ.get(ENV_CHECKPOINT_DIR)
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "results" / ".checkpoints"


def checkpoint_dir_for(key: str) -> Path:
    """Subdirectory holding one case's checkpoints (not created here)."""
    return checkpoint_root() / key


def checkpoint_path(key: str, committed_instrs: int) -> Path:
    """Canonical file name for a snapshot at ``committed_instrs``."""
    return checkpoint_dir_for(key) / (
        f"{_FILE_PREFIX}{committed_instrs:012d}{_FILE_SUFFIX}"
    )


def _progress_of(path: Path) -> int | None:
    name = path.name
    if not (name.startswith(_FILE_PREFIX) and name.endswith(_FILE_SUFFIX)):
        return None
    digits = name[len(_FILE_PREFIX):-len(_FILE_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def list_case_checkpoints(key: str) -> list[Path]:
    """One case's checkpoint files, oldest (least progress) first."""
    directory = checkpoint_dir_for(key)
    if not directory.is_dir():
        return []
    found = [
        (progress, path)
        for path in directory.iterdir()
        if (progress := _progress_of(path)) is not None
    ]
    found.sort()
    return [path for _, path in found]


def newest_progress(key: str) -> int | None:
    """Committed-instruction count of the newest on-disk checkpoint.

    Filename-derived only (no verification) — used for reporting how far
    a crashed case had provably gotten, not for resuming.
    """
    paths = list_case_checkpoints(key)
    return _progress_of(paths[-1]) if paths else None


def latest_valid_checkpoint(key: str) -> tuple[Path, bytes, dict] | None:
    """Newest checkpoint for ``key`` that passes verification.

    The recovery ladder: try the newest file; if it is corrupt or
    truncated, unlink it and fall back to the next-newest; with none
    left, return ``None`` (fresh start).  Corruption is never an error
    here — only a rung down the ladder.
    """
    for path in reversed(list_case_checkpoints(key)):
        try:
            payload, meta = load_checkpoint(path)
        except CheckpointError:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing unlink
                pass
            continue
        return path, payload, meta
    return None


def clear_checkpoints(key: str | None = None) -> int:
    """Delete checkpoints (one case's, or all); returns files removed.

    Leftover temp files are swept too, so an interrupted writer never
    accumulates garbage.
    """
    removed = 0
    if key is not None:
        roots = [checkpoint_dir_for(key)]
    else:
        root = checkpoint_root()
        roots = [p for p in root.iterdir() if p.is_dir()] if root.is_dir() \
            else []
    for directory in roots:
        if not directory.is_dir():
            continue
        for path in directory.iterdir():
            is_ckpt = _progress_of(path) is not None
            is_tmp = f"{_FILE_SUFFIX}.tmp" in path.name
            if not (is_ckpt or is_tmp):
                continue
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing unlink
                continue
            if is_ckpt:
                removed += 1
        try:
            directory.rmdir()
        except OSError:
            pass
    return removed


def list_checkpoints() -> list[dict]:
    """Summaries for ``repro checkpoints list``: one row per case."""
    root = checkpoint_root()
    if not root.is_dir():
        return []
    rows: list[dict] = []
    for directory in sorted(p for p in root.iterdir() if p.is_dir()):
        paths = list_case_checkpoints(directory.name)
        if not paths:
            continue
        newest = paths[-1]
        meta: dict = {}
        try:
            _, meta = load_checkpoint(newest)
        except CheckpointError:
            pass
        rows.append(
            {
                "key": directory.name,
                "checkpoints": len(paths),
                "newest_instrs": _progress_of(newest) or 0,
                "case": meta.get("case", "?"),
                "bytes": sum(p.stat().st_size for p in paths),
                "age_seconds": max(
                    0.0, time.time() - newest.stat().st_mtime
                ),
            }
        )
    return rows
