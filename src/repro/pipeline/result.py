"""Simulation results: cycles, commit counts, stacks and substrate stats."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.core.multistage import MultiStageReport

#: Version of the accounting/result schema.  Part of every disk-cache key
#: and stored payload: bump it whenever the meaning of a counter, a stack
#: component set, or any :class:`SimResult` field changes, so stale cached
#: results are treated as misses instead of silently reused.
ACCOUNTING_SCHEMA_VERSION = 2


@dataclass(slots=True)
class SimResult:
    """Everything one core simulation produced."""

    name: str
    config_name: str
    cycles: int
    #: Correct-path micro-ops committed (the CPI denominator; the paper's
    #: accounting operates on micro-ops, Sec. V-B).
    committed_uops: int
    #: Correct-path macro instructions committed.
    committed_instrs: int
    #: Multi-stage CPI stacks (and FLOPS stack), if accounting was enabled.
    report: MultiStageReport | None = None
    #: Per-structure memory hierarchy statistics.
    memory_stats: dict = field(default_factory=dict)
    #: Branch predictor statistics.
    branch_lookups: int = 0
    branch_mispredicts: int = 0
    #: Wrong-path micro-ops the frontend injected.
    wrong_path_uops: int = 0
    #: Host wall-clock seconds spent simulating.
    wall_seconds: float = 0.0
    #: Quiescent-cycle fast-forward telemetry (windows taken / cycles
    #: skipped).  Host-side performance counters: they never influence
    #: simulated results, which are bitwise identical either way.
    ff_windows: int = 0
    ff_cycles_skipped: int = 0
    #: Periodic steady-state replay telemetry (same contract).
    replay_windows: int = 0
    replay_cycles_skipped: int = 0

    @property
    def cpi(self) -> float:
        """Cycles per committed micro-op."""
        if self.committed_uops == 0:
            return 0.0
        return self.cycles / self.committed_uops

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.committed_uops / self.cycles

    @property
    def cpi_per_instr(self) -> float:
        """Cycles per committed macro instruction."""
        if self.committed_instrs == 0:
            return 0.0
        return self.cycles / self.committed_instrs

    @property
    def mispredict_rate(self) -> float:
        if self.branch_lookups == 0:
            return 0.0
        return self.branch_mispredicts / self.branch_lookups

    @property
    def simulated_uops_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.committed_uops / self.wall_seconds

    def to_dict(self) -> dict:
        """Full serialization: every field survives a round trip.

        Used by the parallel harness (worker -> parent transport) and the
        on-disk result cache, so nothing here may be lossy.
        """
        return {
            "schema": ACCOUNTING_SCHEMA_VERSION,
            "name": self.name,
            "config_name": self.config_name,
            "cycles": self.cycles,
            "committed_uops": self.committed_uops,
            "committed_instrs": self.committed_instrs,
            "report": self.report.to_dict() if self.report else None,
            "memory_stats": self.memory_stats,
            "branch_lookups": self.branch_lookups,
            "branch_mispredicts": self.branch_mispredicts,
            "wrong_path_uops": self.wrong_path_uops,
            "wall_seconds": self.wall_seconds,
            "ff_windows": self.ff_windows,
            "ff_cycles_skipped": self.ff_cycles_skipped,
            "replay_windows": self.replay_windows,
            "replay_cycles_skipped": self.replay_cycles_skipped,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimResult":
        schema = data.get("schema")
        if schema != ACCOUNTING_SCHEMA_VERSION:
            raise ValueError(
                f"result schema {schema!r} != {ACCOUNTING_SCHEMA_VERSION}"
            )
        report = data["report"]
        return cls(
            name=data["name"],
            config_name=data["config_name"],
            cycles=data["cycles"],
            committed_uops=data["committed_uops"],
            committed_instrs=data["committed_instrs"],
            report=MultiStageReport.from_dict(report) if report else None,
            memory_stats=data["memory_stats"],
            branch_lookups=data["branch_lookups"],
            branch_mispredicts=data["branch_mispredicts"],
            wrong_path_uops=data["wrong_path_uops"],
            wall_seconds=data["wall_seconds"],
            ff_windows=data.get("ff_windows", 0),
            ff_cycles_skipped=data.get("ff_cycles_skipped", 0),
            replay_windows=data.get("replay_windows", 0),
            replay_cycles_skipped=data.get("replay_cycles_skipped", 0),
        )

    def fingerprint(self) -> str:
        """Short stable content hash of the fully serialized result.

        Used by the invariant guard's round-trip check and by failure
        reports to identify exactly which payload a worker shipped.
        """
        text = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"),
            default=str,
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    def summary(self) -> dict[str, float]:
        return {
            "cycles": self.cycles,
            "uops": self.committed_uops,
            "instructions": self.committed_instrs,
            "cpi": self.cpi,
            "ipc": self.ipc,
            "mispredict_rate": self.mispredict_rate,
            "wall_seconds": self.wall_seconds,
        }
