"""Shared-memory multi-core engine: N cores over one L3 + DRAM.

:class:`MulticoreSimulator` steps N :class:`CoreSimulator` instances in
cycle lockstep over a :class:`SharedMemoryBackend` (per-core private
L1/L2/TLBs, one shared L3 cache+MSHR file and one DRAM service queue).
Lockstep is enforced by always stepping the unparked, unfinished core
with the minimum ``(cycle, core index)``: no core's clock ever runs
ahead of a sibling that could still issue a shared-level request at an
earlier cycle, so shared-resource arbitration happens in globally
nondecreasing time with a deterministic round-robin tie-break (lowest
core index first among equal cycles).

Barriers (:func:`repro.isa.decoder.barrier` instructions) park the
committing core; when the last unfinished core arrives at cycle
``R = max(t_i)``, every parked core ``i`` resumes with
``unsched_remaining = (R - t_i) + L_i`` where ``L_i`` is its local
release latency — the wait lands in the Unsched accounting component,
exactly like an OS-level futex sleep in the paper's methodology.  Cores
that finish their trace before reaching a barrier count as implicitly
arrived.  A 1-core engine releases a barrier immediately with
``unsched_remaining = L``, which is the plain sync/yield semantics —
the basis of the engine's bitwise 1-core identity guarantee.

Determinism and soundness rules (see DESIGN.md):

* The periodic-replay engine is **disabled** for N > 1: replay
  fingerprints only core-local state, and a skipped period would also
  skip the core's shared-L3/DRAM traffic, corrupting siblings.  The
  1-core engine keeps replay armed (identity with ``CoreSimulator`` is
  proven over the optimized path, not a detuned one).
* Quiescent-cycle fast-forward stays **enabled** for all N: a provably
  quiescent core makes no memory requests inside the window (the wake
  bound covers the frontend too), in-flight completion times were fixed
  when the requests were issued, and the bound is a pure function of
  core-local state — so skipping the window changes no shared state and
  no scheduling decision.
* The engine holds no hidden state besides the barrier bookkeeping:
  results are a pure function of (programs, config, seeds, kwargs),
  byte-identical across runs, processes, and pool start methods.
"""

from __future__ import annotations

import pickle
import time
from pathlib import Path
from typing import Sequence

from repro.config.cores import CoreConfig
from repro.core.wrongpath import WrongPathMode
from repro.isa.instructions import Instruction, Program
from repro.memory.hierarchy import SharedMemoryBackend, legacy_memory_default
from repro.pipeline.core import _MAX_CYCLES_PER_UOP, CoreSimulator
from repro.pipeline.result import SimResult

__all__ = ["MulticoreResult", "MulticoreSimulator"]


class MulticoreResult:
    """Per-core :class:`SimResult` list plus socket-level summaries."""

    __slots__ = ("per_core",)

    def __init__(self, per_core: Sequence[SimResult]) -> None:
        self.per_core = list(per_core)

    @property
    def cores(self) -> int:
        return len(self.per_core)

    @property
    def cycles(self) -> int:
        """Socket makespan: the slowest core's measured cycles."""
        return max(r.cycles for r in self.per_core)

    @property
    def committed_instrs(self) -> int:
        return sum(r.committed_instrs for r in self.per_core)

    @property
    def committed_uops(self) -> int:
        return sum(r.committed_uops for r in self.per_core)

    def fingerprint(self) -> str:
        """Stable content hash over every core's result (order-sensitive)."""
        import hashlib

        digest = hashlib.sha256()
        for result in self.per_core:
            digest.update(result.fingerprint().encode("utf-8"))
            digest.update(b"\0")
        return digest.hexdigest()[:16]


class MulticoreSimulator:
    """Simulates N programs on N cores sharing an L3 and DRAM.

    ``programs[i]`` runs on core ``i`` with seed ``seeds[i]`` (default
    ``seed + i``) and warmup ``warmup_instructions[i]`` (a scalar applies
    to every core).  All other kwargs mirror :class:`CoreSimulator` and
    apply uniformly.

    Guarantee: a 1-core engine is bitwise identical to a standalone
    :class:`CoreSimulator` with the same arguments — same stacks, same
    telemetry, same snapshot bytes modulo the engine wrapper.
    """

    def __init__(
        self,
        programs: Sequence[Program],
        config: CoreConfig,
        *,
        mode: WrongPathMode = WrongPathMode.EXACT,
        accounting: bool = True,
        seed: int = 12345,
        seeds: Sequence[int] | None = None,
        warmup_instructions: int | Sequence[int] = 0,
        accounting_width: int | None = None,
        topdown: bool = False,
        fast_forward: bool | None = None,
        legacy_issue_scan: bool | None = None,
        replay: bool | None = None,
        memory_fast_path: bool | None = None,
        collectors=None,
    ) -> None:
        programs = list(programs)
        if not programs:
            raise ValueError("a multi-core simulation needs at least one core")
        if config.memory is None:
            raise ValueError("core configuration needs a memory hierarchy")
        n = len(programs)
        if seeds is None:
            seeds = tuple(seed + i for i in range(n))
        else:
            seeds = tuple(seeds)
            if len(seeds) != n:
                raise ValueError(
                    f"{len(seeds)} seeds for {n} cores; pass one per core"
                )
        if isinstance(warmup_instructions, int):
            warmups = (warmup_instructions,) * n
        else:
            warmups = tuple(warmup_instructions)
            if len(warmups) != n:
                raise ValueError(
                    f"{len(warmups)} warmup counts for {n} cores"
                )
        self.programs = programs
        self.config = config
        self.name = (
            programs[0].name if n == 1 else f"{programs[0].name}(x{n})"
        )
        # One shared back end; every core's hierarchy must agree with its
        # fast-path flavour, so resolve the flag once here and pass the
        # resolved value down (MemoryHierarchy raises on a mismatch).
        resolved_fast = (
            not legacy_memory_default()
            if memory_fast_path is None
            else memory_fast_path
        )
        self.backend = SharedMemoryBackend(
            config.memory, fast_path=resolved_fast
        )
        self.cores: list[CoreSimulator] = []
        for i, program in enumerate(programs):
            core = CoreSimulator(
                program,
                config,
                mode=mode,
                accounting=accounting,
                seed=seeds[i],
                warmup_instructions=warmups[i],
                accounting_width=accounting_width,
                topdown=topdown,
                fast_forward=fast_forward,
                legacy_issue_scan=legacy_issue_scan,
                replay=replay,
                memory_fast_path=resolved_fast,
                collectors=collectors,
                shared_backend=self.backend,
            )
            core.core_id = i
            core._barrier_hook = self._on_barrier
            if n > 1:
                # Periodic replay is unsound under sharing (a skipped
                # period skips this core's shared-level traffic); the
                # memory fast path arms it even with replay=False, so
                # disarm the engine outright.  1-core keeps it: the
                # identity guarantee must hold over the optimized path.
                core._replay = None
                core._replay_rec = False
            self.cores.append(core)
        #: core_id -> (arrival cycle, local release latency) for cores
        #: currently parked at the pending barrier.
        self._barrier_wait: dict[int, tuple[int, int]] = {}
        self._done = [False] * n
        # Resolved construction arguments, snapshotted verbatim so a
        # checkpoint restores under the same optimization flags even if
        # the environment changed in between (mirrors CoreSimulator).
        core0 = self.cores[0]
        self._engine_kwargs = {
            "mode": mode,
            "seeds": seeds,
            "warmup_instructions": warmups,
            "fast_forward": core0._fast_forward,
            "legacy_issue_scan": core0._legacy_scan,
            "replay": core0._replay_enabled,
            "memory_fast_path": core0._memory_fast,
            "collectors": core0._collector_specs,
        }

    # -- barrier protocol --------------------------------------------------------

    def _on_barrier(self, core: CoreSimulator, instr: Instruction) -> None:
        """Commit-time hook: ``core`` arrived at a barrier this cycle."""
        self._barrier_wait[core.core_id] = (core.cycle, instr.yield_cycles)
        self._maybe_release()

    def _maybe_release(self) -> None:
        """Release the barrier once every unfinished core has arrived.

        Finished cores are implicit arrivals.  Each parked core ``i``
        resumes with ``unsched_remaining = (R - t_i) + L_i`` where
        ``R = max(t_i)``: it burns the cross-core wait plus its local
        release latency as pure Unsched cycles (no pipeline activity, no
        memory traffic), so the out-of-order catch-up interleave after a
        release cannot perturb shared state.
        """
        wait = self._barrier_wait
        if not wait:
            return
        done = self._done
        for i, finished in enumerate(done):
            if not finished and i not in wait:
                return
        release = max(arrived for arrived, _ in wait.values())
        for i, (arrived, latency) in wait.items():
            core = self.cores[i]
            core.unsched_remaining = (release - arrived) + latency
            core.barrier_waiting = False
        wait.clear()

    # -- top-level driver --------------------------------------------------------

    def run(
        self,
        max_cycles: int | None = None,
        *,
        checkpoint_interval: int | None = None,
        checkpoint_key: str | None = None,
        on_checkpoint=None,
    ) -> MulticoreResult:
        """Simulate every core to completion; returns per-core results.

        ``max_cycles`` bounds each individual core's clock; the default
        scales with the largest trace (barrier waits and contention are
        covered by the same generous per-uop slack the single-core bound
        uses).  ``checkpoint_interval`` is measured in *total* committed
        instructions across the socket.
        """
        start = time.perf_counter()
        if max_cycles is None:
            biggest = max(p.uop_count for p in self.programs)
            max_cycles = _MAX_CYCLES_PER_UOP * max(biggest, 1) + 200_000
        cores = self.cores
        n = len(cores)
        done = self._done
        for i, core in enumerate(cores):
            done[i] = not core.unfinished()
        # A resumed snapshot may hold parked cores whose release became
        # due exactly at the snapshot boundary; re-check before stepping.
        self._maybe_release()
        interval = checkpoint_interval or 0
        next_due = 0
        if interval:
            next_due = (
                self._total_committed() // interval + 1
            ) * interval
        while True:
            best = -1
            best_cycle = 0
            for i in range(n):
                if done[i]:
                    continue
                core = cores[i]
                if core.barrier_waiting:
                    continue
                cycle = core.cycle
                if best < 0 or cycle < best_cycle:
                    best = i
                    best_cycle = cycle
            if best < 0:
                if all(done):
                    break
                # Unreachable by construction: the last arrival's hook
                # releases synchronously.  Kept as a hard stop so an
                # engine bug deadlocks loudly instead of spinning.
                raise RuntimeError(
                    "multi-core deadlock: every unfinished core is parked"
                )
            core = cores[best]
            core.step_cycle()
            if core.cycle > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"(likely a scheduling deadlock) for core {best} "
                    f"running {core.program.name}"
                )
            if not core.unfinished():
                done[best] = True
                # A core finishing is an implicit barrier arrival: the
                # remaining parked set may now be complete.
                self._maybe_release()
            if interval and self._total_committed() >= next_due:
                next_due = (
                    self._total_committed() // interval + 1
                ) * interval
                path = None
                if checkpoint_key is not None:
                    from repro.pipeline import checkpoint as _ckpt

                    path = _ckpt.checkpoint_path(
                        checkpoint_key, self._total_committed()
                    )
                    _ckpt.save_checkpoint(
                        path, self.snapshot(), self.checkpoint_meta()
                    )
                if on_checkpoint is not None:
                    on_checkpoint(path, self._total_committed())
        return self._finalize(start)

    def _finalize(self, start: float) -> MulticoreResult:
        """Build per-core results (shared wall clock, engine-wide)."""
        return MulticoreResult(
            [core._finalize(start) for core in self.cores]
        )

    def _total_committed(self) -> int:
        return sum(core.committed_instrs for core in self.cores)

    # -- checkpoint / resume -----------------------------------------------------

    def checkpoint_meta(self) -> dict:
        """Human-readable header metadata for a checkpoint file."""
        return {
            "case": self.name,
            "config": self.config.name,
            "committed_instrs": self._total_committed(),
            "committed_uops": sum(c.committed_uops for c in self.cores),
            "cycle": max(c.cycle for c in self.cores),
            "cores": len(self.cores),
        }

    def snapshot(self) -> bytes:
        """Serialize the complete engine state into one pickle blob.

        One ``pickle.dumps`` call for the same identity-preservation
        reason as :meth:`CoreSimulator.snapshot`.  The shared L3/DRAM
        state appears once per core (each hierarchy snapshot includes
        its shared tail level); the copies are equal at the snapshot
        instant and restore writes the same data N times — consistent
        by idempotence.
        """
        return pickle.dumps(
            {
                "engine": "multicore",
                "programs": [core.program for core in self.cores],
                "config": self.config,
                "kwargs": self._engine_kwargs,
                "barrier_wait": dict(self._barrier_wait),
                "states": [core._state_dict() for core in self.cores],
            }
        )

    @classmethod
    def from_snapshot(cls, payload: bytes) -> "MulticoreSimulator":
        """Rebuild a mid-run engine from a :meth:`snapshot` blob."""
        data = pickle.loads(payload)
        engine = cls(data["programs"], data["config"], **data["kwargs"])
        for core, state in zip(engine.cores, data["states"]):
            core._restore_state(state)
        engine._barrier_wait.clear()
        engine._barrier_wait.update(data["barrier_wait"])
        return engine

    @classmethod
    def resume(cls, path: str | Path) -> "MulticoreSimulator":
        """Rebuild an engine from a checkpoint *file* (verified first)."""
        from repro.pipeline.checkpoint import load_checkpoint

        payload, _meta = load_checkpoint(path)
        return cls.from_snapshot(payload)
