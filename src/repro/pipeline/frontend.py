"""Frontend: fetch, branch prediction, decode and micro-op delivery.

The frontend walks the functional-first trace, paying instruction-cache
latency per fetched line, consulting the branch predictor on every branch,
and expanding macro-ops into micro-ops (rate-limited by the microcode
sequencer for microcoded instructions).  On a misprediction it switches to
**wrong-path mode**, synthesizing micro-ops from the configured wrong-path
template until the core resolves the branch and redirects it; the
correct-path trace position is untouched, so fetch resumes exactly at the
fall-through/target instruction after the redirect penalty.
"""

from __future__ import annotations

import math
import random

from repro.config.cores import CoreConfig
from repro.core.components import Component
from repro.branch.predictors import BranchPredictor
from repro.isa.instructions import Instruction, Program
from repro.isa.registers import NUM_INT_REGS
from repro.isa.uops import MicroOp, UopClass
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.inflight import InflightUop

#: Integer registers the wrong-path synthesizer rotates through.
_WP_REG_BASE = NUM_INT_REGS - 8
_WP_REG_COUNT = 8


class Frontend:
    """Delivers renamed-ready micro-ops into the dispatch queue."""

    def __init__(
        self,
        program: Program,
        config: CoreConfig,
        hierarchy: MemoryHierarchy,
        predictor: BranchPredictor,
        *,
        seed: int = 12345,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.predictor = predictor
        self._instructions = program.instructions
        self._count = len(self._instructions)
        self._idx = 0
        # Current macro-op expansion state.
        self._pending: list[MicroOp] = []
        self._pending_instr: Instruction | None = None
        # Monotonic micro-op sequence and basic-block counters.
        self.seq = 0
        self.block = 0
        # Stall state.
        self._stall_until = 0
        self._stall_reason: Component | None = None
        self._last_reason: Component | None = None
        self._last_line = -1
        # Wrong-path state.
        self.wrong_path = False
        self.resolving_branch: InflightUop | None = None
        self._wp_prev_dst = -1
        self._wp_counter = 0
        self._wp_data_addr = 1 << 22
        self._rng = random.Random(seed)
        # Synchronization barrier state.
        self.waiting_sync: InflightUop | None = None
        # Statistics.
        self.delivered = 0
        self.delivered_wrong = 0
        self.icache_stall_cycles = 0
        #: uclass -> multi-cycle flag, precomputed (latency_of per
        #: delivered micro-op showed in profiles).
        self._multi_cycle = tuple(
            config.latency_of(uclass) > 1 for uclass in UopClass
        )
        #: Synthesized non-load wrong-path micro-ops recur from a small
        #: set of (class, srcs, dst) combinations; MicroOp is immutable
        #: and built for sharing, so cache instead of reconstructing.
        self._wp_uop_cache: dict[tuple, MicroOp] = {}

    # -- status ------------------------------------------------------------------

    @property
    def trace_exhausted(self) -> bool:
        return self._idx >= self._count and not self._pending

    @property
    def idle(self) -> bool:
        """True once the frontend will never deliver again."""
        return (
            self.trace_exhausted
            and not self.wrong_path
            and self.waiting_sync is None
        )

    def reason(self, cycle: int) -> Component | None:
        """Why the frontend is not (fully) delivering this cycle."""
        if self.waiting_sync is not None:
            return Component.UNSCHED
        if cycle < self._stall_until:
            return self._stall_reason
        if self.wrong_path:
            return Component.BPRED
        if self.trace_exhausted:
            return None
        if (
            self._pending_instr is not None
            and self._pending_instr.microcoded
        ):
            return Component.MICROCODE
        return self._last_reason

    def next_event(self, cycle: int) -> float:
        """Earliest future cycle at which frontend behaviour can change
        on its own — the fast-forward engine's frontend bound.

        Returns ``cycle`` itself while the frontend is actively
        delivering (no skipping allowed), the stall end while fetch is
        stalled (the stall's expiry changes :meth:`reason` even if the
        queue stays full), and +inf when only a core-side event (sync
        release, branch resolution) can wake it.
        """
        if self.waiting_sync is not None:
            # Released by the core at sync commit; core-side events cap
            # the skip window.
            return math.inf
        if cycle < self._stall_until:
            return float(self._stall_until)
        if self.idle:
            return math.inf
        return float(cycle)

    def note_skipped_cycles(self, cycle: int, k: int, had_room: bool) -> None:
        """Mirror per-cycle bookkeeping for ``k`` fast-forwarded cycles.

        :meth:`deliver` counts serial I-cache stall cycles when it is
        called with queue room during a stall; skipped cycles must add
        the same amount so frontend statistics match a cycle-by-cycle
        run exactly.
        """
        if (
            had_room
            and self.waiting_sync is None
            and cycle < self._stall_until
            and self._stall_reason is Component.ICACHE
        ):
            self.icache_stall_cycles += min(k, self._stall_until - cycle)

    # -- control from the core ------------------------------------------------

    def redirect(self, cycle: int) -> None:
        """Mispredicted branch resolved: flush and refetch correct path."""
        self.wrong_path = False
        self.resolving_branch = None
        self._pending.clear()
        self._pending_instr = None
        self._stall(cycle + self.config.redirect_penalty, Component.BPRED)
        self._last_line = -1
        self.block += 1

    def sync_released(self) -> None:
        """The yield following a sync instruction has completed."""
        self.waiting_sync = None

    def _stall(self, until: float, reason: Component) -> None:
        if until > self._stall_until:
            self._stall_until = int(until)
        self._stall_reason = reason
        self._last_reason = reason

    # -- delivery ----------------------------------------------------------------

    def deliver(self, cycle: int, room: int) -> list[InflightUop]:
        """Produce up to decode-width micro-ops for the dispatch queue."""
        out: list[InflightUop] = []
        if room <= 0 or self.waiting_sync is not None:
            return out
        if cycle < self._stall_until:
            if self._stall_reason is Component.ICACHE:
                self.icache_stall_cycles += 1
            return out
        budget = min(self.config.decode_width, room)
        if self.wrong_path:
            self._deliver_wrong_path(budget, out)
            return out
        micro_budget = self.config.microcode_uops_per_cycle
        delivered_any = False
        while budget > 0:
            if self._pending:
                instr = self._pending_instr
                assert instr is not None
                if instr.microcoded:
                    if micro_budget <= 0:
                        self._last_reason = Component.MICROCODE
                        break
                    micro_budget -= 1
                uop = self._pending.pop(0)
                last = not self._pending
                inflight = self._wrap(uop, instr, last)
                out.append(inflight)
                delivered_any = True
                budget -= 1
                if last and not self._finish_instr(instr, inflight, cycle):
                    break
                continue
            if self._idx >= self._count:
                break
            if not self._start_instr(cycle):
                break
        # A successful delivery ends the previous stall's tail: later empty
        # queues are throughput effects, not that stall's aftermath.
        if (
            delivered_any
            and cycle >= self._stall_until
            and not self.wrong_path
        ):
            self._last_reason = None
        return out

    def _start_instr(self, cycle: int) -> bool:
        """Fetch the next macro-op; False if fetch stalled."""
        instr = self._instructions[self._idx]
        line = instr.pc >> self.hierarchy.l1i.line_bits
        if line != self._last_line:
            result = self.hierarchy.ifetch(instr.pc, cycle)
            self._last_line = line
            if result.complete > cycle + self.hierarchy.l1i.latency:
                self._stall(result.complete, Component.ICACHE)
                return False
        self._idx += 1
        self._pending = list(instr.uops)
        self._pending_instr = instr
        if instr.microcoded and instr.decode_cycles > len(instr.uops):
            # Sequencer setup cycles beyond the per-uop emission rate.
            extra = instr.decode_cycles - len(instr.uops)
            self._stall(cycle + extra, Component.MICROCODE)
            return False
        return True

    def _wrap(
        self, uop: MicroOp, instr: Instruction, last: bool
    ) -> InflightUop:
        inflight = InflightUop(
            uop,
            instr,
            self.seq,
            self.block,
            last_of_instr=last,
            multi_cycle=self._multi_cycle[uop.uclass],
        )
        self.seq += 1
        self.delivered += 1
        if uop.uclass is UopClass.LOAD and uop.addr >= 0:
            self._wp_data_addr = uop.addr
        return inflight

    def _finish_instr(
        self, instr: Instruction, last_uop: InflightUop, cycle: int
    ) -> bool:
        """Handle end-of-macro-op events; False ends this cycle's delivery."""
        self._pending_instr = None
        if instr.yield_cycles > 0:
            self.waiting_sync = last_uop
            return False
        if not instr.is_branch:
            return True
        self.block += 1
        if self.config.perfect_bpred:
            return True
        prediction = self.predictor.predict(instr.pc)
        mispredicted = not prediction.correct_for(instr.taken, instr.target)
        self.predictor.update(instr.pc, instr.taken, instr.next_pc)
        self.predictor.record(mispredicted)
        if not mispredicted:
            return True
        # Find the BRANCH micro-op of this instruction (the resolver).
        branch_uop = last_uop
        branch_uop.mispredicted = True
        self.wrong_path = True
        self.resolving_branch = branch_uop
        self._wp_prev_dst = -1
        self.block += 1  # wrong-path work gets its own basic block(s)
        return False

    def _deliver_wrong_path(
        self, budget: int, out: list[InflightUop]
    ) -> None:
        """Synthesize wrong-path micro-ops from the configured template."""
        template = self.config.wrong_path
        rng = self._rng
        rng_random = rng.random
        rng_randrange = rng.randrange
        pick_class = template.pick_class
        load_probe_prob = template.load_probe_prob
        multi_cycle = self._multi_cycle
        load_class = UopClass.LOAD
        wp_cache = self._wp_uop_cache
        block = self.block
        seq = self.seq
        wp_counter = self._wp_counter
        wp_prev_dst = self._wp_prev_dst
        out_append = out.append
        for _ in range(budget):
            uclass = pick_class(rng_random())
            if uclass is load_class and rng_random() >= load_probe_prob:
                uclass = UopClass.ALU
            dst = _WP_REG_BASE + wp_counter % _WP_REG_COUNT
            wp_counter += 1
            srcs: tuple[int, ...] = ()
            if wp_prev_dst >= 0 and rng_random() < 0.4:
                srcs = (wp_prev_dst,)
            if uclass is load_class:
                addr = max(
                    0,
                    self._wp_data_addr + rng_randrange(-8192, 8192),
                )
                uop = MicroOp(uclass, srcs=srcs, dst=dst, addr=addr, size=8)
            else:
                key = (uclass, srcs, dst)
                uop = wp_cache.get(key)
                if uop is None:
                    uop = MicroOp(uclass, srcs=srcs, dst=dst, addr=-1, size=8)
                    wp_cache[key] = uop
            inflight = InflightUop(
                uop,
                None,
                seq,
                block,
                wrong_path=True,
                last_of_instr=True,
                multi_cycle=multi_cycle[uclass],
            )
            seq += 1
            wp_prev_dst = dst
            out_append(inflight)
        self.seq = seq
        self.delivered_wrong += budget
        self._wp_counter = wp_counter
        self._wp_prev_dst = wp_prev_dst
