"""Frontend: fetch, branch prediction, decode and micro-op delivery.

The frontend walks the functional-first trace, paying instruction-cache
latency per fetched line, consulting the branch predictor on every branch,
and expanding macro-ops into micro-ops (rate-limited by the microcode
sequencer for microcoded instructions).  On a misprediction it switches to
**wrong-path mode**, synthesizing micro-ops from the configured wrong-path
template until the core resolves the branch and redirects it; the
correct-path trace position is untouched, so fetch resumes exactly at the
fall-through/target instruction after the redirect penalty.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right

from repro.config.cores import CoreConfig
from repro.core.components import Component
from repro.branch.predictors import BranchPredictor
from repro.isa.instructions import Instruction, Program
from repro.isa.registers import NUM_INT_REGS
from repro.isa.uops import MicroOp, UopClass
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.inflight import (
    _IS_VU_NONVFP,
    _OPS_OF,
    _POOL_OF,
    InflightUop,
    UopPool,
)

#: Integer registers the wrong-path synthesizer rotates through.
_WP_REG_BASE = NUM_INT_REGS - 8
_WP_REG_COUNT = 8
#: Destination registers / singleton source tuples by rotation offset
#: (one tuple allocation per synthesized micro-op showed in profiles).
_WP_DSTS = tuple(_WP_REG_BASE + i for i in range(_WP_REG_COUNT))
_WP_SRC1 = tuple((r,) for r in _WP_DSTS)
# The synthesizer's uop cache packs (uclass, dst offset, src offset) into
# one int key: 4 bits each for the offsets requires the rotation window
# to stay within 15 registers.
assert _WP_REG_COUNT <= 15


class Frontend:
    """Delivers renamed-ready micro-ops into the dispatch queue."""

    def __init__(
        self,
        program: Program,
        config: CoreConfig,
        hierarchy: MemoryHierarchy,
        predictor: BranchPredictor,
        *,
        seed: int = 12345,
        pool: UopPool | None = None,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.predictor = predictor
        self._instructions = program.instructions
        self._count = len(self._instructions)
        self._idx = 0
        #: Dynamic micro-op records come from the core's shared free-list
        #: pool (a private one when constructed standalone in tests).
        self._pool = UopPool() if pool is None else pool
        # Current macro-op expansion state: an index cursor over the
        # memoized decode of the current instruction (see _start_instr).
        # Each row carries the micro-op plus every static classification
        # the delivery loop would otherwise recompute per dynamic
        # instance: (uop, is_load, is_store, is_branch, multi_cycle,
        # fu_pool, flops_per_lane, is_vu_nonvfp, wp_addr).
        self._decoded: tuple[tuple, ...] = ()
        self._decoded_idx = 0
        self._decoded_len = 0
        self._pending_instr: Instruction | None = None
        # Monotonic micro-op sequence and basic-block counters.
        self.seq = 0
        self.block = 0
        # Stall state.
        self._stall_until = 0
        self._stall_reason: Component | None = None
        self._last_reason: Component | None = None
        self._last_line = -1
        # Wrong-path state.
        self.wrong_path = False
        self.resolving_branch: InflightUop | None = None
        self._wp_prev_dst = -1
        self._wp_counter = 0
        self._wp_data_addr = 1 << 22
        self._rng = random.Random(seed)
        # Synchronization barrier state.
        self.waiting_sync: InflightUop | None = None
        # Statistics.
        self.delivered = 0
        self.delivered_wrong = 0
        self.icache_stall_cycles = 0
        #: uclass -> multi-cycle flag, precomputed (latency_of per
        #: delivered micro-op showed in profiles).
        self._multi_cycle = tuple(
            config.latency_of(uclass) > 1 for uclass in UopClass
        )
        # Per-uop hot-path constants hoisted out of the delivery loop.
        self._decode_width = config.decode_width
        self._micro_rate = config.microcode_uops_per_cycle
        self._line_bits = hierarchy.l1i.line_bits
        self._l1i_latency = hierarchy.l1i.latency
        #: Synthesized non-load wrong-path micro-ops recur from a small
        #: set of (class, srcs, dst) combinations; MicroOp is immutable
        #: and built for sharing, so cache instead of reconstructing.
        #: Keyed by ``(uclass << 8) | (dst_off << 4) | src_off`` — the
        #: three coordinates packed into one int (tuple keys showed in
        #: mispredict-heavy profiles).
        self._wp_uop_cache: dict[int, MicroOp] = {}
        #: pc -> (instruction, decoded rows): loop bodies re-decode the
        #: same static instructions every iteration, so the expansion
        #: (including the full per-uop static classification — see the
        #: ``_decoded`` row layout above) is memoized per pc.  Entries
        #: are validated by instruction identity, so a different
        #: Instruction object at the same pc (self-modifying traces,
        #: hand-built programs) replaces the stale expansion instead of
        #: reusing it.
        self._decode_cache: dict[
            int, tuple[Instruction, tuple[tuple, ...]]
        ] = {}

    # -- status ------------------------------------------------------------------

    @property
    def trace_exhausted(self) -> bool:
        return (
            self._idx >= self._count
            and self._decoded_idx >= self._decoded_len
        )

    @property
    def idle(self) -> bool:
        """True once the frontend will never deliver again."""
        return (
            self.trace_exhausted
            and not self.wrong_path
            and self.waiting_sync is None
        )

    def reason(self, cycle: int) -> Component | None:
        """Why the frontend is not (fully) delivering this cycle.

        The fused event step (``CoreSimulator._step_event``) inlines this
        logic on its per-cycle sampling path; keep the branch order here
        and there in sync.
        """
        if self.waiting_sync is not None:
            return Component.UNSCHED
        if cycle < self._stall_until:
            return self._stall_reason
        if self.wrong_path:
            return Component.BPRED
        if self.trace_exhausted:
            return None
        if (
            self._pending_instr is not None
            and self._pending_instr.microcoded
        ):
            return Component.MICROCODE
        return self._last_reason

    def next_event(self, cycle: int) -> float:
        """Earliest future cycle at which frontend behaviour can change
        on its own — the fast-forward engine's frontend bound.

        Returns ``cycle`` itself while the frontend is actively
        delivering (no skipping allowed), the stall end while fetch is
        stalled (the stall's expiry changes :meth:`reason` even if the
        queue stays full), and +inf when only a core-side event (sync
        release, branch resolution) can wake it.
        """
        if self.waiting_sync is not None:
            # Released by the core at sync commit; core-side events cap
            # the skip window.
            return math.inf
        if cycle < self._stall_until:
            return float(self._stall_until)
        if self.idle:
            return math.inf
        return float(cycle)

    def note_skipped_cycles(self, cycle: int, k: int, had_room: bool) -> None:
        """Mirror per-cycle bookkeeping for ``k`` fast-forwarded cycles.

        :meth:`deliver` counts serial I-cache stall cycles when it is
        called with queue room during a stall; skipped cycles must add
        the same amount so frontend statistics match a cycle-by-cycle
        run exactly.
        """
        if (
            had_room
            and self.waiting_sync is None
            and cycle < self._stall_until
            and self._stall_reason is Component.ICACHE
        ):
            self.icache_stall_cycles += min(k, self._stall_until - cycle)

    def fingerprint(self, cycle: int) -> tuple:
        """Delivery-state snapshot for the replay engine, shift-normalized.

        Trace position, ``seq`` and ``block`` are deliberately excluded —
        the engine compares them modulo the detected period and shifts
        them on a jump.  Counters are excluded (delta-advanced).  The
        stall deadline is expressed relative to ``cycle``; ``_last_line``
        stays absolute because loop bodies refetch the same lines each
        iteration.  The wrong-path RNG state is included verbatim: it
        never revisits a prior state once consumed, so any window that
        contains wrong-path delivery self-excludes.
        """
        stall = self._stall_until - cycle
        return (
            self._pending_instr,
            self._decoded_idx,
            self._decoded_len,
            stall if stall > 0 else 0,
            self._stall_reason,
            self._last_reason,
            self._last_line,
            self.wrong_path,
            self.resolving_branch is None,
            self.waiting_sync is None,
            self._wp_prev_dst,
            self._wp_counter,
            self._wp_data_addr,
            self._rng.getstate(),
        )

    def snapshot(self) -> dict:
        """Picklable full state for the checkpoint engine.

        Everything mutable goes in: trace/decode position, stall state,
        wrong-path machinery (including the RNG via ``getstate``), sync
        barrier, and the delivery counters.  The in-flight uop references
        (``resolving_branch``, ``waiting_sync``) are stored as live
        objects — the simulator pickles its whole state in one pass, so
        the memo keeps them identical to the ROB/scheduler entries.
        The ``_decode_cache``/``_wp_uop_cache`` memos are deliberately
        excluded: they are rebuilt on demand and carry no behaviour
        (``_decoded`` itself is saved, so a mid-expansion cursor
        resumes on the exact same rows).
        """
        return {
            "idx": self._idx,
            "decoded": self._decoded,
            "decoded_idx": self._decoded_idx,
            "decoded_len": self._decoded_len,
            "pending_instr": self._pending_instr,
            "seq": self.seq,
            "block": self.block,
            "stall_until": self._stall_until,
            "stall_reason": self._stall_reason,
            "last_reason": self._last_reason,
            "last_line": self._last_line,
            "wrong_path": self.wrong_path,
            "resolving_branch": self.resolving_branch,
            "wp_prev_dst": self._wp_prev_dst,
            "wp_counter": self._wp_counter,
            "wp_data_addr": self._wp_data_addr,
            "rng": self._rng.getstate(),
            "waiting_sync": self.waiting_sync,
            "delivered": self.delivered,
            "delivered_wrong": self.delivered_wrong,
            "icache_stall_cycles": self.icache_stall_cycles,
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot`; mutates this frontend in place."""
        self._idx = state["idx"]
        self._decoded = state["decoded"]
        self._decoded_idx = state["decoded_idx"]
        self._decoded_len = state["decoded_len"]
        self._pending_instr = state["pending_instr"]
        self.seq = state["seq"]
        self.block = state["block"]
        self._stall_until = state["stall_until"]
        self._stall_reason = state["stall_reason"]
        self._last_reason = state["last_reason"]
        self._last_line = state["last_line"]
        self.wrong_path = state["wrong_path"]
        self.resolving_branch = state["resolving_branch"]
        self._wp_prev_dst = state["wp_prev_dst"]
        self._wp_counter = state["wp_counter"]
        self._wp_data_addr = state["wp_data_addr"]
        self._rng.setstate(state["rng"])
        self.waiting_sync = state["waiting_sync"]
        self.delivered = state["delivered"]
        self.delivered_wrong = state["delivered_wrong"]
        self.icache_stall_cycles = state["icache_stall_cycles"]

    def shift(
        self, cycle: int, cycles: int, instrs: int, seqs: int, blocks: int
    ) -> None:
        """Advance trace position and name spaces after a replay jump."""
        self._idx += instrs
        self.seq += seqs
        self.block += blocks
        if self._stall_until > cycle:
            self._stall_until += cycles

    # -- control from the core ------------------------------------------------

    def redirect(self, cycle: int) -> None:
        """Mispredicted branch resolved: flush and refetch correct path."""
        self.wrong_path = False
        self.resolving_branch = None
        self._decoded = ()
        self._decoded_idx = 0
        self._decoded_len = 0
        self._pending_instr = None
        self._stall(cycle + self.config.redirect_penalty, Component.BPRED)
        self._last_line = -1
        self.block += 1

    def sync_released(self) -> None:
        """The yield following a sync instruction has completed."""
        self.waiting_sync = None

    def _stall(self, until: float, reason: Component) -> None:
        if until > self._stall_until:
            self._stall_until = int(until)
        self._stall_reason = reason
        self._last_reason = reason

    # -- delivery ----------------------------------------------------------------

    def deliver(self, cycle: int, room: int, out=None):
        """Produce up to decode-width micro-ops for the dispatch queue.

        Appends into ``out`` when given (the core passes its uop queue
        directly, avoiding a per-cycle list) and always returns it.
        """
        if out is None:
            out = []
        if room <= 0 or self.waiting_sync is not None:
            return out
        if cycle < self._stall_until:
            if self._stall_reason is Component.ICACHE:
                self.icache_stall_cycles += 1
            return out
        width = self._decode_width
        budget = room if room < width else width
        if self.wrong_path:
            self._deliver_wrong_path(budget, out)
            return out
        micro_budget = self._micro_rate
        delivered_any = False
        # Pool acquire and the non-branch _finish_instr fast path are
        # inlined: both ran once per delivered micro-op / instruction,
        # and the decode rows carry every static classification so the
        # record is filled with plain slot stores.
        seq = self.seq
        block = self.block
        n_delivered = 0
        free = self._pool._free
        free_pop = free.pop
        out_append = out.append
        while budget > 0:
            instr = self._pending_instr
            if instr is not None:
                # Drain the current expansion through a local cursor: the
                # per-row attribute churn on self showed in profiles.
                decoded = self._decoded
                dlen = self._decoded_len
                idx = self._decoded_idx
                microcoded = instr.microcoded
                halt = False
                while idx < dlen and budget > 0:
                    if microcoded:
                        if micro_budget <= 0:
                            self._last_reason = Component.MICROCODE
                            halt = True
                            break
                        micro_budget -= 1
                    (
                        uop, is_load, is_store, is_branch, multi_cycle,
                        pool_idx, ops, is_vu_nonvfp, wp_addr,
                    ) = decoded[idx]
                    idx += 1
                    last = idx == dlen
                    if free:
                        # Recycled records arrive with empty edge lists
                        # and parked/waiters cleared (UopPool.release
                        # invariant); deps_left is assigned at rename.
                        inflight = free_pop()
                        inflight.uop = uop
                        inflight.instr = instr
                        inflight.seq = seq
                        inflight.block_id = block
                        inflight.wrong_path = False
                        inflight.last_of_instr = last
                        inflight.issued = False
                        inflight.done = False
                        inflight.squashed = False
                        inflight.is_load = is_load
                        inflight.is_store = is_store
                        inflight.is_branch = is_branch
                        inflight.multi_cycle = multi_cycle
                        inflight.dcache_miss = False
                        inflight.mispredicted = False
                        inflight.parked = False
                        inflight.pool = pool_idx
                        inflight.ops = ops
                        inflight.is_vu_nonvfp = is_vu_nonvfp
                    else:
                        inflight = InflightUop(
                            uop, instr, seq, block,
                            last_of_instr=last,
                            multi_cycle=multi_cycle,
                        )
                    seq += 1
                    n_delivered += 1
                    if wp_addr >= 0:
                        self._wp_data_addr = wp_addr
                    out_append(inflight)
                    delivered_any = True
                    budget -= 1
                    if last:
                        self._pending_instr = None
                        if instr.yield_cycles > 0 or instr.is_branch:
                            self.seq = seq
                            if not self._finish_instr(
                                instr, inflight, cycle
                            ):
                                halt = True
                            else:
                                block = self.block
                        break  # expansion done; advance to the next instr
                self._decoded_idx = idx
                if halt:
                    break
                if idx >= dlen and self._pending_instr is instr:
                    # Degenerate empty expansion: retire it so the outer
                    # loop can advance instead of spinning.
                    self._pending_instr = None
                continue
            i = self._idx
            if i >= self._count:
                break
            # _start_instr's fast path inlined: same I-cache line as the
            # previous fetch, decode memo hit, not microcoded.  When the
            # whole expansion also fits this cycle's remaining budget —
            # the common case for 1-3 uop instructions under a 4-wide
            # decoder — the rows are minted right here, bypassing the
            # ``_decoded`` cursor state entirely.
            instr = self._instructions[i]
            pc = instr.pc
            if (pc >> self._line_bits) == self._last_line:
                cached = self._decode_cache.get(pc)
                if (
                    cached is not None
                    and cached[0] is instr
                    and not instr.microcoded
                ):
                    self._idx = i + 1
                    decoded = cached[1]
                    dlen = len(decoded)
                    if dlen > budget:
                        self._decoded = decoded
                        self._decoded_idx = 0
                        self._decoded_len = dlen
                        self._pending_instr = instr
                        continue
                    budget -= dlen
                    n_delivered += dlen
                    rows_left = dlen
                    inflight = None
                    for row in decoded:
                        (
                            uop, is_load, is_store, is_branch,
                            multi_cycle, pool_idx, ops, is_vu_nonvfp,
                            wp_addr,
                        ) = row
                        rows_left -= 1
                        if free:
                            # Same mint as the drain loop above.
                            inflight = free_pop()
                            inflight.uop = uop
                            inflight.instr = instr
                            inflight.seq = seq
                            inflight.block_id = block
                            inflight.wrong_path = False
                            inflight.last_of_instr = rows_left == 0
                            inflight.issued = False
                            inflight.done = False
                            inflight.squashed = False
                            inflight.is_load = is_load
                            inflight.is_store = is_store
                            inflight.is_branch = is_branch
                            inflight.multi_cycle = multi_cycle
                            inflight.dcache_miss = False
                            inflight.mispredicted = False
                            inflight.parked = False
                            inflight.pool = pool_idx
                            inflight.ops = ops
                            inflight.is_vu_nonvfp = is_vu_nonvfp
                        else:
                            inflight = InflightUop(
                                uop, instr, seq, block,
                                last_of_instr=rows_left == 0,
                                multi_cycle=multi_cycle,
                            )
                        seq += 1
                        if wp_addr >= 0:
                            self._wp_data_addr = wp_addr
                        out_append(inflight)
                    if dlen:
                        delivered_any = True
                        if instr.yield_cycles > 0 or instr.is_branch:
                            self.seq = seq
                            if not self._finish_instr(
                                instr, inflight, cycle
                            ):
                                break
                            block = self.block
                    continue
            if not self._start_instr(cycle):
                break
        self.seq = seq
        self.delivered += n_delivered
        # A successful delivery ends the previous stall's tail: later empty
        # queues are throughput effects, not that stall's aftermath.
        if (
            delivered_any
            and cycle >= self._stall_until
            and not self.wrong_path
        ):
            self._last_reason = None
        return out

    def _start_instr(self, cycle: int) -> bool:
        """Fetch the next macro-op; False if fetch stalled."""
        instr = self._instructions[self._idx]
        line = instr.pc >> self._line_bits
        if line != self._last_line:
            result = self.hierarchy.ifetch(instr.pc, cycle)
            self._last_line = line
            if result.complete > cycle + self._l1i_latency:
                self._stall(result.complete, Component.ICACHE)
                return False
        self._idx += 1
        cached = self._decode_cache.get(instr.pc)
        if cached is not None and cached[0] is instr:
            decoded = cached[1]
        else:
            decoded = self._decode(instr)
            self._decode_cache[instr.pc] = (instr, decoded)
        self._decoded = decoded
        self._decoded_idx = 0
        self._decoded_len = len(decoded)
        self._pending_instr = instr
        if instr.microcoded and instr.decode_cycles > len(instr.uops):
            # Sequencer setup cycles beyond the per-uop emission rate.
            extra = instr.decode_cycles - len(instr.uops)
            self._stall(cycle + extra, Component.MICROCODE)
            return False
        return True

    def _decode(self, instr: Instruction) -> tuple[tuple, ...]:
        """Expand a macro-op into fully classified micro-op rows.

        Every static property the delivery loop needs to mint an
        :class:`InflightUop` is computed once here and memoized with the
        expansion; ``wp_addr`` is the data address a load publishes to
        the wrong-path synthesizer (-1 when not applicable).
        """
        multi_cycle = self._multi_cycle
        load_class = UopClass.LOAD
        store_class = UopClass.STORE
        branch_class = UopClass.BRANCH
        rows = []
        for uop in instr.uops:
            uclass = uop.uclass
            is_load = uclass is load_class
            rows.append((
                uop,
                is_load,
                uclass is store_class,
                uclass is branch_class,
                multi_cycle[uclass] or is_load,
                _POOL_OF[uclass],
                _OPS_OF[uclass],
                _IS_VU_NONVFP[uclass],
                uop.addr if is_load and uop.addr >= 0 else -1,
            ))
        return tuple(rows)

    def _finish_instr(
        self, instr: Instruction, last_uop: InflightUop, cycle: int
    ) -> bool:
        """Handle end-of-macro-op events; False ends this cycle's delivery."""
        self._pending_instr = None
        if instr.yield_cycles > 0:
            self.waiting_sync = last_uop
            return False
        if not instr.is_branch:
            return True
        self.block += 1
        if self.config.perfect_bpred:
            return True
        prediction = self.predictor.predict(instr.pc)
        mispredicted = not prediction.correct_for(instr.taken, instr.target)
        self.predictor.update(instr.pc, instr.taken, instr.next_pc)
        self.predictor.record(mispredicted)
        if not mispredicted:
            return True
        # Find the BRANCH micro-op of this instruction (the resolver).
        branch_uop = last_uop
        branch_uop.mispredicted = True
        self.wrong_path = True
        self.resolving_branch = branch_uop
        self._wp_prev_dst = -1
        self.block += 1  # wrong-path work gets its own basic block(s)
        return False

    def _deliver_wrong_path(
        self, budget: int, out: list[InflightUop]
    ) -> None:
        """Synthesize wrong-path micro-ops from the configured template."""
        template = self.config.wrong_path
        rng = self._rng
        rng_random = rng.random
        # randrange(-8192, 8192) inlined: CPython's _randbelow draws
        # 15-bit words and rejects >= 16384, so this consumes the exact
        # same underlying bit stream (state and values are identical).
        rng_getrandbits = rng.getrandbits
        # pick_class inlined (one call per synthesized micro-op): same
        # bisect over the cumulative thresholds, same final clamp.
        cum = template._cum
        classes = template._classes
        last_class = len(classes) - 1
        load_probe_prob = template.load_probe_prob
        multi_cycle = self._multi_cycle
        load_class = UopClass.LOAD
        alu_class = UopClass.ALU
        store_class = UopClass.STORE
        branch_class = UopClass.BRANCH
        wp_cache = self._wp_uop_cache
        wp_cache_get = wp_cache.get
        free = self._pool._free
        free_pop = free.pop
        block = self.block
        seq = self.seq
        wp_counter = self._wp_counter
        wp_prev_dst = self._wp_prev_dst
        out_append = out.append
        for _ in range(budget):
            index = bisect_right(cum, rng_random())
            uclass = classes[last_class if index > last_class else index]
            if uclass is load_class and rng_random() >= load_probe_prob:
                uclass = alu_class
            dst_off = wp_counter % _WP_REG_COUNT
            dst = _WP_DSTS[dst_off]
            wp_counter += 1
            if wp_prev_dst >= 0 and rng_random() < 0.4:
                src_off = wp_prev_dst - _WP_REG_BASE + 1
                srcs: tuple[int, ...] = _WP_SRC1[src_off - 1]
            else:
                src_off = 0
                srcs = ()
            is_load = uclass is load_class
            if is_load:
                off = rng_getrandbits(15)
                while off >= 16384:
                    off = rng_getrandbits(15)
                addr = self._wp_data_addr + off - 8192
                if addr < 0:
                    addr = 0
                uop = MicroOp(uclass, srcs=srcs, dst=dst, addr=addr, size=8)
            else:
                key = (uclass << 8) | (dst_off << 4) | src_off
                uop = wp_cache_get(key)
                if uop is None:
                    uop = MicroOp(uclass, srcs=srcs, dst=dst, addr=-1, size=8)
                    wp_cache[key] = uop
            # Pool acquire inlined (one call per synthesized micro-op
            # showed in mispredict-heavy profiles); same invariants as
            # the correct-path mint in deliver().
            if free:
                inflight = free_pop()
                inflight.uop = uop
                inflight.instr = None
                inflight.seq = seq
                inflight.block_id = block
                inflight.wrong_path = True
                inflight.last_of_instr = True
                inflight.issued = False
                inflight.done = False
                inflight.squashed = False
                inflight.is_load = is_load
                inflight.is_store = uclass is store_class
                inflight.is_branch = uclass is branch_class
                inflight.multi_cycle = multi_cycle[uclass] or is_load
                inflight.dcache_miss = False
                inflight.mispredicted = False
                inflight.parked = False
                inflight.pool = _POOL_OF[uclass]
                inflight.ops = _OPS_OF[uclass]
                inflight.is_vu_nonvfp = _IS_VU_NONVFP[uclass]
            else:
                inflight = InflightUop(
                    uop, None, seq, block,
                    wrong_path=True,
                    last_of_instr=True,
                    multi_cycle=multi_cycle[uclass],
                )
            seq += 1
            wp_prev_dst = dst
            out_append(inflight)
        self.seq = seq
        self.delivered_wrong += budget
        self._wp_counter = wp_counter
        self._wp_prev_dst = wp_prev_dst
