"""Dynamic (in-flight) micro-op records.

The static trace (:class:`repro.isa.MicroOp`) is immutable; every dynamic
instance in the pipeline gets one :class:`InflightUop` carrying its
execution state.  The attribute set doubles as the
:class:`repro.core.blame.BlamableUop` protocol used by the accountants.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction
from repro.isa.uops import FLOPS_PER_LANE, MicroOp, UopClass

#: Functional-unit pool indices (see
#: :class:`repro.pipeline.resources.FunctionalUnitPool`).
POOL_ALU = 0
POOL_MUL = 1
POOL_VU = 2
POOL_LOAD = 3
POOL_STORE = 4
POOL_BRANCH = 5

#: UopClass value -> FU pool index (kept in UopClass declaration order).
_POOL_OF: tuple[int, ...] = (
    POOL_ALU,     # NOP
    POOL_ALU,     # ALU
    POOL_MUL,     # MUL
    POOL_MUL,     # DIV
    POOL_BRANCH,  # BRANCH
    POOL_LOAD,    # LOAD
    POOL_STORE,   # STORE
    POOL_VU,      # FP_ADD
    POOL_VU,      # FP_MUL
    POOL_VU,      # FP_DIV
    POOL_VU,      # FMA
    POOL_VU,      # VEC_INT
    POOL_VU,      # BROADCAST
    POOL_ALU,     # SYNC
)

#: Int-indexed lookups for the constructor fast path (one InflightUop is
#: built per dynamic micro-op; dict/enum lookups here showed in profiles).
_OPS_OF: tuple[int, ...] = tuple(
    FLOPS_PER_LANE.get(UopClass(i), 0) for i in range(len(UopClass))
)
_IS_VU_NONVFP: tuple[bool, ...] = tuple(
    UopClass(i) in (UopClass.VEC_INT, UopClass.BROADCAST)
    for i in range(len(UopClass))
)
_LOAD = UopClass.LOAD
_STORE = UopClass.STORE
_BRANCH = UopClass.BRANCH


class InflightUop:
    """One micro-op instance flowing through the pipeline."""

    __slots__ = (
        "uop",
        "instr",
        "seq",
        "block_id",
        "wrong_path",
        "last_of_instr",
        # dependence tracking
        "producers",
        "consumers",
        "deps_left",
        # execution state
        "issued",
        "done",
        "squashed",
        # classification for the accountants (BlamableUop protocol)
        "is_load",
        "is_store",
        "is_branch",
        "multi_cycle",
        "dcache_miss",
        # branch state
        "mispredicted",
        # scheduler state (event-driven issue)
        "parked",
        "waiters",
        # precomputed fast-path constants
        "pool",
        "ops",
        "is_vu_nonvfp",
    )

    def __init__(
        self,
        uop: MicroOp,
        instr: Instruction | None,
        seq: int,
        block_id: int,
        *,
        wrong_path: bool = False,
        last_of_instr: bool = False,
        multi_cycle: bool = False,
    ) -> None:
        self.producers: list[InflightUop] = []
        self.consumers: list[InflightUop] = []
        self.reinit(
            uop, instr, seq, block_id, wrong_path, last_of_instr, multi_cycle
        )

    def reinit(
        self,
        uop: MicroOp,
        instr: Instruction | None,
        seq: int,
        block_id: int,
        wrong_path: bool,
        last_of_instr: bool,
        multi_cycle: bool,
    ) -> None:
        """Reset every scalar slot for a fresh dynamic instance.

        ``producers``/``consumers`` are *not* touched here: the pool clears
        them at release time (:meth:`UopPool.release`), so a recycled record
        arrives with empty edge lists already in place.
        """
        self.uop = uop
        self.instr = instr
        self.seq = seq
        self.block_id = block_id
        self.wrong_path = wrong_path
        self.last_of_instr = last_of_instr
        self.deps_left = 0
        self.issued = False
        self.done = False
        self.squashed = False
        uclass = uop.uclass
        is_load = uclass is _LOAD
        self.is_load = is_load
        self.is_store = uclass is _STORE
        self.is_branch = uclass is _BRANCH
        self.multi_cycle = multi_cycle or is_load
        self.dcache_miss = False
        self.mispredicted = False
        self.parked = False
        self.waiters = None
        self.pool = _POOL_OF[uclass]
        self.ops = _OPS_OF[uclass]
        self.is_vu_nonvfp = _IS_VU_NONVFP[uclass]

    @property
    def ready(self) -> bool:
        """All register operands available (memory conflicts checked at
        issue time by the scheduler)."""
        return self.deps_left == 0

    def first_unfinished_producer(self) -> "InflightUop | None":
        """prod(i) for the issue-stage accountant: the first producer whose
        result is still outstanding (Table II, issue column, line 10)."""
        for producer in self.producers:
            if not producer.done:
                return producer
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            flag
            for flag, on in (
                ("W", self.wrong_path),
                ("I", self.issued),
                ("D", self.done),
                ("S", self.squashed),
            )
            if on
        )
        return f"<uop#{self.seq} {self.uop.uclass.name} {flags}>"


class UopPool:
    """Free-list recycler for :class:`InflightUop` records.

    Building one record per dynamic micro-op showed up in per-cycle
    profiles; the pipeline retires ~ROB-size records at a time, so a small
    free list covers the whole run.  The core releases records at commit,
    squash and wrong-path writeback after severing every dependence edge
    that still points at them, so a recycled record can never be reached
    through a stale reference (stale scheduler-queue entries are detected
    by their snapshotted ``seq`` no longer matching).
    """

    __slots__ = ("_free",)

    def __init__(self) -> None:
        self._free: list[InflightUop] = []

    def acquire(
        self,
        uop: MicroOp,
        instr: Instruction | None,
        seq: int,
        block_id: int,
        wrong_path: bool,
        last_of_instr: bool,
        multi_cycle: bool,
    ) -> InflightUop:
        free = self._free
        if not free:
            return InflightUop(
                uop, instr, seq, block_id,
                wrong_path=wrong_path,
                last_of_instr=last_of_instr,
                multi_cycle=multi_cycle,
            )
        # ``reinit`` inlined: one record is recycled per delivered
        # micro-op, and the extra method call showed in profiles.
        # ``deps_left`` is assigned (not accumulated) at rename time and
        # ``waiters`` is cleared by :meth:`release`, so neither needs a
        # reset here.
        inflight = free.pop()
        inflight.uop = uop
        inflight.instr = instr
        inflight.seq = seq
        inflight.block_id = block_id
        inflight.wrong_path = wrong_path
        inflight.last_of_instr = last_of_instr
        inflight.issued = False
        inflight.done = False
        inflight.squashed = False
        uclass = uop.uclass
        is_load = uclass is _LOAD
        inflight.is_load = is_load
        inflight.is_store = uclass is _STORE
        inflight.is_branch = uclass is _BRANCH
        inflight.multi_cycle = multi_cycle or is_load
        inflight.dcache_miss = False
        inflight.mispredicted = False
        inflight.parked = False
        inflight.pool = _POOL_OF[uclass]
        inflight.ops = _OPS_OF[uclass]
        inflight.is_vu_nonvfp = _IS_VU_NONVFP[uclass]
        return inflight

    def release(self, uop: InflightUop) -> None:
        """Return a record whose dynamic life is over to the free list."""
        uop.producers.clear()
        uop.consumers.clear()
        uop.waiters = None
        self._free.append(uop)

    def __len__(self) -> int:
        return len(self._free)
