"""Branch direction predictors and the branch target buffer.

The frontend consults a direction predictor plus a BTB each time it fetches
a branch; a wrong direction *or* a wrong/unknown target of a taken branch is
a misprediction, which sends the frontend down the wrong path until the
branch executes (paper Sec. III-B).  Perfect prediction — "including perfect
target prediction" — is the paper's bpred idealization.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Fibonacci multiplicative constant used to spread instruction addresses
#: across predictor tables.  Real predictors fold many pc bits into the
#: index; without this, block-aligned code (branches every 512 bytes, say)
#: would alias catastrophically in a low-bit-indexed table.
_HASH_MULT = 2654435761


def _pc_hash(pc: int) -> int:
    return ((pc >> 2) * _HASH_MULT) >> 11


@dataclass(frozen=True, slots=True)
class Prediction:
    """Outcome of one predictor consultation."""

    taken: bool
    #: Predicted target, or None if the BTB has no entry.
    target: int | None

    def correct_for(self, taken: bool, target: int) -> bool:
        """True if this prediction matches the resolved branch."""
        if self.taken != taken:
            return False
        if taken and self.target != target:
            return False
        return True


class BranchTargetBuffer:
    """Direct-mapped branch target buffer with tag matching."""

    __slots__ = ("entries", "_mask", "_table")

    def __init__(self, entries: int) -> None:
        if entries < 1 or entries & (entries - 1):
            raise ValueError("BTB entries must be a positive power of two")
        self.entries = entries
        self._mask = entries - 1
        # index -> (pc tag, target)
        self._table: dict[int, tuple[int, int]] = {}

    def lookup(self, pc: int) -> int | None:
        entry = self._table.get(_pc_hash(pc) & self._mask)
        if entry is not None and entry[0] == pc:
            return entry[1]
        return None

    def update(self, pc: int, target: int) -> None:
        self._table[_pc_hash(pc) & self._mask] = (pc, target)

    def fingerprint(self) -> tuple:
        """Table snapshot for the replay engine's fixed-point check.

        Sorted by index: dict insertion order carries no behaviour here
        (lookups are keyed, never iterated).
        """
        return tuple(sorted(self._table.items()))

    def snapshot(self) -> list:
        """Picklable full state (index -> (tag, target) pairs)."""
        return list(self._table.items())

    def restore(self, state: list) -> None:
        """Inverse of :meth:`snapshot`; mutates the table in place."""
        self._table.clear()
        self._table.update((idx, tuple(entry)) for idx, entry in state)


class BranchPredictor:
    """Base class: direction predictor combined with a BTB."""

    def __init__(self, btb_entries: int = 1024) -> None:
        self.btb = BranchTargetBuffer(btb_entries)
        self.lookups = 0
        self.mispredicts = 0

    def predict(self, pc: int) -> Prediction:
        """Predict direction and target for the branch at ``pc``."""
        taken = self._predict_direction(pc)
        target = self.btb.lookup(pc) if taken else None
        return Prediction(taken=taken, target=target)

    def update(self, pc: int, taken: bool, target: int) -> None:
        """Train on the resolved branch."""
        self._update_direction(pc, taken)
        if taken:
            self.btb.update(pc, target)

    def record(self, mispredicted: bool) -> None:
        """Bookkeeping used by simulator statistics."""
        self.lookups += 1
        if mispredicted:
            self.mispredicts += 1

    @property
    def mispredict_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.mispredicts / self.lookups

    def fingerprint(self) -> tuple:
        """Predictive state (direction tables + BTB) for the replay
        engine; the lookup/mispredict counters are delta-advanced and
        therefore excluded."""
        return (self._direction_fingerprint(), self.btb.fingerprint())

    def snapshot(self) -> dict:
        """Picklable full state: BTB, counters, direction tables."""
        return {
            "btb": self.btb.snapshot(),
            "lookups": self.lookups,
            "mispredicts": self.mispredicts,
            "direction": self._direction_snapshot(),
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot`; mutates in place (the simulator
        and replay engine hold live references to this object)."""
        self.btb.restore(state["btb"])
        self.lookups = state["lookups"]
        self.mispredicts = state["mispredicts"]
        self._direction_restore(state["direction"])

    # -- direction policy (overridden by subclasses) -------------------------

    def _predict_direction(self, pc: int) -> bool:
        raise NotImplementedError

    def _update_direction(self, pc: int, taken: bool) -> None:
        raise NotImplementedError

    def _direction_fingerprint(self) -> object:
        """Direction-predictor state; stateless policies return None."""
        return None

    def _direction_snapshot(self) -> object:
        """Serializable direction state; stateless policies return None."""
        return None

    def _direction_restore(self, state: object) -> None:
        """Inverse of :meth:`_direction_snapshot`."""
        if state is not None:  # pragma: no cover - schema guard
            raise ValueError("stateless predictor given direction state")


class PerfectPredictor(BranchPredictor):
    """Always correct — used for the perfect-bpred idealization.

    The pipeline special-cases perfection (it knows the resolved outcome),
    so this class simply reports whatever it is trained with; it exists so
    code paths that expect a predictor object keep working.
    """

    def __init__(self, btb_entries: int = 1) -> None:
        super().__init__(btb_entries=1)
        self.is_perfect = True

    def _predict_direction(self, pc: int) -> bool:  # pragma: no cover
        return True

    def _update_direction(self, pc: int, taken: bool) -> None:
        pass


class AlwaysTakenPredictor(BranchPredictor):
    """Static predict-taken baseline."""

    def _predict_direction(self, pc: int) -> bool:
        return True

    def _update_direction(self, pc: int, taken: bool) -> None:
        pass


class BimodalPredictor(BranchPredictor):
    """Per-pc 2-bit saturating counters."""

    def __init__(self, bits: int = 12, btb_entries: int = 1024) -> None:
        super().__init__(btb_entries)
        if bits < 1 or bits > 24:
            raise ValueError("bimodal table bits out of range")
        self._mask = (1 << bits) - 1
        self._counters = bytearray([2] * (1 << bits))  # weakly taken

    def _index(self, pc: int) -> int:
        return _pc_hash(pc) & self._mask

    def _predict_direction(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def _update_direction(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        counter = self._counters[idx]
        if taken:
            if counter < 3:
                self._counters[idx] = counter + 1
        elif counter > 0:
            self._counters[idx] = counter - 1

    def _direction_fingerprint(self) -> object:
        return bytes(self._counters)

    def _direction_snapshot(self) -> object:
        return bytes(self._counters)

    def _direction_restore(self, state: object) -> None:
        self._counters[:] = state


class GsharePredictor(BranchPredictor):
    """Global-history predictor: pc XOR history indexes 2-bit counters."""

    def __init__(self, bits: int = 12, btb_entries: int = 1024) -> None:
        super().__init__(btb_entries)
        if bits < 1 or bits > 24:
            raise ValueError("gshare table bits out of range")
        self.bits = bits
        self._mask = (1 << bits) - 1
        self._counters = bytearray([2] * (1 << bits))
        self._history = 0

    def _index(self, pc: int) -> int:
        return (_pc_hash(pc) ^ self._history) & self._mask

    def _predict_direction(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def _update_direction(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        counter = self._counters[idx]
        if taken:
            if counter < 3:
                self._counters[idx] = counter + 1
        elif counter > 0:
            self._counters[idx] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._mask

    def _direction_fingerprint(self) -> object:
        return (bytes(self._counters), self._history)

    def _direction_snapshot(self) -> object:
        return (bytes(self._counters), self._history)

    def _direction_restore(self, state: object) -> None:
        counters, history = state
        self._counters[:] = counters
        self._history = history


class TournamentPredictor(BranchPredictor):
    """Chooser-selected combination of bimodal and gshare components."""

    def __init__(self, bits: int = 12, btb_entries: int = 1024) -> None:
        super().__init__(btb_entries)
        self._bimodal = BimodalPredictor(bits, btb_entries=1)
        self._gshare = GsharePredictor(bits, btb_entries=1)
        self._mask = (1 << bits) - 1
        # 2-bit chooser: >=2 selects gshare.
        self._chooser = bytearray([2] * (1 << bits))

    def _predict_direction(self, pc: int) -> bool:
        idx = _pc_hash(pc) & self._mask
        if self._chooser[idx] >= 2:
            return self._gshare._predict_direction(pc)
        return self._bimodal._predict_direction(pc)

    def _update_direction(self, pc: int, taken: bool) -> None:
        bimodal_correct = self._bimodal._predict_direction(pc) == taken
        gshare_correct = self._gshare._predict_direction(pc) == taken
        idx = _pc_hash(pc) & self._mask
        chooser = self._chooser[idx]
        if gshare_correct and not bimodal_correct and chooser < 3:
            self._chooser[idx] = chooser + 1
        elif bimodal_correct and not gshare_correct and chooser > 0:
            self._chooser[idx] = chooser - 1
        self._bimodal._update_direction(pc, taken)
        self._gshare._update_direction(pc, taken)

    def _direction_fingerprint(self) -> object:
        return (
            self._bimodal._direction_fingerprint(),
            self._gshare._direction_fingerprint(),
            bytes(self._chooser),
        )

    def _direction_snapshot(self) -> object:
        return (
            self._bimodal._direction_snapshot(),
            self._gshare._direction_snapshot(),
            bytes(self._chooser),
        )

    def _direction_restore(self, state: object) -> None:
        bimodal, gshare, chooser = state
        self._bimodal._direction_restore(bimodal)
        self._gshare._direction_restore(gshare)
        self._chooser[:] = chooser


_PREDICTORS = {
    "perfect": PerfectPredictor,
    "always-taken": AlwaysTakenPredictor,
    "bimodal": BimodalPredictor,
    "gshare": GsharePredictor,
    "tournament": TournamentPredictor,
}


def make_predictor(
    kind: str, bits: int = 12, btb_entries: int = 1024
) -> BranchPredictor:
    """Instantiate a predictor by configuration name."""
    try:
        cls = _PREDICTORS[kind]
    except KeyError:
        raise KeyError(
            f"unknown predictor {kind!r}; available: {sorted(_PREDICTORS)}"
        ) from None
    if cls in (AlwaysTakenPredictor, PerfectPredictor):
        return cls()
    return cls(bits=bits, btb_entries=btb_entries)
