"""Branch prediction substrate: direction predictors and a BTB."""

from repro.branch.predictors import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    BranchPredictor,
    BranchTargetBuffer,
    GsharePredictor,
    PerfectPredictor,
    Prediction,
    TournamentPredictor,
    make_predictor,
)

__all__ = [
    "AlwaysTakenPredictor",
    "BimodalPredictor",
    "BranchPredictor",
    "BranchTargetBuffer",
    "GsharePredictor",
    "PerfectPredictor",
    "Prediction",
    "TournamentPredictor",
    "make_predictor",
]
