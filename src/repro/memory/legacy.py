"""Dict-backed cache/TLB reference implementations (differential oracle).

These are the pre-optimization structures, kept verbatim behind the
``REPRO_LEGACY_MEMORY=1`` / ``memory_fast_path=False`` gate (the
``REPRO_LEGACY_ISSUE_SCAN`` pattern): each set is a dict whose insertion
order is the LRU order.  The flat-array :class:`repro.memory.cache.Cache`
and :class:`repro.memory.tlb.Tlb` must stay bitwise interchangeable with
these — same hit/miss/eviction decisions, same statistics, same
``fingerprint``/``snapshot`` schema — which the memory differential suite
checks access-by-access and run-by-run.
"""

from __future__ import annotations

from repro.config.cores import CacheConfig, TlbConfig
from repro.memory.cache import CacheStats, Evicted


class LegacyCache:
    """One cache level over dict-per-set storage.

    Lines are identified by ``addr >> line_bits``.  Each set is a dict whose
    insertion order is the LRU order (oldest first); hits reinsert the line
    to move it to the MRU position.
    """

    __slots__ = (
        "name",
        "config",
        "line_bits",
        "set_mask",
        "latency",
        "_sets",
        "_occupancy",
        "stats",
    )

    def __init__(self, config: CacheConfig, name: str) -> None:
        self.name = name
        self.config = config
        self.line_bits = config.line_bytes.bit_length() - 1
        if (1 << self.line_bits) != config.line_bytes:
            raise ValueError("cache line size must be a power of two")
        self.set_mask = config.num_sets - 1
        self.latency = config.latency
        # set index -> {line: dirty}
        self._sets: list[dict[int, bool]] = [
            {} for _ in range(config.num_sets)
        ]
        self._occupancy = 0
        self.stats = CacheStats()

    def line_of(self, addr: int) -> int:
        return addr >> self.line_bits

    def _set_for(self, line: int) -> dict[int, bool]:
        return self._sets[line & self.set_mask]

    def lookup(self, line: int) -> bool:
        """Access the cache; True on hit.  Updates LRU and statistics."""
        cache_set = self._set_for(line)
        self.stats.accesses += 1
        if line in cache_set:
            dirty = cache_set.pop(line)
            cache_set[line] = dirty  # move to MRU position
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def probe(self, line: int) -> bool:
        """Check presence without perturbing LRU or statistics."""
        return line in self._set_for(line)

    def insert(
        self, line: int, *, dirty: bool = False, prefetch: bool = False
    ) -> Evicted | None:
        """Fill ``line``; returns the victim if one was evicted."""
        cache_set = self._set_for(line)
        if line in cache_set:
            cache_set[line] = cache_set[line] or dirty
            return None
        victim: Evicted | None = None
        if len(cache_set) >= self.config.associativity:
            victim_line = next(iter(cache_set))
            victim_dirty = cache_set.pop(victim_line)
            victim = Evicted(victim_line, victim_dirty)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.dirty_evictions += 1
        cache_set[line] = dirty
        if victim is None:
            self._occupancy += 1
        if prefetch:
            self.stats.prefetch_fills += 1
        return victim

    def fill(self, line: int, *, dirty: bool = False,
             prefetch: bool = False) -> int:
        """Allocation-free :meth:`insert`: the dirty victim's line, or -1.

        Clean evictions (and fills without eviction) return -1 — the
        caller only needs the line of a victim whose writeback will
        consume bandwidth.  Statistics match :meth:`insert` exactly.
        """
        victim = self.insert(line, dirty=dirty, prefetch=prefetch)
        if victim is not None and victim.dirty:
            return victim.line
        return -1

    def fingerprint(self) -> tuple:
        """Structural state snapshot for the replay engine's fixed-point
        check: every tag and dirty bit, in LRU order per set.  Counters
        are excluded — the engine advances them arithmetically."""
        return tuple(tuple(s.items()) for s in self._sets)

    def snapshot(self) -> dict:
        """Picklable full state: tags + dirty bits in LRU order per set,
        the occupancy count, and every statistics counter."""
        return {
            "sets": [list(s.items()) for s in self._sets],
            "occupancy": self._occupancy,
            "stats": {
                "accesses": self.stats.accesses,
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "evictions": self.stats.evictions,
                "dirty_evictions": self.stats.dirty_evictions,
                "prefetch_fills": self.stats.prefetch_fills,
            },
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot`.

        Mutates the existing set dicts and ``stats`` object in place —
        the replay engine holds live references to ``stats`` — and
        rebuilds each set's dict in saved order so LRU behaviour (and
        thus every later eviction) is bitwise reproduced.  Accepts
        snapshots written by the flat-array :class:`Cache` (same schema).
        """
        for cache_set, saved in zip(self._sets, state["sets"]):
            cache_set.clear()
            cache_set.update(saved)
        self._occupancy = state["occupancy"]
        stats = state["stats"]
        self.stats.accesses = stats["accesses"]
        self.stats.hits = stats["hits"]
        self.stats.misses = stats["misses"]
        self.stats.evictions = stats["evictions"]
        self.stats.dirty_evictions = stats["dirty_evictions"]
        self.stats.prefetch_fills = stats["prefetch_fills"]

    def mark_dirty(self, line: int) -> None:
        """Set the dirty bit if the line is present."""
        cache_set = self._set_for(line)
        if line in cache_set:
            cache_set[line] = True

    def mark_dirty_mru(self, line: int) -> None:
        """Dirty the MRU way of ``line``'s set (``line`` just hit)."""
        self._set_for(line)[line] = True

    def invalidate(self, line: int) -> None:
        # The stored value is the dirty *bool*, so a ``None`` sentinel
        # unambiguously means the line was absent.
        if self._set_for(line).pop(line, None) is not None:
            self._occupancy -= 1

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently cached."""
        return self._occupancy


class LegacyTlb:
    """Fully-associative TLB with true LRU replacement (dict-backed)."""

    __slots__ = ("config", "page_bits", "_entries", "accesses", "misses")

    def __init__(self, config: TlbConfig) -> None:
        self.config = config
        self.page_bits = config.page_bytes.bit_length() - 1
        if (1 << self.page_bits) != config.page_bytes:
            raise ValueError("TLB page size must be a power of two")
        # dict insertion order is the LRU order (oldest first).
        self._entries: dict[int, None] = {}
        self.accesses = 0
        self.misses = 0

    def access(self, addr: int) -> int:
        """Translate ``addr``; returns the extra latency (0 on a hit)."""
        page = addr >> self.page_bits
        self.accesses += 1
        entries = self._entries
        if page in entries:
            del entries[page]
            entries[page] = None
            return 0
        self.misses += 1
        if len(entries) >= self.config.entries:
            del entries[next(iter(entries))]
        entries[page] = None
        return self.config.miss_penalty

    def fingerprint(self) -> tuple:
        """Entry set in LRU order (the replay engine's fixed-point check);
        counters are excluded (delta-advanced)."""
        return tuple(self._entries)

    def snapshot(self) -> dict:
        """Picklable full state (entries in LRU order + counters)."""
        return {
            "entries": list(self._entries),
            "accesses": self.accesses,
            "misses": self.misses,
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot`; rebuilds LRU order in place."""
        self._entries.clear()
        for page in state["entries"]:
            self._entries[page] = None
        self.accesses = state["accesses"]
        self.misses = state["misses"]

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses
