"""Memory hierarchy substrate.

A non-blocking multi-level hierarchy: split L1 instruction/data caches over
a **unified** L2 (and optional L3) with finite MSHRs per level, a stream
prefetcher training on L1D demand misses and injecting into the L2, and a
latency/bandwidth DRAM model.  Timing is computed analytically at access
time (Sniper-style): an access walks the hierarchy and returns its absolute
completion cycle, with MSHR occupancy at every level modelled as queueing.

The unified L2 and the finite L2 MSHR file are not incidental detail: they
produce the paper's second-order effects — I$/D$ coupling (Fig. 3b) and
prefetch-induced MSHR contention that defeats the I-cache idealization
(Fig. 3c).
"""

from repro.memory.cache import Cache, CacheStats
from repro.memory.dram import DramModel
from repro.memory.hierarchy import AccessResult, MemoryHierarchy
from repro.memory.mshr import MshrFile
from repro.memory.prefetcher import StreamPrefetcher
from repro.memory.tlb import Tlb

__all__ = [
    "AccessResult",
    "Cache",
    "CacheStats",
    "DramModel",
    "MemoryHierarchy",
    "MshrFile",
    "StreamPrefetcher",
    "Tlb",
]
