"""Set-associative write-back cache with true LRU replacement.

Storage is flat per-set line/dirty arrays: position in the array *is* the
LRU order (index 0 oldest, the last element MRU).  Hits on the MRU way —
the loop-dominant case — short-circuit with zero reordering work; other
hits are one C-level scan plus a delete/append pair.  The dict-per-set
reference implementation lives in :mod:`repro.memory.legacy`
(``REPRO_LEGACY_MEMORY=1``) and the two are kept bitwise interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.cores import CacheConfig


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/eviction counters for one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    prefetch_fills: int = 0

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def as_dict(self) -> dict[str, float]:
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "miss_rate": self.miss_rate,
            "evictions": self.evictions,
            "dirty_evictions": self.dirty_evictions,
            "prefetch_fills": self.prefetch_fills,
        }


@dataclass(frozen=True, slots=True)
class Evicted:
    """An evicted line (returned so writebacks can consume bandwidth)."""

    line: int
    dirty: bool


class Cache:
    """One cache level.

    Lines are identified by ``addr >> line_bits``.  Each set is a pair of
    parallel arrays (``_set_lines[i]`` / ``_set_dirty[i]``) ordered oldest
    to newest: the last element is the MRU way, the first is the eviction
    victim.  Hits move the line to the end; :meth:`insert` on a present
    line leaves its position untouched (matching the dict semantics of
    :class:`repro.memory.legacy.LegacyCache`).
    """

    __slots__ = (
        "name",
        "config",
        "line_bits",
        "set_mask",
        "latency",
        "associativity",
        "_set_lines",
        "_set_dirty",
        "_occupancy",
        "stats",
    )

    def __init__(self, config: CacheConfig, name: str) -> None:
        self.name = name
        self.config = config
        self.line_bits = config.line_bytes.bit_length() - 1
        if (1 << self.line_bits) != config.line_bytes:
            raise ValueError("cache line size must be a power of two")
        self.set_mask = config.num_sets - 1
        self.latency = config.latency
        self.associativity = config.associativity
        # Parallel per-set arrays, LRU order (oldest first, MRU last).
        self._set_lines: list[list[int]] = [
            [] for _ in range(config.num_sets)
        ]
        self._set_dirty: list[list[bool]] = [
            [] for _ in range(config.num_sets)
        ]
        self._occupancy = 0
        self.stats = CacheStats()

    def line_of(self, addr: int) -> int:
        return addr >> self.line_bits

    def lookup(self, line: int) -> bool:
        """Access the cache; True on hit.  Updates LRU and statistics."""
        lines = self._set_lines[line & self.set_mask]
        stats = self.stats
        stats.accesses += 1
        if lines:
            if lines[-1] == line:
                # MRU short-circuit: re-accessing the newest way needs no
                # reordering (the loop-dominant case).
                stats.hits += 1
                return True
            if line in lines:
                i = lines.index(line)
                del lines[i]
                lines.append(line)
                dirty = self._set_dirty[line & self.set_mask]
                d = dirty[i]
                del dirty[i]
                dirty.append(d)
                stats.hits += 1
                return True
        stats.misses += 1
        return False

    def probe(self, line: int) -> bool:
        """Check presence without perturbing LRU or statistics."""
        return line in self._set_lines[line & self.set_mask]

    def insert(
        self, line: int, *, dirty: bool = False, prefetch: bool = False
    ) -> Evicted | None:
        """Fill ``line``; returns the victim if one was evicted."""
        idx = line & self.set_mask
        lines = self._set_lines[idx]
        dirty_bits = self._set_dirty[idx]
        if line in lines:
            i = lines.index(line)
            dirty_bits[i] = dirty_bits[i] or dirty
            return None
        victim: Evicted | None = None
        if len(lines) >= self.associativity:
            victim_dirty = dirty_bits[0]
            victim = Evicted(lines[0], victim_dirty)
            del lines[0]
            del dirty_bits[0]
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.dirty_evictions += 1
        else:
            self._occupancy += 1
        lines.append(line)
        dirty_bits.append(dirty)
        if prefetch:
            self.stats.prefetch_fills += 1
        return victim

    def fill(self, line: int, *, dirty: bool = False,
             prefetch: bool = False) -> int:
        """Allocation-free :meth:`insert`: the dirty victim's line, or -1.

        Clean evictions (and fills without eviction) return -1 — the
        caller only needs the line of a victim whose writeback will
        consume bandwidth, so no :class:`Evicted` is built for the
        common clean case.  Statistics match :meth:`insert` exactly.
        """
        idx = line & self.set_mask
        lines = self._set_lines[idx]
        dirty_bits = self._set_dirty[idx]
        if line in lines:
            i = lines.index(line)
            dirty_bits[i] = dirty_bits[i] or dirty
            return -1
        out = -1
        if len(lines) >= self.associativity:
            if dirty_bits[0]:
                self.stats.dirty_evictions += 1
                out = lines[0]
            self.stats.evictions += 1
            del lines[0]
            del dirty_bits[0]
        else:
            self._occupancy += 1
        lines.append(line)
        dirty_bits.append(dirty)
        if prefetch:
            self.stats.prefetch_fills += 1
        return out

    def fingerprint(self) -> tuple:
        """Structural state snapshot for the replay engine's fixed-point
        check: every tag and dirty bit, in LRU order per set.  Counters
        are excluded — the engine advances them arithmetically.  The
        format matches :class:`LegacyCache` exactly (tuples of
        ``(line, dirty)`` pairs)."""
        return tuple(
            tuple(zip(lines, dirty))
            for lines, dirty in zip(self._set_lines, self._set_dirty)
        )

    def snapshot(self) -> dict:
        """Picklable full state: tags + dirty bits in LRU order per set,
        the occupancy count, and every statistics counter.  Schema-stable
        with :class:`LegacyCache` — snapshots restore across the two."""
        return {
            "sets": [
                list(zip(lines, dirty))
                for lines, dirty in zip(self._set_lines, self._set_dirty)
            ],
            "occupancy": self._occupancy,
            "stats": {
                "accesses": self.stats.accesses,
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "evictions": self.stats.evictions,
                "dirty_evictions": self.stats.dirty_evictions,
                "prefetch_fills": self.stats.prefetch_fills,
            },
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot`.

        Mutates the existing arrays and ``stats`` object in place —
        the replay engine holds live references to ``stats`` — and
        rebuilds each set in saved order so LRU behaviour (and thus
        every later eviction) is bitwise reproduced.
        """
        for idx, saved in enumerate(state["sets"]):
            lines = self._set_lines[idx]
            dirty_bits = self._set_dirty[idx]
            lines.clear()
            dirty_bits.clear()
            for line, dirty in saved:
                lines.append(line)
                dirty_bits.append(dirty)
        self._occupancy = state["occupancy"]
        stats = state["stats"]
        self.stats.accesses = stats["accesses"]
        self.stats.hits = stats["hits"]
        self.stats.misses = stats["misses"]
        self.stats.evictions = stats["evictions"]
        self.stats.dirty_evictions = stats["dirty_evictions"]
        self.stats.prefetch_fills = stats["prefetch_fills"]

    def mark_dirty(self, line: int) -> None:
        """Set the dirty bit if the line is present."""
        idx = line & self.set_mask
        lines = self._set_lines[idx]
        if line in lines:
            self._set_dirty[idx][lines.index(line)] = True

    def mark_dirty_mru(self, line: int) -> None:
        """Dirty the MRU way of ``line``'s set.

        Hot-path variant of :meth:`mark_dirty` for the store-hit case:
        the caller has just hit ``line`` via :meth:`lookup`, so it is
        guaranteed to sit in the MRU position — no scan needed.
        """
        self._set_dirty[line & self.set_mask][-1] = True

    def invalidate(self, line: int) -> None:
        idx = line & self.set_mask
        lines = self._set_lines[idx]
        if line in lines:
            i = lines.index(line)
            del lines[i]
            del self._set_dirty[idx][i]
            self._occupancy -= 1

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently cached.

        Maintained as a running count in :meth:`insert`/:meth:`fill`/
        :meth:`invalidate` (an eviction replaces its victim, so the count
        is unchanged); summing set sizes per query was O(num_sets) and
        showed up when occupancy was polled every cycle.
        """
        return self._occupancy
