"""Set-associative write-back cache with true LRU replacement."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.cores import CacheConfig


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/eviction counters for one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    prefetch_fills: int = 0

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def as_dict(self) -> dict[str, float]:
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "miss_rate": self.miss_rate,
            "evictions": self.evictions,
            "dirty_evictions": self.dirty_evictions,
            "prefetch_fills": self.prefetch_fills,
        }


@dataclass(frozen=True, slots=True)
class Evicted:
    """An evicted line (returned so writebacks can consume bandwidth)."""

    line: int
    dirty: bool


class Cache:
    """One cache level.

    Lines are identified by ``addr >> line_bits``.  Each set is a dict whose
    insertion order is the LRU order (oldest first); hits reinsert the line
    to move it to the MRU position.
    """

    __slots__ = (
        "name",
        "config",
        "line_bits",
        "set_mask",
        "latency",
        "_sets",
        "_occupancy",
        "stats",
    )

    def __init__(self, config: CacheConfig, name: str) -> None:
        self.name = name
        self.config = config
        self.line_bits = config.line_bytes.bit_length() - 1
        if (1 << self.line_bits) != config.line_bytes:
            raise ValueError("cache line size must be a power of two")
        self.set_mask = config.num_sets - 1
        self.latency = config.latency
        # set index -> {line: dirty}
        self._sets: list[dict[int, bool]] = [
            {} for _ in range(config.num_sets)
        ]
        self._occupancy = 0
        self.stats = CacheStats()

    def line_of(self, addr: int) -> int:
        return addr >> self.line_bits

    def _set_for(self, line: int) -> dict[int, bool]:
        return self._sets[line & self.set_mask]

    def lookup(self, line: int) -> bool:
        """Access the cache; True on hit.  Updates LRU and statistics."""
        cache_set = self._set_for(line)
        self.stats.accesses += 1
        if line in cache_set:
            dirty = cache_set.pop(line)
            cache_set[line] = dirty  # move to MRU position
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def probe(self, line: int) -> bool:
        """Check presence without perturbing LRU or statistics."""
        return line in self._set_for(line)

    def insert(
        self, line: int, *, dirty: bool = False, prefetch: bool = False
    ) -> Evicted | None:
        """Fill ``line``; returns the victim if one was evicted."""
        cache_set = self._set_for(line)
        if line in cache_set:
            cache_set[line] = cache_set[line] or dirty
            return None
        victim: Evicted | None = None
        if len(cache_set) >= self.config.associativity:
            victim_line = next(iter(cache_set))
            victim_dirty = cache_set.pop(victim_line)
            victim = Evicted(victim_line, victim_dirty)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.dirty_evictions += 1
        cache_set[line] = dirty
        if victim is None:
            self._occupancy += 1
        if prefetch:
            self.stats.prefetch_fills += 1
        return victim

    def fingerprint(self) -> tuple:
        """Structural state snapshot for the replay engine's fixed-point
        check: every tag and dirty bit, in LRU order per set.  Counters
        are excluded — the engine advances them arithmetically."""
        return tuple(tuple(s.items()) for s in self._sets)

    def snapshot(self) -> dict:
        """Picklable full state: tags + dirty bits in LRU order per set,
        the occupancy count, and every statistics counter."""
        return {
            "sets": [list(s.items()) for s in self._sets],
            "occupancy": self._occupancy,
            "stats": {
                "accesses": self.stats.accesses,
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "evictions": self.stats.evictions,
                "dirty_evictions": self.stats.dirty_evictions,
                "prefetch_fills": self.stats.prefetch_fills,
            },
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot`.

        Mutates the existing set dicts and ``stats`` object in place —
        the replay engine holds live references to ``stats`` — and
        rebuilds each set's dict in saved order so LRU behaviour (and
        thus every later eviction) is bitwise reproduced.
        """
        for cache_set, saved in zip(self._sets, state["sets"]):
            cache_set.clear()
            cache_set.update(saved)
        self._occupancy = state["occupancy"]
        stats = state["stats"]
        self.stats.accesses = stats["accesses"]
        self.stats.hits = stats["hits"]
        self.stats.misses = stats["misses"]
        self.stats.evictions = stats["evictions"]
        self.stats.dirty_evictions = stats["dirty_evictions"]
        self.stats.prefetch_fills = stats["prefetch_fills"]

    def mark_dirty(self, line: int) -> None:
        """Set the dirty bit if the line is present."""
        cache_set = self._set_for(line)
        if line in cache_set:
            cache_set[line] = True

    def invalidate(self, line: int) -> None:
        # The stored value is the dirty *bool*, so a ``None`` sentinel
        # unambiguously means the line was absent.
        if self._set_for(line).pop(line, None) is not None:
            self._occupancy -= 1

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently cached.

        Maintained as a running count in :meth:`insert`/:meth:`invalidate`
        (an eviction replaces its victim, so the count is unchanged);
        summing set sizes per query was O(num_sets) and showed up when
        occupancy was polled every cycle.
        """
        return self._occupancy
