"""Stream prefetcher.

Trains on L1D demand accesses per 4 KB region; once a region shows a
monotonic line stride it becomes a stream, and every subsequent demand
access in the region triggers ``degree`` prefetches ``distance`` lines ahead
into the L2.  Prefetches consume L2 MSHRs and DRAM bandwidth like demand
misses — "contention remains high because hardware prefetching continues"
(Fig. 3c discussion).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.cores import PrefetcherConfig

#: Region granularity for stream detection (lines per 4 KB page).
_REGION_BITS = 12

#: Shared empty result for the no-prefetch cases: ``on_demand_access`` is
#: called on every demand load, and allocating a fresh empty list per call
#: showed up on the hot path.  Callers only iterate the result.
_NO_PREFETCHES: list[int] = []


@dataclass(slots=True)
class _Stream:
    """Per-region stream state."""

    last_line: int
    direction: int = 0
    confidence: int = 0
    #: Most advanced line already requested for this stream.
    frontier: int = 0


class StreamPrefetcher:
    """Multi-stream detector with bounded stream table (LRU on regions)."""

    __slots__ = ("config", "line_bytes", "_streams", "issued", "triggers")

    def __init__(self, config: PrefetcherConfig, line_bytes: int) -> None:
        self.config = config
        self.line_bytes = line_bytes
        # region id -> stream state; dict order is LRU (oldest first).
        self._streams: dict[int, _Stream] = {}
        self.issued = 0
        self.triggers = 0

    def _region_of(self, line: int) -> int:
        shift = _REGION_BITS - (self.line_bytes.bit_length() - 1)
        return line >> shift

    def on_demand_access(self, line: int) -> list[int]:
        """Observe a demand L1D access; returns lines to prefetch into L2."""
        if not self.config.enabled:
            return _NO_PREFETCHES
        region = self._region_of(line)
        streams = self._streams
        stream = streams.pop(region, None)
        if stream is None:
            if len(streams) >= self.config.streams:
                del streams[next(iter(streams))]
            streams[region] = _Stream(last_line=line, frontier=line)
            return _NO_PREFETCHES
        streams[region] = stream  # refresh LRU position
        delta = line - stream.last_line
        stream.last_line = line
        if delta == 0:
            return _NO_PREFETCHES
        direction = 1 if delta > 0 else -1
        if direction == stream.direction:
            if stream.confidence < 8:
                stream.confidence += 1
        else:
            stream.direction = direction
            stream.confidence = 1
            stream.frontier = line
            return _NO_PREFETCHES
        if stream.confidence < self.config.train_threshold:
            return _NO_PREFETCHES
        # Trained: fetch `degree` new lines, up to `distance` ahead.
        self.triggers += 1
        targets: list[int] = []
        limit = line + direction * self.config.distance
        next_line = stream.frontier + direction
        if direction > 0:
            next_line = max(next_line, line + 1)
        else:
            next_line = min(next_line, line - 1)
        for _ in range(self.config.degree):
            past_limit = (
                next_line > limit if direction > 0 else next_line < limit
            )
            if past_limit:
                break
            targets.append(next_line)
            next_line += direction
        if targets:
            stream.frontier = targets[-1]
            self.issued += len(targets)
        return targets

    def fingerprint(self) -> tuple:
        """Stream-table snapshot in LRU order (replay engine fixed-point
        check); the ``issued``/``triggers`` counters are excluded."""
        return tuple(
            (region, s.last_line, s.direction, s.confidence, s.frontier)
            for region, s in self._streams.items()
        )

    def snapshot(self) -> dict:
        """Picklable full state (stream table in LRU order + counters)."""
        return {
            "streams": [
                (region, s.last_line, s.direction, s.confidence, s.frontier)
                for region, s in self._streams.items()
            ],
            "issued": self.issued,
            "triggers": self.triggers,
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot`; mutates in place (LRU preserved)."""
        self._streams.clear()
        for region, last_line, direction, confidence, frontier in state[
            "streams"
        ]:
            self._streams[region] = _Stream(
                last_line=last_line,
                direction=direction,
                confidence=confidence,
                frontier=frontier,
            )
        self.issued = state["issued"]
        self.triggers = state["triggers"]

    def reset(self) -> None:
        self._streams.clear()
