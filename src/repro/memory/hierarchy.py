"""The composed memory hierarchy with analytic, contention-aware timing.

Access timing is computed at request time by walking the hierarchy: each
level either hits (adding its latency), merges into an already outstanding
miss for the same line, or misses — acquiring an MSHR slot (queueing when
the file is full) and recursing to the next level.  The L2 and L3 are
unified: the instruction and data chains share them, so instruction fills
evict data lines and vice versa (the Fig. 3b coupling).

The common case — TLB hit plus L1 hit — runs on an allocation-free fast
path: no ``_access`` recursion, no MSHR probe beyond one dict ``get``, no
heap ops, no per-access string or :class:`Evicted` construction, and the
returned :class:`AccessResult` is a preallocated per-hierarchy object
(every minimum-latency hit is identical except for ``complete``, which is
rewritten in place; callers read results immediately and never retain
them).  ``REPRO_LEGACY_MEMORY=1`` / ``fast_path=False`` selects the
pre-optimization walk over dict-backed caches
(:mod:`repro.memory.legacy`) as a differential oracle — both paths are
bitwise identical, which ``tests/test_memory_hotpath.py`` proves.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from heapq import heappop, heappush

from repro.config.cores import MemoryConfig
from repro.memory.cache import Cache
from repro.memory.dram import DramModel
from repro.memory.legacy import LegacyCache, LegacyTlb
from repro.memory.mshr import MshrFile
from repro.memory.prefetcher import StreamPrefetcher
from repro.memory.tlb import Tlb

#: Environment escape hatch for the allocation-free memory fast path and
#: the flat-array cache/TLB storage.  Set to "1" to fall back to the
#: legacy dict-backed walk (bitwise identical results; useful for
#: differential testing and bisection).  Inherited by pool worker
#: processes like the other REPRO_* hatches.
ENV_LEGACY_MEMORY = "REPRO_LEGACY_MEMORY"


def legacy_memory_default() -> bool:
    """Legacy-memory setting from the environment (off unless ``"1"``)."""
    return os.environ.get(ENV_LEGACY_MEMORY, "0") == "1"


@dataclass(slots=True)
class AccessResult:
    """Outcome of one instruction fetch or data access.

    Mutable so the hierarchy can intern one result object per kind of
    minimum-latency hit and rewrite ``complete`` in place (the hit fast
    path).  Callers consume a result before the next access and must not
    retain it.
    """

    #: Absolute cycle at which the data is available.
    complete: float
    #: True if the access was served by the first-level cache with no TLB
    #: miss (i.e. at minimum latency).
    l1_hit: bool
    #: Human-readable serving level ("L1", "L2", "L3", "DRAM").
    level: str


class _Level:
    """One cache level bundled with its MSHR file and outstanding misses."""

    __slots__ = ("cache", "mshr", "outstanding")

    def __init__(self, cache: Cache | LegacyCache) -> None:
        self.cache = cache
        self.mshr = MshrFile(cache.config.mshrs)
        #: line -> completion time of the in-flight fill (for miss merging).
        self.outstanding: dict[int, float] = {}


class SharedMemoryBackend:
    """Shared back end of a multi-core socket: the L3 level and DRAM.

    Built once by :class:`repro.pipeline.multicore.MulticoreSimulator`
    and handed to every per-core :class:`MemoryHierarchy` via
    ``shared=``: the cores substitute this backend's L3 level (cache +
    MSHR file + outstanding fill map) and DRAM model for private ones,
    so shared-level MSHR occupancy and DRAM bandwidth are arbitrated
    across cores in the deterministic order the engine steps them.
    L1I/L1D/L2, TLBs and the prefetcher stay private per core; configs
    without an L3 (KNL) share only DRAM.  Construction is
    field-for-field identical to the private path — that is what makes
    the engine's 1-core bitwise-identity guarantee hold.
    """

    __slots__ = ("config", "fast_path", "l3", "l3_level", "dram")

    def __init__(
        self, config: MemoryConfig, *, fast_path: bool | None = None
    ) -> None:
        self.config = config
        self.fast_path = (
            not legacy_memory_default() if fast_path is None else fast_path
        )
        cache_cls = Cache if self.fast_path else LegacyCache
        self.l3 = (
            cache_cls(config.l3, "L3") if config.l3 is not None else None
        )
        self.l3_level = _Level(self.l3) if self.l3 is not None else None
        self.dram = DramModel(config.dram)


class MemoryHierarchy:
    """Split L1I/L1D over unified L2 (and optional L3) over DRAM."""

    def __init__(
        self,
        config: MemoryConfig,
        *,
        perfect_icache: bool = False,
        perfect_dcache: bool = False,
        fast_path: bool | None = None,
        shared: SharedMemoryBackend | None = None,
    ) -> None:
        self.config = config
        self.perfect_icache = perfect_icache
        self.perfect_dcache = perfect_dcache
        self.fast_path = (
            not legacy_memory_default() if fast_path is None else fast_path
        )
        if shared is not None and shared.fast_path != self.fast_path:
            raise ValueError(
                "shared memory backend and core hierarchy disagree on "
                "the memory fast path"
            )
        cache_cls = Cache if self.fast_path else LegacyCache
        tlb_cls = Tlb if self.fast_path else LegacyTlb
        self.l1i = cache_cls(config.l1i, "L1I")
        self.l1d = cache_cls(config.l1d, "L1D")
        self.l2 = cache_cls(config.l2, "L2")
        if shared is not None:
            self.l3 = shared.l3
            self.dram = shared.dram
        else:
            self.l3 = (
                cache_cls(config.l3, "L3") if config.l3 is not None else None
            )
            self.dram = DramModel(config.dram)
        self.itlb = tlb_cls(config.itlb)
        self.dtlb = tlb_cls(config.dtlb)
        self.prefetcher = StreamPrefetcher(
            config.prefetcher, config.l1d.line_bytes
        )
        shared_levels = [_Level(self.l2)]
        if self.l3 is not None:
            # The L3 level (cache + MSHR + outstanding fills) is the
            # sharing seam: under a shared backend every core's chains
            # end in the *same* level object.
            shared_levels.append(
                shared.l3_level if shared is not None else _Level(self.l3)
            )
        self._ichain = [_Level(self.l1i), *shared_levels]
        self._dchain = [_Level(self.l1d), *shared_levels]
        self.prefetches_issued = 0
        #: Min-heap of scheduled fill completion times (all levels), for
        #: the fast-forward engine's ``next_event`` query.
        self._fill_events: list[float] = []
        # Hot-path scalars and per-chain level-name tuples, precomputed
        # once (the name of a serving level is a pure function of its
        # chain position — recomputing the string per access showed up in
        # profiles).  Index ``len(chain)`` is DRAM.
        self._ichain0 = self._ichain[0]
        self._dchain0 = self._dchain[0]
        self._l1i_latency = self.l1i.latency
        self._l1d_latency = self.l1d.latency
        self._l1i_bits = self.l1i.line_bits
        self._l1d_bits = self.l1d.line_bits
        self._inames = self._names_for(self._ichain)
        self._dnames = self._names_for(self._dchain)
        # Interned minimum-latency hit results (fast path): all fields
        # but ``complete`` are constant for a hit at minimum latency.
        self._ihit = AccessResult(0.0, True, "L1")
        self._dhit = AccessResult(0.0, True, "L1")

    @staticmethod
    def _names_for(chain: list[_Level]) -> tuple[str, ...]:
        """Level names by chain index (index 0 reports as "L1")."""
        return (
            "L1",
            *(level.cache.name for level in chain[1:]),
            "DRAM",
        )

    # -- core walk (fast path) ---------------------------------------------------

    def _access(
        self,
        chain: list[_Level],
        idx: int,
        line: int,
        now: float,
        *,
        prefetch: bool = False,
    ) -> tuple[float, int]:
        """Access ``line`` starting at ``chain[idx]``.

        Returns (absolute completion cycle, index of the serving level,
        with ``len(chain)`` meaning DRAM).
        """
        if idx == len(chain):
            return self.dram.access(now), idx
        level = chain[idx]
        cache = level.cache
        pending = level.outstanding.get(line)
        if pending is not None:
            if pending > now:
                # Merge into the in-flight miss: no new MSHR needed.
                cache.stats.accesses += 1
                cache.stats.misses += 1
                return pending, idx
            del level.outstanding[line]
        if cache.lookup(line):
            return now + cache.latency, idx
        return self._miss(chain, idx, line, now, prefetch=prefetch)

    def _miss(
        self,
        chain: list[_Level],
        idx: int,
        line: int,
        now: float,
        *,
        prefetch: bool = False,
    ) -> tuple[float, int]:
        """Post-lookup-miss continuation of :meth:`_access` at
        ``chain[idx]``: acquire an MSHR (queueing if the file is full),
        fill from below, install the line, write back a dirty victim."""
        level = chain[idx]
        cache = level.cache
        grant = level.mshr.acquire(now + cache.latency)
        complete, served = self._access(
            chain, idx + 1, line, grant, prefetch=prefetch
        )
        level.mshr.hold_until(complete)
        level.outstanding[line] = complete
        heappush(self._fill_events, complete)
        # Evicted-free fill: only a dirty victim's line comes back (clean
        # evictions allocate nothing — no writeback consumes bandwidth).
        victim_line = cache.fill(line, prefetch=prefetch)
        if victim_line >= 0:
            self._writeback(chain, idx + 1, victim_line, complete)
        return complete, served

    def _writeback(
        self, chain: list[_Level], idx: int, line: int, now: float
    ) -> None:
        """Push a dirty victim one level down (or to DRAM)."""
        if idx == len(chain):
            self.dram.writeback(now)
            return
        below = chain[idx].cache
        if below.probe(line):
            below.mark_dirty(line)
        else:
            # Non-inclusive write-back: install the dirty line below.
            victim_line = below.fill(line, dirty=True)
            if victim_line >= 0:
                self._writeback(chain, idx + 1, victim_line, now)

    # -- core walk (legacy oracle) -----------------------------------------------

    def _access_legacy(
        self,
        chain: list[_Level],
        idx: int,
        line: int,
        now: float,
        *,
        prefetch: bool = False,
    ) -> tuple[float, int]:
        """The pre-optimization walk, verbatim: allocates an
        :class:`Evicted` per eviction and recurses without the fast-path
        split.  Kept as the differential oracle for the fast walk."""
        if idx == len(chain):
            return self.dram.access(now), idx
        level = chain[idx]
        cache = level.cache
        pending = level.outstanding.get(line)
        if pending is not None:
            if pending > now:
                # Merge into the in-flight miss: no new MSHR needed.
                cache.stats.accesses += 1
                cache.stats.misses += 1
                return pending, idx
            del level.outstanding[line]
        if cache.lookup(line):
            return now + cache.latency, idx
        # Miss: acquire an MSHR (queueing if the file is full), then fill
        # from below.
        grant = level.mshr.acquire(now + cache.latency)
        complete, served = self._access_legacy(
            chain, idx + 1, line, grant, prefetch=prefetch
        )
        level.mshr.hold_until(complete)
        level.outstanding[line] = complete
        heappush(self._fill_events, complete)
        victim = cache.insert(line, prefetch=prefetch)
        if victim is not None and victim.dirty:
            self._writeback_legacy(chain, idx + 1, victim.line, complete)
        return complete, served

    def _writeback_legacy(
        self, chain: list[_Level], idx: int, line: int, now: float
    ) -> None:
        """Push a dirty victim one level down (or to DRAM)."""
        if idx == len(chain):
            self.dram.writeback(now)
            return
        below = chain[idx].cache
        if below.probe(line):
            below.mark_dirty(line)
        else:
            # Non-inclusive write-back: install the dirty line below.
            victim = below.insert(line, dirty=True)
            if victim is not None and victim.dirty:
                self._writeback_legacy(chain, idx + 1, victim.line, now)

    # -- public interface -------------------------------------------------------

    def ifetch(self, addr: int, now: float) -> AccessResult:
        """Fetch the instruction line containing ``addr``."""
        if not self.fast_path:
            return self._ifetch_legacy(addr, now)
        if self.perfect_icache:
            res = self._ihit
            res.complete = now + self._l1i_latency
            return res
        extra = self.itlb.access(addr)
        line = addr >> self._l1i_bits
        level = self._ichain0
        pending = level.outstanding.get(line)
        if pending is None and level.cache.lookup(line):
            if extra == 0:
                # Combined TLB-hit + L1-hit fast path: minimum latency,
                # interned result.
                res = self._ihit
                res.complete = now + self._l1i_latency
                return res
            # TLB miss over an L1 tag hit is not an L1 "hit" (not served
            # at minimum latency).
            return AccessResult(now + extra + self._l1i_latency, False, "L1")
        start = now + extra
        if pending is None:
            complete, served = self._miss(self._ichain, 0, line, start)
        else:
            complete, served = self._access(self._ichain, 0, line, start)
        # "Hit" means served at minimum latency: TLB misses and merges into
        # still-outstanding fills are misses even when the line's tag is
        # already present.
        return AccessResult(
            complete,
            complete <= now + self._l1i_latency,
            self._inames[served],
        )

    def dload(self, addr: int, now: float) -> AccessResult:
        """Demand load; triggers the stream prefetcher."""
        if not self.fast_path:
            return self._dload_legacy(addr, now)
        if self.perfect_dcache:
            res = self._dhit
            res.complete = now + self._l1d_latency
            return res
        extra = self.dtlb.access(addr)
        line = addr >> self._l1d_bits
        pf_lines = self.prefetcher.on_demand_access(line)
        level = self._dchain0
        pending = level.outstanding.get(line)
        if pending is None and level.cache.lookup(line):
            if extra == 0 and not pf_lines:
                res = self._dhit
                res.complete = now + self._l1d_latency
                return res
            complete = now + extra + self._l1d_latency
            if pf_lines:
                self._issue_prefetches(pf_lines, now)
            return AccessResult(complete, extra == 0, "L1")
        start = now + extra
        if pending is None:
            complete, served = self._miss(self._dchain, 0, line, start)
        else:
            complete, served = self._access(self._dchain, 0, line, start)
        # Prefetches go into the L2 behind the demand access.
        if pf_lines:
            self._issue_prefetches(pf_lines, now)
        return AccessResult(
            complete,
            complete <= now + self._l1d_latency,
            self._dnames[served],
        )

    def dstore(self, addr: int, now: float) -> AccessResult:
        """Store: write-allocate into L1D, marking the line dirty."""
        if not self.fast_path:
            return self._dstore_legacy(addr, now)
        if self.perfect_dcache:
            res = self._dhit
            res.complete = now + self._l1d_latency
            return res
        extra = self.dtlb.access(addr)
        line = addr >> self._l1d_bits
        level = self._dchain0
        pending = level.outstanding.get(line)
        if pending is None and level.cache.lookup(line):
            # The line just hit, so it sits in the MRU way: dirty it
            # without a scan.
            level.cache.mark_dirty_mru(line)
            if extra == 0:
                res = self._dhit
                res.complete = now + self._l1d_latency
                return res
            return AccessResult(now + extra + self._l1d_latency, False, "L1")
        start = now + extra
        if pending is None:
            complete, served = self._miss(self._dchain, 0, line, start)
        else:
            complete, served = self._access(self._dchain, 0, line, start)
        self.l1d.mark_dirty(line)
        return AccessResult(
            complete,
            complete <= now + self._l1d_latency,
            self._dnames[served],
        )

    def _ifetch_legacy(self, addr: int, now: float) -> AccessResult:
        """Pre-optimization :meth:`ifetch` (differential oracle)."""
        if self.perfect_icache:
            return AccessResult(now + self.l1i.latency, True, "L1")
        extra = self.itlb.access(addr)
        line = self.l1i.line_of(addr)
        complete, served = self._access_legacy(
            self._ichain, 0, line, now + extra
        )
        l1_hit = complete <= now + self.l1i.latency
        return AccessResult(complete, l1_hit, self._inames[served])

    def _dload_legacy(self, addr: int, now: float) -> AccessResult:
        """Pre-optimization :meth:`dload` (differential oracle)."""
        if self.perfect_dcache:
            return AccessResult(now + self.l1d.latency, True, "L1")
        extra = self.dtlb.access(addr)
        line = self.l1d.line_of(addr)
        pf_lines = self.prefetcher.on_demand_access(line)
        complete, served = self._access_legacy(
            self._dchain, 0, line, now + extra
        )
        # Prefetches go into the L2 behind the demand access.
        if pf_lines:
            self._issue_prefetches(pf_lines, now)
        l1_hit = complete <= now + self.l1d.latency
        return AccessResult(complete, l1_hit, self._dnames[served])

    def _dstore_legacy(self, addr: int, now: float) -> AccessResult:
        """Pre-optimization :meth:`dstore` (differential oracle)."""
        if self.perfect_dcache:
            return AccessResult(now + self.l1d.latency, True, "L1")
        extra = self.dtlb.access(addr)
        line = self.l1d.line_of(addr)
        complete, served = self._access_legacy(
            self._dchain, 0, line, now + extra
        )
        self.l1d.mark_dirty(line)
        l1_hit = complete <= now + self.l1d.latency
        return AccessResult(complete, l1_hit, self._dnames[served])

    def _issue_prefetches(self, lines: list[int], now: float) -> None:
        """Inject prefetch fills at the L2 (index 1 of the data chain)."""
        access = self._access if self.fast_path else self._access_legacy
        l2_level = self._dchain[1]
        for line in lines:
            if line < 0:
                continue
            if l2_level.cache.probe(line) or line in l2_level.outstanding:
                continue
            self.prefetches_issued += 1
            access(self._dchain, 1, line, now, prefetch=True)

    def probe_latency(self, addr: int, now: float) -> float:
        """Latency estimate for a wrong-path load: probes without mutation."""
        if self.perfect_dcache:
            return now + self.l1d.latency
        line = self.l1d.line_of(addr)
        latency = 0.0
        for level in self._dchain:
            latency += level.cache.latency
            if level.cache.probe(line):
                return now + latency
            pending = level.outstanding.get(line)
            if pending is not None and pending > now:
                return pending
        return now + latency + self.dram.config.latency

    def next_event(self, cycle: float) -> float:
        """Earliest in-flight fill completion strictly after ``cycle``.

        Purely observational (the fast-forward engine's memory bound):
        access timing is computed at request time, so a completing fill
        never mutates state on its own — including fills in the skip
        bound only shortens windows, never changes results.  Expired
        times are popped lazily; the ``outstanding`` dicts themselves are
        untouched (their lazy-deletion semantics are load-bearing for
        miss merging and prefetch suppression).
        """
        events = self._fill_events
        while events and events[0] <= cycle:
            heappop(events)
        return events[0] if events else math.inf

    def _levels(self) -> list[_Level]:
        """Every distinct level once (L2/L3 are shared by both chains)."""
        return [self._ichain[0], self._dchain[0], *self._ichain[1:]]

    def fingerprint(self, now: float) -> tuple:
        """Full structural state modulo time shift (replay fixed point).

        Composes every cache's tag/LRU state, busy MSHR slots and live
        outstanding fills (times relative to ``now``), DRAM queue headroom,
        both TLBs and the prefetcher table.  Counters and ``_fill_events``
        are excluded: the former are delta-advanced by the engine, the
        latter is purely observational (see :meth:`next_event`).  The
        per-cache format is identical across the flat-array and legacy
        representations, so replay fixed points survive the gate.
        """
        levels = tuple(
            (
                level.cache.fingerprint(),
                level.mshr.fingerprint(now),
                tuple(
                    sorted(
                        (line, t - now)
                        for line, t in level.outstanding.items()
                        if t > now
                    )
                ),
            )
            for level in self._levels()
        )
        return (
            levels,
            self.dram.fingerprint(now),
            self.itlb.fingerprint(),
            self.dtlb.fingerprint(),
            self.prefetcher.fingerprint(),
        )

    def shift_time(self, now: float, delta: float) -> None:
        """Translate every pending completion by ``delta`` (replay jump).

        Expired times are left untouched — they are behaviourally inert
        (lazily deleted / popped) and shifting only the live ones keeps the
        state bit-identical to what a cycle-by-cycle run would hold at the
        destination cycle.
        """
        for level in self._levels():
            level.mshr.shift_time(now, delta)
            outstanding = level.outstanding
            for line, t in outstanding.items():
                if t > now:
                    outstanding[line] = t + delta
        self.dram.shift_time(now, delta)
        # Identity below ``now``, +delta above: monotone, so the heap
        # invariant survives an in-place rewrite.
        events = self._fill_events
        for i, t in enumerate(events):
            if t > now:
                events[i] = t + delta

    def snapshot(self) -> dict:
        """Picklable full state of the composed hierarchy.

        Each distinct level (L2/L3 shared by both chains appear once, via
        :meth:`_levels`) contributes its cache, MSHR file and outstanding
        fill map; plus DRAM, both TLBs, the prefetcher, the prefetch
        counter and the observational ``_fill_events`` heap (saved
        verbatim so ``next_event`` pops in the identical order after a
        resume, keeping fast-forward windows bitwise reproducible).  The
        schema is representation-independent: a snapshot taken under the
        fast path restores into a legacy hierarchy and vice versa.
        """
        return {
            "levels": [
                {
                    "cache": level.cache.snapshot(),
                    "mshr": level.mshr.snapshot(),
                    "outstanding": list(level.outstanding.items()),
                }
                for level in self._levels()
            ],
            "dram": self.dram.snapshot(),
            "itlb": self.itlb.snapshot(),
            "dtlb": self.dtlb.snapshot(),
            "prefetcher": self.prefetcher.snapshot(),
            "prefetches_issued": self.prefetches_issued,
            "fill_events": list(self._fill_events),
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot`.

        Every sub-object is mutated in place (never reassigned): the
        replay engine and the simulator hold live references to the
        caches, their stats, the TLBs, the DRAM model and the prefetcher.
        """
        for level, saved in zip(self._levels(), state["levels"]):
            level.cache.restore(saved["cache"])
            level.mshr.restore(saved["mshr"])
            level.outstanding.clear()
            level.outstanding.update(saved["outstanding"])
        self.dram.restore(state["dram"])
        self.itlb.restore(state["itlb"])
        self.dtlb.restore(state["dtlb"])
        self.prefetcher.restore(state["prefetcher"])
        self.prefetches_issued = state["prefetches_issued"]
        self._fill_events[:] = state["fill_events"]

    # -- statistics --------------------------------------------------------------

    def stats(self) -> dict[str, dict[str, float]]:
        """Per-structure statistics for simulation reports."""
        out = {
            "l1i": self.l1i.stats.as_dict(),
            "l1d": self.l1d.stats.as_dict(),
            "l2": self.l2.stats.as_dict(),
            "dram": {
                "accesses": self.dram.accesses,
                "avg_queue_delay": self.dram.average_queue_delay,
            },
            "itlb": {
                "accesses": self.itlb.accesses,
                "misses": self.itlb.misses,
            },
            "dtlb": {
                "accesses": self.dtlb.accesses,
                "misses": self.dtlb.misses,
            },
            "prefetcher": {
                "issued": float(self.prefetches_issued),
                "triggers": float(self.prefetcher.triggers),
            },
            "l2_mshr": {
                "acquisitions": float(self._dchain[1].mshr.acquisitions),
                "avg_wait": self._dchain[1].mshr.average_wait,
                "max_wait": self._dchain[1].mshr.max_wait,
            },
        }
        if self.l3 is not None:
            out["l3"] = self.l3.stats.as_dict()
        return out
