"""The composed memory hierarchy with analytic, contention-aware timing.

Access timing is computed at request time by walking the hierarchy: each
level either hits (adding its latency), merges into an already outstanding
miss for the same line, or misses — acquiring an MSHR slot (queueing when
the file is full) and recursing to the next level.  The L2 and L3 are
unified: the instruction and data chains share them, so instruction fills
evict data lines and vice versa (the Fig. 3b coupling).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from heapq import heappop, heappush

from repro.config.cores import MemoryConfig
from repro.memory.cache import Cache
from repro.memory.dram import DramModel
from repro.memory.mshr import MshrFile
from repro.memory.prefetcher import StreamPrefetcher
from repro.memory.tlb import Tlb

#: Chain position labels for reporting.
_LEVEL_NAMES = ("L1", "L2", "L3", "DRAM")


@dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome of one instruction fetch or data access."""

    #: Absolute cycle at which the data is available.
    complete: float
    #: True if the access was served by the first-level cache with no TLB
    #: miss (i.e. at minimum latency).
    l1_hit: bool
    #: Human-readable serving level ("L1", "L2", "L3", "DRAM").
    level: str


class _Level:
    """One cache level bundled with its MSHR file and outstanding misses."""

    __slots__ = ("cache", "mshr", "outstanding")

    def __init__(self, cache: Cache) -> None:
        self.cache = cache
        self.mshr = MshrFile(cache.config.mshrs)
        #: line -> completion time of the in-flight fill (for miss merging).
        self.outstanding: dict[int, float] = {}


class MemoryHierarchy:
    """Split L1I/L1D over unified L2 (and optional L3) over DRAM."""

    def __init__(
        self,
        config: MemoryConfig,
        *,
        perfect_icache: bool = False,
        perfect_dcache: bool = False,
    ) -> None:
        self.config = config
        self.perfect_icache = perfect_icache
        self.perfect_dcache = perfect_dcache
        self.l1i = Cache(config.l1i, "L1I")
        self.l1d = Cache(config.l1d, "L1D")
        self.l2 = Cache(config.l2, "L2")
        self.l3 = Cache(config.l3, "L3") if config.l3 is not None else None
        self.dram = DramModel(config.dram)
        self.itlb = Tlb(config.itlb)
        self.dtlb = Tlb(config.dtlb)
        self.prefetcher = StreamPrefetcher(
            config.prefetcher, config.l1d.line_bytes
        )
        shared = [_Level(self.l2)]
        if self.l3 is not None:
            shared.append(_Level(self.l3))
        self._ichain = [_Level(self.l1i), *shared]
        self._dchain = [_Level(self.l1d), *shared]
        self.prefetches_issued = 0
        #: Min-heap of scheduled fill completion times (all levels), for
        #: the fast-forward engine's ``next_event`` query.
        self._fill_events: list[float] = []

    # -- core walk -------------------------------------------------------------

    def _access(
        self,
        chain: list[_Level],
        idx: int,
        line: int,
        now: float,
        *,
        prefetch: bool = False,
    ) -> tuple[float, int]:
        """Access ``line`` starting at ``chain[idx]``.

        Returns (absolute completion cycle, index of the serving level,
        with ``len(chain)`` meaning DRAM).
        """
        if idx == len(chain):
            return self.dram.access(now), idx
        level = chain[idx]
        cache = level.cache
        pending = level.outstanding.get(line)
        if pending is not None:
            if pending > now:
                # Merge into the in-flight miss: no new MSHR needed.
                cache.stats.accesses += 1
                cache.stats.misses += 1
                return pending, idx
            del level.outstanding[line]
        if cache.lookup(line):
            return now + cache.latency, idx
        # Miss: acquire an MSHR (queueing if the file is full), then fill
        # from below.
        grant = level.mshr.acquire(now + cache.latency)
        complete, served = self._access(
            chain, idx + 1, line, grant, prefetch=prefetch
        )
        level.mshr.hold_until(complete)
        level.outstanding[line] = complete
        heappush(self._fill_events, complete)
        victim = cache.insert(line, prefetch=prefetch)
        if victim is not None and victim.dirty:
            self._writeback(chain, idx + 1, victim.line, complete)
        return complete, served

    def _writeback(
        self, chain: list[_Level], idx: int, line: int, now: float
    ) -> None:
        """Push a dirty victim one level down (or to DRAM)."""
        if idx == len(chain):
            self.dram.writeback(now)
            return
        below = chain[idx].cache
        if below.probe(line):
            below.mark_dirty(line)
        else:
            # Non-inclusive write-back: install the dirty line below.
            victim = below.insert(line, dirty=True)
            if victim is not None and victim.dirty:
                self._writeback(chain, idx + 1, victim.line, now)

    @staticmethod
    def _level_name(chain: list[_Level], idx: int) -> str:
        if idx >= len(chain):
            return "DRAM"
        name = chain[idx].cache.name
        return name if idx > 0 else "L1"

    # -- public interface -------------------------------------------------------

    def ifetch(self, addr: int, now: float) -> AccessResult:
        """Fetch the instruction line containing ``addr``."""
        if self.perfect_icache:
            return AccessResult(now + self.l1i.latency, True, "L1")
        extra = self.itlb.access(addr)
        line = self.l1i.line_of(addr)
        complete, served = self._access(self._ichain, 0, line, now + extra)
        # "Hit" means served at minimum latency: TLB misses and merges into
        # still-outstanding fills are misses even when the line's tag is
        # already present.
        l1_hit = complete <= now + self.l1i.latency
        return AccessResult(
            complete, l1_hit, self._level_name(self._ichain, served)
        )

    def dload(self, addr: int, now: float) -> AccessResult:
        """Demand load; triggers the stream prefetcher."""
        if self.perfect_dcache:
            return AccessResult(now + self.l1d.latency, True, "L1")
        extra = self.dtlb.access(addr)
        line = self.l1d.line_of(addr)
        pf_lines = self.prefetcher.on_demand_access(line)
        complete, served = self._access(self._dchain, 0, line, now + extra)
        # Prefetches go into the L2 behind the demand access.
        if pf_lines:
            self._issue_prefetches(pf_lines, now)
        l1_hit = complete <= now + self.l1d.latency
        return AccessResult(
            complete, l1_hit, self._level_name(self._dchain, served)
        )

    def dstore(self, addr: int, now: float) -> AccessResult:
        """Store: write-allocate into L1D, marking the line dirty."""
        if self.perfect_dcache:
            return AccessResult(now + self.l1d.latency, True, "L1")
        extra = self.dtlb.access(addr)
        line = self.l1d.line_of(addr)
        complete, served = self._access(self._dchain, 0, line, now + extra)
        self.l1d.mark_dirty(line)
        l1_hit = complete <= now + self.l1d.latency
        return AccessResult(
            complete, l1_hit, self._level_name(self._dchain, served)
        )

    def _issue_prefetches(self, lines: list[int], now: float) -> None:
        """Inject prefetch fills at the L2 (index 1 of the data chain)."""
        l2_level = self._dchain[1]
        for line in lines:
            if line < 0:
                continue
            if l2_level.cache.probe(line) or line in l2_level.outstanding:
                continue
            self.prefetches_issued += 1
            self._access(self._dchain, 1, line, now, prefetch=True)

    def probe_latency(self, addr: int, now: float) -> float:
        """Latency estimate for a wrong-path load: probes without mutation."""
        if self.perfect_dcache:
            return now + self.l1d.latency
        line = self.l1d.line_of(addr)
        latency = 0.0
        for level in self._dchain:
            latency += level.cache.latency
            if level.cache.probe(line):
                return now + latency
            pending = level.outstanding.get(line)
            if pending is not None and pending > now:
                return pending
        return now + latency + self.dram.config.latency

    def next_event(self, cycle: float) -> float:
        """Earliest in-flight fill completion strictly after ``cycle``.

        Purely observational (the fast-forward engine's memory bound):
        access timing is computed at request time, so a completing fill
        never mutates state on its own — including fills in the skip
        bound only shortens windows, never changes results.  Expired
        times are popped lazily; the ``outstanding`` dicts themselves are
        untouched (their lazy-deletion semantics are load-bearing for
        miss merging and prefetch suppression).
        """
        events = self._fill_events
        while events and events[0] <= cycle:
            heappop(events)
        return events[0] if events else math.inf

    def _levels(self) -> list[_Level]:
        """Every distinct level once (L2/L3 are shared by both chains)."""
        return [self._ichain[0], self._dchain[0], *self._ichain[1:]]

    def fingerprint(self, now: float) -> tuple:
        """Full structural state modulo time shift (replay fixed point).

        Composes every cache's tag/LRU state, busy MSHR slots and live
        outstanding fills (times relative to ``now``), DRAM queue headroom,
        both TLBs and the prefetcher table.  Counters and ``_fill_events``
        are excluded: the former are delta-advanced by the engine, the
        latter is purely observational (see :meth:`next_event`).
        """
        levels = tuple(
            (
                level.cache.fingerprint(),
                level.mshr.fingerprint(now),
                tuple(
                    sorted(
                        (line, t - now)
                        for line, t in level.outstanding.items()
                        if t > now
                    )
                ),
            )
            for level in self._levels()
        )
        return (
            levels,
            self.dram.fingerprint(now),
            self.itlb.fingerprint(),
            self.dtlb.fingerprint(),
            self.prefetcher.fingerprint(),
        )

    def shift_time(self, now: float, delta: float) -> None:
        """Translate every pending completion by ``delta`` (replay jump).

        Expired times are left untouched — they are behaviourally inert
        (lazily deleted / popped) and shifting only the live ones keeps the
        state bit-identical to what a cycle-by-cycle run would hold at the
        destination cycle.
        """
        for level in self._levels():
            level.mshr.shift_time(now, delta)
            outstanding = level.outstanding
            for line, t in outstanding.items():
                if t > now:
                    outstanding[line] = t + delta
        self.dram.shift_time(now, delta)
        # Identity below ``now``, +delta above: monotone, so the heap
        # invariant survives an in-place rewrite.
        events = self._fill_events
        for i, t in enumerate(events):
            if t > now:
                events[i] = t + delta

    def snapshot(self) -> dict:
        """Picklable full state of the composed hierarchy.

        Each distinct level (L2/L3 shared by both chains appear once, via
        :meth:`_levels`) contributes its cache, MSHR file and outstanding
        fill map; plus DRAM, both TLBs, the prefetcher, the prefetch
        counter and the observational ``_fill_events`` heap (saved
        verbatim so ``next_event`` pops in the identical order after a
        resume, keeping fast-forward windows bitwise reproducible).
        """
        return {
            "levels": [
                {
                    "cache": level.cache.snapshot(),
                    "mshr": level.mshr.snapshot(),
                    "outstanding": list(level.outstanding.items()),
                }
                for level in self._levels()
            ],
            "dram": self.dram.snapshot(),
            "itlb": self.itlb.snapshot(),
            "dtlb": self.dtlb.snapshot(),
            "prefetcher": self.prefetcher.snapshot(),
            "prefetches_issued": self.prefetches_issued,
            "fill_events": list(self._fill_events),
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot`.

        Every sub-object is mutated in place (never reassigned): the
        replay engine and the simulator hold live references to the
        caches, their stats, the TLBs, the DRAM model and the prefetcher.
        """
        for level, saved in zip(self._levels(), state["levels"]):
            level.cache.restore(saved["cache"])
            level.mshr.restore(saved["mshr"])
            level.outstanding.clear()
            level.outstanding.update(saved["outstanding"])
        self.dram.restore(state["dram"])
        self.itlb.restore(state["itlb"])
        self.dtlb.restore(state["dtlb"])
        self.prefetcher.restore(state["prefetcher"])
        self.prefetches_issued = state["prefetches_issued"]
        self._fill_events[:] = state["fill_events"]

    # -- statistics --------------------------------------------------------------

    def stats(self) -> dict[str, dict[str, float]]:
        """Per-structure statistics for simulation reports."""
        out = {
            "l1i": self.l1i.stats.as_dict(),
            "l1d": self.l1d.stats.as_dict(),
            "l2": self.l2.stats.as_dict(),
            "dram": {
                "accesses": self.dram.accesses,
                "avg_queue_delay": self.dram.average_queue_delay,
            },
            "itlb": {
                "accesses": self.itlb.accesses,
                "misses": self.itlb.misses,
            },
            "dtlb": {
                "accesses": self.dtlb.accesses,
                "misses": self.dtlb.misses,
            },
            "prefetcher": {
                "issued": float(self.prefetches_issued),
                "triggers": float(self.prefetcher.triggers),
            },
            "l2_mshr": {
                "acquisitions": float(self._dchain[1].mshr.acquisitions),
                "avg_wait": self._dchain[1].mshr.average_wait,
                "max_wait": self._dchain[1].mshr.max_wait,
            },
        }
        if self.l3 is not None:
            out["l3"] = self.l3.stats.as_dict()
        return out
