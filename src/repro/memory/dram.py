"""Main-memory model: fixed latency plus bandwidth-limited line transfers.

The per-core bandwidth share is modelled as a minimum spacing between line
transfers (``cycles_per_line``); requests arriving faster than the service
rate queue behind each other.  The paper scales memory bandwidth by the
socket core count to mimic a fully loaded processor — the presets bake that
scaling into ``cycles_per_line``.
"""

from __future__ import annotations

from repro.config.cores import DramConfig


class DramModel:
    """Latency/bandwidth DRAM with a single service queue."""

    __slots__ = ("config", "_next_slot", "accesses", "total_queue_delay")

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self._next_slot = 0.0
        self.accesses = 0
        self.total_queue_delay = 0.0

    def access(self, now: float) -> float:
        """Request a line at ``now``; returns the completion cycle."""
        if self.config.cycles_per_line == 0:
            # Infinite bandwidth: zero channel occupancy, so requests
            # never queue behind each other (the multi-core engine's
            # no-contention oracle relies on this being exactly
            # latency-only with no cross-request coupling).
            self.accesses += 1
            return now + self.config.latency
        start = now if now >= self._next_slot else self._next_slot
        self.total_queue_delay += start - now
        self._next_slot = start + self.config.cycles_per_line
        self.accesses += 1
        return start + self.config.latency

    def writeback(self, now: float) -> None:
        """A dirty-line writeback consumes a bandwidth slot (no reply)."""
        if self.config.cycles_per_line == 0:
            self.accesses += 1
            return
        start = now if now >= self._next_slot else self._next_slot
        self._next_slot = start + self.config.cycles_per_line
        self.accesses += 1

    def fingerprint(self, now: float) -> float:
        """Service-queue headroom relative to ``now`` (replay engine); an
        expired slot cannot delay any future request, so it normalizes to
        0.0.  Counters are excluded."""
        slot = self._next_slot
        return slot - now if slot > now else 0.0

    def shift_time(self, now: float, delta: float) -> None:
        """Translate a still-pending service slot by ``delta`` (replay)."""
        if self._next_slot > now:
            self._next_slot += delta

    def snapshot(self) -> dict:
        """Picklable full state (service-queue slot + counters)."""
        return {
            "next_slot": self._next_slot,
            "accesses": self.accesses,
            "total_queue_delay": self.total_queue_delay,
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot`."""
        self._next_slot = state["next_slot"]
        self.accesses = state["accesses"]
        self.total_queue_delay = state["total_queue_delay"]

    @property
    def average_queue_delay(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.total_queue_delay / self.accesses
