"""Translation lookaside buffers.

A fully-associative LRU TLB with a constant page-walk penalty.  TLB miss
latency is folded into the instruction/data access time; the accounting
algorithms therefore see TLB misses inside the Icache/Dcache components,
matching the paper's component definition ("misses in the instruction and
data cache (and TLB)").

Storage is a flat entry array in LRU order (oldest first, MRU last) with
an MRU short-circuit: the loop-dominant "same page again" case touches
nothing.  The dict-backed reference lives in
:class:`repro.memory.legacy.LegacyTlb` (``REPRO_LEGACY_MEMORY=1``).
"""

from __future__ import annotations

from repro.config.cores import TlbConfig


class Tlb:
    """Fully-associative TLB with true LRU replacement."""

    __slots__ = ("config", "page_bits", "_entries", "accesses", "misses")

    def __init__(self, config: TlbConfig) -> None:
        self.config = config
        self.page_bits = config.page_bytes.bit_length() - 1
        if (1 << self.page_bits) != config.page_bytes:
            raise ValueError("TLB page size must be a power of two")
        # Flat array in LRU order (oldest first, MRU last).
        self._entries: list[int] = []
        self.accesses = 0
        self.misses = 0

    def access(self, addr: int) -> int:
        """Translate ``addr``; returns the extra latency (0 on a hit)."""
        page = addr >> self.page_bits
        self.accesses += 1
        entries = self._entries
        if entries:
            if entries[-1] == page:
                # MRU short-circuit: consecutive accesses to one page
                # (the loop-dominant case) reorder nothing.
                return 0
            if page in entries:
                entries.remove(page)
                entries.append(page)
                return 0
        self.misses += 1
        if len(entries) >= self.config.entries:
            del entries[0]
        entries.append(page)
        return self.config.miss_penalty

    def fingerprint(self) -> tuple:
        """Entry set in LRU order (the replay engine's fixed-point check);
        counters are excluded (delta-advanced)."""
        return tuple(self._entries)

    def snapshot(self) -> dict:
        """Picklable full state (entries in LRU order + counters);
        schema-stable with :class:`repro.memory.legacy.LegacyTlb`."""
        return {
            "entries": list(self._entries),
            "accesses": self.accesses,
            "misses": self.misses,
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot`; rebuilds LRU order in place."""
        self._entries[:] = state["entries"]
        self.accesses = state["accesses"]
        self.misses = state["misses"]

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses
