"""Translation lookaside buffers.

A fully-associative LRU TLB with a constant page-walk penalty.  TLB miss
latency is folded into the instruction/data access time; the accounting
algorithms therefore see TLB misses inside the Icache/Dcache components,
matching the paper's component definition ("misses in the instruction and
data cache (and TLB)").
"""

from __future__ import annotations

from repro.config.cores import TlbConfig


class Tlb:
    """Fully-associative TLB with true LRU replacement."""

    __slots__ = ("config", "page_bits", "_entries", "accesses", "misses")

    def __init__(self, config: TlbConfig) -> None:
        self.config = config
        self.page_bits = config.page_bytes.bit_length() - 1
        if (1 << self.page_bits) != config.page_bytes:
            raise ValueError("TLB page size must be a power of two")
        # dict insertion order is the LRU order (oldest first).
        self._entries: dict[int, None] = {}
        self.accesses = 0
        self.misses = 0

    def access(self, addr: int) -> int:
        """Translate ``addr``; returns the extra latency (0 on a hit)."""
        page = addr >> self.page_bits
        self.accesses += 1
        entries = self._entries
        if page in entries:
            del entries[page]
            entries[page] = None
            return 0
        self.misses += 1
        if len(entries) >= self.config.entries:
            del entries[next(iter(entries))]
        entries[page] = None
        return self.config.miss_penalty

    def fingerprint(self) -> tuple:
        """Entry set in LRU order (the replay engine's fixed-point check);
        counters are excluded (delta-advanced)."""
        return tuple(self._entries)

    def snapshot(self) -> dict:
        """Picklable full state (entries in LRU order + counters)."""
        return {
            "entries": list(self._entries),
            "accesses": self.accesses,
            "misses": self.misses,
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot`; rebuilds LRU order in place."""
        self._entries.clear()
        for page in state["entries"]:
            self._entries[page] = None
        self.accesses = state["accesses"]
        self.misses = state["misses"]

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses
