"""Miss-status-holding registers: finite outstanding-miss slots per level.

Each in-flight miss acquires a slot when it reaches a level and holds it
until its fill completes.  When all slots are busy, new misses queue: their
start time is pushed to the earliest slot release.  This queueing is the
mechanism behind Fig. 3(c), where hardware prefetches keep the L2 MSHRs
contended and I-cache misses "are queued for a long time until an MSHR is
available".
"""

from __future__ import annotations

import heapq


class MshrFile:
    """A file of ``size`` MSHRs tracked by their release times."""

    __slots__ = ("size", "_busy", "acquisitions", "total_wait", "max_wait")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("an MSHR file needs at least one slot")
        self.size = size
        # Min-heap of busy-until times for currently held slots.
        self._busy: list[float] = []
        self.acquisitions = 0
        self.total_wait = 0.0
        self.max_wait = 0.0

    def acquire(self, now: float) -> float:
        """Reserve a slot at or after ``now``; returns the grant time.

        The caller must later call :meth:`hold_until` with the miss
        completion time to keep the slot busy for the miss duration.
        """
        busy = self._busy
        # Free every slot already released by ``now``.
        while busy and busy[0] <= now:
            heapq.heappop(busy)
        self.acquisitions += 1
        if len(busy) < self.size:
            return now
        # All slots busy: wait for the earliest release.
        grant = heapq.heappop(busy)
        wait = grant - now
        self.total_wait += wait
        if wait > self.max_wait:
            self.max_wait = wait
        return grant

    def hold_until(self, release: float) -> None:
        """Mark the slot granted by the last :meth:`acquire` busy until
        ``release``."""
        heapq.heappush(self._busy, release)

    def fingerprint(self, now: float) -> tuple:
        """Busy-slot release times relative to ``now`` (replay engine).

        Expired entries are excluded: :meth:`acquire` pops them before they
        can influence a grant, so their presence is behaviourally inert.
        The heap's internal layout is normalized away by sorting — only the
        multiset of release times matters to future grants.
        """
        return tuple(sorted(t - now for t in self._busy if t > now))

    def shift_time(self, now: float, delta: float) -> None:
        """Translate still-busy release times by ``delta`` (replay jump).

        The map is identity below ``now`` and ``+delta`` above it, which is
        monotone, so the heap invariant is preserved in place.
        """
        busy = self._busy
        for i, t in enumerate(busy):
            if t > now:
                busy[i] = t + delta

    def snapshot(self) -> dict:
        """Picklable full state.

        The busy heap is saved verbatim (not sorted): restoring the exact
        internal layout reproduces the same pop order tie-breaking, so a
        resumed run is bitwise identical, not just behaviourally close.
        """
        return {
            "busy": list(self._busy),
            "acquisitions": self.acquisitions,
            "total_wait": self.total_wait,
            "max_wait": self.max_wait,
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot`; mutates the heap list in place."""
        self._busy[:] = state["busy"]
        self.acquisitions = state["acquisitions"]
        self.total_wait = state["total_wait"]
        self.max_wait = state["max_wait"]

    def outstanding(self, now: float) -> int:
        """Number of slots still busy at ``now`` (diagnostic)."""
        return sum(1 for t in self._busy if t > now)

    @property
    def average_wait(self) -> float:
        if self.acquisitions == 0:
            return 0.0
        return self.total_wait / self.acquisitions
