"""Synthetic workload generators.

The paper evaluates on SPEC CPU 2017 (multi-stage CPI stacks) and DeepBench
sgemm/convolution kernels (FLOPS stacks).  Neither ships as replayable
traces, so this package synthesizes deterministic instruction traces that
reproduce the *bottleneck structure* each evaluation case relies on:
pointer-chasing D-cache pressure (mcf), large-footprint I$/D$ contention
(cactus), prefetch-heavy streaming (bwaves), microcoded FP (povray),
multi-cycle ALU chains (imagick), and the two sgemm code styles plus three
convolution phases of DeepBench.  See DESIGN.md for the substitution
rationale.
"""

from repro.workloads.base import (
    RESERVED_INT_REGS,
    TraceBuilder,
    WorkloadSpec,
)
from repro.workloads.deepbench import (
    DEEPBENCH_CONFIGS,
    DeepBenchKernel,
    conv_trace,
    sgemm_trace,
)
from repro.workloads.registry import (
    SPEC_LIKE_NAMES,
    WORKLOADS,
    get_workload,
    make_trace,
)

__all__ = [
    "DEEPBENCH_CONFIGS",
    "DeepBenchKernel",
    "RESERVED_INT_REGS",
    "SPEC_LIKE_NAMES",
    "TraceBuilder",
    "WORKLOADS",
    "WorkloadSpec",
    "conv_trace",
    "get_workload",
    "make_trace",
    "sgemm_trace",
]
