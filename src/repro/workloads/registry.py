"""Workload registry: names -> trace factories for the harness and CLI."""

from __future__ import annotations

from repro.isa.instructions import Program
from repro.workloads import micro, spec_like
from repro.workloads.base import WorkloadSpec
from repro.workloads.deepbench import (
    DEEPBENCH_CONFIGS,
    conv_trace,
    sgemm_trace,
    threaded_conv_traces,
)

#: Workloads with a native threaded decomposition: registry name ->
#: factory(threads, instructions, seed) returning one trace per thread.
#: Filled by :func:`_register_deepbench`; everything else falls back to
#: per-thread seed cloning in :func:`make_threaded_traces`.
THREADED_FACTORIES: dict = {}

#: SPEC-CPU-2017-like workloads used for multi-stage CPI stack evaluation.
_SPEC_SPECS = (
    WorkloadSpec(
        "mcf", "505.mcf", "pointer chase: Dcache + bpred bound",
        spec_like.mcf_like, default_instructions=40_000,
    ),
    WorkloadSpec(
        "cactus", "507.cactuBSSN", "I$+D$ footprints couple in unified L2",
        spec_like.cactus_like, default_instructions=80_000,
    ),
    WorkloadSpec(
        "bwaves", "503.bwaves", "prefetch streams contend for L2 MSHRs",
        spec_like.bwaves_like,
    ),
    WorkloadSpec(
        "povray", "511.povray", "microcoded FP + moderate mispredicts",
        spec_like.povray_like,
    ),
    WorkloadSpec(
        "imagick", "538.imagick", "multi-cycle arithmetic dependence chains",
        spec_like.imagick_like,
    ),
    WorkloadSpec(
        "leela", "541.leela", "branch misprediction bound",
        spec_like.leela_like,
    ),
    WorkloadSpec(
        "lbm", "519.lbm", "streaming bandwidth bound",
        spec_like.lbm_like,
    ),
    WorkloadSpec(
        "exchange2", "548.exchange2", "high-ILP integer, near-ideal CPI",
        spec_like.exchange2_like,
    ),
    WorkloadSpec(
        "nab", "544.nab", "scalar FP latency + L2-resident data",
        spec_like.nab_like,
    ),
    WorkloadSpec(
        "xz", "557.xz", "mixed: no single dominant bottleneck",
        spec_like.xz_like,
    ),
    WorkloadSpec(
        "deepsjeng", "531.deepsjeng", "bpred + scattered hash-table loads",
        spec_like.deepsjeng_like,
    ),
)

#: Public registry of all named workloads.
WORKLOADS: dict[str, WorkloadSpec] = {spec.name: spec for spec in _SPEC_SPECS}

#: The SPEC-like suite (used by the Fig. 2 population).
SPEC_LIKE_NAMES: tuple[str, ...] = tuple(spec.name for spec in _SPEC_SPECS)

#: Microbenchmarks for harness health metrics (not part of the Fig. 2
#: population; see :mod:`repro.workloads.micro`).
WORKLOADS["chase"] = WorkloadSpec(
    "chase", "pointer-chase microbenchmark",
    "DRAM-latency bound: fast-forward engine best case",
    micro.chase_like, default_instructions=20_000,
)
WORKLOADS["spin"] = WorkloadSpec(
    "spin", "vector FMA spin microbenchmark",
    "peak-FLOPS steady loop: periodic replay engine best case",
    micro.spin_like, default_instructions=20_000,
)


def _register_deepbench() -> None:
    for config in DEEPBENCH_CONFIGS:
        if config.kind == "sgemm":
            for style in ("knl", "skx"):
                name = f"{config.name}-{style}"
                WORKLOADS[name] = WorkloadSpec(
                    name,
                    f"DeepBench {config.name} ({style.upper()} code style)",
                    "sgemm kernel for FLOPS stacks",
                    # Bind loop variables via defaults.
                    lambda n, s, c=config, st=style: sgemm_trace(
                        c, st, n, s
                    ),
                    default_instructions=20_000,
                )
        else:
            for phase in ("fwd", "bwd_d", "bwd_f"):
                name = f"{config.name}-{phase}"
                WORKLOADS[name] = WorkloadSpec(
                    name,
                    f"DeepBench {config.name} {phase}",
                    "convolution kernel for FLOPS stacks",
                    lambda n, s, c=config, ph=phase: conv_trace(
                        c, ph, n, s
                    ),
                    default_instructions=20_000,
                )
                # Convolutions decompose natively across threads (the
                # Fig. 5 multi-core workload): disjoint partitions with
                # imbalanced barrier intervals.
                THREADED_FACTORIES[name] = (
                    lambda threads, n, s, c=config, ph=phase:
                    threaded_conv_traces(c, ph, threads, n, s)
                )


_register_deepbench()


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload spec by registry name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None


def make_trace(
    name: str, instructions: int | None = None, seed: int = 1
) -> Program:
    """Build the named workload's trace."""
    return get_workload(name).make(instructions, seed)


def make_threaded_traces(
    name: str,
    threads: int,
    instructions: int | None = None,
    seed: int = 1,
) -> list[Program]:
    """Build one trace per thread for a multi-core run of ``name``.

    Workloads with a native decomposition (:data:`THREADED_FACTORIES` —
    the DeepBench convolutions) produce disjoint, barrier-synchronized,
    deliberately imbalanced partitions.  Every other workload falls back
    to independent per-thread instances seeded ``seed + t`` — the
    paper's homogeneous-multiprogramming methodology, minus any
    synchronization.  Thread order is pinned: entry ``t`` of the result
    always belongs to thread ``t``.
    """
    if threads <= 0:
        raise ValueError("threads must be positive")
    spec = get_workload(name)
    factory = THREADED_FACTORIES.get(name)
    if factory is not None:
        count = (
            instructions if instructions is not None
            else spec.default_instructions
        )
        return factory(threads, count, seed)
    return [spec.make(instructions, seed + t) for t in range(threads)]
