"""Microbenchmark traces for harness health metrics.

Unlike the SPEC-like suite (used for the paper's figures), these traces
isolate one machine behaviour so the benchmark harness can measure the
simulator itself — e.g. the quiescent-cycle fast-forward engine, whose
best case is a core provably stalled on memory for hundreds of cycles.
They are registered alongside the DeepBench kernels but excluded from
``SPEC_LIKE_NAMES`` so the Fig. 2 population is unaffected.
"""

from __future__ import annotations

from repro.isa import decoder as asm
from repro.isa.instructions import Program
from repro.workloads.base import (
    DATA_BASE,
    VEC_REGS,
    TraceBuilder,
    permutation_chain,
)

#: Cache-line size assumed when spacing addresses (matches spec_like).
LINE = 64


def chase_like(instructions: int, seed: int = 1) -> Program:
    """DRAM-latency-bound pointer chase (a memory-latency microbenchmark).

    Serialized dependent loads walk a random permutation chain spaced one
    cache line apart: every chase load is a cold miss the stream
    prefetcher cannot anticipate, so each iteration pays the full memory
    latency while the window fills with dependent work and the core sits
    provably stalled.  The only branch is the perfectly-predicted loop
    back edge, so (unlike ``mcf``) no wrong-path delivery breaks up the
    stall windows — this is the fast-forward engine's best case and the
    benchmark suite's designated memory-bound trace.
    """
    b = TraceBuilder("chase", seed)
    entries = 65_536  # x 64 B = 4 MB footprint: cold at every cache level
    chase = permutation_chain(b.rng, entries)
    cur = 0
    loop_pc = b.pc
    while len(b) < instructions:
        b.at(loop_pc)
        node_addr = DATA_BASE + cur * LINE
        # r1 holds the pointer; the next pointer comes from the loaded
        # node, serializing the chase exactly like mcf's inner loop.
        b.emit(asm.load(b.pc, dst=2, addr=node_addr, addr_srcs=(1,)))
        b.emit(asm.alu(b.pc, dst=1, srcs=(2,)))
        b.emit(asm.alu(b.pc, dst=3, srcs=(2,)))
        # Loop-back branch: always taken, perfectly predictable.
        b.emit(asm.branch(b.pc, taken=True, target=loop_pc, srcs=(1,)))
        cur = chase[cur]
    return b.program()


def spin_like(instructions: int, seed: int = 1) -> Program:
    """Compute-bound vector FMA spin loop (a peak-throughput microbenchmark).

    Eight independent 8-lane FMAs per iteration read two constant vector
    registers that are never written, so every FMA is ready the cycle it
    dispatches: two vector units sustain full FMA throughput (the FLOPS
    stack is all Base on an 8-lane machine and shows a steady Mask
    component on a 16-lane one).  One fixed-address L1-hit load and one
    counter ALU op keep the scalar side alive, and the only branch is the
    perfectly-predicted loop back edge.

    The loop body is completely static — identical instruction objects
    every iteration — so the trace is exactly periodic from the first
    instruction: this is the periodic steady-state replay engine's best
    case (active, zero-stall cycles the quiescent fast-forward engine can
    never skip) and the benchmark suite's designated replay trace.
    """
    b = TraceBuilder("spin", seed)
    loop_pc = b.pc
    while len(b) < instructions:
        b.at(loop_pc)
        for slot in range(8):
            b.emit(asm.fma(
                b.pc,
                dst=VEC_REGS[slot],
                srcs=(VEC_REGS[8], VEC_REGS[9]),
                lanes=8,
                width_lanes=8,
            ))
        b.emit(asm.load(b.pc, dst=2, addr=DATA_BASE, addr_srcs=(1,)))
        b.emit(asm.alu(b.pc, dst=3, srcs=(3,)))
        b.emit(asm.branch(b.pc, taken=True, target=loop_pc, srcs=(1,)))
    return b.program()
