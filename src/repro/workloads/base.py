"""Trace-building framework shared by all workload generators.

Generators are deterministic functions of their seed: the same
(workload, size, seed) triple always yields byte-identical traces, so
baseline and idealized simulations replay exactly the same program — the
paper's methodology for measuring actual CPI deltas.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.isa.instructions import Instruction, Program

#: Integer registers reserved for the wrong-path synthesizer; generators
#: must not allocate them (see :mod:`repro.pipeline.frontend`).
RESERVED_INT_REGS = range(24, 32)

#: Usable integer registers for generators.
INT_REGS = tuple(range(0, 24))

#: Usable vector registers (the top 8 are decoder temporaries).
VEC_REGS = tuple(range(32, 56))

#: Default base of the code segment.
CODE_BASE = 0x0040_0000

#: Default base of the data segment.
DATA_BASE = 0x1000_0000


class TraceBuilder:
    """Accumulates instructions with a managed program counter.

    The builder tracks a current pc so generators express *static code
    layout* (loops re-emit the same pcs, exercising I-cache reuse; a large
    routine footprint produces I-cache misses) while emitting a *dynamic*
    trace.
    """

    def __init__(self, name: str, seed: int = 1) -> None:
        self.name = name
        self.rng = random.Random(seed)
        self.instructions: list[Instruction] = []
        self.pc = CODE_BASE

    def __len__(self) -> int:
        return len(self.instructions)

    def emit(self, instr: Instruction) -> Instruction:
        """Append ``instr`` and advance pc past it."""
        self.instructions.append(instr)
        self.pc = instr.pc + instr.length
        return instr

    def at(self, pc: int) -> int:
        """Move the builder's pc (start of a basic block) and return it."""
        self.pc = pc
        return pc

    def program(self) -> Program:
        prog = Program(self.name)
        prog.extend(self.instructions)
        return prog


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Registry entry describing one synthetic workload."""

    name: str
    #: Paper benchmark (or kernel family) this workload stands in for.
    models: str
    #: Which bottlenecks the workload is designed to exhibit.
    character: str
    #: Trace factory: (instructions, seed) -> Program.
    factory: Callable[[int, int], Program] = field(repr=False)
    #: Default trace length used by the experiment harness.
    default_instructions: int = 30_000

    def make(self, instructions: int | None = None, seed: int = 1) -> Program:
        count = (
            self.default_instructions
            if instructions is None
            else instructions
        )
        if count < 100:
            raise ValueError("traces below 100 instructions are meaningless")
        return self.factory(count, seed)


def permutation_chain(rng: random.Random, entries: int) -> list[int]:
    """A single-cycle permutation for pointer chasing.

    Walking ``next[i]`` from any start visits every entry exactly once
    before repeating — the classic random pointer-chase footprint with no
    short cycles the prefetcher or cache could exploit.
    """
    order = list(range(entries))
    rng.shuffle(order)
    nxt = [0] * entries
    for position in range(entries):
        nxt[order[position]] = order[(position + 1) % entries]
    return nxt
