"""SPEC CPU 2017-like synthetic workloads.

Each generator reproduces the bottleneck structure of the paper's named
benchmark cases (Table I, Fig. 2, Fig. 3); the remaining generators widen
the suite so the Fig. 2 error distributions are computed over a meaningful
population, standing in for the paper's 36 benchmark/input combinations.
"""

from __future__ import annotations

from repro.isa import decoder as asm
from repro.isa.instructions import Program
from repro.workloads.base import (
    DATA_BASE,
    TraceBuilder,
    permutation_chain,
)

#: Cache-line size assumed by the generators when spacing addresses.
LINE = 64


def mcf_like(instructions: int, seed: int = 1) -> Program:
    """Pointer chasing with data-dependent branches (models 505.mcf).

    Serialized dependent loads chase pointers through a 64 KB working set
    (L2-resident in steady state) with sparse lookups into a cold 4 MB
    region, producing the dominant D-cache component; a data-dependent
    branch with ~25% flip rate produces the branch component; a serial
    multiply accumulator hides under the misses.  Both Table I examples
    (hidden ALU stalls on KNL, overlapping bpred/Dcache penalties on BDW)
    come from this trace.
    """
    b = TraceBuilder("mcf", seed)
    entries = 1024  # 64 KB chase footprint: misses L1D, lives in the L2
    chase = permutation_chain(b.rng, entries)
    aux_base = DATA_BASE + 0x0400_0000
    cold_base = DATA_BASE + 0x0800_0000
    cold_lines = 65_536  # 4 MB cold region touched sparsely
    cur = 0
    iteration = 0
    loop_pc = b.pc
    while len(b) < instructions:
        b.at(loop_pc)
        iteration += 1
        node_addr = DATA_BASE + cur * LINE
        # r1 holds the pointer; the load's address depends on it.
        b.emit(asm.load(b.pc, dst=2, addr=node_addr, addr_srcs=(1,)))
        # Next pointer comes from the loaded node: serializes the chase.
        b.emit(asm.alu(b.pc, dst=1, srcs=(2,)))
        # Serial cost accumulator: a multi-cycle multiply chain running in
        # parallel with the chase.  Its latency hides under the D-cache
        # misses and only surfaces once the D-cache is made perfect — the
        # Table I hidden-ALU effect on KNL.
        b.emit(asm.mul(b.pc, dst=10, srcs=(10, 2)))
        b.emit(asm.mul(b.pc, dst=10, srcs=(10,)))
        b.emit(asm.mul(b.pc, dst=10, srcs=(10,)))
        b.emit(asm.alu(b.pc, dst=4, srcs=(2,)))
        if iteration % 8 == 0:
            # Sparse arc-cost lookup in a cold 4 MB region (independent of
            # the chase: overlappable memory-level parallelism).
            cold_addr = cold_base + b.rng.randrange(cold_lines) * LINE
            b.emit(asm.load(b.pc, dst=5, addr=cold_addr, addr_srcs=(3,)))
        else:
            # A small L1-resident auxiliary lookup.
            aux_addr = aux_base + (b.rng.randrange(256)) * 8
            b.emit(asm.load(b.pc, dst=5, addr=aux_addr, addr_srcs=(2,)))
        b.emit(asm.alu(b.pc, dst=6, srcs=(4, 5)))
        # Data-dependent branch over the node value: ~25% taken.
        taken = b.rng.random() < 0.25
        skip_target = b.pc + 3 * 4 + 4
        b.emit(asm.branch(b.pc, taken=taken, target=skip_target, srcs=(6,)))
        if not taken:
            b.emit(asm.alu(b.pc, dst=7, srcs=(6,)))
            b.emit(asm.store(b.pc, src=7, addr=node_addr, addr_srcs=(1,)))
            b.emit(asm.alu(b.pc, dst=8, srcs=(7,)))
        else:
            b.at(skip_target)
        # Loop-back branch: highly predictable.
        b.emit(
            asm.branch(b.pc, taken=True, target=loop_pc, srcs=(1,))
        )
        cur = chase[cur]
    return b.program()


def cactus_like(instructions: int, seed: int = 1) -> Program:
    """Large code + data footprints contending in the unified L2 (models
    507.cactuBSSN, Fig. 3b).

    192 KB of code (short per-block inner loops give realistic I-cache
    reuse) dominates the 256 KB L2 while ~96 KB of read/write data churns
    through it, so data fills evict code lines: making the D-cache perfect
    leaves the L2 to the code and shrinks the *icache* component — the
    paper's second-order I$/D$ coupling, in the direction Sec. V-A
    describes ("the Icache component reduces when the L1 Dcache is made
    perfect").
    """
    b = TraceBuilder("cactus", seed)
    n_blocks = 384  # x 512 B of code per block = 192 KB footprint
    block_instrs = 17
    repeats = 3  # short inner loop per block: realistic I$ reuse
    # Data regions small enough to keep the D-cache component moderate but
    # large enough to evict code from the L2 (the Fig. 3b coupling).
    data_lines = 1024   # 64 KB read region
    write_lines = 512   # 32 KB write region
    write_base = DATA_BASE + 0x0200_0000
    read_idx = 0
    write_idx = 0
    while len(b) < instructions:
        for block in range(n_blocks):
            if len(b) >= instructions:
                break
            block_pc = 0x0040_0000 + block * 512
            for rep in range(repeats):
                b.at(block_pc)
                for slot in range(block_instrs):
                    phase = slot % 8
                    if phase == 0:
                        addr = DATA_BASE + (read_idx % data_lines) * LINE
                        b.emit(
                            asm.load(b.pc, dst=2 + slot % 4, addr=addr,
                                     addr_srcs=(1,))
                        )
                        read_idx += 7  # strided: defeats stream detection
                    elif phase == 1:
                        b.emit(asm.fp_mul(b.pc, dst=34, srcs=(32, 33)))
                    elif phase == 3:
                        b.emit(asm.fp_add(b.pc, dst=35, srcs=(34, 32)))
                    elif phase == 5:
                        addr = write_base + (write_idx % write_lines) * LINE
                        b.emit(
                            asm.store(b.pc, src=6, addr=addr,
                                      addr_srcs=(1,))
                        )
                        write_idx += 7
                    elif phase == 6:
                        b.emit(asm.alu(b.pc, dst=6, srcs=(2, 3)))
                    else:
                        b.emit(asm.alu(b.pc, dst=1, srcs=(6,)))
                # Inner loop-back branch: taken (repeats-1) times, then
                # falls through -- a learnable periodic pattern.
                b.emit(
                    asm.branch(
                        b.pc,
                        taken=rep < repeats - 1,
                        target=block_pc,
                        srcs=(1,),
                    )
                )
            # Predictable block-to-block branch.
            next_pc = 0x0040_0000 + ((block + 1) % n_blocks) * 512
            b.emit(asm.branch(b.pc, taken=True, target=next_pc, srcs=(1,)))
    return b.program()


def bwaves_like(instructions: int, seed: int = 1) -> Program:
    """Prefetch-heavy streaming FP with a trickle of I-cache misses
    (models 503.bwaves, Fig. 3c).

    Sequential loads over a large array keep the stream prefetcher issuing
    into the L2 and its MSHRs saturated; a 56 KB code footprint adds
    steady L1I misses that then *queue* behind the prefetches, and
    periodic gather bursts push demand misses into the same MSHRs.  A
    perfect L1I removes the misses but not the queueing (gain ~0); a
    perfect L1D silences the prefetcher entirely (most of the CPI comes
    back).
    """
    b = TraceBuilder("bwaves", seed)
    n_blocks = 112  # x 512 B = 56 KB of code, well above the 32 KB L1I
    block_instrs = 20
    repeats = 2  # one reuse per sweep: steady L1I miss rate
    stream_idx = 0
    while len(b) < instructions:
        for block in range(n_blocks):
            if len(b) >= instructions:
                break
            block_pc = 0x0040_0000 + block * 512
            # Every 8th block is a gather burst that briefly outruns the
            # prefetcher, pushing demand misses into the contended L2 MSHRs.
            burst = block % 8 == 0
            for rep in range(repeats):
                b.at(block_pc)
                for slot in range(block_instrs):
                    phase = slot % 10
                    is_load = phase == 0 or (burst and phase in (4, 6))
                    if is_load:
                        addr = DATA_BASE + stream_idx * LINE
                        b.emit(
                            asm.load(b.pc, dst=2 + phase % 4, addr=addr,
                                     addr_srcs=(1,))
                        )
                        stream_idx += 1
                    elif phase == 1:
                        b.emit(
                            asm.fp_mul(
                                b.pc, dst=36, srcs=(32, 33),
                                lanes=4, width_lanes=4,
                            )
                        )
                    elif phase == 3:
                        b.emit(
                            asm.fp_add(
                                b.pc, dst=37, srcs=(36, 34),
                                lanes=4, width_lanes=4,
                            )
                        )
                    else:
                        b.emit(asm.alu(b.pc, dst=1, srcs=(1,)))
                b.emit(
                    asm.branch(
                        b.pc,
                        taken=rep < repeats - 1,
                        target=block_pc,
                        srcs=(1,),
                    )
                )
            next_pc = 0x0040_0000 + ((block + 1) % n_blocks) * 512
            b.emit(asm.branch(b.pc, taken=True, target=next_pc, srcs=(1,)))
    return b.program()


def povray_like(instructions: int, seed: int = 1) -> Program:
    """Microcoded scalar FP with moderate branch misprediction (models
    511.povray on KNL, Fig. 3d).

    Microcoded multi-micro-op FP instructions stall the 2-wide KNL decoder
    (the `Microcode` component); a semi-random shading branch produces the
    bpred component; 6-cycle KNL FP latencies produce the ALU component.
    """
    b = TraceBuilder("povray", seed)
    aux = DATA_BASE
    iteration = 0
    loop_pc = b.pc
    while len(b) < instructions:
        b.at(loop_pc)
        iteration += 1
        if iteration % 3 == 0:
            # Ray-object intersection: microcoded transcendental-style op
            # (the KNL microcode-sequencer stall of Fig. 3d).
            b.emit(
                asm.microcoded_fp(b.pc, dst=40, srcs=(32, 34), n_uops=4)
            )
        else:
            b.at(b.pc + 8)  # skip the microcoded slot this iteration
        b.emit(asm.fp_mul(b.pc, dst=41, srcs=(40, 34)))
        # Serial lighting accumulator: multi-cycle FP latency binds here
        # (the ALU component the 1-cycle-ALU idealization recovers).
        b.emit(asm.fp_mul(b.pc, dst=33, srcs=(33, 41)))
        b.emit(asm.fp_add(b.pc, dst=33, srcs=(33, 35)))
        # L1-resident scene data.
        addr = aux + b.rng.randrange(128) * 8
        b.emit(asm.load(b.pc, dst=3, addr=addr, addr_srcs=(1,)))
        b.emit(asm.alu(b.pc, dst=4, srcs=(3,)))
        # Shading decision: ~20% unpredictable.
        taken = b.rng.random() < 0.2
        skip = b.pc + 2 * 4 + 4
        b.emit(asm.branch(b.pc, taken=taken, target=skip, srcs=(4,)))
        if not taken:
            b.emit(asm.alu(b.pc, dst=5, srcs=(4,)))
            b.emit(asm.alu(b.pc, dst=6, srcs=(5,)))
        else:
            b.at(skip)
        b.emit(asm.branch(b.pc, taken=True, target=loop_pc, srcs=(1,)))
    return b.program()


def imagick_like(instructions: int, seed: int = 1) -> Program:
    """Serialized multi-cycle arithmetic chains (models 538.imagick on
    KNL, Fig. 3e).

    Dependence chains alternate a multi-cycle multiply with single-cycle
    consumers.  The dispatch/commit stacks blame `depend` (the ROB head is
    usually a 1-cycle consumer waiting on its operand); the issue stack's
    producer lookup correctly blames the executing multiply (`alu`), and a
    1-cycle-ALU idealization recovers roughly that component.
    """
    b = TraceBuilder("imagick", seed)
    aux = DATA_BASE
    loop_pc = b.pc
    while len(b) < instructions:
        b.at(loop_pc)
        for chain in range(2):
            acc = 10 + chain
            b.emit(asm.mul(b.pc, dst=acc, srcs=(acc,)))
            b.emit(asm.alu(b.pc, dst=16 + chain, srcs=(acc,)))
            b.emit(asm.alu(b.pc, dst=18 + chain, srcs=(16 + chain,)))
            b.emit(asm.alu(b.pc, dst=acc, srcs=(18 + chain,)))
        addr = aux + b.rng.randrange(64) * 8
        b.emit(asm.load(b.pc, dst=3, addr=addr, addr_srcs=(1,)))
        b.emit(asm.branch(b.pc, taken=True, target=loop_pc, srcs=(1,)))
    return b.program()


def leela_like(instructions: int, seed: int = 1) -> Program:
    """Branch-misprediction-bound integer code (models 541.leela).

    A tree-search-style control pattern: several hard-to-predict branches
    per iteration over L1-resident data.
    """
    b = TraceBuilder("leela", seed)
    aux = DATA_BASE
    loop_pc = b.pc
    while len(b) < instructions:
        b.at(loop_pc)
        addr = aux + b.rng.randrange(512) * 8
        b.emit(asm.load(b.pc, dst=2, addr=addr, addr_srcs=(1,)))
        b.emit(asm.alu(b.pc, dst=3, srcs=(2,)))
        taken_a = b.rng.random() < 0.45
        skip_a = b.pc + 2 * 4 + 4
        b.emit(asm.branch(b.pc, taken=taken_a, target=skip_a, srcs=(3,)))
        if not taken_a:
            b.emit(asm.alu(b.pc, dst=4, srcs=(3,)))
            b.emit(asm.alu(b.pc, dst=5, srcs=(4,)))
        else:
            b.at(skip_a)
        taken_b = b.rng.random() < 0.3
        skip_b = b.pc + 4 + 4
        b.emit(asm.branch(b.pc, taken=taken_b, target=skip_b, srcs=(2,)))
        if not taken_b:
            b.emit(asm.alu(b.pc, dst=6, srcs=(3,)))
        else:
            b.at(skip_b)
        b.emit(asm.branch(b.pc, taken=True, target=loop_pc, srcs=(1,)))
    return b.program()


def lbm_like(instructions: int, seed: int = 1) -> Program:
    """Bandwidth-bound streaming with stores (models 519.lbm).

    Independent streaming loads and stores over a huge footprint: the
    D-cache component dominates and prefetching/bandwidth effects decide
    the CPI.
    """
    b = TraceBuilder("lbm", seed)
    loop_pc = b.pc
    read_idx = 0
    write_idx = 1 << 16
    while len(b) < instructions:
        b.at(loop_pc)
        for lane in range(3):
            addr = DATA_BASE + (read_idx + lane) * LINE
            b.emit(
                asm.load(b.pc, dst=2 + lane, addr=addr, addr_srcs=(1,))
            )
        read_idx += 3
        b.emit(asm.fp_mul(b.pc, dst=36, srcs=(32, 33), lanes=4,
                          width_lanes=4))
        b.emit(asm.fp_add(b.pc, dst=37, srcs=(36, 34), lanes=4,
                          width_lanes=4))
        addr = DATA_BASE + write_idx * LINE
        b.emit(asm.store(b.pc, src=4, addr=addr, addr_srcs=(1,)))
        write_idx += 1
        b.emit(asm.branch(b.pc, taken=True, target=loop_pc, srcs=(1,)))
    return b.program()


def exchange2_like(instructions: int, seed: int = 1) -> Program:
    """High-ILP integer compute, cache-resident (models 548.exchange2).

    Near-ideal CPI: wide independent ALU work, predictable branches, tiny
    footprints.  A 'zero' case that anchors the Fig. 2 filter.

    The per-iteration load rotates deterministically through one cache
    line (same line, same page every access), modelling the L1-resident
    stack traffic of the real benchmark; the rotation gives the trace an
    exact 8-iteration super-period, which also makes it a natural target
    for the periodic steady-state replay engine.
    """
    b = TraceBuilder("exchange2", seed)
    loop_pc = b.pc
    iteration = 0
    while len(b) < instructions:
        b.at(loop_pc)
        for lane in range(8):
            b.emit(asm.alu(b.pc, dst=2 + lane, srcs=(2 + lane,)))
        b.emit(asm.mul(b.pc, dst=12, srcs=(2,)))
        b.emit(asm.alu(b.pc, dst=13, srcs=(3, 4)))
        addr = DATA_BASE + (iteration % 8) * 8
        b.emit(asm.load(b.pc, dst=14, addr=addr, addr_srcs=(1,)))
        b.emit(asm.branch(b.pc, taken=True, target=loop_pc, srcs=(1,)))
        iteration += 1
    return b.program()


def nab_like(instructions: int, seed: int = 1) -> Program:
    """Scalar FP molecular-dynamics-style compute (models 544.nab).

    Moderate-ILP floating point with an L2-resident working set: ALU
    latency and mild D-cache components.
    """
    b = TraceBuilder("nab", seed)
    data_lines = 1536  # 96 KB working set: L2-resident, misses L1D
    idx = 0
    loop_pc = b.pc
    while len(b) < instructions:
        b.at(loop_pc)
        addr = DATA_BASE + (idx % data_lines) * LINE
        idx += 11
        b.emit(asm.load(b.pc, dst=2, addr=addr, addr_srcs=(1,)))
        b.emit(asm.fp_mul(b.pc, dst=40, srcs=(32, 33)))
        b.emit(asm.fp_mul(b.pc, dst=41, srcs=(40, 34)))
        b.emit(asm.fp_add(b.pc, dst=42, srcs=(41, 35)))
        b.emit(asm.fp_add(b.pc, dst=32, srcs=(42, 36)))
        b.emit(asm.alu(b.pc, dst=3, srcs=(2,)))
        b.emit(asm.branch(b.pc, taken=True, target=loop_pc, srcs=(1,)))
    return b.program()


def xz_like(instructions: int, seed: int = 1) -> Program:
    """Mixed compression-style behaviour (models 557.xz).

    A bit of everything: pointer-ish loads, data-dependent branches,
    multi-cycle integer ops and a medium working set — a 'no single
    bottleneck' population member for Fig. 2.
    """
    b = TraceBuilder("xz", seed)
    data_lines = 4096  # 256 KB
    idx = 0
    loop_pc = b.pc
    while len(b) < instructions:
        b.at(loop_pc)
        addr = DATA_BASE + (idx % data_lines) * LINE
        idx += b.rng.randrange(1, 17)
        b.emit(asm.load(b.pc, dst=2, addr=addr, addr_srcs=(1,)))
        b.emit(asm.alu(b.pc, dst=3, srcs=(2,)))
        b.emit(asm.mul(b.pc, dst=4, srcs=(3,)))
        taken = b.rng.random() < 0.15
        skip = b.pc + 2 * 4 + 4
        b.emit(asm.branch(b.pc, taken=taken, target=skip, srcs=(3,)))
        if not taken:
            b.emit(asm.alu(b.pc, dst=5, srcs=(4,)))
            b.emit(asm.store(b.pc, src=5, addr=addr, addr_srcs=(1,)))
        else:
            b.at(skip)
        b.emit(asm.alu(b.pc, dst=6, srcs=(4,)))
        b.emit(asm.branch(b.pc, taken=True, target=loop_pc, srcs=(1,)))
    return b.program()


def deepsjeng_like(instructions: int, seed: int = 1) -> Program:
    """Branchy search with hash-table lookups (models 531.deepsjeng).

    Combines an unpredictable branch with scattered loads into a ~1 MB
    hash table: bpred and D-cache components of similar size, exercising
    the overlap cases of Fig. 2.
    """
    b = TraceBuilder("deepsjeng", seed)
    table_lines = 4096  # 256 KB hash table: L2/L3 resident once warm
    loop_pc = b.pc
    while len(b) < instructions:
        b.at(loop_pc)
        slot = b.rng.randrange(table_lines)
        addr = DATA_BASE + slot * LINE
        b.emit(asm.load(b.pc, dst=2, addr=addr, addr_srcs=(1,)))
        b.emit(asm.alu(b.pc, dst=3, srcs=(2,)))
        taken = b.rng.random() < 0.35
        skip = b.pc + 3 * 4 + 4
        b.emit(asm.branch(b.pc, taken=taken, target=skip, srcs=(3,)))
        if not taken:
            b.emit(asm.alu(b.pc, dst=4, srcs=(3,)))
            b.emit(asm.alu(b.pc, dst=5, srcs=(4,)))
            b.emit(asm.alu(b.pc, dst=6, srcs=(5,)))
        else:
            b.at(skip)
        b.emit(asm.branch(b.pc, taken=True, target=loop_pc, srcs=(1,)))
    return b.program()
