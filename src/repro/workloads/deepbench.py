"""DeepBench-like HPC kernel traces for FLOPS-stack evaluation.

The paper evaluates FLOPS stacks on DeepBench sgemm (MKL) and convolution
(MKL-DNN) kernels.  We synthesize the two code styles the paper describes
(Sec. V-B):

* **KNL JIT style** — "the MKL just-in-time (jit) code engine uses FMA
  operations with a memory operand, meaning that the instruction is split
  into a L1 Dcache access and an FMA calculation" -> large FLOPS `mem`
  component even without cache misses.
* **SKX style** — "first loading data from memory, broadcasting the values
  in an AVX512 register, and using this register in multiple FMA operations
  without memory operand.  The FMA instructions are dependent on the
  broadcast instruction" -> large FLOPS `depend` component.

Convolution phases mix integer SIMD reshuffling, address arithmetic and
border masking with the FMA work, giving the low VFP micro-op fraction (and
hence the large FLOPS `frontend` component) of Fig. 4, plus periodic
synchronization yields that appear as `Unsched` (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import decoder as asm
from repro.isa.instructions import Program
from repro.workloads.base import DATA_BASE, TraceBuilder

LINE = 64

#: Vector accumulators available to the kernels (zmm-style).
_ACC_REGS = tuple(range(40, 52))
#: Registers holding loop-invariant operands / broadcast values.
_B_REGS = tuple(range(33, 39))
_BCAST_REG = 39


@dataclass(frozen=True, slots=True)
class DeepBenchKernel:
    """One DeepBench problem configuration (shape-level parameters)."""

    name: str
    kind: str  # "sgemm" | "conv"
    group: str  # "train" | "inference" (sgemm); "train" for conv
    m: int
    n: int
    k: int

    @property
    def flops(self) -> int:
        return 2 * self.m * self.n * self.k


#: Representative DeepBench configurations (a subset of the 235 sgemm and
#: 94 convolution problems; shapes follow the published DeepBench suite).
DEEPBENCH_CONFIGS: tuple[DeepBenchKernel, ...] = (
    # sgemm training
    DeepBenchKernel("gemm-train-1760", "sgemm", "train", 1760, 128, 1760),
    DeepBenchKernel("gemm-train-2048", "sgemm", "train", 2048, 64, 2048),
    DeepBenchKernel("gemm-train-2560", "sgemm", "train", 2560, 64, 2560),
    DeepBenchKernel("gemm-train-4096", "sgemm", "train", 4096, 16, 4096),
    DeepBenchKernel("gemm-train-5124", "sgemm", "train", 5124, 9124, 2560),
    DeepBenchKernel("gemm-train-35", "sgemm", "train", 35, 8457, 2560),
    # sgemm inference (smaller batch -> more masking / less reuse)
    DeepBenchKernel("gemm-infer-5120", "sgemm", "inference", 5120, 1, 2560),
    DeepBenchKernel("gemm-infer-3072", "sgemm", "inference", 3072, 2, 1024),
    DeepBenchKernel("gemm-infer-7680", "sgemm", "inference", 7680, 1, 2560),
    DeepBenchKernel("gemm-infer-512", "sgemm", "inference", 512, 4, 512),
    DeepBenchKernel("gemm-infer-1024", "sgemm", "inference", 1024, 7, 500),
    # convolution layers (m ~ output pixels, n ~ filters, k ~ c*r*s)
    DeepBenchKernel("conv-resnet-1", "conv", "train", 700, 161, 225),
    DeepBenchKernel("conv-resnet-2", "conv", "train", 341, 79, 800),
    DeepBenchKernel("conv-vgg-1", "conv", "train", 224, 64, 27),
    DeepBenchKernel("conv-vgg-2", "conv", "train", 112, 128, 576),
    DeepBenchKernel("conv-deepspeech", "conv", "train", 79, 32, 410),
    DeepBenchKernel("conv-ocr", "conv", "train", 48, 480, 1024),
)


def sgemm_configs() -> list[DeepBenchKernel]:
    return [c for c in DEEPBENCH_CONFIGS if c.kind == "sgemm"]


def conv_configs() -> list[DeepBenchKernel]:
    return [c for c in DEEPBENCH_CONFIGS if c.kind == "conv"]


def _mask_lanes(config: DeepBenchKernel, width: int) -> int:
    """Active lanes of the (partial) edge vector for this shape."""
    rem = config.n % width
    return rem if rem else width


def sgemm_trace(
    config: DeepBenchKernel,
    style: str,
    instructions: int = 24_000,
    seed: int = 1,
    *,
    vector_lanes: int = 16,
) -> Program:
    """Blocked sgemm inner kernel in the KNL-JIT or SKX code style."""
    if style not in ("knl", "skx"):
        raise ValueError("sgemm style must be 'knl' or 'skx'")
    b = TraceBuilder(f"sgemm-{style}-{config.name}", seed)
    # B panel streams through an L1-resident block.
    panel_lines = 256  # 16 KB: L1-resident, as in a blocked MKL kernel
    b_idx = 0
    # Edge vectors are masked when n is not a multiple of the width.
    edge_lanes = _mask_lanes(config, vector_lanes)
    n_acc = len(_ACC_REGS)
    loop_pc = b.pc
    while len(b) < instructions:
        b.at(loop_pc)
        if style == "skx":
            # Load + broadcast one A element, then reuse it in many FMAs.
            a_addr = DATA_BASE + 0x100000 + (b_idx % 512) * 8
            b.emit(
                asm.broadcast(
                    b.pc, dst=_BCAST_REG, width_lanes=vector_lanes,
                    mem_addr=a_addr, addr_srcs=(1,),
                )
            )
        for step in range(n_acc):
            acc = _ACC_REGS[step]
            # Every 8th vector is a masked edge vector.
            lanes = edge_lanes if (b_idx + step) % 8 == 7 else vector_lanes
            if style == "knl":
                # JIT style: FMA with memory operand -> load + FMA pair.
                addr = DATA_BASE + (b_idx % panel_lines) * LINE
                b.emit(
                    asm.fma(
                        b.pc, dst=acc,
                        srcs=(acc, _B_REGS[step % len(_B_REGS)]),
                        lanes=lanes, width_lanes=vector_lanes,
                        mem_addr=addr, addr_srcs=(1,),
                    )
                )
            else:
                b.emit(
                    asm.fma(
                        b.pc, dst=acc,
                        srcs=(acc, _BCAST_REG,
                              _B_REGS[step % len(_B_REGS)]),
                        lanes=lanes, width_lanes=vector_lanes,
                    )
                )
                # Register-resident operands need their own load and
                # address-arithmetic micro-ops: this is why the SKX code
                # style has a visibly lower VFP micro-op fraction.
                if step % 2 == 0:
                    addr = DATA_BASE + (b_idx % panel_lines) * LINE
                    b.emit(
                        asm.load(
                            b.pc, dst=_B_REGS[b_idx % len(_B_REGS)],
                            addr=addr, addr_srcs=(1,), size=64,
                        )
                    )
                if step % 3 == 0:
                    b.emit(asm.alu(b.pc, dst=2, srcs=(1,)))
            b_idx += 1
        # Loop overhead: pointer bump + predictable branch.
        b.emit(asm.alu(b.pc, dst=1, srcs=(1,)))
        b.emit(asm.branch(b.pc, taken=True, target=loop_pc, srcs=(1,)))
    return b.program()


def conv_trace(
    config: DeepBenchKernel,
    phase: str,
    instructions: int = 24_000,
    seed: int = 1,
    *,
    vector_lanes: int = 16,
    sync_interval: int = 4000,
    sync_cycles: int = 150,
) -> Program:
    """Convolution kernel trace for one training phase.

    * ``fwd`` — forward: im2col-style integer SIMD shuffles and address
      arithmetic around memory-operand FMAs (low VFP fraction).
    * ``bwd_d`` — backward data: scattered input gradients (more D-cache
      misses, fewer FMAs).
    * ``bwd_f`` — backward filter: reductions into few accumulators
      (longer FMA dependence chains).
    """
    if phase not in ("fwd", "bwd_d", "bwd_f"):
        raise ValueError("conv phase must be fwd, bwd_d or bwd_f")
    b = TraceBuilder(f"conv-{phase}-{config.name}", seed)
    edge_lanes = _mask_lanes(config, vector_lanes)
    idx = 0
    since_sync = 0
    iteration = 0
    loop_pc = b.pc
    reshuffle_pc = b.pc + 0x400
    while len(b) < instructions:
        iteration += 1
        idx, work = _emit_conv_iteration(
            b, phase, iteration, idx, loop_pc, reshuffle_pc, DATA_BASE,
            vector_lanes, edge_lanes,
        )
        since_sync += work
        if since_sync >= sync_interval:
            since_sync = 0
            b.emit(asm.sync_yield(b.pc, sync_cycles))
    return b.program()


def _emit_conv_iteration(
    b: TraceBuilder,
    phase: str,
    iteration: int,
    idx: int,
    loop_pc: int,
    reshuffle_pc: int,
    base: int,
    vector_lanes: int,
    edge_lanes: int,
) -> tuple[int, int]:
    """Emit one conv inner-loop iteration rooted at ``base``.

    Shared by the single-threaded and threaded generators (``base``
    offsets give each thread a disjoint data partition).  Returns the
    advanced access index and the iteration's work units — the budget the
    callers' sync/barrier cadence is measured in.
    """
    # Forward convolutions are blocked into a near-L1-resident tile (IPC
    # stays near ideal, Fig. 5); the backward phases touch wider footprints.
    footprint_lines = 640 if phase == "fwd" else 4096
    n_acc = 12 if phase == "fwd" else (8 if phase == "bwd_d" else 2)
    work = 0
    if iteration % 3 == 0:
        # im2col-style reshuffle burst: no VFP work at all -- these
        # stretches produce the FLOPS `frontend` component (Fig. 4/5).
        b.at(reshuffle_pc)
        for _ in range(3):
            addr = base + 0x300000 + (idx % 64) * LINE
            b.emit(asm.load(b.pc, dst=4, addr=addr, addr_srcs=(2,)))
            b.emit(
                asm.vec_int(b.pc, dst=53, srcs=(53,),
                            lanes=vector_lanes,
                            width_lanes=vector_lanes)
            )
            b.emit(asm.alu(b.pc, dst=2, srcs=(4,)))
        b.emit(
            asm.branch(b.pc, taken=True, target=loop_pc, srcs=(2,))
        )
        work += 10
    b.at(loop_pc)
    # Address arithmetic for the window walk.
    b.emit(asm.alu(b.pc, dst=2, srcs=(1,)))
    b.emit(asm.alu(b.pc, dst=3, srcs=(2,)))
    # Data reshuffle on the vector unit (non-VFP vector work).
    b.emit(
        asm.vec_int(b.pc, dst=52, srcs=(52,), lanes=vector_lanes,
                    width_lanes=vector_lanes)
    )
    if phase == "fwd":
        stride = 2
        fma_count = 4
    elif phase == "bwd_d":
        stride = 37  # scattered gradient accesses
        fma_count = 3
    else:
        stride = 5
        fma_count = 5
    for step in range(fma_count):
        acc = _ACC_REGS[step % n_acc]
        lanes = (
            edge_lanes if (idx + step) % 6 == 5 else vector_lanes
        )
        addr = base + (idx % footprint_lines) * LINE
        idx += stride
        b.emit(
            asm.fma(
                b.pc, dst=acc,
                srcs=(acc, _B_REGS[step % len(_B_REGS)]),
                lanes=lanes, width_lanes=vector_lanes,
                mem_addr=addr, addr_srcs=(2,),
            )
        )
    # Pointer updates and loop control.
    b.emit(asm.alu(b.pc, dst=1, srcs=(3,)))
    b.emit(asm.branch(b.pc, taken=True, target=loop_pc, srcs=(1,)))
    work += fma_count + 5
    return idx, work


#: Address-space stride between thread data partitions (16 MB: far beyond
#: any kernel footprint, so threads never share a cache line).
_THREAD_STRIDE = 0x100_0000


def threaded_conv_traces(
    config: DeepBenchKernel,
    phase: str,
    threads: int,
    instructions: int = 24_000,
    seed: int = 1,
    *,
    vector_lanes: int = 16,
    sync_interval: int = 4000,
    sync_cycles: int = 150,
    imbalance: float = 0.3,
) -> list[Program]:
    """Per-thread conv traces for the shared-memory multi-core engine.

    An OpenMP-style static decomposition of the convolution across
    ``threads`` workers: thread ``t`` walks a disjoint data partition
    (``base + t * _THREAD_STRIDE``) and joins its siblings at an explicit
    :func:`repro.isa.decoder.barrier` at the end of every work interval.
    Every thread emits the *same number* of barriers, so barrier ``k`` in
    each trace pairs with barrier ``k`` in every other.

    The decomposition is deliberately imbalanced (uneven tile borders):
    thread ``t`` performs ``1 + imbalance * t / (threads - 1)`` times the
    base interval work, so earlier threads arrive first and accumulate
    Unsched cycles waiting — the source of the nonzero per-core Unsched
    components in the Fig. 5 conv stacks.  ``threads == 1`` degrades to a
    single trace whose barriers behave as plain sync yields.

    ``instructions`` budgets the *base* thread; slower threads are
    proportionally longer.  Thread ``t`` seeds its builder with
    ``seed + 7919 * t`` so any randomized content diverges per thread.
    """
    if phase not in ("fwd", "bwd_d", "bwd_f"):
        raise ValueError("conv phase must be fwd, bwd_d or bwd_f")
    if threads <= 0:
        raise ValueError("threads must be positive")
    if imbalance < 0:
        raise ValueError("imbalance must be non-negative")
    edge_lanes = _mask_lanes(config, vector_lanes)

    def build(thread: int, n_intervals: int | None) -> tuple[Program, int]:
        b = TraceBuilder(
            f"conv-{phase}-{config.name}-t{thread}", seed + 7919 * thread
        )
        base = DATA_BASE + thread * _THREAD_STRIDE
        if threads > 1:
            quota = sync_interval * (
                1.0 + imbalance * thread / (threads - 1)
            )
        else:
            quota = float(sync_interval)
        idx = 0
        iteration = 0
        intervals = 0
        loop_pc = b.pc
        reshuffle_pc = b.pc + 0x400
        while True:
            since_sync = 0
            while since_sync < quota:
                iteration += 1
                idx, work = _emit_conv_iteration(
                    b, phase, iteration, idx, loop_pc, reshuffle_pc,
                    base, vector_lanes, edge_lanes,
                )
                since_sync += work
            b.emit(asm.barrier(b.pc, sync_cycles))
            intervals += 1
            if n_intervals is None:
                if len(b) >= instructions:
                    return b.program(), intervals
            elif intervals >= n_intervals:
                return b.program(), intervals

    first, n_intervals = build(0, None)
    programs = [first]
    for thread in range(1, threads):
        program, _ = build(thread, n_intervals)
        programs.append(program)
    return programs
