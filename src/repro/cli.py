"""Command-line interface.

Subcommands::

    repro run --workload mcf --core bdw          # one simulation + stacks
    repro workloads                              # list the registry
    repro presets                                # list machine presets
    repro table1 [--jobs N]                      # Table I reproduction
    repro fig2 --core bdw [--jobs N]             # Fig. 2 error sweep
    repro fig3 --case fig3a [--jobs N]           # one Fig. 3 case study
    repro fig5 [--jobs N]                        # IPC vs FLOPS stacks
    repro overhead                               # accounting overhead
    repro profile mcf [--core bdw]               # cProfile one simulation
    repro cache stats | clear                    # persistent result cache
    repro failures list | clear                  # persisted failure reports
    repro checkpoints list | clear               # mid-simulation snapshots

Experiment subcommands accept ``--jobs`` (default: ``$REPRO_JOBS`` or the
CPU count; ``auto`` = CPU count minus one) and print a one-line harness
summary — cases scheduled, cache hits, fused groups, wall time and
simulated uops/sec — after their output.  They also accept the
supervision flags ``--case-timeout`` (per-case deadline in seconds;
default scales with each case's instruction count), ``--keep-going``
(finish the batch despite failed cases and report them instead of
aborting), ``--no-strict`` (downgrade accounting invariant violations
from errors to warnings), ``--checkpoint-interval`` (take a crash-safe
snapshot every N committed instructions so retried cases resume instead
of restarting) and ``--no-fuse`` (run every case as its own simulation
instead of fusing cases that share a timing; fused and unfused results
are bitwise identical).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.config.presets import PRESETS, get_preset
from repro.core import invariants
from repro.core.components import FLOPS_COMPONENTS
from repro.core.wrongpath import WrongPathMode
from repro.experiments import supervisor
from repro.experiments.error import figure2_errors, summarize_errors
from repro.experiments.idealization import FIG3_CASES, fig3_case, table1_rows
from repro.experiments.flops_study import figure5_case, figure5_socket_case
from repro.experiments.overhead import measure_overhead
from repro.experiments import parallel
from repro.experiments.parallel import summarize_since, telemetry_mark
from repro.experiments.runner import clear_cache, run_case
from repro.experiments.cache import get_disk_cache
from repro.pipeline import checkpoint as pipeline_checkpoint
from repro.pipeline import core as pipeline_core
from repro.viz.ascii import (
    render_boxplot_table,
    render_cpi_stack,
    render_flops_stack,
    render_stack_bar,
    render_table,
)
from repro.workloads.registry import WORKLOADS




def _cmd_run(args: argparse.Namespace) -> int:
    mode = WrongPathMode(args.mode)
    result = run_case(
        args.workload,
        args.core,
        instructions=args.instructions,
        seed=args.seed,
        mode=mode,
        use_cache=False,
    )
    print(
        f"{args.workload} on {args.core}: "
        f"cycles={result.cycles} uops={result.committed_uops} "
        f"CPI={result.cpi:.3f} IPC={result.ipc:.3f} "
        f"mispredict={result.mispredict_rate:.3f}"
    )
    if result.ff_cycles_skipped or result.replay_cycles_skipped:
        print(
            f"skipped: fast-forward {result.ff_cycles_skipped} cycles "
            f"in {result.ff_windows} windows, replay "
            f"{result.replay_cycles_skipped} cycles in "
            f"{result.replay_windows} windows"
        )
    report = result.report
    assert report is not None
    for stack in (report.dispatch, report.issue, report.commit):
        print()
        print(render_cpi_stack(stack))
    if args.flops and report.flops is not None:
        config = get_preset(args.core)
        print()
        print(
            render_flops_stack(
                report.flops, config.frequency_ghz, config.socket_cores
            )
        )
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    rows = [
        {
            "name": spec.name,
            "models": spec.models,
            "character": spec.character,
            "default_instrs": spec.default_instructions,
        }
        for spec in WORKLOADS.values()
    ]
    print(render_table(rows))
    return 0


def _cmd_presets(args: argparse.Namespace) -> int:
    rows = []
    for name in PRESETS:
        config = get_preset(name)
        rows.append(
            {
                "name": name,
                "width": config.dispatch_width,
                "rob": config.rob_size,
                "rs": config.rs_size,
                "vpus": config.vector_units,
                "lanes": config.vector_lanes,
                "freq_ghz": config.frequency_ghz,
                "peak_gflops/core": config.peak_flops_per_cycle
                * config.frequency_ghz,
            }
        )
    print(render_table(rows))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    rows = table1_rows(
        instructions=args.instructions, seed=args.seed, jobs=args.jobs,
        keep_going=args.keep_going, case_timeout=args.case_timeout,
    )
    print("Table I: CPI components by idealizing structures")
    print(render_table(rows))
    return 0


def _cmd_fig2(args: argparse.Namespace) -> int:
    errors = figure2_errors(
        args.core, instructions=args.instructions, seed=args.seed,
        jobs=args.jobs, keep_going=args.keep_going,
        case_timeout=args.case_timeout,
    )
    print(
        f"Fig. 2 ({args.core.upper()}): error = predicted component - "
        "actual CPI delta"
    )
    for component, points in errors.items():
        if not points:
            continue
        print()
        print(
            f"component {component.value} "
            f"({len(points)} benchmarks over threshold):"
        )
        print(render_boxplot_table(summarize_errors(points)))
        within = sum(p.within_bounds for p in points)
        print(
            f"actual delta within multi-stage bounds: {within}/{len(points)}"
        )
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    study = fig3_case(
        args.case, instructions=args.instructions, jobs=args.jobs,
        keep_going=args.keep_going, case_timeout=args.case_timeout,
    )
    report = study.baseline.report
    assert report is not None
    print(
        f"{args.case}: {study.workload} on {study.preset} "
        f"(baseline CPI {study.baseline.cpi:.3f})"
    )
    for stack in (report.dispatch, report.issue, report.commit):
        print()
        print(render_cpi_stack(stack))
    print()
    for name, result in study.idealized.items():
        print(
            f"{name}: CPI {result.cpi:.3f} "
            f"(delta {study.baseline.cpi - result.cpi:+.3f})"
        )
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    if args.cores > 1:
        return _cmd_fig5_socket(args)
    case = figure5_case(
        instructions=args.instructions, jobs=args.jobs,
        keep_going=args.keep_going, case_timeout=args.case_timeout,
    )
    config = get_preset(case.preset)
    max_ipc = float(config.accounting_width)
    for idealized, label in ((False, "baseline"), (True, "perfect Dcache")):
        print(f"--- {label} ---")
        print("IPC stack (height = max IPC):")
        print(
            render_stack_bar(
                case.ipc_stack(idealized),
                order=list(case.ipc_stack(idealized)),
                scale=max_ipc,
            )
        )
        print("FLOPS stack (socket GFLOPS):")
        print(
            render_stack_bar(
                case.flops_stack(idealized),
                order=FLOPS_COMPONENTS,
                scale=config.socket_peak_gflops,
                value_format="{:,.0f}",
            )
        )
        print()
    return 0


def _cmd_fig5_socket(args: argparse.Namespace) -> int:
    case = figure5_socket_case(
        cores=args.cores, instructions=args.instructions, jobs=args.jobs,
        keep_going=args.keep_going, case_timeout=args.case_timeout,
        homogeneous=args.homogeneous,
    )
    config = get_preset(case.preset)
    max_ipc = float(config.accounting_width)
    model = "homogeneous clones" if args.homogeneous else (
        "shared-memory engine (shared L3/DRAM, barrier sync)"
    )
    print(
        f"Fig. 5 on a simulated {case.cores}-core socket "
        f"({case.workload}@{case.preset}, {model})"
    )
    for idealized, label in ((False, "baseline"), (True, "perfect Dcache")):
        print(f"--- {label} ---")
        for core in range(case.cores):
            print(f"core {core} IPC stack (height = max IPC):")
            stack = case.core_ipc_stack(core, idealized)
            print(
                render_stack_bar(stack, order=list(stack), scale=max_ipc)
            )
        print("socket IPC stack (per-core average):")
        print(
            render_stack_bar(
                case.ipc_stack(idealized),
                order=list(case.ipc_stack(idealized)),
                scale=max_ipc,
            )
        )
        print(f"socket FLOPS stack ({case.cores}-core GFLOPS):")
        peak = (
            config.frequency_ghz
            * config.peak_flops_per_cycle
            * case.cores
        )
        print(
            render_stack_bar(
                case.flops_stack(idealized),
                order=FLOPS_COMPONENTS,
                scale=peak,
                value_format="{:,.0f}",
            )
        )
        print()
    return 0


def _cmd_socket(args: argparse.Namespace) -> int:
    from repro.experiments.multicore import simulate_socket

    config = get_preset(args.core)
    result = simulate_socket(
        args.workload,
        config,
        threads=args.threads,
        instructions=args.instructions,
        jobs=args.jobs,
        keep_going=args.keep_going,
        case_timeout=args.case_timeout,
        homogeneous=args.homogeneous,
    )
    model = "homogeneous clones" if args.homogeneous else (
        "shared-memory engine"
    )
    print(
        f"{args.threads}-thread socket of {args.workload} on "
        f"{args.core} ({model}): aggregate CPI {result.cpi:.3f} "
        f"(thread homogeneity: {100 * result.homogeneity():.1f}% max "
        "deviation)"
    )
    print()
    print(render_cpi_stack(result.commit))
    if result.flops is not None:
        print()
        print(
            render_flops_stack(
                result.flops, config.frequency_ghz, args.threads
            )
        )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = get_disk_cache()
    if args.action == "clear":
        removed = clear_cache()
        print(f"removed {removed} cached results from {cache.root}")
        return 0
    stats = cache.stats()
    print(f"cache dir: {stats['dir']}")
    print(f"entries:   {stats['entries']}")
    print(f"size:      {stats['bytes'] / 1024:.1f} KiB")
    print(
        "this process: "
        f"{stats['sim_invocations']} simulations, "
        f"{stats['memo_hits']} memo hits, "
        f"{stats['disk_hits']} disk hits, "
        f"{stats['disk_misses']} disk misses, "
        f"{stats['corrupt_entries']} corrupt entries dropped"
    )
    return 0


def _cmd_failures(args: argparse.Namespace) -> int:
    if args.action == "clear":
        removed = supervisor.clear_failures()
        print(
            f"removed {removed} failure report(s) from "
            f"{supervisor.failures_dir()}"
        )
        return 0
    records = supervisor.list_failures()
    if not records:
        print(f"no failure reports under {supervisor.failures_dir()}")
        return 0
    rows = [
        {
            "key": record["key"][:12],
            "case": record.get("label", "?"),
            "classification": record.get("classification", "?"),
            "attempts": len(record.get("attempts", [])),
        }
        for record in records
    ]
    print(render_table(rows))
    last = records[0]  # newest-first ordering
    attempts = last.get("attempts", [])
    if attempts:
        print()
        print(f"last error of {last.get('label', last['key'][:12])}:")
        print(f"  {attempts[-1].get('error', '?')}")
    return 0


def _cmd_checkpoints(args: argparse.Namespace) -> int:
    if args.action == "clear":
        removed = pipeline_checkpoint.clear_checkpoints()
        print(
            f"removed {removed} checkpoint(s) from "
            f"{pipeline_checkpoint.checkpoint_root()}"
        )
        return 0
    rows = pipeline_checkpoint.list_checkpoints()
    if not rows:
        print(
            f"no checkpoints under {pipeline_checkpoint.checkpoint_root()}"
        )
        return 0
    print(
        render_table(
            [
                {
                    "key": row["key"][:12],
                    "case": row["case"],
                    "checkpoints": row["checkpoints"],
                    "newest_instrs": row["newest_instrs"],
                    "KiB": round(row["bytes"] / 1024, 1),
                    "age_s": round(row["age_seconds"], 1),
                }
                for row in rows
            ]
        )
    )
    return 0


def _jobs_arg(text: str) -> "int | str":
    """``--jobs`` value: a worker count or the literal ``auto``."""
    if text.strip().lower() == "auto":
        return "auto"
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {text!r}"
        ) from None


def _add_harness_flags(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every batch-scheduling experiment subcommand."""
    parser.add_argument(
        "--jobs", type=_jobs_arg, default=None,
        help="worker processes, or 'auto' for CPU count minus one "
             "(default: $REPRO_JOBS or the CPU count)",
    )
    parser.add_argument(
        "--no-fuse", action="store_true", dest="no_fuse",
        help="disable fused multi-accountant execution: run every case "
             "as its own simulation even when several differ only in "
             "accounting configuration (results are bitwise identical "
             "either way; the fused path is the fast default)",
    )
    parser.add_argument(
        "--case-timeout", type=float, default=None, dest="case_timeout",
        help="per-case deadline in seconds (default: $REPRO_CASE_TIMEOUT "
             "or scaled from each case's instruction count)",
    )
    parser.add_argument(
        "--keep-going", action="store_true", dest="keep_going",
        help="finish the batch despite failed cases; failures are "
             "persisted for `repro failures list` instead of aborting",
    )
    parser.add_argument(
        "--no-strict", action="store_true", dest="no_strict",
        help="downgrade accounting invariant violations from errors to "
             "warnings (violating results are still never disk-cached)",
    )
    parser.add_argument(
        "--no-fast-forward", action="store_true", dest="no_fast_forward",
        help="force the cycle-by-cycle simulation loop, disabling the "
             "quiescent-cycle fast-forward engine (results are bitwise "
             "identical either way; useful for timing comparisons and "
             "as a bisection escape hatch)",
    )
    parser.add_argument(
        "--no-replay", action="store_true", dest="no_replay",
        help="disable the periodic steady-state replay engine (results "
             "are bitwise identical either way; same contract as "
             "--no-fast-forward)",
    )
    parser.add_argument(
        "--checkpoint-interval", type=int, default=None,
        dest="checkpoint_interval", metavar="N",
        help="write a crash-safe snapshot every N committed instructions "
             "(default: $REPRO_CHECKPOINT_INTERVAL, else off); retried "
             "cases resume from the newest valid checkpoint with bitwise-"
             "identical results",
    )


def _cmd_overhead(args: argparse.Namespace) -> int:
    result = measure_overhead(
        workload=args.workload,
        preset=args.core,
        instructions=args.instructions or 10_000,
    )
    print(
        f"accounting on: {result.seconds_with:.3f}s  "
        f"off: {result.seconds_without:.3f}s  "
        f"overhead: {100 * result.overhead_fraction:.1f}%"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profile one simulation under cProfile and persist the report."""
    import cProfile
    import io
    import pstats
    import time
    from pathlib import Path

    from repro.pipeline.core import CoreSimulator
    from repro.workloads.registry import make_trace

    instructions = args.instructions or 10_000
    trace = make_trace(args.workload, instructions, args.seed)
    config = get_preset(args.core)
    fast_forward = not args.no_fast_forward
    replay = not args.no_replay
    sim = CoreSimulator(trace, config, fast_forward=fast_forward,
                        replay=replay)

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = sim.run()
    profiler.disable()
    wall = time.perf_counter() - start

    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats(args.sort).print_stats(args.top)
    header = (
        f"# repro profile {args.workload} --core {args.core} "
        f"--instructions {instructions}"
        f"{' --no-fast-forward' if args.no_fast_forward else ''}"
        f"{' --no-replay' if args.no_replay else ''}\n"
        f"# cycles={result.cycles} committed_uops={result.committed_uops} "
        f"wall={wall:.3f}s "
        f"uops_per_second={result.committed_uops / wall:,.0f}\n"
        f"# top {args.top} functions by {args.sort} time\n\n"
    )
    report = header + buf.getvalue()

    if args.out is not None:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
    else:
        out_dir = Path("results")
        out_dir.mkdir(exist_ok=True)
        out_path = out_dir / f"profile_{args.workload}.txt"
    out_path.write_text(report)

    print(report, end="")
    print(f"wrote {out_path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-stage CPI stacks and FLOPS stacks (ISPASS 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one workload")
    run.add_argument("--workload", default="mcf", choices=sorted(WORKLOADS))
    run.add_argument("--core", default="bdw", choices=sorted(PRESETS))
    run.add_argument("--instructions", type=int, default=None)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument(
        "--mode",
        default="exact",
        choices=[m.value for m in WrongPathMode],
        help="wrong-path discernment strategy (Sec. III-B)",
    )
    run.add_argument("--flops", action="store_true",
                     help="also print the FLOPS stack")
    run.add_argument(
        "--no-fast-forward", action="store_true", dest="no_fast_forward",
        help="force the cycle-by-cycle simulation loop (results are "
             "bitwise identical either way)",
    )
    run.add_argument(
        "--no-replay", action="store_true", dest="no_replay",
        help="disable the periodic steady-state replay engine (results "
             "are bitwise identical either way)",
    )
    run.set_defaults(func=_cmd_run)

    wl = sub.add_parser("workloads", help="list available workloads")
    wl.set_defaults(func=_cmd_workloads)

    pr = sub.add_parser("presets", help="list machine presets")
    pr.set_defaults(func=_cmd_presets)

    t1 = sub.add_parser("table1", help="reproduce Table I")
    t1.add_argument("--instructions", type=int, default=None)
    t1.add_argument("--seed", type=int, default=1)
    _add_harness_flags(t1)
    t1.set_defaults(func=_cmd_table1)

    f2 = sub.add_parser(
        "fig2", help="reproduce Fig. 2 (component error sweep)"
    )
    f2.add_argument("--core", default="bdw", choices=sorted(PRESETS))
    f2.add_argument("--instructions", type=int, default=None)
    f2.add_argument("--seed", type=int, default=1)
    _add_harness_flags(f2)
    f2.set_defaults(func=_cmd_fig2)

    f3 = sub.add_parser("fig3", help="reproduce a Fig. 3 case study")
    f3.add_argument("--case", default="fig3a", choices=sorted(FIG3_CASES))
    f3.add_argument("--instructions", type=int, default=None)
    _add_harness_flags(f3)
    f3.set_defaults(func=_cmd_fig3)

    f5 = sub.add_parser("fig5", help="reproduce Fig. 5 (IPC vs FLOPS)")
    f5.add_argument("--instructions", type=int, default=None)
    f5.add_argument(
        "--cores", type=int, default=1,
        help="simulate an N-core shared-memory socket instead of one "
        "core (per-core stacks with contention and barrier Unsched)",
    )
    f5.add_argument(
        "--homogeneous", action="store_true",
        help="with --cores: run independent per-thread clones (the "
        "paper's homogeneity premise) instead of the shared-memory "
        "engine",
    )
    _add_harness_flags(f5)
    f5.set_defaults(func=_cmd_fig5)

    sk = sub.add_parser(
        "socket", help="simulate a multi-core socket (paper Sec. IV)"
    )
    sk.add_argument("--workload", default="gemm-train-1760-skx",
                    choices=sorted(WORKLOADS))
    sk.add_argument("--core", default="skx", choices=sorted(PRESETS))
    sk.add_argument("--threads", type=int, default=4)
    sk.add_argument("--instructions", type=int, default=None)
    sk.add_argument(
        "--homogeneous", action="store_true",
        help="run independent per-thread clones (the paper's "
        "homogeneity premise) instead of the shared-memory engine",
    )
    _add_harness_flags(sk)
    sk.set_defaults(func=_cmd_socket)

    ca = sub.add_parser(
        "cache", help="inspect or clear the persistent result cache"
    )
    ca.add_argument("action", choices=("stats", "clear"),
                    help="show footprint/counters, or purge all entries")
    ca.set_defaults(func=_cmd_cache)

    ov = sub.add_parser("overhead", help="measure accounting overhead")
    ov.add_argument("--workload", default="mcf", choices=sorted(WORKLOADS))
    ov.add_argument("--core", default="bdw", choices=sorted(PRESETS))
    ov.add_argument("--instructions", type=int, default=None)
    ov.set_defaults(func=_cmd_overhead)

    prof = sub.add_parser(
        "profile",
        help="cProfile one simulation; report lands in results/",
    )
    prof.add_argument("workload", choices=sorted(WORKLOADS))
    prof.add_argument(
        "--core", "--config", dest="core", default="bdw",
        choices=sorted(PRESETS),
        help="machine preset to profile on (default: bdw)",
    )
    prof.add_argument("--instructions", type=int, default=None)
    prof.add_argument("--seed", type=int, default=1)
    prof.add_argument(
        "--top", type=int, default=30,
        help="number of functions in the report",
    )
    prof.add_argument(
        "--sort", default="cumulative", choices=("cumulative", "tottime"),
        help="pstats sort key for the report (default: cumulative)",
    )
    prof.add_argument(
        "--out", default=None, metavar="PATH",
        help="report destination (default: results/profile_<workload>.txt)",
    )
    prof.add_argument(
        "--no-fast-forward", action="store_true", dest="no_fast_forward",
        help="profile the cycle-by-cycle loop (every cycle simulated)",
    )
    prof.add_argument(
        "--no-replay", action="store_true", dest="no_replay",
        help="profile without the periodic steady-state replay engine",
    )
    prof.set_defaults(func=_cmd_profile)

    fl = sub.add_parser(
        "failures", help="inspect or clear persisted batch failure reports"
    )
    fl.add_argument("action", choices=("list", "clear"),
                    help="show failed cases with attempt histories, or "
                         "delete all records")
    fl.set_defaults(func=_cmd_failures)

    ck = sub.add_parser(
        "checkpoints",
        help="inspect or clear crash-recovery simulation snapshots",
    )
    ck.add_argument("action", choices=("list", "clear"),
                    help="show per-case checkpoint progress, or delete "
                         "every snapshot")
    ck.set_defaults(func=_cmd_checkpoints)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "no_strict", False):
        # Both the in-process guard and (via the env var, which pool
        # workers inherit) every worker's guard.
        invariants.set_strict(False)
        os.environ[invariants.ENV_STRICT] = "0"
    if getattr(args, "no_fast_forward", False):
        # Inherited by pool workers the same way as the strict flag.
        os.environ[pipeline_core.ENV_FAST_FORWARD] = "0"
    if getattr(args, "no_replay", False):
        os.environ[pipeline_core.ENV_REPLAY] = "0"
    if getattr(args, "no_fuse", False):
        # run_cases reads $REPRO_FUSE per batch; the env var also reaches
        # pool workers, matching the other harness toggles.
        os.environ[parallel.ENV_FUSE] = "0"
    interval = getattr(args, "checkpoint_interval", None)
    if interval is not None:
        # Env-var plumbing so pool workers (fork or spawn) inherit the
        # cadence exactly like the other harness toggles.
        os.environ[pipeline_checkpoint.ENV_CHECKPOINT_INTERVAL] = str(
            interval
        )
    # Experiment subcommands (the ones with --jobs) get a harness summary
    # line covering every batch the command scheduled.
    harnessed = hasattr(args, "jobs")
    mark = telemetry_mark() if harnessed else None
    try:
        rc = args.func(args)
    except (supervisor.BatchFailure, supervisor.IncompleteBatch) as exc:
        print(f"error: {exc}", file=sys.stderr)
        rc = 1
    if mark is not None:
        print()
        print(summarize_since(mark))
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
