"""Descriptive statistics used by the experiment harness and reports."""

from repro.stats.descriptive import (
    BoxStats,
    boxplot_stats,
    mean,
    quantile,
)

__all__ = ["BoxStats", "boxplot_stats", "mean", "quantile"]
