"""Boxplot-style descriptive statistics (Fig. 2 presentation).

"Boxes are bound by the first and third quartile, the median is the line in
the box, and the whiskers extend to the extreme values."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return float(np.mean(values))


def quantile(values: Sequence[float], q: float) -> float:
    if not values:
        raise ValueError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    return float(np.quantile(values, q))


@dataclass(frozen=True, slots=True)
class BoxStats:
    """Five-number summary matching the paper's boxplot convention."""

    low: float       #: whisker: minimum value
    q1: float        #: first quartile (box bottom)
    median: float    #: median (line in the box)
    q3: float        #: third quartile (box top)
    high: float      #: whisker: maximum value
    n: int           #: population size

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    def as_row(self) -> dict[str, float]:
        return {
            "low": self.low,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "high": self.high,
            "n": self.n,
        }


def boxplot_stats(values: Sequence[float]) -> BoxStats:
    """Five-number summary with whiskers at the extremes (as in Fig. 2)."""
    if not values:
        raise ValueError("boxplot of empty sequence")
    arr = np.asarray(values, dtype=float)
    return BoxStats(
        low=float(arr.min()),
        q1=float(np.quantile(arr, 0.25)),
        median=float(np.quantile(arr, 0.5)),
        q3=float(np.quantile(arr, 0.75)),
        high=float(arr.max()),
        n=int(arr.size),
    )
