"""Machine configurations: core, cache-hierarchy and memory parameters.

Presets model the three machines used in the paper's evaluation — an Intel
Broadwell-like core (BDW), a Knights Landing-like core (KNL) and a
Skylake-X-like core (SKX) — with uncore resources scaled per core, as the
paper does ("all uncore components are scaled down by the socket core
count").
"""

from repro.config.cores import (
    CacheConfig,
    CoreConfig,
    DramConfig,
    MemoryConfig,
    PrefetcherConfig,
    TlbConfig,
)
from repro.config.idealize import (
    IDEALIZATIONS,
    Idealization,
    idealize,
)
from repro.config.presets import (
    PRESETS,
    broadwell,
    get_preset,
    knights_landing,
    skylake_x,
    tiny_core,
)

__all__ = [
    "CacheConfig",
    "CoreConfig",
    "DramConfig",
    "IDEALIZATIONS",
    "Idealization",
    "MemoryConfig",
    "PRESETS",
    "PrefetcherConfig",
    "TlbConfig",
    "broadwell",
    "get_preset",
    "idealize",
    "knights_landing",
    "skylake_x",
    "tiny_core",
]
