"""Idealization transforms (paper Sec. IV, "Experimental Setup").

The paper quantifies the *actual* impact of a stall source by re-simulating
with that source made perfect: "a perfect L1 Icache (each access hits in L1),
a perfect L1 Dcache, perfect branch prediction (including perfect target
prediction), and single-latency instructions".  An idealization here is a
named set of switches applied to a :class:`CoreConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config.cores import CoreConfig
from repro.core.components import Component


@dataclass(frozen=True, slots=True)
class Idealization:
    """A named combination of perfected structures.

    ``targets`` names the CPI components whose actual impact this
    idealization measures, used when comparing a stack component against the
    observed CPI delta (Fig. 2).
    """

    name: str
    perfect_icache: bool = False
    perfect_dcache: bool = False
    perfect_bpred: bool = False
    single_cycle_alu: bool = False
    targets: tuple[Component, ...] = ()

    def apply(self, config: CoreConfig) -> CoreConfig:
        """Return ``config`` with this idealization's switches set."""
        return replace(
            config,
            name=f"{config.name}+{self.name}",
            perfect_icache=config.perfect_icache or self.perfect_icache,
            perfect_dcache=config.perfect_dcache or self.perfect_dcache,
            perfect_bpred=config.perfect_bpred or self.perfect_bpred,
            single_cycle_alu=config.single_cycle_alu or self.single_cycle_alu,
        )

    def fingerprint(self) -> dict:
        """Stable, JSON-able dump of the switches (for cache keys)."""
        from repro.config.cores import config_fingerprint

        out = config_fingerprint(self)
        assert isinstance(out, dict)
        return out

    def __or__(self, other: "Idealization") -> "Idealization":
        """Combine two idealizations (e.g. perfect bpred AND Dcache)."""
        return Idealization(
            name=f"{self.name}+{other.name}",
            perfect_icache=self.perfect_icache or other.perfect_icache,
            perfect_dcache=self.perfect_dcache or other.perfect_dcache,
            perfect_bpred=self.perfect_bpred or other.perfect_bpred,
            single_cycle_alu=self.single_cycle_alu or other.single_cycle_alu,
            targets=tuple(dict.fromkeys(self.targets + other.targets)),
        )


PERFECT_ICACHE = Idealization(
    "perfect-icache", perfect_icache=True, targets=(Component.ICACHE,)
)
PERFECT_DCACHE = Idealization(
    "perfect-dcache", perfect_dcache=True, targets=(Component.DCACHE,)
)
PERFECT_BPRED = Idealization(
    "perfect-bpred", perfect_bpred=True, targets=(Component.BPRED,)
)
SINGLE_CYCLE_ALU = Idealization(
    "1-cycle-alu", single_cycle_alu=True, targets=(Component.ALU_LAT,)
)

#: The four single-structure idealizations from the paper, by component.
IDEALIZATIONS: dict[Component, Idealization] = {
    Component.ICACHE: PERFECT_ICACHE,
    Component.DCACHE: PERFECT_DCACHE,
    Component.BPRED: PERFECT_BPRED,
    Component.ALU_LAT: SINGLE_CYCLE_ALU,
}


def idealize(config: CoreConfig, *idealizations: Idealization) -> CoreConfig:
    """Apply one or more idealizations to ``config``."""
    for ideal in idealizations:
        config = ideal.apply(config)
    return config
