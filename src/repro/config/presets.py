"""Machine presets modelled after the paper's evaluation platforms.

Numbers follow public microarchitecture references for the three cores; the
uncore (L3 slice size, DRAM bandwidth share) is scaled by the socket core
count exactly as the paper describes.  The parameters are not meant to be
cycle-exact against real silicon — the paper's claims are about accounting
*structure*, which only needs a faithful out-of-order pipeline.
"""

from __future__ import annotations

from repro.config.cores import (
    CacheConfig,
    CoreConfig,
    DramConfig,
    MemoryConfig,
    PrefetcherConfig,
    TlbConfig,
)
from repro.isa.uops import UopClass


def _bdw_memory() -> MemoryConfig:
    """Broadwell-like hierarchy: 32K/32K L1, 256K L2, 2.5 MB L3 slice."""
    return MemoryConfig(
        l1i=CacheConfig(32 * 1024, 8, latency=3, mshrs=4),
        l1d=CacheConfig(32 * 1024, 8, latency=4, mshrs=10),
        l2=CacheConfig(256 * 1024, 8, latency=12, mshrs=16),
        # 45 MB socket LLC / 18 cores = 2.5 MB per-core slice.
        l3=CacheConfig(2560 * 1024, 20, latency=38, mshrs=32),
        dram=DramConfig(latency=200, cycles_per_line=6.0),
        prefetcher=PrefetcherConfig(
            enabled=True, streams=8, degree=2, distance=16
        ),
        itlb=TlbConfig(entries=128, miss_penalty=20),
        dtlb=TlbConfig(entries=64, miss_penalty=25),
    )


def broadwell() -> CoreConfig:
    """Intel Broadwell-inspired core: 4-wide out-of-order (paper Sec. IV)."""
    latencies = {
        UopClass.NOP: 1,
        UopClass.ALU: 1,
        UopClass.MUL: 3,
        UopClass.DIV: 24,
        UopClass.BRANCH: 1,
        UopClass.LOAD: 0,
        UopClass.STORE: 1,
        UopClass.FP_ADD: 3,
        UopClass.FP_MUL: 3,
        UopClass.FP_DIV: 14,
        UopClass.FMA: 5,
        UopClass.VEC_INT: 1,
        UopClass.BROADCAST: 3,
        UopClass.SYNC: 1,
    }
    return CoreConfig(
        name="bdw",
        fetch_width=4,
        decode_width=4,
        dispatch_width=4,
        issue_width=8,
        commit_width=4,
        rob_size=192,
        rs_size=60,
        store_queue_size=42,
        uop_queue_size=28,
        alu_units=4,
        mul_units=1,
        vector_units=2,
        load_ports=2,
        store_ports=1,
        branch_units=2,
        vector_lanes=8,  # AVX2: 8 single-precision lanes
        latencies=latencies,
        redirect_penalty=8,
        predictor="gshare",
        predictor_bits=13,
        btb_entries=4096,
        memory=_bdw_memory(),
        frequency_ghz=2.3,
        socket_cores=18,
    )


def _knl_memory() -> MemoryConfig:
    """KNL-like hierarchy: 32K/32K L1, 512K L2 half-tile, no L3, MCDRAM."""
    return MemoryConfig(
        l1i=CacheConfig(32 * 1024, 8, latency=3, mshrs=2),
        l1d=CacheConfig(32 * 1024, 8, latency=4, mshrs=8),
        # 1 MB L2 per 2-core tile -> 512 KB per core.
        l2=CacheConfig(512 * 1024, 16, latency=17, mshrs=12),
        l3=None,
        dram=DramConfig(latency=170, cycles_per_line=3.0),
        prefetcher=PrefetcherConfig(
            enabled=True, streams=8, degree=2, distance=16
        ),
        itlb=TlbConfig(entries=64, miss_penalty=25),
        dtlb=TlbConfig(entries=64, miss_penalty=30),
    )


def knights_landing() -> CoreConfig:
    """Intel Knights Landing-inspired core: 2-wide out-of-order (Sec. IV).

    KNL's Silvermont-derived core has higher ALU/vector latencies and a
    microcode-sensitive 2-wide decoder, which is what surfaces the
    `Microcode` component for povray (Fig. 3d) and makes the 1-cycle-ALU
    idealization meaningful (Table I).
    """
    latencies = {
        UopClass.NOP: 1,
        UopClass.ALU: 1,
        UopClass.MUL: 5,
        UopClass.DIV: 30,
        UopClass.BRANCH: 1,
        UopClass.LOAD: 0,
        UopClass.STORE: 1,
        UopClass.FP_ADD: 6,
        UopClass.FP_MUL: 6,
        UopClass.FP_DIV: 30,
        UopClass.FMA: 6,
        UopClass.VEC_INT: 2,
        UopClass.BROADCAST: 4,
        UopClass.SYNC: 1,
    }
    return CoreConfig(
        name="knl",
        fetch_width=2,
        decode_width=2,
        dispatch_width=2,
        issue_width=4,
        commit_width=2,
        rob_size=72,
        rs_size=38,
        store_queue_size=16,
        uop_queue_size=16,
        alu_units=2,
        mul_units=1,
        vector_units=2,
        load_ports=1,
        store_ports=1,
        branch_units=1,
        vector_lanes=16,  # AVX512: 16 single-precision lanes
        latencies=latencies,
        redirect_penalty=6,
        predictor="gshare",
        predictor_bits=11,
        btb_entries=1024,
        memory=_knl_memory(),
        frequency_ghz=1.4,
        socket_cores=68,
    )


def _skx_memory() -> MemoryConfig:
    """Skylake-X-like hierarchy: 32K/32K L1, 1 MB L2, 1.375 MB L3 slice."""
    return MemoryConfig(
        l1i=CacheConfig(32 * 1024, 8, latency=3, mshrs=4),
        l1d=CacheConfig(32 * 1024, 8, latency=4, mshrs=12),
        l2=CacheConfig(1024 * 1024, 16, latency=14, mshrs=16),
        l3=CacheConfig(1408 * 1024, 11, latency=44, mshrs=32),
        dram=DramConfig(latency=190, cycles_per_line=5.0),
        prefetcher=PrefetcherConfig(
            enabled=True, streams=8, degree=2, distance=16
        ),
        itlb=TlbConfig(entries=128, miss_penalty=20),
        dtlb=TlbConfig(entries=64, miss_penalty=25),
    )


def skylake_x() -> CoreConfig:
    """Intel Skylake-X-inspired core: 4-wide, dual AVX512 VPUs (Sec. IV)."""
    latencies = {
        UopClass.NOP: 1,
        UopClass.ALU: 1,
        UopClass.MUL: 3,
        UopClass.DIV: 21,
        UopClass.BRANCH: 1,
        UopClass.LOAD: 0,
        UopClass.STORE: 1,
        UopClass.FP_ADD: 4,
        UopClass.FP_MUL: 4,
        UopClass.FP_DIV: 14,
        UopClass.FMA: 4,
        UopClass.VEC_INT: 1,
        UopClass.BROADCAST: 3,
        UopClass.SYNC: 1,
    }
    return CoreConfig(
        name="skx",
        fetch_width=4,
        decode_width=4,
        dispatch_width=4,
        issue_width=8,
        commit_width=4,
        rob_size=224,
        rs_size=97,
        store_queue_size=56,
        uop_queue_size=32,
        alu_units=4,
        mul_units=1,
        vector_units=2,
        load_ports=2,
        store_ports=1,
        branch_units=2,
        vector_lanes=16,  # AVX512
        latencies=latencies,
        redirect_penalty=8,
        predictor="gshare",
        predictor_bits=13,
        btb_entries=4096,
        memory=_skx_memory(),
        frequency_ghz=2.1,
        socket_cores=26,
    )


def tiny_core() -> CoreConfig:
    """A deliberately small core used by unit tests.

    Small windows and caches make stall behaviour observable in traces of a
    few hundred instructions, keeping the test suite fast.
    """
    memory = MemoryConfig(
        l1i=CacheConfig(2 * 1024, 2, latency=2, mshrs=2),
        l1d=CacheConfig(2 * 1024, 2, latency=3, mshrs=4),
        l2=CacheConfig(16 * 1024, 4, latency=8, mshrs=4),
        l3=None,
        dram=DramConfig(latency=60, cycles_per_line=4.0),
        prefetcher=PrefetcherConfig(enabled=False),
        itlb=TlbConfig(entries=16, miss_penalty=10),
        dtlb=TlbConfig(entries=16, miss_penalty=10),
    )
    return CoreConfig(
        name="tiny",
        fetch_width=2,
        decode_width=2,
        dispatch_width=2,
        issue_width=4,
        commit_width=2,
        rob_size=16,
        rs_size=8,
        store_queue_size=6,
        uop_queue_size=8,
        alu_units=2,
        mul_units=1,
        vector_units=1,
        load_ports=1,
        store_ports=1,
        branch_units=1,
        vector_lanes=4,
        redirect_penalty=4,
        predictor="gshare",
        predictor_bits=8,
        btb_entries=128,
        memory=memory,
        frequency_ghz=1.0,
        socket_cores=1,
    )


#: Named preset registry used by the CLI and experiment harness.
PRESETS = {
    "bdw": broadwell,
    "knl": knights_landing,
    "skx": skylake_x,
    "tiny": tiny_core,
}


def get_preset(name: str) -> CoreConfig:
    """Look up a machine preset by name (bdw / knl / skx / tiny)."""
    try:
        return PRESETS[name]()
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
