"""Configuration dataclasses for the simulated machine.

All structures are frozen: an idealization produces a *new* config via
:func:`dataclasses.replace`, so baseline and idealized simulations can run
side by side from one preset.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields, is_dataclass, replace

from repro.isa.uops import UopClass, WrongPathTemplate


def config_fingerprint(value: object) -> object:
    """Recursively freeze a configuration object into JSON-able primitives.

    The output is deterministic (dicts sorted, enums by name, sets sorted)
    so it can be hashed into a stable content address for the on-disk
    result cache: two configs with identical fields always produce the
    same fingerprint, regardless of construction order or process.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: config_fingerprint(getattr(value, f.name))
            for f in fields(value)
            if not f.name.startswith("_")
        }
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, dict):
        frozen = {
            str(config_fingerprint(k)): config_fingerprint(v)
            for k, v in value.items()
        }
        return dict(sorted(frozen.items()))
    if isinstance(value, (set, frozenset)):
        return sorted(str(config_fingerprint(v)) for v in value)
    if isinstance(value, (list, tuple)):
        return [config_fingerprint(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot fingerprint {type(value).__name__}: {value!r}")


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    size_bytes: int
    associativity: int
    line_bytes: int = 64
    #: Access latency in cycles (hit latency at this level).
    latency: int = 4
    #: Number of miss-status-holding registers (outstanding misses).
    mshrs: int = 8

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise ValueError(
                "cache size must be a multiple of associativity * line size"
            )
        sets = self.size_bytes // (self.associativity * self.line_bytes)
        if sets & (sets - 1):
            raise ValueError(f"number of sets must be a power of two, got {sets}")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True, slots=True)
class DramConfig:
    """Main-memory latency/bandwidth model (per-core share of the socket)."""

    #: Unloaded access latency in core cycles.
    latency: int = 180
    #: Minimum cycles between line transfers (per-core bandwidth share).
    cycles_per_line: float = 4.0


@dataclass(frozen=True, slots=True)
class PrefetcherConfig:
    """Stream prefetcher sitting at the L2, trained by L1D demand misses."""

    enabled: bool = True
    #: Maximum concurrently tracked streams.
    streams: int = 8
    #: Prefetches issued per trigger.
    degree: int = 2
    #: How many lines ahead of the demand stream to fetch.
    distance: int = 16
    #: Strided accesses needed before a stream starts prefetching.
    train_threshold: int = 2


@dataclass(frozen=True, slots=True)
class TlbConfig:
    """A simple TLB: fixed entries, LRU, constant page-walk penalty."""

    entries: int = 64
    page_bytes: int = 4096
    miss_penalty: int = 20


@dataclass(frozen=True, slots=True)
class MemoryConfig:
    """The full memory hierarchy: split L1s, unified L2, optional L3, DRAM.

    The L2 (and L3) are unified between instructions and data; this coupling
    is what produces the second-order I$/D$ interaction of Fig. 3(b).
    """

    l1i: CacheConfig
    l1d: CacheConfig
    l2: CacheConfig
    #: Optional last-level cache (KNL has none; misses go to (MC)DRAM).
    l3: CacheConfig | None
    dram: DramConfig = field(default_factory=DramConfig)
    prefetcher: PrefetcherConfig = field(default_factory=PrefetcherConfig)
    itlb: TlbConfig = field(default_factory=lambda: TlbConfig(entries=64))
    dtlb: TlbConfig = field(default_factory=lambda: TlbConfig(entries=64))


#: Default execution latencies per micro-op class, overridden per preset.
DEFAULT_LATENCIES: dict[UopClass, int] = {
    UopClass.NOP: 1,
    UopClass.ALU: 1,
    UopClass.MUL: 3,
    UopClass.DIV: 20,
    UopClass.BRANCH: 1,
    UopClass.LOAD: 0,  # loads take their latency from the memory hierarchy
    UopClass.STORE: 1,
    UopClass.FP_ADD: 3,
    UopClass.FP_MUL: 3,
    UopClass.FP_DIV: 20,
    UopClass.FMA: 5,
    UopClass.VEC_INT: 1,
    UopClass.BROADCAST: 3,
    UopClass.SYNC: 1,
}


@dataclass(frozen=True, slots=True)
class CoreConfig:
    """Out-of-order core parameters plus idealization switches.

    Widths are expressed in micro-ops per cycle.  ``issue_width`` may be
    wider than dispatch/commit (as on real cores); the accounting layer
    normalizes to the minimum width per Sec. III-A.
    """

    name: str
    # --- pipeline widths (micro-ops per cycle) ---
    fetch_width: int = 4
    decode_width: int = 4
    dispatch_width: int = 4
    issue_width: int = 8
    commit_width: int = 4
    # --- window resources ---
    rob_size: int = 224
    rs_size: int = 60
    store_queue_size: int = 42
    uop_queue_size: int = 28
    # --- functional units ---
    alu_units: int = 4
    mul_units: int = 1
    vector_units: int = 2
    load_ports: int = 2
    store_ports: int = 1
    branch_units: int = 2
    #: SIMD lanes per vector unit (single precision).
    vector_lanes: int = 8
    # --- latencies ---
    latencies: dict[UopClass, int] = field(
        default_factory=lambda: dict(DEFAULT_LATENCIES)
    )
    #: Micro-op classes whose unit is busy for the full latency (unpipelined).
    unpipelined: frozenset[UopClass] = frozenset(
        {UopClass.DIV, UopClass.FP_DIV}
    )
    # --- frontend ---
    #: Cycles from mispredict resolution until correct-path uops re-enter
    #: the uop queue (frontend refill).
    redirect_penalty: int = 7
    #: Micro-ops the microcode sequencer emits per cycle.
    microcode_uops_per_cycle: int = 1
    wrong_path: WrongPathTemplate = field(default_factory=WrongPathTemplate)
    # --- branch predictor ---
    predictor: str = "gshare"
    predictor_bits: int = 12
    btb_entries: int = 2048
    # --- memory hierarchy ---
    memory: MemoryConfig | None = None
    # --- socket-level reporting ---
    frequency_ghz: float = 2.4
    socket_cores: int = 18
    # --- idealization switches (Sec. IV: "simulations where certain
    #     components are idealized") ---
    perfect_icache: bool = False
    perfect_dcache: bool = False
    perfect_bpred: bool = False
    single_cycle_alu: bool = False

    def __post_init__(self) -> None:
        for width_name in (
            "fetch_width",
            "decode_width",
            "dispatch_width",
            "issue_width",
            "commit_width",
        ):
            if getattr(self, width_name) < 1:
                raise ValueError(f"{width_name} must be >= 1")
        if self.rob_size < self.dispatch_width:
            raise ValueError("ROB must hold at least one dispatch group")
        if self.rs_size < 1 or self.store_queue_size < 1:
            raise ValueError("window resources must be positive")

    @property
    def accounting_width(self) -> int:
        """W for the accounting algorithms: the minimum stage width.

        Sec. III-A: "Instead of using the actual width of the stage, we
        propose to set W as the minimum of all stage widths."
        """
        return min(self.dispatch_width, self.issue_width, self.commit_width)

    def latency_of(self, uclass: UopClass) -> int:
        """Execution latency for ``uclass`` under this configuration."""
        if self.single_cycle_alu and uclass not in (
            UopClass.LOAD,
            UopClass.STORE,
            UopClass.BRANCH,
            UopClass.SYNC,
        ):
            return 1
        return self.latencies[uclass]

    @property
    def peak_flops_per_cycle(self) -> int:
        """Maximum FLOPs per cycle: 2 * k * v (FMA on every VU lane)."""
        return 2 * self.vector_units * self.vector_lanes

    @property
    def socket_peak_gflops(self) -> float:
        """Socket-level peak GFLOPS (per-core peak times core count)."""
        return (
            self.peak_flops_per_cycle * self.frequency_ghz * self.socket_cores
        )

    def with_memory(self, memory: MemoryConfig) -> "CoreConfig":
        return replace(self, memory=memory)

    def fingerprint(self) -> dict:
        """Stable, JSON-able dump of every field (for cache keys)."""
        out = config_fingerprint(self)
        assert isinstance(out, dict)
        return out
