"""FLOPS-stack studies: Fig. 4 and Fig. 5.

Fig. 4 compares, per DeepBench group and machine, the *normalized* FLOPS
stack against the normalized issue-stage CPI stack: "we normalize each
stack, and take the difference between corresponding components ... As all
normalized components finally add to 1, the sum of the differences is
zero."

Fig. 5 shows one convolution-train-forward configuration on SKX as an IPC
stack next to a FLOPS stack, with and without a perfect D-cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.idealize import PERFECT_DCACHE
from repro.config.presets import get_preset
from repro.core.components import (
    CPI_COMPONENTS,
    Component,
    FlopsComponent,
)
from repro.experiments.cache import CaseSpec
from repro.experiments.parallel import run_cases
from repro.experiments.supervisor import IncompleteBatch
from repro.pipeline.result import SimResult
from repro.workloads.deepbench import conv_configs, sgemm_configs

#: Fig. 4 component correspondence: each FLOPS component maps to the CPI
#: components it absorbs.  FLOPS-only loss classes map to nothing, so both
#: sides remain full partitions and the differences sum to zero.
_FIG4_MAP: dict[FlopsComponent, tuple[Component, ...]] = {
    FlopsComponent.BASE: (Component.BASE,),
    FlopsComponent.NON_FMA: (),
    FlopsComponent.MASK: (),
    FlopsComponent.FRONTEND: (
        Component.ICACHE,
        Component.BPRED,
        Component.MICROCODE,
    ),
    FlopsComponent.NON_VFP: (),
    FlopsComponent.MEM: (Component.DCACHE,),
    FlopsComponent.DEPEND: (Component.DEPEND, Component.ALU_LAT),
    FlopsComponent.OTHER: (Component.OTHER,),
    FlopsComponent.UNSCHED: (Component.UNSCHED,),
}

#: The five benchmark groups of Fig. 4.
FIG4_GROUPS = (
    "sgemm-train",
    "sgemm-inference",
    "conv-fwd",
    "conv-bwd_f",
    "conv-bwd_d",
)


def _group_workloads(group: str, preset: str) -> list[str]:
    """Registry names of the kernels belonging to a Fig. 4 group.

    sgemm kernels use the machine-matched code style (MKL JIT on KNL,
    broadcast style on SKX), as the paper describes.
    """
    style = "knl" if preset == "knl" else "skx"
    if group == "sgemm-train":
        return [
            f"{c.name}-{style}"
            for c in sgemm_configs()
            if c.group == "train"
        ]
    if group == "sgemm-inference":
        return [
            f"{c.name}-{style}"
            for c in sgemm_configs()
            if c.group == "inference"
        ]
    if group.startswith("conv-"):
        phase = group.split("-", 1)[1]
        return [f"{c.name}-{phase}" for c in conv_configs()]
    raise KeyError(f"unknown Fig. 4 group {group!r}")


def stack_difference(result: SimResult) -> dict[FlopsComponent, float]:
    """Normalized FLOPS stack minus normalized issue CPI stack."""
    report = result.report
    assert report is not None and report.flops is not None
    cpi_norm_raw = report.issue.normalized()
    flops_norm_raw = report.flops.normalized()
    diff: dict[FlopsComponent, float] = {}
    for flops_comp, cpi_comps in _FIG4_MAP.items():
        flops_value = flops_norm_raw.get(flops_comp, 0.0)
        cpi_value = sum(cpi_norm_raw.get(c, 0.0) for c in cpi_comps)
        diff[flops_comp] = flops_value - cpi_value
    return diff


def figure4_differences(
    presets: tuple[str, ...] = ("knl", "skx"),
    groups: tuple[str, ...] = FIG4_GROUPS,
    *,
    instructions: int | None = None,
    seed: int = 1,
    jobs: int | None = None,
    keep_going: bool = False,
    case_timeout: float | None = None,
) -> dict[tuple[str, str], dict[FlopsComponent, float]]:
    """Average per-component stack differences per (group, preset).

    "We average all differences per set of benchmarks."  The full kernel
    matrix (every group on every machine) is declared as one batch.  With
    ``keep_going`` failed kernels drop out of their group's average (a
    group whose kernels all failed is omitted entirely).
    """
    cells = [
        (group, preset, _group_workloads(group, preset))
        for preset in presets
        for group in groups
    ]
    specs = [
        CaseSpec(
            workload=name, preset=preset, instructions=instructions,
            seed=seed,
        )
        for group, preset, names in cells
        for name in names
    ]
    results = iter(
        run_cases(
            specs, jobs=jobs, keep_going=keep_going,
            case_timeout=case_timeout,
        )
    )
    out: dict[tuple[str, str], dict[FlopsComponent, float]] = {}
    for group, preset, names in cells:
        acc = {comp: 0.0 for comp in _FIG4_MAP}
        contributing = 0
        for _name in names:
            result = next(results)
            if result is None:  # failed under keep_going
                continue
            contributing += 1
            for comp, value in stack_difference(result).items():
                acc[comp] += value
        if contributing == 0:
            continue
        out[(group, preset)] = {
            comp: value / contributing for comp, value in acc.items()
        }
    return out


@dataclass(slots=True)
class Figure5Case:
    """IPC and FLOPS stacks for one conv config, +/- perfect Dcache."""

    workload: str
    preset: str
    baseline: SimResult
    perfect_dcache: SimResult

    def ipc_stack(self, idealized: bool = False) -> dict[Component, float]:
        """Issue-stage IPC stack (height = max IPC)."""
        result = self.perfect_dcache if idealized else self.baseline
        assert result.report is not None
        max_ipc = float(get_preset(self.preset).accounting_width)
        return result.report.issue.ipc_components(max_ipc)

    def flops_stack(
        self, idealized: bool = False
    ) -> dict[FlopsComponent, float]:
        """FLOPS-rate stack in socket GFLOPS (height = peak GFLOPS)."""
        result = self.perfect_dcache if idealized else self.baseline
        assert result.report is not None and result.report.flops is not None
        config = get_preset(self.preset)
        return result.report.flops.rate_components(
            config.frequency_ghz, cores=config.socket_cores
        )


def figure5_case(
    workload: str = "conv-vgg-2-fwd",
    preset: str = "skx",
    *,
    instructions: int | None = None,
    seed: int = 1,
    jobs: int | None = None,
    keep_going: bool = False,
    case_timeout: float | None = None,
) -> Figure5Case:
    """Run the Fig. 5 experiment: one conv fwd config on SKX."""
    baseline, ideal = run_cases(
        [
            CaseSpec(
                workload=workload, preset=preset,
                instructions=instructions, seed=seed,
            ),
            CaseSpec(
                workload=workload, preset=preset,
                idealization=PERFECT_DCACHE,
                instructions=instructions, seed=seed,
            ),
        ],
        jobs=jobs,
        keep_going=keep_going,
        case_timeout=case_timeout,
    )
    if baseline is None or ideal is None:
        raise IncompleteBatch(
            f"figure5 case {workload}@{preset} incomplete: "
            f"{'baseline' if baseline is None else 'perfect-dcache'} run "
            "failed; see `repro failures list`"
        )
    return Figure5Case(workload, preset, baseline, ideal)


@dataclass(slots=True)
class Figure5SocketCase:
    """Per-core IPC and FLOPS stacks for a multi-core conv socket.

    ``baseline[i]`` / ``perfect_dcache[i]`` are core ``i``'s results from
    the shared-memory engine (or, under the homogeneous oracle, thread
    ``i``'s independent run).  Aggregates follow the paper's rules: IPC
    stacks average component per component, FLOPS-rate stacks add.
    """

    workload: str
    preset: str
    cores: int
    baseline: list[SimResult]
    perfect_dcache: list[SimResult]

    def _results(self, idealized: bool) -> list[SimResult]:
        return self.perfect_dcache if idealized else self.baseline

    def core_ipc_stack(
        self, core: int, idealized: bool = False
    ) -> dict[Component, float]:
        """Core ``core``'s issue-stage IPC stack (height = max IPC)."""
        result = self._results(idealized)[core]
        assert result.report is not None
        max_ipc = float(get_preset(self.preset).accounting_width)
        return result.report.issue.ipc_components(max_ipc)

    def ipc_stack(self, idealized: bool = False) -> dict[Component, float]:
        """Socket IPC stack: per-core stacks averaged per component."""
        stacks = [
            self.core_ipc_stack(core, idealized)
            for core in range(self.cores)
        ]
        return {
            comp: sum(stack.get(comp, 0.0) for stack in stacks) / self.cores
            for comp in stacks[0]
        }

    def flops_stack(
        self, idealized: bool = False
    ) -> dict[FlopsComponent, float]:
        """Socket FLOPS-rate stack: per-core GFLOPS stacks added."""
        config = get_preset(self.preset)
        acc: dict[FlopsComponent, float] = {}
        for result in self._results(idealized):
            report = result.report
            assert report is not None and report.flops is not None
            for comp, value in report.flops.rate_components(
                config.frequency_ghz, cores=1
            ).items():
                acc[comp] = acc.get(comp, 0.0) + value
        return acc


def figure5_socket_case(
    workload: str = "conv-vgg-2-fwd",
    preset: str = "skx",
    *,
    cores: int = 4,
    instructions: int | None = None,
    seed: int = 1,
    jobs: int | None = None,
    keep_going: bool = False,
    case_timeout: float | None = None,
    homogeneous: bool = False,
) -> Figure5SocketCase:
    """Run Fig. 5 on a simulated multi-core socket, +/- perfect Dcache.

    By default both the baseline and the perfect-Dcache variants run as
    one shared-memory engine each (``cores``-way threaded decomposition,
    shared L3/DRAM, barrier sync), so the per-core stacks carry simulated
    contention and a nonzero ``Unsched`` component on the less-loaded
    cores.  ``homogeneous=True`` falls back to the paper's independent
    cloning oracle (thread ``t`` seeded ``seed + t``, no sharing).
    """
    if cores < 1:
        raise ValueError("a Fig. 5 socket needs at least one core")
    if homogeneous:
        specs = [
            CaseSpec(
                workload=workload, preset=preset,
                idealization=ideal, instructions=instructions,
                seed=seed + thread,
            )
            for ideal in (None, PERFECT_DCACHE)
            for thread in range(cores)
        ]
        flat = run_cases(
            specs, jobs=jobs, keep_going=keep_going,
            case_timeout=case_timeout,
        )
        baseline, ideal = flat[:cores], flat[cores:]
    else:
        from repro.experiments.parallel import run_multicore_cases

        pair = run_multicore_cases(
            [
                CaseSpec(
                    workload=workload, preset=preset,
                    instructions=instructions, seed=seed, cores=cores,
                ),
                CaseSpec(
                    workload=workload, preset=preset,
                    idealization=PERFECT_DCACHE,
                    instructions=instructions, seed=seed, cores=cores,
                ),
            ],
            jobs=jobs, keep_going=keep_going, case_timeout=case_timeout,
        )
        baseline, ideal = pair[0], pair[1]
    if (
        baseline is None or ideal is None
        or any(r is None for r in baseline) or any(r is None for r in ideal)
    ):
        raise IncompleteBatch(
            f"figure5 socket case {workload}@{preset}x{cores} incomplete; "
            "see `repro failures list`"
        )
    return Figure5SocketCase(
        workload, preset, cores, list(baseline), list(ideal)
    )


def cpi_normalized(result: SimResult) -> dict[Component, float]:
    """Normalized issue-stage CPI components (helper for reports)."""
    assert result.report is not None
    raw = result.report.issue.normalized()
    return {c: raw.get(c, 0.0) for c in CPI_COMPONENTS}
