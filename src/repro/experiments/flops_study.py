"""FLOPS-stack studies: Fig. 4 and Fig. 5.

Fig. 4 compares, per DeepBench group and machine, the *normalized* FLOPS
stack against the normalized issue-stage CPI stack: "we normalize each
stack, and take the difference between corresponding components ... As all
normalized components finally add to 1, the sum of the differences is
zero."

Fig. 5 shows one convolution-train-forward configuration on SKX as an IPC
stack next to a FLOPS stack, with and without a perfect D-cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.idealize import PERFECT_DCACHE
from repro.config.presets import get_preset
from repro.core.components import (
    CPI_COMPONENTS,
    Component,
    FlopsComponent,
)
from repro.experiments.cache import CaseSpec
from repro.experiments.parallel import run_cases
from repro.experiments.supervisor import IncompleteBatch
from repro.pipeline.result import SimResult
from repro.workloads.deepbench import conv_configs, sgemm_configs

#: Fig. 4 component correspondence: each FLOPS component maps to the CPI
#: components it absorbs.  FLOPS-only loss classes map to nothing, so both
#: sides remain full partitions and the differences sum to zero.
_FIG4_MAP: dict[FlopsComponent, tuple[Component, ...]] = {
    FlopsComponent.BASE: (Component.BASE,),
    FlopsComponent.NON_FMA: (),
    FlopsComponent.MASK: (),
    FlopsComponent.FRONTEND: (
        Component.ICACHE,
        Component.BPRED,
        Component.MICROCODE,
    ),
    FlopsComponent.NON_VFP: (),
    FlopsComponent.MEM: (Component.DCACHE,),
    FlopsComponent.DEPEND: (Component.DEPEND, Component.ALU_LAT),
    FlopsComponent.OTHER: (Component.OTHER,),
    FlopsComponent.UNSCHED: (Component.UNSCHED,),
}

#: The five benchmark groups of Fig. 4.
FIG4_GROUPS = (
    "sgemm-train",
    "sgemm-inference",
    "conv-fwd",
    "conv-bwd_f",
    "conv-bwd_d",
)


def _group_workloads(group: str, preset: str) -> list[str]:
    """Registry names of the kernels belonging to a Fig. 4 group.

    sgemm kernels use the machine-matched code style (MKL JIT on KNL,
    broadcast style on SKX), as the paper describes.
    """
    style = "knl" if preset == "knl" else "skx"
    if group == "sgemm-train":
        return [
            f"{c.name}-{style}"
            for c in sgemm_configs()
            if c.group == "train"
        ]
    if group == "sgemm-inference":
        return [
            f"{c.name}-{style}"
            for c in sgemm_configs()
            if c.group == "inference"
        ]
    if group.startswith("conv-"):
        phase = group.split("-", 1)[1]
        return [f"{c.name}-{phase}" for c in conv_configs()]
    raise KeyError(f"unknown Fig. 4 group {group!r}")


def stack_difference(result: SimResult) -> dict[FlopsComponent, float]:
    """Normalized FLOPS stack minus normalized issue CPI stack."""
    report = result.report
    assert report is not None and report.flops is not None
    cpi_norm_raw = report.issue.normalized()
    flops_norm_raw = report.flops.normalized()
    diff: dict[FlopsComponent, float] = {}
    for flops_comp, cpi_comps in _FIG4_MAP.items():
        flops_value = flops_norm_raw.get(flops_comp, 0.0)
        cpi_value = sum(cpi_norm_raw.get(c, 0.0) for c in cpi_comps)
        diff[flops_comp] = flops_value - cpi_value
    return diff


def figure4_differences(
    presets: tuple[str, ...] = ("knl", "skx"),
    groups: tuple[str, ...] = FIG4_GROUPS,
    *,
    instructions: int | None = None,
    seed: int = 1,
    jobs: int | None = None,
    keep_going: bool = False,
    case_timeout: float | None = None,
) -> dict[tuple[str, str], dict[FlopsComponent, float]]:
    """Average per-component stack differences per (group, preset).

    "We average all differences per set of benchmarks."  The full kernel
    matrix (every group on every machine) is declared as one batch.  With
    ``keep_going`` failed kernels drop out of their group's average (a
    group whose kernels all failed is omitted entirely).
    """
    cells = [
        (group, preset, _group_workloads(group, preset))
        for preset in presets
        for group in groups
    ]
    specs = [
        CaseSpec(
            workload=name, preset=preset, instructions=instructions,
            seed=seed,
        )
        for group, preset, names in cells
        for name in names
    ]
    results = iter(
        run_cases(
            specs, jobs=jobs, keep_going=keep_going,
            case_timeout=case_timeout,
        )
    )
    out: dict[tuple[str, str], dict[FlopsComponent, float]] = {}
    for group, preset, names in cells:
        acc = {comp: 0.0 for comp in _FIG4_MAP}
        contributing = 0
        for _name in names:
            result = next(results)
            if result is None:  # failed under keep_going
                continue
            contributing += 1
            for comp, value in stack_difference(result).items():
                acc[comp] += value
        if contributing == 0:
            continue
        out[(group, preset)] = {
            comp: value / contributing for comp, value in acc.items()
        }
    return out


@dataclass(slots=True)
class Figure5Case:
    """IPC and FLOPS stacks for one conv config, +/- perfect Dcache."""

    workload: str
    preset: str
    baseline: SimResult
    perfect_dcache: SimResult

    def ipc_stack(self, idealized: bool = False) -> dict[Component, float]:
        """Issue-stage IPC stack (height = max IPC)."""
        result = self.perfect_dcache if idealized else self.baseline
        assert result.report is not None
        max_ipc = float(get_preset(self.preset).accounting_width)
        return result.report.issue.ipc_components(max_ipc)

    def flops_stack(
        self, idealized: bool = False
    ) -> dict[FlopsComponent, float]:
        """FLOPS-rate stack in socket GFLOPS (height = peak GFLOPS)."""
        result = self.perfect_dcache if idealized else self.baseline
        assert result.report is not None and result.report.flops is not None
        config = get_preset(self.preset)
        return result.report.flops.rate_components(
            config.frequency_ghz, cores=config.socket_cores
        )


def figure5_case(
    workload: str = "conv-vgg-2-fwd",
    preset: str = "skx",
    *,
    instructions: int | None = None,
    seed: int = 1,
    jobs: int | None = None,
    keep_going: bool = False,
    case_timeout: float | None = None,
) -> Figure5Case:
    """Run the Fig. 5 experiment: one conv fwd config on SKX."""
    baseline, ideal = run_cases(
        [
            CaseSpec(
                workload=workload, preset=preset,
                instructions=instructions, seed=seed,
            ),
            CaseSpec(
                workload=workload, preset=preset,
                idealization=PERFECT_DCACHE,
                instructions=instructions, seed=seed,
            ),
        ],
        jobs=jobs,
        keep_going=keep_going,
        case_timeout=case_timeout,
    )
    if baseline is None or ideal is None:
        raise IncompleteBatch(
            f"figure5 case {workload}@{preset} incomplete: "
            f"{'baseline' if baseline is None else 'perfect-dcache'} run "
            "failed; see `repro failures list`"
        )
    return Figure5Case(workload, preset, baseline, ideal)


def cpi_normalized(result: SimResult) -> dict[Component, float]:
    """Normalized issue-stage CPI components (helper for reports)."""
    assert result.report is not None
    raw = result.report.issue.normalized()
    return {c: raw.get(c, 0.0) for c in CPI_COMPONENTS}
