"""Evaluation harness: one module per paper experiment family.

* :mod:`repro.experiments.runner` — cached simulation driver (memo,
  persistent disk cache, simulator).
* :mod:`repro.experiments.cache` — case specs, content-addressed keys and
  the on-disk result store.
* :mod:`repro.experiments.parallel` — the batch scheduler dispatching
  case lists across worker processes.
* :mod:`repro.experiments.supervisor` — worker supervision: per-case
  deadlines, bounded retries, pool rebuild / serial fallback, persisted
  failure reports and deterministic fault injection.
* :mod:`repro.experiments.idealization` — CPI deltas from perfected
  structures (Table I, Fig. 3 case studies).
* :mod:`repro.experiments.error` — per-component error distributions for
  single stacks vs. the multi-stage bounds (Fig. 2).
* :mod:`repro.experiments.flops_study` — CPI-vs-FLOPS stack comparisons on
  the DeepBench-like kernels (Fig. 4, Fig. 5).
* :mod:`repro.experiments.overhead` — accounting overhead measurement
  (Sec. IV, "<1% simulation time" claim).
"""

from repro.experiments.cache import CaseSpec
from repro.experiments.error import (
    ComponentError,
    figure2_errors,
    summarize_errors,
)
from repro.experiments.flops_study import (
    figure4_differences,
    figure5_case,
)
from repro.experiments.idealization import (
    IdealizationStudy,
    fig3_case,
    run_study,
    table1_rows,
)
from repro.experiments.overhead import measure_overhead
from repro.experiments.parallel import resolve_jobs, run_cases
from repro.experiments.runner import clear_cache, run_case
from repro.experiments.supervisor import (
    BatchFailure,
    FailureReport,
    IncompleteBatch,
    run_supervised,
)

__all__ = [
    "BatchFailure",
    "CaseSpec",
    "ComponentError",
    "FailureReport",
    "IdealizationStudy",
    "IncompleteBatch",
    "clear_cache",
    "fig3_case",
    "figure2_errors",
    "figure4_differences",
    "figure5_case",
    "measure_overhead",
    "resolve_jobs",
    "run_case",
    "run_cases",
    "run_study",
    "run_supervised",
    "summarize_errors",
    "table1_rows",
]
