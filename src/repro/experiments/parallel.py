"""Batch scheduler: dispatch independent cases across worker processes.

The paper's experiments are embarrassingly parallel — every Table I /
Fig. 2 / Fig. 3 / FLOPS-study artifact is a list of fully independent
``run_case`` simulations.  :func:`run_cases` is the batch API the
experiment modules declare their full case list to:

1. keys are computed for every spec and duplicates collapse onto one
   in-flight entry (a Fig. 2 sweep requests each baseline many times);
2. the cache hierarchy (in-process memo, then the persistent disk cache)
   is consulted per unique key;
3. remaining misses are dispatched to a ``ProcessPoolExecutor``
   (``jobs`` argument > ``REPRO_JOBS`` env > ``os.cpu_count()``); with
   ``jobs=1`` everything runs in-process, which is the deterministic
   serial baseline;
4. results are collected in submission order (never completion order),
   round-tripped through ``SimResult.to_dict``, published to both cache
   levels, and returned in the caller's original spec order — so a
   parallel run is bit-identical to a serial one.

Observability: each batch leaves a :class:`BatchStats` in
:data:`LAST_BATCH` with wall time, per-level hit counts and simulated
uops/sec; experiments print its ``summary()`` line and ``repro cache
stats`` exposes the process-wide counters.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.experiments import runner
from repro.experiments.cache import TELEMETRY, CaseSpec
from repro.pipeline.result import SimResult

#: Environment variable overriding the default worker count.
ENV_JOBS = "REPRO_JOBS"


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit argument, else ``$REPRO_JOBS``, else CPUs."""
    if jobs is None:
        env = os.environ.get(ENV_JOBS)
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"{ENV_JOBS} must be an integer, got {env!r}"
                ) from None
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


@dataclass(slots=True)
class BatchStats:
    """What one ``run_cases`` batch did, for the summary line."""

    cases: int = 0
    unique: int = 0
    jobs: int = 1
    memo_hits: int = 0
    disk_hits: int = 0
    simulated: int = 0
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0
    uops_simulated: int = 0
    #: (case label, simulator wall seconds) for each case simulated here.
    case_seconds: list[tuple[str, float]] = field(default_factory=list)

    @property
    def uops_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.uops_simulated / self.wall_seconds

    def summary(self) -> str:
        rate = self.uops_per_second
        return (
            f"[harness] {self.cases} cases ({self.unique} unique): "
            f"{self.simulated} simulated, {self.memo_hits} memo hits, "
            f"{self.disk_hits} disk hits | jobs={self.jobs} "
            f"wall={self.wall_seconds:.2f}s sim={self.sim_seconds:.2f}s "
            f"({rate / 1e3:.0f}k uops/s)"
        )


#: Stats of the most recent batch (experiments print its summary line).
LAST_BATCH: BatchStats | None = None


def _worker(spec: CaseSpec) -> dict:
    """Pool worker: simulate one case and ship the serialized result.

    The result crosses the process boundary as a ``to_dict`` payload so
    the transport exercises exactly the same (schema-versioned) round
    trip as the disk cache — fields can't silently diverge between the
    serial and parallel paths.
    """
    return runner.execute_spec(spec).to_dict()


def run_cases(
    specs: Iterable[CaseSpec],
    *,
    jobs: int | None = None,
    use_cache: bool = True,
    mp_start_method: str | None = None,
) -> list[SimResult]:
    """Resolve a batch of case specs, in parallel where possible.

    Returns one :class:`SimResult` per input spec, in input order.
    Duplicate specs are deduplicated in flight and share one result
    object.  ``mp_start_method`` forces a multiprocessing start method
    ("fork"/"spawn") for the pool — mainly for the determinism tests.
    """
    spec_list: Sequence[CaseSpec] = list(specs)
    jobs = resolve_jobs(jobs)
    start = time.perf_counter()
    before = TELEMETRY.counters()
    sims_before = len(TELEMETRY.case_seconds)

    keys = [spec.key() for spec in spec_list]
    results: dict[str, SimResult] = {}
    pending: dict[str, CaseSpec] = {}
    for key, spec in zip(keys, spec_list):
        if key in results or key in pending:
            continue
        if use_cache:
            cached = runner.lookup_cached(key)
            if cached is not None:
                results[key] = cached
                continue
        pending[key] = spec

    if pending:
        items = list(pending.items())
        if jobs == 1 or len(items) == 1:
            for key, spec in items:
                result = runner.execute_spec(spec)
                if use_cache:
                    runner.store_result(key, spec, result)
                results[key] = result
        else:
            context = None
            if mp_start_method is not None:
                context = multiprocessing.get_context(mp_start_method)
            workers = min(jobs, len(items))
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=context
            ) as pool:
                submitted = [
                    (key, spec, pool.submit(_worker, spec))
                    for key, spec in items
                ]
                # Deterministic collection: submission order, not
                # completion order.
                for key, spec, future in submitted:
                    result = SimResult.from_dict(future.result())
                    TELEMETRY.record_simulation(spec.label(), result)
                    if use_cache:
                        runner.store_result(key, spec, result)
                    results[key] = result

    after = TELEMETRY.counters()
    stats = BatchStats(
        cases=len(spec_list),
        unique=len(results),
        jobs=jobs,
        memo_hits=int(after["memo_hits"] - before["memo_hits"]),
        disk_hits=int(after["disk_hits"] - before["disk_hits"]),
        simulated=int(
            after["sim_invocations"] - before["sim_invocations"]
        ),
        wall_seconds=time.perf_counter() - start,
        sim_seconds=after["sim_seconds"] - before["sim_seconds"],
        uops_simulated=int(
            after["uops_simulated"] - before["uops_simulated"]
        ),
        case_seconds=list(TELEMETRY.case_seconds[sims_before:]),
    )
    global LAST_BATCH
    LAST_BATCH = stats
    return [results[key] for key in keys]


def last_batch_summary() -> str | None:
    """Summary line of the most recent batch, if any ran."""
    return LAST_BATCH.summary() if LAST_BATCH is not None else None


def telemetry_mark() -> tuple[float, dict[str, float]]:
    """Snapshot (wall clock, counters) to later summarize an experiment
    spanning several batches."""
    return (time.perf_counter(), TELEMETRY.counters())


def summarize_since(mark: tuple[float, dict[str, float]]) -> str:
    """One-line harness summary of everything since ``telemetry_mark``."""
    start, before = mark
    after = TELEMETRY.counters()
    wall = time.perf_counter() - start
    simulated = int(after["sim_invocations"] - before["sim_invocations"])
    memo = int(after["memo_hits"] - before["memo_hits"])
    disk = int(after["disk_hits"] - before["disk_hits"])
    uops = after["uops_simulated"] - before["uops_simulated"]
    sim_seconds = after["sim_seconds"] - before["sim_seconds"]
    rate = uops / wall if wall > 0 else 0.0
    return (
        f"[harness] {simulated + memo + disk} case lookups: "
        f"{simulated} simulated, {memo} memo hits, {disk} disk hits | "
        f"wall={wall:.2f}s sim={sim_seconds:.2f}s "
        f"({rate / 1e3:.0f}k uops/s)"
    )
